"""Fig 5 — experience formation.

"We used trace based simulations to determine how quickly our system
would produce an experienced core for given threshold values T."

One simulation run (trace + piece-level BitTorrent + BarterCast gossip)
yields the CEV time series for *every* threshold at once, since CEV is
a pure post-processing of the flow matrix.  The paper's headline
observations this experiment must reproduce:

* smaller T ⇒ faster, higher CEV (curves ordered by T);
* T = 5 MB ⇒ roughly 20 % of ordered pairs experienced within ~12 h;
* even at 168 h the CEV stays well below 1 (free-riders + churn).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.runtime import RuntimeConfig
from repro.experiments.common import ExperimentResult, SimulationStack
from repro.metrics.cev import FlowMatrixCache, collective_experience_value
from repro.sim.units import DAY, MB
from repro.traces.generator import TraceGenerator, TraceGeneratorConfig
from repro.traces.model import Trace


@dataclass
class ExperienceFormationConfig:
    """Fig 5 parameters."""

    seed: int = 0
    trace_replica: int = 0
    #: thresholds plotted, in bytes (the paper sweeps a few MB values
    #: and picks T = 5 MB).
    thresholds: Sequence[float] = (2 * MB, 5 * MB, 10 * MB, 20 * MB, 50 * MB)
    duration: float = 7 * DAY
    sample_interval: float = 3600.0
    trace: TraceGeneratorConfig = field(default_factory=TraceGeneratorConfig)
    runtime: Optional[RuntimeConfig] = None
    #: Worker count for the flow-matrix changed-row recompute (1 =
    #: serial, ``None`` = one per CPU).  Any value yields bit-identical
    #: CEV curves; see :class:`~repro.metrics.cev.FlowMatrixCache`.
    flow_jobs: Optional[int] = 1
    #: Execution tier for parallel flow rows: ``"thread"`` (shared
    #: graphs, GIL released inside numpy), ``"process"`` (rows sharded
    #: over worker processes, graphs published via shared memory) or
    #: ``"auto"``.  Bit-identical across tiers; ignored when
    #: ``flow_jobs=1``.
    flow_executor: str = "thread"

    def __post_init__(self) -> None:
        if not self.thresholds:
            raise ValueError("need at least one threshold")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.flow_jobs is not None and self.flow_jobs < 1:
            raise ValueError("flow_jobs must be >= 1 (or None for auto)")
        if self.flow_executor not in ("thread", "process", "auto"):
            raise ValueError(
                "flow_executor must be 'thread', 'process' or 'auto'"
            )


class ExperienceFormationExperiment:
    """Regenerates Fig 5 from one trace replica."""

    def __init__(self, config: Optional[ExperienceFormationConfig] = None):
        self.config = config or ExperienceFormationConfig()

    def _make_trace(self) -> Trace:
        cfg = self.config
        trace_cfg = cfg.trace
        if trace_cfg.duration != cfg.duration:
            # Keep the trace horizon in lock-step with the experiment's.
            trace_cfg = TraceGeneratorConfig(
                **{**trace_cfg.__dict__, "duration": cfg.duration}
            )
        return TraceGenerator(trace_cfg, seed=cfg.seed).generate(cfg.trace_replica)

    def run(self) -> ExperimentResult:
        cfg = self.config
        trace = self._make_trace()
        stack = SimulationStack.build(
            trace,
            seed=cfg.seed,
            runtime_config=cfg.runtime,
            sample_interval=cfg.sample_interval,
        )
        peers = list(trace.peers)
        # One incremental flow-matrix cache shared by every sample:
        # only observers whose graph changed since the previous sample
        # cost a row recompute.
        flow_cache = FlowMatrixCache(
            stack.runtime.bartercast,
            peers,
            jobs=cfg.flow_jobs,
            executor=cfg.flow_executor,
        )

        def probe():
            cev = collective_experience_value(
                stack.runtime.bartercast, peers, cfg.thresholds, cache=flow_cache
            )
            return {f"T={t / MB:g}MB": v for t, v in cev.items()}

        stack.recorder.add_probe("cev", probe)
        try:
            stack.run(until=cfg.duration)
        finally:
            # Shut the process-tier worker pool down (no-op otherwise).
            flow_cache.close()

        result = ExperimentResult(name="fig5-experience-formation")
        result.series = dict(stack.recorder.series)
        result.metadata = {
            "trace": trace.name,
            "peers": len(trace.peers),
            "thresholds_mb": [t / MB for t in cfg.thresholds],
            "total_transfer_mb": stack.session.ledger.total_bytes / MB,
            "flow_rows_recomputed": flow_cache.rows_recomputed,
            "flow_rows_reused": flow_cache.rows_reused,
            "flow_jobs": cfg.flow_jobs,
            "flow_executor": cfg.flow_executor,
        }
        return result
