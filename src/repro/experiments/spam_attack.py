"""Fig 8 — flash-crowd spam attack.

Setup (§VI-C): a fixed experienced core of 30 nodes, pre-converged on
an honest top moderator **M1** and mutually experienced; a collusive
flash crowd (1× or 2× the core size) arrives promoting a spam moderator
**M0**; the remaining trace peers are newly arrived normal nodes.

Measured: the proportion of newly arrived nodes ranking M0 top over
time.  Paper shape: the 2× crowd defeats most new nodes for ≈24 hours
(until they accumulate ``B_min`` votes from core members and switch to
ballot-box statistics); the 1× crowd only ever defeats a minority, and
attacks *smaller* than the core produce ~zero pollution within an hour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.attacks.spam import FlashCrowd
from repro.core.node import NodeConfig
from repro.core.runtime import RuntimeConfig
from repro.core.votes import Vote, VoteEntry
from repro.experiments.common import (
    ExperimentResult,
    SimulationStack,
    average_series,
)
from repro.metrics.pollution import pollution_fraction
from repro.sim.parallel import ReplicaPool
from repro.sim.units import DAY, HOUR, MB
from repro.traces.generator import TraceGenerator, TraceGeneratorConfig
from repro.traces.model import Trace
from repro.traces.stats import compute_stats


@dataclass
class SpamAttackConfig:
    """Fig 8 parameters."""

    seed: int = 0
    trace_replica: int = 0
    duration: float = 3 * DAY
    sample_interval: float = 1800.0
    core_size: int = 30
    crowd_size: int = 60
    #: Crowd availability (they churn like residential peers; 1.0 means
    #: a dedicated always-online botnet).  Default matches the traces'
    #: ≈45–50 % mean availability so "crowd = 1× core" compares equal
    #: *online* strength, as the paper's trace-driven colluders did.
    crowd_duty_cycle: float = 0.45
    crowd_duty_period: float = 4 * HOUR
    experience_threshold: float = 5 * MB
    #: Bytes of pre-existing pairwise transfer credited between core
    #: members ("fixed ... to be part of the experienced core").
    core_history_bytes: float = 10 * MB
    spam_moderator: str = "M0"
    #: If set, colluders also cast decoy −votes on the core's honest
    #: top moderator.  Slander makes the attack stronger against the
    #: raw summation score but *creates vote dispersion*, which is
    #: exactly the signal the §VII adaptive threshold reacts to.
    crowd_slanders_honest: bool = False
    node: NodeConfig = field(
        default_factory=lambda: NodeConfig(b_min=5, b_max=100, v_max=10, k=3)
    )
    trace: TraceGeneratorConfig = field(default_factory=TraceGeneratorConfig)
    runtime: Optional[RuntimeConfig] = None

    def __post_init__(self) -> None:
        if self.core_size < 1 or self.crowd_size < 1:
            raise ValueError("core and crowd must be non-empty")
        if not (0.0 < self.crowd_duty_cycle <= 1.0):
            raise ValueError("crowd_duty_cycle must be in (0, 1]")


class SpamAttackExperiment:
    """Regenerates one Fig 8 line; :meth:`run_many` averages replicas."""

    def __init__(self, config: Optional[SpamAttackConfig] = None):
        self.config = config or SpamAttackConfig()

    def _make_trace(self, replica: int) -> Trace:
        cfg = self.config
        trace_cfg = cfg.trace
        overrides = {}
        if trace_cfg.duration != cfg.duration:
            overrides["duration"] = cfg.duration
        if trace_cfg.arrival_window != 0.0:
            # The paper's population (and its experienced core) exists
            # when the attack starts; staggered first arrivals would
            # let the flash crowd face a half-empty core — an artifact,
            # not the attack dynamics under study.
            overrides["arrival_window"] = 0.0
        if overrides:
            trace_cfg = TraceGeneratorConfig(
                **{**trace_cfg.__dict__, **overrides}
            )
        return TraceGenerator(trace_cfg, seed=cfg.seed).generate(replica)

    def _runtime_config(self) -> RuntimeConfig:
        cfg = self.config
        if cfg.runtime is not None:
            return cfg.runtime
        return RuntimeConfig(
            node=cfg.node, experience_threshold=cfg.experience_threshold
        )

    # ------------------------------------------------------------------
    def run(self, replica: Optional[int] = None) -> ExperimentResult:
        cfg = self.config
        replica = cfg.trace_replica if replica is None else replica
        trace = self._make_trace(replica)
        stack = SimulationStack.build(
            trace,
            seed=cfg.seed + 1000 * replica,
            runtime_config=self._runtime_config(),
            sample_interval=cfg.sample_interval,
        )
        self._install_experience(stack)
        core, m1 = self._setup_core(stack, trace)
        crowd = self._setup_crowd(stack, honest_top=m1)
        newcomers = [p for p in trace.peers if p not in core]

        def probe() -> float:
            arrived = [p for p in newcomers if p in stack.runtime.nodes]
            return pollution_fraction(
                stack.runtime.nodes, cfg.spam_moderator, include=arrived
            )

        stack.recorder.add_probe("polluted_fraction", probe)
        stack.run(until=cfg.duration)

        result = ExperimentResult(name=f"fig8-spam-attack-r{replica}")
        result.series = dict(stack.recorder.series)
        result.metadata = {
            "trace": trace.name,
            "core": core,
            "crowd_size": cfg.crowd_size,
            "honest_top": m1,
            # "the flash crowd cannot influence the experienced core"
            "final_core_pollution": pollution_fraction(
                stack.runtime.nodes, cfg.spam_moderator, include=core
            ),
            "final_newcomer_pollution": pollution_fraction(
                stack.runtime.nodes,
                cfg.spam_moderator,
                include=[p for p in newcomers if p in stack.runtime.nodes],
            ),
        }
        return result

    def _install_experience(self, stack: SimulationStack) -> None:
        """Hook for ablations: swap the experience function after the
        stack (and its BarterCast service) exists.  Default: keep the
        threshold function the runtime built."""

    # ------------------------------------------------------------------
    def _setup_core(self, stack: SimulationStack, trace: Trace) -> tuple:
        """Fix the experienced core: the most-available non-free-riders,
        pre-converged on M1 and mutually experienced."""
        cfg = self.config
        stats = compute_stats(trace)
        candidates = sorted(
            (p for p in trace.peers.values() if not p.free_rider),
            key=lambda p: -stats.availability[p.peer_id],
        )
        core = [p.peer_id for p in candidates[: cfg.core_size]]
        if len(core) < cfg.core_size:
            extra = sorted(
                (p for p in trace.peers if p not in core),
                key=lambda pid: -stats.availability[pid],
            )
            core += extra[: cfg.core_size - len(core)]
        m1 = core[0]

        # Mutual experience: credit pre-run transfer history between
        # every ordered core pair (goes through the normal BarterCast
        # path so gossip spreads it to newcomers too).
        for i in core:
            for j in core:
                if i != j:
                    stack.runtime.bartercast.local_transfer(
                        i, j, cfg.core_history_bytes, now=0.0
                    )

        # Convergence on M1: every core member (except M1) voted +M1,
        # and each core ballot box already contains the others' votes.
        m1_node = stack.runtime.ensure_node(m1)
        m1_node.create_moderation("core-approved-torrent", "the good stuff", 0.0)
        for pid in core:
            if pid == m1:
                continue
            node = stack.runtime.ensure_node(pid)
            node.cast_vote(m1, Vote.POSITIVE, 0.0)
        for pid in core:
            node = stack.runtime.ensure_node(pid)
            for other in core:
                if other in (pid, m1):
                    continue
                node.ballot_box.merge(
                    other, [VoteEntry(m1, Vote.POSITIVE, 0.0)], now=0.0
                )
        return core, m1

    def _setup_crowd(self, stack: SimulationStack, honest_top: str) -> FlashCrowd:
        cfg = self.config
        crowd = FlashCrowd(
            stack.runtime,
            size=cfg.crowd_size,
            spam_moderator=cfg.spam_moderator,
            decoys=[honest_top] if cfg.crowd_slanders_honest else (),
        )
        crowd.arrive(0.0)
        if cfg.crowd_duty_cycle < 1.0:
            self._schedule_crowd_churn(stack, crowd)
        return crowd

    def _schedule_crowd_churn(self, stack: SimulationStack, crowd: FlashCrowd) -> None:
        """Colluders alternate online/offline so the attack strength in
        *online* nodes matches `crowd_duty_cycle · size` on average,
        mirroring the churn honest peers face."""
        cfg = self.config
        rng = stack.runtime._rng.stream("crowd-churn")
        period = cfg.crowd_duty_period
        on_time = period * cfg.crowd_duty_cycle
        engine = stack.engine

        def cycle(pid: str, phase: float) -> None:
            def go_offline() -> None:
                stack.runtime.take_offline(pid, engine.now)
                engine.schedule(period - on_time, go_online)

            def go_online() -> None:
                if engine.now >= cfg.duration:
                    return
                stack.runtime.bring_online(pid, engine.now)
                engine.schedule(on_time, go_offline)

            engine.schedule(phase, go_offline)

        for pid in crowd.members:
            cycle(pid, phase=float(rng.uniform(0.0, on_time)))

    # ------------------------------------------------------------------
    def run_many(
        self, n_runs: int = 10, jobs: Optional[int] = None
    ) -> ExperimentResult:
        """Replica average; ``jobs`` parallelises as in Fig 6's
        :meth:`VoteSamplingExperiment.run_many` (bit-identical for any
        worker count)."""
        pool = ReplicaPool(jobs=jobs)
        runs = pool.run_replicas(self, range(n_runs))
        result = ExperimentResult(
            name=f"fig8-spam-attack-x{self.config.crowd_size}-avg{n_runs}"
        )
        for i, r in enumerate(runs):
            result.series[f"run{i}"] = r.get("polluted_fraction")
        mean, std = average_series(
            [r.get("polluted_fraction") for r in runs], with_std=True
        )
        result.series["average"] = mean
        result.series["std"] = std
        result.metadata = {
            "n_runs": n_runs,
            "crowd_size": self.config.crowd_size,
            "jobs": pool.resolve_jobs(n_runs),
        }
        return result


def crowd_sweep(
    base: SpamAttackConfig,
    sizes: List[int],
    n_runs: int = 3,
    jobs: Optional[int] = None,
) -> Dict[int, ExperimentResult]:
    """Run the attack for several crowd sizes (the Fig 8 comparison)."""
    out: Dict[int, ExperimentResult] = {}
    for size in sizes:
        cfg_dict = dict(base.__dict__)
        cfg_dict["crowd_size"] = size
        cfg = SpamAttackConfig(**cfg_dict)
        out[size] = SpamAttackExperiment(cfg).run_many(n_runs, jobs=jobs)
    return out
