"""Design-choice ablations.

The paper motivates several design decisions without plotting them; the
ablations here regenerate the evidence:

* **A1 — adaptive T vs fixed T vs no defence** (§VII): re-run the Fig 8
  attack with the dispersion-driven adaptive threshold and with the
  experience gate removed entirely.
* **A2 — vote-exchange policy** (§V-A): recency+random vs pure-recency
  vs pure-random selection under the Fig 6 workload.
* **A3 — PSS implementation** (§III): oracle sampling vs the Newscast
  gossip PSS under the Fig 6 workload.
* **A4 — parameter sweeps** (§V-C): ``B_min``, ``K``, ``V_max``.
* **A9 — vote fan-out** (§V-A): partners per vote tick — convergence
  vs ballot traffic under the Fig 6 workload.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence, Tuple

from repro.core.experience import AdaptiveThresholdExperience, AlwaysExperienced
from repro.core.runtime import RuntimeConfig
from repro.traces.generator import TraceGeneratorConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.spam_attack import SpamAttackConfig, SpamAttackExperiment
from repro.experiments.vote_sampling import VoteSamplingConfig, VoteSamplingExperiment
from repro.sim.parallel import ReplicaPool
from repro.sim.units import MB

#: one ablation variant: ``(key, experiment, result_name)``; the name
#: overrides the experiment's own (``None`` keeps it).
_Spec = Tuple[str, object, Optional[str]]


def _run_labelled(
    specs: Sequence[_Spec], jobs: Optional[int] = None
) -> Dict[str, ExperimentResult]:
    """Run one single-replica experiment per spec — the variants of an
    ablation are as independent as trace replicas, so they farm over
    the same :class:`ReplicaPool` (``jobs=1`` = today's sequential
    loop, bit-identical output either way)."""
    specs = list(specs)
    pool = ReplicaPool(jobs=jobs)
    results = pool.run_tasks([(exp, None) for _key, exp, _name in specs])
    out: Dict[str, ExperimentResult] = {}
    for (key, _exp, name), result in zip(specs, results):
        if name is not None:
            result.name = name
        out[key] = result
    return out


# ----------------------------------------------------------------------
# A1 — experience-function variants under attack
# ----------------------------------------------------------------------
class _AdaptiveSpamExperiment(SpamAttackExperiment):
    """Fig 8 with the adaptive threshold controller installed.

    The controller needs the run's own BarterCast service, so it is
    installed through the post-build hook.  Note the adaptive runtime
    also schedules the per-node dispersion-update tick automatically
    (the runtime checks ``isinstance(experience, Adaptive…)`` when
    creating a node's processes), so installation must happen before
    any node comes online — the hook runs at t=0, before trace replay.
    """

    def __init__(self, config: SpamAttackConfig, d_max: float = 0.5):
        super().__init__(config)
        self._d_max = d_max

    def _install_experience(self, stack) -> None:
        stack.runtime.experience = AdaptiveThresholdExperience(
            stack.runtime.bartercast, d_max=self._d_max, step=1 * MB
        )

    def run(self, replica: Optional[int] = None) -> ExperimentResult:
        result = super().run(replica)
        result.name = result.name.replace("fig8", "ablation-a1-adaptive")
        return result


class _UndefendedSpamExperiment(SpamAttackExperiment):
    """Fig 8 with E ≡ true — shows what the gate is worth."""

    def _install_experience(self, stack) -> None:
        stack.runtime.experience = AlwaysExperienced()

    def run(self, replica: Optional[int] = None) -> ExperimentResult:
        result = super().run(replica)
        result.name = result.name.replace("fig8", "ablation-a1-undefended")
        return result


def ablation_adaptive_threshold(
    base: Optional[SpamAttackConfig] = None,
    jobs: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """A1: fixed-T vs adaptive-T vs undefended under the same attack."""
    base = base or SpamAttackConfig()
    return _run_labelled(
        [
            ("fixed", SpamAttackExperiment(base), None),
            ("adaptive", _AdaptiveSpamExperiment(base), None),
            ("undefended", _UndefendedSpamExperiment(base), None),
        ],
        jobs=jobs,
    )


# ----------------------------------------------------------------------
# A2 — exchange policies
# ----------------------------------------------------------------------
def ablation_exchange_policy(
    base: Optional[VoteSamplingConfig] = None,
    jobs: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """A2: vote-selection policy comparison on the Fig 6 workload."""
    base = base or VoteSamplingConfig()
    specs = []
    for policy in ("recency_random", "recency", "random"):
        node = replace(base.node, exchange_policy=policy)
        cfg = replace(base, node=node)
        specs.append(
            (policy, VoteSamplingExperiment(cfg), f"ablation-a2-{policy}")
        )
    return _run_labelled(specs, jobs=jobs)


# ----------------------------------------------------------------------
# A3 — PSS implementations
# ----------------------------------------------------------------------
def ablation_pss(
    base: Optional[VoteSamplingConfig] = None,
    jobs: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """A3: oracle PSS vs Newscast gossip PSS on the Fig 6 workload."""
    base = base or VoteSamplingConfig()
    specs = []
    for label, use_newscast in (("oracle", False), ("newscast", True)):
        runtime = RuntimeConfig(
            node=base.node,
            experience_threshold=base.experience_threshold,
            use_newscast=use_newscast,
        )
        cfg = replace(base, runtime=runtime)
        specs.append(
            (label, VoteSamplingExperiment(cfg), f"ablation-a3-{label}")
        )
    return _run_labelled(specs, jobs=jobs)


# ----------------------------------------------------------------------
# A9 — vote-exchange fan-out
# ----------------------------------------------------------------------
def ablation_vote_fanout(
    base: Optional[VoteSamplingConfig] = None,
    fanouts: Sequence[int] = (1, 2, 4),
    jobs: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """A9: partners contacted per vote tick (§V-A runs one exchange
    per interval).

    Fan-out ``f`` multiplies per-round ballot traffic roughly ``f``×
    while the convergence gain diminishes — epidemic dissemination is
    already exponential at ``f = 1`` — so the sweep shows what the
    paper's single-partner loop trades away.  Each result's metadata
    gains ``ballotbox_bytes`` (total vote-exchange traffic) so
    convergence can be read against its cost.
    """
    base = base or VoteSamplingConfig()
    specs = []
    for fanout in fanouts:
        runtime = RuntimeConfig(
            node=base.node,
            experience_threshold=base.experience_threshold,
            vote_fanout=fanout,
        )
        cfg = replace(base, runtime=runtime)
        specs.append(
            (
                f"fanout={fanout}",
                VoteSamplingExperiment(cfg),
                f"ablation-a9-fanout{fanout}",
            )
        )
    out = _run_labelled(specs, jobs=jobs)
    for result in out.values():
        traffic = result.metadata["run_summary"]["traffic"]
        result.metadata["ballotbox_bytes"] = traffic.get("ballotbox", {}).get(
            "bytes", 0.0
        )
    return out


# ----------------------------------------------------------------------
# A6 — VoxPopuli on/off
# ----------------------------------------------------------------------
def ablation_voxpopuli(
    base: Optional[VoteSamplingConfig] = None,
    jobs: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """A6: what the bootstrap protocol buys (§V-C).

    With VoxPopuli disabled, a node below ``B_min`` has no ranking at
    all — correctness stays near zero until enough experienced votes
    arrive, demonstrating the bootstrap's contribution to the Fig 6
    knee.
    """
    base = base or VoteSamplingConfig()
    specs = []
    for label, enabled in (("with_voxpopuli", True), ("without_voxpopuli", False)):
        node = replace(base.node, voxpopuli_enabled=enabled)
        exp = VoteSamplingExperiment(replace(base, node=node))
        specs.append((label, exp, f"ablation-a6-{label}"))
    return _run_labelled(specs, jobs=jobs)


# ----------------------------------------------------------------------
# A7 — experience threshold T on the honest workload
# ----------------------------------------------------------------------
def ablation_experience_threshold(
    base: Optional[VoteSamplingConfig] = None,
    thresholds=(2 * MB, 5 * MB, 20 * MB),
    jobs: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """A7: the speed/security trade of T (§V-B, 'T could be adapted').

    Higher T slows honest vote propagation (votes only flow once
    senders cross the bar) — the flip side of the Fig 8 security
    argument.
    """
    base = base or VoteSamplingConfig()
    specs = []
    for t in thresholds:
        exp = VoteSamplingExperiment(replace(base, experience_threshold=t))
        label = f"T={t / MB:g}MB"
        specs.append((label, exp, f"ablation-a7-{label}"))
    return _run_labelled(specs, jobs=jobs)


# ----------------------------------------------------------------------
# A8 — churn resilience
# ----------------------------------------------------------------------
def ablation_churn(
    base: Optional[VoteSamplingConfig] = None,
    availabilities=(0.3, 0.5, 0.7),
    jobs: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """A8: gossip robustness to churn (§II cites the epidemic
    literature; the traces' ≈50 % offline rate is the paper's ambient
    condition).  Sweeps the population's mean availability by scaling
    the Beta prior; correctness should degrade gracefully, not
    collapse, as availability drops.
    """
    base = base or VoteSamplingConfig()
    specs = []
    for avail in availabilities:
        # Beta(2a, 2(1-a)) keeps spread while moving the mean to `avail`.
        trace = TraceGeneratorConfig(
            **{
                **base.trace.__dict__,
                "availability_beta": (4.0 * avail, 4.0 * (1.0 - avail)),
            }
        )
        exp = VoteSamplingExperiment(replace(base, trace=trace))
        label = f"availability={avail:.0%}"
        specs.append((label, exp, f"ablation-a8-{label}"))
    return _run_labelled(specs, jobs=jobs)


# ----------------------------------------------------------------------
# A4 — parameter sweeps
# ----------------------------------------------------------------------
def ablation_parameter_sweep(
    base: Optional[VoteSamplingConfig] = None,
    b_mins=(2, 5, 10),
    ks=(1, 3, 5),
    v_maxes=(3, 10, 25),
    jobs: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """A4: B_min / K / V_max sweeps on the Fig 6 workload.

    One parameter varies at a time; all results keyed
    ``"<param>=<value>"``.
    """
    base = base or VoteSamplingConfig()
    specs = []
    for b_min in b_mins:
        node = replace(base.node, b_min=b_min)
        exp = VoteSamplingExperiment(replace(base, node=node))
        specs.append((f"b_min={b_min}", exp, f"ablation-a4-bmin{b_min}"))
    for k in ks:
        node = replace(base.node, k=k)
        exp = VoteSamplingExperiment(replace(base, node=node))
        specs.append((f"k={k}", exp, f"ablation-a4-k{k}"))
    for v_max in v_maxes:
        node = replace(base.node, v_max=v_max)
        exp = VoteSamplingExperiment(replace(base, node=node))
        specs.append((f"v_max={v_max}", exp, f"ablation-a4-vmax{v_max}"))
    return _run_labelled(specs, jobs=jobs)
