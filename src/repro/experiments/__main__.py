"""Command-line entry: regenerate the paper's figures.

Usage::

    python -m repro.experiments fig5 [--quick] [--seed N]
    python -m repro.experiments fig6 [--quick] [--runs N] [--jobs N]
    python -m repro.experiments fig8 [--quick] [--crowd N] [--jobs N]
    python -m repro.experiments all  [--quick]

``--quick`` shrinks durations/populations so each figure renders in
well under a minute; without it the full paper-scale workloads run.
``--jobs`` farms independent replicas (fig6 runs, fig8 crowd sizes,
ablation variants) over worker processes — output is bit-identical to
the default sequential run.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.common import ascii_chart
from repro.experiments.experience_formation import (
    ExperienceFormationConfig,
    ExperienceFormationExperiment,
)
from repro.experiments.spam_attack import SpamAttackConfig, SpamAttackExperiment
from repro.experiments.vote_sampling import (
    VoteSamplingConfig,
    VoteSamplingExperiment,
)
from repro.core.runtime import RuntimeConfig
from repro.sim.parallel import ReplicaPool
from repro.sim.units import DAY
from repro.traces.generator import TraceGeneratorConfig


def _quick_trace(duration: float) -> TraceGeneratorConfig:
    return TraceGeneratorConfig(n_peers=50, n_swarms=6, duration=duration)


def _bartercast_overrides(args) -> dict:
    """The CLI's non-default runtime knobs (BarterCast backends plus
    the population engine) as RuntimeConfig kwargs."""
    overrides = {}
    if args.graph_backend is not None:
        overrides["graph_backend"] = args.graph_backend
    if args.sparse_kernel is not None:
        overrides["sparse_flow_kernel"] = args.sparse_kernel
    if args.population_engine is not None:
        overrides["population_engine"] = args.population_engine
    return overrides


def _runtime_overrides(args) -> "RuntimeConfig | None":
    """A RuntimeConfig carrying the CLI's BarterCast knobs, or None
    when every knob is at its default (keeping configs bit-identical
    to the pre-flag code path)."""
    overrides = _bartercast_overrides(args)
    if not overrides:
        return None
    return RuntimeConfig(**overrides)


def run_fig5(args) -> None:
    duration = 1 * DAY if args.quick else 7 * DAY
    cfg = ExperienceFormationConfig(
        seed=args.seed,
        duration=duration,
        runtime=_runtime_overrides(args),
        flow_jobs=None if args.flow_jobs == 0 else args.flow_jobs,
        flow_executor=args.flow_executor,
    )
    if args.quick:
        cfg.trace = _quick_trace(duration)
    print(f"[fig5] experience formation, duration={duration / DAY:g}d …")
    result = ExperienceFormationExperiment(cfg).run()
    print(ascii_chart(result.series, y_max=1.0))
    for row in result.summary_rows():
        print("  " + row)


def run_fig6(args) -> None:
    duration = 1.5 * DAY if args.quick else 7 * DAY
    cfg = VoteSamplingConfig(seed=args.seed, duration=duration)
    overrides = _bartercast_overrides(args)
    if overrides:
        # Mirror the experiment's own defaults, adding only the
        # requested BarterCast overrides.
        cfg.runtime = RuntimeConfig(
            node=cfg.node,
            experience_threshold=cfg.experience_threshold,
            **overrides,
        )
    if args.quick:
        cfg.trace = _quick_trace(duration)
    exp = VoteSamplingExperiment(cfg)
    if args.runs > 1:
        print(f"[fig6] vote sampling, {args.runs} runs averaged …")
        result = exp.run_many(args.runs, jobs=args.jobs)
        shown = {
            k: v
            for k, v in result.series.items()
            if k in ("average", "run0", "run1", "run2")
        }
    else:
        print("[fig6] vote sampling, single run …")
        result = exp.run()
        shown = result.series
    print(ascii_chart(shown, y_max=1.0))
    for row in result.summary_rows():
        print("  " + row)


def run_fig8(args) -> None:
    duration = 1.5 * DAY if args.quick else 3 * DAY
    experiments = []
    for crowd in args.crowd:
        cfg = SpamAttackConfig(seed=args.seed, crowd_size=crowd, duration=duration)
        if args.quick:
            cfg.trace = _quick_trace(duration)
            cfg.core_size = 15
        print(f"[fig8] spam attack, crowd={crowd} …")
        experiments.append((crowd, SpamAttackExperiment(cfg)))
    # Crowd sizes are independent runs — farm them like replicas.
    pool = ReplicaPool(jobs=args.jobs)
    results = pool.run_tasks([(exp, None) for _crowd, exp in experiments])
    series = {
        f"crowd={crowd}": result.get("polluted_fraction")
        for (crowd, _exp), result in zip(experiments, results)
    }
    print(ascii_chart(series, y_max=1.0))


def run_ablations(args) -> None:
    from repro.experiments.ablations import (
        ablation_churn,
        ablation_exchange_policy,
        ablation_pss,
        ablation_voxpopuli,
    )
    from repro.traces.generator import TraceGeneratorConfig
    from repro.experiments.vote_sampling import VoteSamplingConfig

    duration = 1.25 * DAY if args.quick else 7 * DAY
    base = VoteSamplingConfig(seed=args.seed, duration=duration)
    if args.quick:
        base.trace = TraceGeneratorConfig(n_peers=50, n_swarms=6, duration=duration)
    suites = {
        "A2 exchange policy": ablation_exchange_policy,
        "A3 PSS": ablation_pss,
        "A6 VoxPopuli": ablation_voxpopuli,
        "A8 churn": ablation_churn,
    }
    for title, fn in suites.items():
        print(f"[ablation] {title} …")
        for label, result in fn(base, jobs=args.jobs).items():
            s = result.get("correct_fraction")
            print(f"  {label:<20} final={s.final():.3f} mean={s.values.mean():.3f}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    parser.add_argument("figure", choices=["fig5", "fig6", "fig8", "ablations", "all"])
    parser.add_argument("--quick", action="store_true", help="shrunken workloads")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--runs", type=int, default=1, help="fig6 replicas")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent runs "
        "(default: min(n_runs, cpu_count); 1 = sequential)",
    )
    parser.add_argument(
        "--crowd",
        type=int,
        nargs="+",
        default=[30, 60],
        help="fig8 flash-crowd sizes",
    )
    parser.add_argument(
        "--graph-backend",
        choices=["auto", "dense", "sparse"],
        default=None,
        help="subjective-graph matrix backend (default: the service's "
        "auto setting — dense at paper scale, sparse past the "
        "node-count threshold)",
    )
    parser.add_argument(
        "--sparse-kernel",
        choices=["auto", "chunked", "csr"],
        default=None,
        help="batch flow kernel under the sparse graph backend: "
        "chunked dense row blocks, the sparse-to-sparse CSR kernel, "
        "or auto density-based selection (bit-identical either way; "
        "ignored under the dense backend)",
    )
    parser.add_argument(
        "--population-engine",
        choices=["auto", "object", "soa"],
        default=None,
        help="tick scheduler: per-peer PeriodicProcess heap entries "
        "(object), the columnar batched population engine (soa), or "
        "population-size-based selection (auto; the default).  The "
        "tick schedule and every result are bit-identical either way",
    )
    parser.add_argument(
        "--flow-jobs",
        type=int,
        default=1,
        help="workers for the fig5 flow-matrix row recompute "
        "(0 = one per CPU; results are bit-identical at any value)",
    )
    parser.add_argument(
        "--flow-executor",
        choices=["thread", "process", "auto"],
        default="thread",
        help="execution tier for parallel flow rows: threads share the "
        "live graphs, processes shard rows over workers with graphs "
        "published via shared memory (bit-identical either way; "
        "ignored when --flow-jobs=1)",
    )
    args = parser.parse_args(argv)
    if args.figure in ("fig5", "all"):
        run_fig5(args)
    if args.figure in ("fig6", "all"):
        run_fig6(args)
    if args.figure in ("fig8", "all"):
        run_fig8(args)
    if args.figure == "ablations":
        run_ablations(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
