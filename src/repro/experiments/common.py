"""Shared experiment plumbing.

:class:`SimulationStack` assembles the full system (trace → engine →
BitTorrent session → protocol runtime → recorder) from one config;
:class:`ExperimentResult` carries named time series plus metadata; and
:func:`ascii_chart` renders series in the terminal so every figure can
be eyeballed without plotting dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.bittorrent.session import BitTorrentSession, SessionConfig
from repro.core.experience import ExperienceFunction
from repro.core.runtime import ProtocolRuntime, RuntimeConfig
from repro.metrics.timeseries import TimeSeries, TimeSeriesRecorder
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.traces.model import Trace


@dataclass
class SimulationStack:
    """The fully wired system for one run."""

    engine: Engine
    session: BitTorrentSession
    runtime: ProtocolRuntime
    recorder: TimeSeriesRecorder
    trace: Trace

    @classmethod
    def build(
        cls,
        trace: Trace,
        seed: int,
        runtime_config: Optional[RuntimeConfig] = None,
        session_config: Optional[SessionConfig] = None,
        experience: Optional[ExperienceFunction] = None,
        sample_interval: float = 3600.0,
    ) -> "SimulationStack":
        engine = Engine()
        rng = RngRegistry(seed)
        session = BitTorrentSession(
            engine,
            trace,
            rng,
            config=session_config or SessionConfig(round_interval=60.0),
        )
        runtime = ProtocolRuntime(
            session, rng, config=runtime_config, experience=experience
        )
        recorder = TimeSeriesRecorder(engine, interval=sample_interval)
        return cls(engine, session, runtime, recorder, trace)

    def run(self, until: Optional[float] = None) -> None:
        self.recorder.start()
        self.session.start()
        self.engine.run_until(until if until is not None else self.trace.duration)


@dataclass
class ExperimentResult:
    """Named series plus free-form metadata from one experiment."""

    name: str
    series: Dict[str, TimeSeries] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def get(self, key: str) -> TimeSeries:
        return self.series[key]

    def keys(self) -> List[str]:
        return sorted(self.series)

    def summary_rows(self) -> List[str]:
        """One line per series: name, final value, range."""
        rows = []
        for key in self.keys():
            s = self.series[key]
            if len(s) == 0:
                rows.append(f"{key}: (empty)")
                continue
            rows.append(
                f"{key}: final={s.final():.3f} "
                f"min={s.values.min():.3f} max={s.values.max():.3f} "
                f"samples={len(s)}"
            )
        return rows


def average_series(runs: Sequence[TimeSeries], with_std: bool = False):
    """Pointwise average of equally-sampled series (the paper's
    'average of 10 trace runs').  Series are aligned on the shortest.

    With ``with_std=True`` returns a ``(mean, std)`` pair where the
    second series carries the per-point population standard deviation —
    the replica spread the averaged figures hide.  The default single-
    series return is unchanged."""
    if not runs:
        raise ValueError("no series to average")
    n = min(len(s) for s in runs)
    if n == 0:
        raise ValueError("cannot average empty series")
    out = TimeSeries("average")
    times = runs[0].times[:n]
    stacked = np.stack([s.values[:n] for s in runs])
    means = stacked.mean(axis=0)
    for t, v in zip(times, means):
        out.append(float(t), float(v))
    if not with_std:
        return out
    spread = TimeSeries("std")
    stds = stacked.std(axis=0)
    for t, v in zip(times, stds):
        spread.append(float(t), float(v))
    return out, spread


def ascii_chart(
    series: Mapping[str, TimeSeries],
    width: int = 72,
    height: int = 16,
    t_unit: float = 3600.0,
    t_label: str = "hours",
    y_min: float = 0.0,
    y_max: Optional[float] = None,
) -> str:
    """Render one or more series as an ASCII chart (time on x)."""
    items = [(k, s) for k, s in series.items() if len(s) > 0]
    if not items:
        return "(no data)"
    t_max = max(s.times.max() for _k, s in items)
    v_max = y_max if y_max is not None else max(s.values.max() for _k, s in items)
    if v_max <= y_min:
        v_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*#@%&"
    for mi, (_key, s) in enumerate(items):
        mark = marks[mi % len(marks)]
        for t, v in zip(s.times, s.values):
            x = int((t / t_max) * (width - 1)) if t_max > 0 else 0
            frac = (v - y_min) / (v_max - y_min)
            y = height - 1 - int(np.clip(frac, 0.0, 1.0) * (height - 1))
            grid[y][x] = mark
    lines = []
    for row_i, row in enumerate(grid):
        frac = 1.0 - row_i / (height - 1)
        label = y_min + frac * (v_max - y_min)
        lines.append(f"{label:7.2f} |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    lines.append(
        " " * 9
        + f"0 … {t_max / t_unit:.1f} {t_label}   "
        + "  ".join(f"{marks[i % len(marks)]}={k}" for i, (k, _s) in enumerate(items))
    )
    return "\n".join(lines)
