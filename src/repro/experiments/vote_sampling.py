"""Fig 6 — vote-sampling effectiveness.

Workload (§VI-B): the first three nodes entering the system are
moderators M1, M2, M3, each spreading one moderation.  10 % of the
population (picked at random) will vote **+M1** and a disjoint 10 %
will vote **−M3**, in both cases only once the corresponding moderation
reaches them through ModerationCast.  M2 receives no votes.  Correct
ordering: M1 > M2 > M3.

Parameters: ``B_min = 5``, ``B_max = 100``, ``V_max = 10``, ``K = 3``,
``T = 5 MB``.  The paper plots the fraction of nodes holding the
correct strict ordering over 168 h: a slow start, a sharp rise around
12 h (VoxPopuli relays kick in once the first nodes pass ``B_min``),
then convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.node import NodeConfig
from repro.core.runtime import RuntimeConfig
from repro.core.votes import Vote
from repro.experiments.common import (
    ExperimentResult,
    SimulationStack,
    average_series,
)
from repro.metrics.ordering import correct_order_fraction
from repro.sim.parallel import ReplicaPool
from repro.sim.units import DAY, MB
from repro.traces.generator import TraceGenerator, TraceGeneratorConfig
from repro.traces.model import Trace
from repro.traces.stats import compute_stats


@dataclass
class VoteSamplingConfig:
    """Fig 6 parameters."""

    seed: int = 0
    trace_replica: int = 0
    duration: float = 7 * DAY
    sample_interval: float = 1800.0
    #: fraction voting +M1 and (disjointly) −M3.
    positive_fraction: float = 0.10
    negative_fraction: float = 0.10
    experience_threshold: float = 5 * MB
    node: NodeConfig = field(
        default_factory=lambda: NodeConfig(b_min=5, b_max=100, v_max=10, k=3)
    )
    trace: TraceGeneratorConfig = field(default_factory=TraceGeneratorConfig)
    runtime: Optional[RuntimeConfig] = None

    def __post_init__(self) -> None:
        if self.positive_fraction + self.negative_fraction > 1.0:
            raise ValueError("voter fractions exceed the population")
        if self.duration <= 0:
            raise ValueError("duration must be positive")


class VoteSamplingExperiment:
    """Regenerates one Fig 6 run; :meth:`run_many` averages replicas."""

    def __init__(self, config: Optional[VoteSamplingConfig] = None):
        self.config = config or VoteSamplingConfig()
        #: the most recent run's fully wired stack — kept so callers
        #: (e.g. ``scripts/bench_contribution.py``) can probe the
        #: post-run BarterCast state without re-simulating
        self.last_stack: Optional[SimulationStack] = None

    # ------------------------------------------------------------------
    def _make_trace(self, replica: int) -> Trace:
        cfg = self.config
        trace_cfg = cfg.trace
        if trace_cfg.duration != cfg.duration:
            trace_cfg = TraceGeneratorConfig(
                **{**trace_cfg.__dict__, "duration": cfg.duration}
            )
        return TraceGenerator(trace_cfg, seed=cfg.seed).generate(replica)

    def _runtime_config(self) -> RuntimeConfig:
        cfg = self.config
        if cfg.runtime is not None:
            return cfg.runtime
        return RuntimeConfig(
            node=cfg.node, experience_threshold=cfg.experience_threshold
        )

    def run(self, replica: Optional[int] = None) -> ExperimentResult:
        cfg = self.config
        replica = cfg.trace_replica if replica is None else replica
        trace = self._make_trace(replica)
        stack = SimulationStack.build(
            trace,
            seed=cfg.seed + 1000 * replica,
            runtime_config=self._runtime_config(),
            sample_interval=cfg.sample_interval,
        )
        moderators = self._setup_workload(stack, trace)
        order = moderators  # M1 > M2 > M3

        def probe() -> float:
            arrived = [
                pid for pid in trace.peers if pid in stack.runtime.nodes
            ]
            return correct_order_fraction(
                stack.runtime.nodes, order, include=arrived
            )

        stack.recorder.add_probe("correct_fraction", probe)
        stack.run(until=cfg.duration)
        self.last_stack = stack

        result = ExperimentResult(name=f"fig6-vote-sampling-r{replica}")
        result.series = dict(stack.recorder.series)
        result.metadata = {
            "trace": trace.name,
            "moderators": moderators,
            "votes_cast": sum(
                len(n.vote_list) for n in stack.runtime.nodes.values()
            ),
            "run_summary": stack.runtime.run_summary(),
        }
        return result

    # ------------------------------------------------------------------
    def _setup_workload(self, stack: SimulationStack, trace: Trace) -> List[str]:
        """First three arrivals become moderators; assign voter roles.

        "First three nodes entering the system" is filtered to peers of
        at-least-median availability: the paper's moderators are
        founding members that stay around (§VII's founders/elders
        argument), whereas a synthetic trace's literal first arrival
        can be a rarely-present peer whose metadata would never spread
        for lack of uptime, not by protocol behaviour.
        """
        cfg = self.config
        stats = compute_stats(trace)
        median = float(np.median(list(stats.availability.values())))
        arrivals = [
            pid
            for pid in trace.arrival_order()
            if stats.availability[pid] >= median
        ]
        if len(arrivals) < 4:
            arrivals = trace.arrival_order()
        if len(arrivals) < 4:
            raise ValueError("trace too small for the Fig 6 workload")
        m1, m2, m3 = arrivals[0], arrivals[1], arrivals[2]
        now = 0.0
        for mid, title in ((m1, "good"), (m2, "neutral"), (m3, "spam")):
            node = stack.runtime.ensure_node(mid)
            node.create_moderation(f"torrent-of-{mid}", title, now)
        # Disjoint random voter sets from the remaining population.
        rest = [p for p in trace.peers if p not in (m1, m2, m3)]
        rng = stack.runtime._rng.stream("fig6-voters")
        rng.shuffle(rest)
        n_pos = int(round(cfg.positive_fraction * len(trace.peers)))
        n_neg = int(round(cfg.negative_fraction * len(trace.peers)))
        pos_voters = rest[:n_pos]
        neg_voters = rest[n_pos : n_pos + n_neg]
        for pid in pos_voters:
            stack.runtime.ensure_node(pid).set_vote_intention(m1, Vote.POSITIVE)
        for pid in neg_voters:
            stack.runtime.ensure_node(pid).set_vote_intention(m3, Vote.NEGATIVE)
        return [m1, m2, m3]

    # ------------------------------------------------------------------
    def run_many(
        self, n_runs: int = 10, jobs: Optional[int] = None
    ) -> ExperimentResult:
        """The paper's 'average over 10 independent runs'.

        ``jobs`` farms the replicas over a :class:`ReplicaPool`
        (``None`` = one worker per replica up to the CPU count,
        ``1`` = sequential in-process).  Replicas are independent —
        each derives its own seed — so any ``jobs`` value produces
        bit-identical series.
        """
        pool = ReplicaPool(jobs=jobs)
        runs = pool.run_replicas(self, range(n_runs))
        result = ExperimentResult(name=f"fig6-vote-sampling-avg{n_runs}")
        for i, r in enumerate(runs):
            result.series[f"run{i}"] = r.get("correct_fraction")
        mean, std = average_series(
            [r.get("correct_fraction") for r in runs], with_std=True
        )
        result.series["average"] = mean
        result.series["std"] = std
        result.metadata = {"n_runs": n_runs, "jobs": pool.resolve_jobs(n_runs)}
        return result
