"""Experiment drivers — one per results figure of the paper.

* :mod:`repro.experiments.experience_formation` — **Fig 5**: CEV time
  series for several experience thresholds ``T``;
* :mod:`repro.experiments.vote_sampling` — **Fig 6**: fraction of nodes
  holding the correct moderator ordering M1 > M2 > M3 over time;
* :mod:`repro.experiments.spam_attack` — **Fig 8**: pollution of newly
  arrived nodes under flash-crowd attacks of 1× / 2× core size;
* :mod:`repro.experiments.ablations` — design-choice ablations (§VII
  adaptive T, exchange policies, PSS variants, parameter sweeps).

Run from the command line::

    python -m repro.experiments fig5
    python -m repro.experiments fig6 --quick
    python -m repro.experiments fig8
"""

from repro.experiments.common import ExperimentResult, SimulationStack, ascii_chart
from repro.experiments.experience_formation import (
    ExperienceFormationConfig,
    ExperienceFormationExperiment,
)
from repro.experiments.spam_attack import SpamAttackConfig, SpamAttackExperiment
from repro.experiments.vote_sampling import (
    VoteSamplingConfig,
    VoteSamplingExperiment,
)

__all__ = [
    "ExperimentResult",
    "SimulationStack",
    "ascii_chart",
    "ExperienceFormationConfig",
    "ExperienceFormationExperiment",
    "VoteSamplingConfig",
    "VoteSamplingExperiment",
    "SpamAttackConfig",
    "SpamAttackExperiment",
]
