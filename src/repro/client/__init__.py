"""Media-client layer.

The paper's motivation (§I): users need to *search and browse* freely
available content and see high-quality metadata first.  This package is
the client-side functionality a Tribler-like application builds on top
of the protocol node:

* :mod:`repro.client.search` — an inverted-index keyword search over
  the local moderation database;
* :mod:`repro.client.client` — :class:`MediaClient`, the user-facing
  facade: search (results ordered by moderator rank), browse the top-K
  moderator screen (§V-A's incentive display), vote, publish.
"""

from repro.client.client import MediaClient, SearchResult
from repro.client.search import InvertedIndex

__all__ = ["MediaClient", "SearchResult", "InvertedIndex"]
