"""The user-facing media client facade.

Wraps one :class:`~repro.core.node.VoteSamplingNode` with the
functionality the paper's introduction motivates: keyword search whose
results are ordered by moderator reputation, the top-K moderator screen
(§V-A suggests it as a psychological incentive for moderators), and
one-click vote/publish actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.client.search import InvertedIndex
from repro.core.moderation import Moderation
from repro.core.node import VoteSamplingNode
from repro.core.ranking import top_k
from repro.core.votes import Vote


@dataclass(frozen=True)
class SearchResult:
    """One search hit, scored by text match and moderator standing."""

    moderation: Moderation
    text_score: int
    moderator_score: float
    combined_score: float

    @property
    def torrent_id(self) -> str:
        return self.moderation.torrent_id

    @property
    def moderator_id(self) -> str:
        return self.moderation.moderator_id


class MediaClient:
    """What a Tribler-like UI talks to.

    The client never touches the network directly — it reads/writes the
    node's local state, and the protocol runtime keeps that state in
    sync with the community.
    """

    def __init__(self, node: VoteSamplingNode):
        self.node = node
        self._index = InvertedIndex(node.store)

    # ------------------------------------------------------------------
    # Search & browse
    # ------------------------------------------------------------------
    def search(self, query: str, limit: int = 20) -> List[SearchResult]:
        """Keyword search over known metadata, best first.

        Text relevance is the primary key; among equally relevant hits,
        metadata from higher-ranked moderators sorts first — this is
        how the ranking layer actually suppresses spam in the UI.
        """
        ranking: Dict[str, float] = dict(self.node.current_ranking())
        results = []
        for mod, text_score in self._index.query(query):
            mscore = ranking.get(mod.moderator_id, 0.0)
            combined = float(text_score) + self._squash(mscore)
            results.append(
                SearchResult(
                    moderation=mod,
                    text_score=text_score,
                    moderator_score=mscore,
                    combined_score=combined,
                )
            )
        results.sort(
            key=lambda r: (-r.combined_score, r.moderator_id, r.torrent_id)
        )
        return results[:limit]

    @staticmethod
    def _squash(score: float) -> float:
        """Map an unbounded moderator score into (−1, 1) so reputation
        re-orders equally relevant hits but never outweighs an extra
        matched search term."""
        if score == float("inf"):
            return 1.0
        if score == float("-inf"):
            return -1.0
        return score / (1.0 + abs(score))

    def top_moderators(self, k: Optional[int] = None) -> List[str]:
        """The §V-A incentive screen: the community's top-K moderators
        as estimated from this node's sample."""
        k = k if k is not None else self.node.config.k
        return top_k(self.node.current_ranking(), k)

    def top_moderators_detailed(
        self, k: Optional[int] = None
    ) -> List[Dict[str, object]]:
        """The incentive screen with vote statistics: §V-A suggests
        showing each top moderator "along with their estimated
        percentage of the popular vote"."""
        k = k if k is not None else self.node.config.k
        rows: List[Dict[str, object]] = []
        for moderator_id, score in self.node.current_ranking()[:k]:
            pos, neg = self.node.ballot_box.counts(moderator_id)
            total = pos + neg
            rows.append(
                {
                    "moderator": moderator_id,
                    "score": score,
                    "positive_votes": pos,
                    "negative_votes": neg,
                    "popular_vote_pct": (100.0 * pos / total) if total else None,
                    "moderations_known": len(
                        self.node.store.by_moderator(moderator_id)
                    ),
                }
            )
        return rows

    def browse_moderator(self, moderator_id: str) -> List[Moderation]:
        """All locally-known metadata by one moderator."""
        return self.node.store.by_moderator(moderator_id)

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def approve(self, moderator_id: str, now: float) -> None:
        """Thumbs-up: start forwarding this moderator's metadata."""
        self.node.cast_vote(moderator_id, Vote.POSITIVE, now)

    def disapprove(self, moderator_id: str, now: float) -> None:
        """Thumbs-down: purge and block this moderator's metadata."""
        self.node.cast_vote(moderator_id, Vote.NEGATIVE, now)

    def publish(
        self, torrent_id: str, title: str, now: float, description: str = ""
    ) -> Moderation:
        """Author a moderation as the local user."""
        return self.node.create_moderation(
            torrent_id, title, now, description=description
        )

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """UI status bar: sample health and database size."""
        return {
            "peer_id": self.node.peer_id,
            "moderations": len(self.node.store),
            "ballot_voters": self.node.ballot_box.num_unique_users(),
            "bootstrapping": self.node.needs_bootstrap(),
            "votes_cast": len(self.node.vote_list),
            "indexed_terms": self._index.term_count(),
        }
