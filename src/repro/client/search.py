"""Keyword search over the local moderation database.

A small inverted index: term → set of moderation keys.  Scoring is
plain term-match count (the metadata corpus is tiny per node; rank
weighting happens in the client, where moderator reputation lives).
The index rebuilds itself lazily when the underlying store reports a
new mutation count, so protocol code never pays indexing costs.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

from repro.core.moderation import Moderation, ModerationStore

_TOKEN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lowercase alphanumeric tokens (order preserved, duplicates kept)."""
    return _TOKEN.findall(text.lower())


class InvertedIndex:
    """Lazy inverted index over a :class:`ModerationStore`."""

    def __init__(self, store: ModerationStore):
        self._store = store
        self._index: Dict[str, Set[Tuple[str, str]]] = {}
        self._built_at = -1

    # ------------------------------------------------------------------
    def _ensure_fresh(self) -> None:
        if self._built_at == self._store.mutation_count:
            return
        self._index.clear()
        for mod in self._store.all_items():
            for term in set(self._searchable_terms(mod)):
                self._index.setdefault(term, set()).add(mod.key())
        self._built_at = self._store.mutation_count

    @staticmethod
    def _searchable_terms(mod: Moderation) -> List[str]:
        return tokenize(mod.title) + tokenize(mod.description) + tokenize(
            mod.torrent_id
        )

    # ------------------------------------------------------------------
    def query(self, text: str) -> List[Tuple[Moderation, int]]:
        """Moderations matching any query term, with match counts,
        best-match first (ties broken by recency then key)."""
        self._ensure_fresh()
        terms = set(tokenize(text))
        if not terms:
            return []
        hits: Dict[Tuple[str, str], int] = {}
        for term in terms:
            for key in self._index.get(term, ()):
                hits[key] = hits.get(key, 0) + 1
        results = []
        for key, count in hits.items():
            mod = self._store.get(*key)
            if mod is not None:
                results.append((mod, count))
        results.sort(key=lambda mc: (-mc[1], -(mc[0].created_at), mc[0].key()))
        return results

    def term_count(self) -> int:
        self._ensure_fresh()
        return len(self._index)
