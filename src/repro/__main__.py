"""Top-level command dispatcher.

::

    python -m repro experiments fig6 --quick     → repro.experiments CLI
    python -m repro traces generate --out d/     → repro.traces CLI
    python -m repro serve --shards 2 --dir d/    → long-lived service mode
    python -m repro version
"""

from __future__ import annotations

import sys


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0
    command, rest = argv[0], argv[1:]
    if command == "experiments":
        from repro.experiments.__main__ import main as experiments_main

        return experiments_main(rest)
    if command == "traces":
        from repro.traces.__main__ import main as traces_main

        return traces_main(rest)
    if command == "serve":
        from repro.sim.serve_cli import main as serve_main

        return serve_main(rest)
    if command == "version":
        from repro import __version__

        print(__version__)
        return 0
    print(f"unknown command {command!r}; see python -m repro --help", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
