"""BarterCast transfer records.

A record is one node's statement about its *own* transfer totals with
one partner.  Receivers enforce the BarterCast acceptance rule: a
record is only accepted if the reporter is one of its two endpoints —
nodes may lie about their own edges (collusion) but cannot inject
arbitrary third-party edges into other nodes' subjective graphs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransferRecord:
    """Reporter's cumulative transfer totals with one partner.

    Attributes
    ----------
    reporter:
        The node making the statement.
    partner:
        The other endpoint.
    up:
        Bytes the reporter uploaded to the partner (edge
        ``reporter → partner``).
    down:
        Bytes the reporter downloaded from the partner (edge
        ``partner → reporter``).
    timestamp:
        When the reporter last updated these totals.
    """

    reporter: str
    partner: str
    up: float
    down: float
    timestamp: float

    def __post_init__(self) -> None:
        if self.reporter == self.partner:
            raise ValueError("a record must involve two distinct peers")
        if self.up < 0 or self.down < 0:
            raise ValueError("transfer totals cannot be negative")

    def involves(self, peer_id: str) -> bool:
        return peer_id in (self.reporter, self.partner)

    def key(self) -> tuple:
        """Identity of the statement: (reporter, partner)."""
        return (self.reporter, self.partner)
