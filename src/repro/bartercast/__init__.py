"""BarterCast — distributed sharing-ratio / contribution estimation.

BarterCast [Meulpolder et al., PDS-2008-002], as deployed in Tribler,
lets any node *i* estimate the contribution of any node *j* without a
central authority:

1. nodes record their **own** BitTorrent transfer statistics;
2. nodes gossip those direct records to peers they meet (via the PSS);
3. each node assembles a *subjective graph* whose directed edges carry
   "MBs transferred from u to v";
4. the contribution of *j* as seen by *i*, ``f_{j→i}``, is the maximum
   flow from *j* to *i* in *i*'s subjective graph (deployed BarterCast
   bounds augmenting paths to 2 hops).

The maxflow aggregation is what makes faking experience expensive: a
colluder can invent edges among its accomplices, but every unit of
flow that reaches *i* must cross an edge *into i's own neighbourhood*,
which honest nodes only report when real upload happened.

Modules: :mod:`records` (transfer records), :mod:`graph` (subjective
graph), :mod:`maxflow` (Edmonds-Karp + the exact 2-hop closed form),
:mod:`protocol` (the gossip service).
"""

from repro.bartercast.graph import SubjectiveGraph
from repro.bartercast.maxflow import edmonds_karp, two_hop_flow
from repro.bartercast.protocol import BarterCastConfig, BarterCastService
from repro.bartercast.records import TransferRecord

__all__ = [
    "SubjectiveGraph",
    "edmonds_karp",
    "two_hop_flow",
    "BarterCastConfig",
    "BarterCastService",
    "TransferRecord",
]
