"""Per-node subjective transfer graph.

Each node folds accepted :class:`~repro.bartercast.records.TransferRecord`
statements into a directed weighted graph ("MBs transferred from u to
v").  Conflicting statements about the same ordered pair are resolved
by keeping the **maximum** reported value: totals are cumulative and
monotone, so the largest figure is the freshest honest one, and an
understating stale record can never erase credit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import numpy as np

from repro.bartercast.records import TransferRecord


class SubjectiveGraph:
    """Directed weighted graph of believed transfers.

    ``weight(u, v)`` is the bytes the owner believes ``u`` uploaded to
    ``v``.  The owner's own direct observations and gossip-received
    records share the same storage; direct observations always win
    because they are at least as fresh (cumulative maxima).

    ``max_nodes`` bounds memory as deployed BarterCast does: when the
    node set would exceed it, the *smallest-degree-weight* node not on
    a path touching the owner's neighbourhood is evicted (pruning weak
    hearsay first; the owner itself is never evicted).
    """

    def __init__(self, owner: str, max_nodes: int = 0):
        if max_nodes < 0:
            raise ValueError("max_nodes must be >= 0 (0 = unbounded)")
        self.owner = owner
        self.max_nodes = max_nodes
        self._out: Dict[str, Dict[str, float]] = {}
        self.records_folded = 0
        self.evicted = 0

    # ------------------------------------------------------------------
    def add_record(self, record: TransferRecord) -> bool:
        """Fold one record.  Returns ``False`` (and ignores it) if the
        record violates the endpoint acceptance rule for gossip — the
        caller is responsible for passing only records whose *sender*
        matches the reporter; this method enforces internal sanity."""
        self._raise_edge(record.reporter, record.partner, record.up)
        self._raise_edge(record.partner, record.reporter, record.down)
        self.records_folded += 1
        return True

    def observe_direct(self, uploader: str, downloader: str, total_bytes: float) -> None:
        """Fold the owner's own cumulative observation of an edge."""
        self._raise_edge(uploader, downloader, total_bytes)

    def _raise_edge(self, u: str, v: str, w: float) -> None:
        if w <= 0 or u == v:
            return
        row = self._out.setdefault(u, {})
        if w > row.get(v, 0.0):
            row[v] = w
        if self.max_nodes:
            self._enforce_node_bound()

    def _enforce_node_bound(self) -> None:
        nodes = self.nodes()
        while len(nodes) > self.max_nodes:
            # Total touched weight per node; owner and its direct
            # neighbours carry the flows that matter — evict the
            # weakest stranger.
            protected = {self.owner}
            protected.update(self._out.get(self.owner, ()))
            for u, row in self._out.items():
                if self.owner in row:
                    protected.add(u)
            weight_of: Dict[str, float] = {n: 0.0 for n in nodes}
            for u, row in self._out.items():
                for v, w in row.items():
                    weight_of[u] = weight_of.get(u, 0.0) + w
                    weight_of[v] = weight_of.get(v, 0.0) + w
            candidates = [n for n in nodes if n not in protected]
            if not candidates:
                break
            victim = min(candidates, key=lambda n: (weight_of.get(n, 0.0), n))
            self._remove_node(victim)
            nodes = self.nodes()
            self.evicted += 1

    def _remove_node(self, node: str) -> None:
        self._out.pop(node, None)
        for row in self._out.values():
            row.pop(node, None)

    # ------------------------------------------------------------------
    def weight(self, u: str, v: str) -> float:
        return self._out.get(u, {}).get(v, 0.0)

    def successors(self, u: str) -> Dict[str, float]:
        """Copy of ``{v: weight}`` for edges out of ``u``."""
        return dict(self._out.get(u, {}))

    def nodes(self) -> Set[str]:
        out: Set[str] = set(self._out.keys())
        for row in self._out.values():
            out.update(row.keys())
        return out

    def edges(self) -> List[Tuple[str, str, float]]:
        return [(u, v, w) for u, row in self._out.items() for v, w in row.items()]

    def num_edges(self) -> int:
        return sum(len(row) for row in self._out.values())

    # ------------------------------------------------------------------
    def to_matrix(self, order: Iterable[str]) -> np.ndarray:
        """Dense weight matrix in the given node order (metrics use —
        vectorised CEV computation needs all flows at once)."""
        ids = list(order)
        index = {pid: i for i, pid in enumerate(ids)}
        mat = np.zeros((len(ids), len(ids)))
        for u, row in self._out.items():
            ui = index.get(u)
            if ui is None:
                continue
            for v, w in row.items():
                vi = index.get(v)
                if vi is not None:
                    mat[ui, vi] = w
        return mat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SubjectiveGraph(owner={self.owner!r}, edges={self.num_edges()})"
