"""Per-node subjective transfer graph.

Each node folds accepted :class:`~repro.bartercast.records.TransferRecord`
statements into a directed weighted graph ("MBs transferred from u to
v").  Conflicting statements about the same ordered pair are resolved
by keeping the **maximum** reported value: totals are cumulative and
monotone, so the largest figure is the freshest honest one, and an
understating stale record can never erase credit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import numpy as np

from repro.bartercast.records import TransferRecord

#: Initial dense-matrix capacity; grown by doubling as nodes appear.
_MIN_MATRIX_CAPACITY = 16


class SubjectiveGraph:
    """Directed weighted graph of believed transfers.

    ``weight(u, v)`` is the bytes the owner believes ``u`` uploaded to
    ``v``.  The owner's own direct observations and gossip-received
    records share the same storage; direct observations always win
    because they are at least as fresh (cumulative maxima).

    ``max_nodes`` bounds memory as deployed BarterCast does: when the
    node set would exceed it, the *smallest-degree-weight* node not on
    a path touching the owner's neighbourhood is evicted (pruning weak
    hearsay first; the owner itself is never evicted).

    The graph maintains **per-node edge-version counters** so callers
    can cache derived quantities and invalidate precisely:
    ``out_version(u)`` advances whenever an edge *out of* ``u`` changes
    (raised or removed) and ``in_version(v)`` whenever an edge *into*
    ``v`` changes.  The 2-hop maxflow ``f(s→t)`` depends only on ``s``'s
    out-edges and ``t``'s in-edges, so the pair
    ``(out_version(s), in_version(t))`` is an exact validity key for a
    cached flow.  ``version`` is the total mutation count (any edge
    change anywhere).  Counters are monotone and survive node eviction,
    so a re-added node can never resurrect a stale cache entry.

    Alongside the dict-of-dict adjacency the graph maintains an
    **incrementally updated dense weight matrix**: every node gets a
    row/column slot on first appearance (capacity doubles on demand),
    edge raises write the new weight in place, and eviction compacts by
    swapping the last slot into the vacated one.  :meth:`to_matrix` is
    therefore a pure numpy gather instead of an O(E) Python rebuild —
    the batch contribution oracle and the CEV metric read it on every
    sample.
    """

    def __init__(self, owner: str, max_nodes: int = 0):
        if max_nodes < 0:
            raise ValueError("max_nodes must be >= 0 (0 = unbounded)")
        self.owner = owner
        self.max_nodes = max_nodes
        self._out: Dict[str, Dict[str, float]] = {}
        self.records_folded = 0
        self.evicted = 0
        self._out_version: Dict[str, int] = {}
        self._in_version: Dict[str, int] = {}
        self._version = 0
        #: dense mirror of the adjacency: ``_W[_index[u], _index[v]]``
        #: is ``weight(u, v)`` for every node that ever got an edge.
        self._index: Dict[str, int] = {}
        self._ids: List[str] = []
        self._W = np.zeros((0, 0))

    # ------------------------------------------------------------------
    def add_record(self, record: TransferRecord) -> bool:
        """Fold one record.  Returns ``False`` (and ignores it) if the
        record violates the endpoint acceptance rule for gossip — the
        caller is responsible for passing only records whose *sender*
        matches the reporter; this method enforces internal sanity."""
        self._raise_edge(record.reporter, record.partner, record.up)
        self._raise_edge(record.partner, record.reporter, record.down)
        self.records_folded += 1
        return True

    def observe_direct(self, uploader: str, downloader: str, total_bytes: float) -> None:
        """Fold the owner's own cumulative observation of an edge."""
        self._raise_edge(uploader, downloader, total_bytes)

    def _raise_edge(self, u: str, v: str, w: float) -> None:
        if w <= 0 or u == v:
            return
        row = self._out.setdefault(u, {})
        if w > row.get(v, 0.0):
            row[v] = w
            ui = self._slot(u)
            vi = self._slot(v)
            self._W[ui, vi] = w
            self._bump(u, v)
        if self.max_nodes:
            self._enforce_node_bound()

    def _slot(self, node: str) -> int:
        """Dense-matrix row/column index for ``node``, allocating (and
        growing the matrix) on first appearance."""
        i = self._index.get(node)
        if i is not None:
            return i
        n = len(self._ids)
        if n == self._W.shape[0]:
            cap = max(_MIN_MATRIX_CAPACITY, 2 * self._W.shape[0])
            grown = np.zeros((cap, cap))
            grown[:n, :n] = self._W[:n, :n]
            self._W = grown
        self._index[node] = n
        self._ids.append(node)
        return n

    def _drop_slot(self, node: str) -> None:
        """Free ``node``'s dense slot, compacting by moving the last
        slot into the hole so the active block stays contiguous."""
        i = self._index.pop(node, None)
        if i is None:
            return
        last = len(self._ids) - 1
        if i != last:
            last_id = self._ids[last]
            n = last + 1
            # Row first, then column: the column copy re-reads the one
            # overlapping cell (the new diagonal) from the copied row,
            # which holds the old diagonal of ``last`` — always 0.
            self._W[i, :n] = self._W[last, :n]
            self._W[:n, i] = self._W[:n, last]
            self._index[last_id] = i
            self._ids[i] = last_id
        self._W[last, :] = 0.0
        self._W[:, last] = 0.0
        self._ids.pop()

    def _bump(self, u: str, v: str) -> None:
        """Record a change to edge ``(u, v)`` in the version counters."""
        self._out_version[u] = self._out_version.get(u, 0) + 1
        self._in_version[v] = self._in_version.get(v, 0) + 1
        self._version += 1

    def _enforce_node_bound(self) -> None:
        nodes = self.nodes()
        while len(nodes) > self.max_nodes:
            # Total touched weight per node; owner and its direct
            # neighbours carry the flows that matter — evict the
            # weakest stranger.
            protected = {self.owner}
            protected.update(self._out.get(self.owner, ()))
            for u, row in self._out.items():
                if self.owner in row:
                    protected.add(u)
            weight_of: Dict[str, float] = {n: 0.0 for n in nodes}
            for u, row in self._out.items():
                for v, w in row.items():
                    weight_of[u] = weight_of.get(u, 0.0) + w
                    weight_of[v] = weight_of.get(v, 0.0) + w
            candidates = [n for n in nodes if n not in protected]
            if not candidates:
                break
            victim = min(candidates, key=lambda n: (weight_of.get(n, 0.0), n))
            self._remove_node(victim)
            nodes = self.nodes()
            self.evicted += 1

    def _remove_node(self, node: str) -> None:
        removed_out = self._out.pop(node, None)
        if removed_out:
            for v in removed_out:
                self._bump(node, v)
        for u, row in self._out.items():
            if row.pop(node, None) is not None:
                self._bump(u, node)
        self._drop_slot(node)

    # ------------------------------------------------------------------
    # Version counters (cache-invalidation keys)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Total edge-mutation count — any change anywhere bumps it."""
        return self._version

    def out_version(self, u: str) -> int:
        """Version of ``u``'s out-edge set (0 = never had one)."""
        return self._out_version.get(u, 0)

    def in_version(self, v: str) -> int:
        """Version of ``v``'s in-edge set (0 = never had one)."""
        return self._in_version.get(v, 0)

    # ------------------------------------------------------------------
    def weight(self, u: str, v: str) -> float:
        return self._out.get(u, {}).get(v, 0.0)

    def successors(self, u: str) -> Dict[str, float]:
        """Copy of ``{v: weight}`` for edges out of ``u``."""
        return dict(self._out.get(u, {}))

    def nodes(self) -> Set[str]:
        out: Set[str] = set(self._out.keys())
        for row in self._out.values():
            out.update(row.keys())
        return out

    def edges(self) -> List[Tuple[str, str, float]]:
        return [(u, v, w) for u, row in self._out.items() for v, w in row.items()]

    def num_edges(self) -> int:
        return sum(len(row) for row in self._out.values())

    # ------------------------------------------------------------------
    def to_matrix(self, order: Iterable[str]) -> np.ndarray:
        """Dense weight matrix in the given node order (metrics use —
        vectorised CEV computation needs all flows at once).

        Served as a numpy gather from the incrementally maintained
        internal matrix: nodes unknown to the graph get zero rows and
        columns, known nodes are permuted into the requested order.
        Values are identical to a fresh edge-by-edge rebuild (placement
        only, no arithmetic)."""
        ids = list(order)
        n = len(ids)
        mat = np.zeros((n, n))
        if n == 0 or not self._ids:
            return mat
        index = self._index
        sel = np.fromiter(
            (index.get(p, -1) for p in ids), dtype=np.intp, count=n
        )
        known = np.flatnonzero(sel >= 0)
        if known.size:
            ksel = sel[known]
            mat[np.ix_(known, known)] = self._W[np.ix_(ksel, ksel)]
        return mat

    def dense(self) -> Tuple[List[str], np.ndarray]:
        """The internal node order and the active dense block.

        The array is a **read-only view** of live storage — callers
        needing to mutate must copy.  Mainly for diagnostics and tests;
        metrics go through :meth:`to_matrix` for a stable order."""
        n = len(self._ids)
        view = self._W[:n, :n]
        view.setflags(write=False)
        return list(self._ids), view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SubjectiveGraph(owner={self.owner!r}, edges={self.num_edges()})"
