"""Per-node subjective transfer graph.

Each node folds accepted :class:`~repro.bartercast.records.TransferRecord`
statements into a directed weighted graph ("MBs transferred from u to
v").  Conflicting statements about the same ordered pair are resolved
by keeping the **maximum** reported value: totals are cumulative and
monotone, so the largest figure is the freshest honest one, and an
understating stale record can never erase credit.

Two interchangeable **matrix backends** mirror the adjacency for the
vectorised flow paths:

* ``dense`` — an incrementally maintained ``n × n`` numpy weight
  matrix (O(n²) memory; the fastest gather at paper scale);
* ``sparse`` — CSR-style per-row index/value arrays over stable column
  slots (O(E) memory; the only option for very large populations).

``backend="auto"`` (the default) starts dense and converts to sparse
once the node count crosses ``sparse_threshold``, so paper-scale runs
keep the dense fast path while synthetic million-peer graphs never
allocate the quadratic mirror.  Both backends store the *same floats
in the same logical cells*, so every matrix product — ``to_matrix``,
``matrix_rows``, ``matrix_column`` and the 2-hop flows built on them —
is bit-identical across backends.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.bartercast.records import TransferRecord

#: Initial dense-matrix capacity; grown by doubling as nodes appear.
_MIN_MATRIX_CAPACITY = 16

#: ``backend="auto"`` converts the dense mirror to sparse when the
#: graph's node count first exceeds this.  Chosen so every workload in
#: the paper (≤ a few hundred peers) stays on the dense fast path while
#: a 10k+-node graph never allocates the O(n²) block.
DEFAULT_SPARSE_THRESHOLD = 2048

_BACKENDS = ("dense", "sparse", "auto")


class _DenseMirror:
    """Dense weight-matrix mirror: ``_W[_index[u], _index[v]]`` is
    ``weight(u, v)``; slots are allocated on first appearance (capacity
    doubles on demand) and compacted by swapping the last slot into the
    hole on eviction."""

    kind = "dense"

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self._ids: List[str] = []
        self._W = np.zeros((0, 0))

    def node_count(self) -> int:
        return len(self._ids)

    def nbytes(self) -> int:
        return int(self._W.nbytes)

    def set(self, u: str, v: str, w: float) -> None:
        ui = self._slot(u)
        vi = self._slot(v)
        self._W[ui, vi] = w

    def _slot(self, node: str) -> int:
        """Row/column index for ``node``, allocating (and growing the
        matrix) on first appearance."""
        i = self._index.get(node)
        if i is not None:
            return i
        n = len(self._ids)
        if n == self._W.shape[0]:
            cap = max(_MIN_MATRIX_CAPACITY, 2 * self._W.shape[0])
            grown = np.zeros((cap, cap))
            grown[:n, :n] = self._W[:n, :n]
            self._W = grown
        self._index[node] = n
        self._ids.append(node)
        return n

    def drop(self, node: str) -> None:
        """Free ``node``'s slot, compacting by moving the last slot
        into the hole so the active block stays contiguous."""
        i = self._index.pop(node, None)
        if i is None:
            return
        last = len(self._ids) - 1
        if i != last:
            last_id = self._ids[last]
            n = last + 1
            # Row first, then column: the column copy re-reads the one
            # overlapping cell (the new diagonal) from the copied row,
            # which holds the old diagonal of ``last`` — always 0.
            self._W[i, :n] = self._W[last, :n]
            self._W[:n, i] = self._W[:n, last]
            self._index[last_id] = i
            self._ids[i] = last_id
        self._W[last, :] = 0.0
        self._W[:, last] = 0.0
        self._ids.pop()

    def _selection(self, ids: Sequence[str]) -> np.ndarray:
        return np.fromiter(
            (self._index.get(p, -1) for p in ids), dtype=np.intp, count=len(ids)
        )

    def to_matrix(self, order: Sequence[str]) -> np.ndarray:
        ids = list(order)
        n = len(ids)
        mat = np.zeros((n, n))
        if n == 0 or not self._ids:
            return mat
        sel = self._selection(ids)
        known = np.flatnonzero(sel >= 0)
        if known.size:
            ksel = sel[known]
            mat[np.ix_(known, known)] = self._W[np.ix_(ksel, ksel)]
        return mat

    def matrix_rows(self, row_ids: Sequence[str], order: Sequence[str]) -> np.ndarray:
        rows = list(row_ids)
        ids = list(order)
        block = np.zeros((len(rows), len(ids)))
        if not rows or not ids or not self._ids:
            return block
        rsel = self._selection(rows)
        csel = self._selection(ids)
        rknown = np.flatnonzero(rsel >= 0)
        cknown = np.flatnonzero(csel >= 0)
        if rknown.size and cknown.size:
            block[np.ix_(rknown, cknown)] = self._W[
                np.ix_(rsel[rknown], csel[cknown])
            ]
        return block

    def matrix_column(self, order: Sequence[str], sink: str) -> np.ndarray:
        ids = list(order)
        col = np.zeros(len(ids))
        t = self._index.get(sink)
        if t is None or not ids:
            return col
        sel = self._selection(ids)
        known = np.flatnonzero(sel >= 0)
        if known.size:
            col[known] = self._W[sel[known], t]
        return col

    def row_nonzeros(
        self, row_ids: Sequence[str], order: Sequence[str]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR triple ``(indptr, indices, data)`` of the nonzero cells
        of ``row_ids`` with columns translated to positions in
        ``order``.  The dense block has no stored-nonzero structure, so
        this extracts it (O(n) per row) — API parity with the sparse
        mirror; the flow kernel only picks the CSR path under the
        sparse backend."""
        block = self.matrix_rows(row_ids, order)
        indptr = np.zeros(len(block) + 1, dtype=np.int64)
        col_parts: List[np.ndarray] = []
        val_parts: List[np.ndarray] = []
        for pos in range(len(block)):
            cols = np.flatnonzero(block[pos])
            col_parts.append(cols.astype(np.int64, copy=False))
            val_parts.append(block[pos, cols])
            indptr[pos + 1] = indptr[pos] + cols.size
        indices = (
            np.concatenate(col_parts) if col_parts else np.zeros(0, dtype=np.int64)
        )
        data = np.concatenate(val_parts) if val_parts else np.zeros(0, dtype=float)
        return indptr, indices, data

    def column_nonzeros(
        self, order: Sequence[str], sink: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse view of the sink's in-column: ``(positions, values)``
        with positions ascending in ``order`` space."""
        col = self.matrix_column(order, sink)
        pos = np.flatnonzero(col)
        return pos, col[pos]

    def dense(self) -> Tuple[List[str], np.ndarray]:
        n = len(self._ids)
        view = self._W[:n, :n]
        view.setflags(write=False)
        return list(self._ids), view

    def export_payload(self, order: Sequence[str]) -> Dict[str, np.ndarray]:
        """Snapshot of the mirror in ``order`` space for shared-memory
        publication: one dense float64 weight block, the same floats
        :meth:`to_matrix` would produce (placement only)."""
        return {"W": self.to_matrix(order)}


class _SparseMirror:
    """CSR-style sparse mirror: per-row ``{column-slot: weight}`` dicts
    with lazily materialised ``(cols, vals)`` numpy arrays per row.

    Column slots are **stable** — freed slots go on a free list instead
    of being renumbered — so cached row arrays survive unrelated
    evictions; an in-slot index (``column slot → referencing row
    slots``) makes dropping a node O(degree) instead of a full scan.
    Memory is O(E), never O(n²)."""

    kind = "sparse"

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self._rows: Dict[int, Dict[int, float]] = {}
        self._in: Dict[int, Set[int]] = {}
        self._row_arrays: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._free: List[int] = []
        self._high_slot = 0

    def node_count(self) -> int:
        return len(self._index)

    def nnz(self) -> int:
        return sum(len(r) for r in self._rows.values())

    def nbytes(self) -> int:
        """Rough payload size: 8-byte slot key + 8-byte float per
        stored edge, twice (row + in-index) — dict overhead excluded,
        which is what makes the dense/sparse comparison conservative."""
        return 32 * self.nnz()

    def _slot(self, node: str) -> int:
        i = self._index.get(node)
        if i is not None:
            return i
        i = self._free.pop() if self._free else self._high_slot
        if i == self._high_slot:
            self._high_slot += 1
        self._index[node] = i
        return i

    def set(self, u: str, v: str, w: float) -> None:
        ui = self._slot(u)
        vi = self._slot(v)
        self._rows.setdefault(ui, {})[vi] = w
        self._in.setdefault(vi, set()).add(ui)
        self._row_arrays.pop(ui, None)

    def drop(self, node: str) -> None:
        i = self._index.pop(node, None)
        if i is None:
            return
        row = self._rows.pop(i, None)
        if row:
            for vi in row:
                refs = self._in.get(vi)
                if refs is not None:
                    refs.discard(i)
                    if not refs:
                        del self._in[vi]
        self._row_arrays.pop(i, None)
        for ri in self._in.pop(i, ()):
            other = self._rows.get(ri)
            if other is not None:
                other.pop(i, None)
            self._row_arrays.pop(ri, None)
        self._free.append(i)

    def _arrays(self, slot: int) -> Tuple[np.ndarray, np.ndarray]:
        cached = self._row_arrays.get(slot)
        if cached is not None:
            return cached
        row = self._rows.get(slot, {})
        k = len(row)
        cols = np.fromiter(row.keys(), dtype=np.intp, count=k)
        vals = np.fromiter(row.values(), dtype=float, count=k)
        self._row_arrays[slot] = (cols, vals)
        return cols, vals

    def _colmap(self, ids: Sequence[str]) -> np.ndarray:
        """slot → position-in-``ids`` translation (−1 = not requested)."""
        colmap = np.full(max(1, self._high_slot), -1, dtype=np.intp)
        for pos, pid in enumerate(ids):
            slot = self._index.get(pid)
            if slot is not None:
                colmap[slot] = pos
        return colmap

    def _scatter_rows(
        self, out: np.ndarray, row_ids: Sequence[str], colmap: np.ndarray
    ) -> None:
        for pos, pid in enumerate(row_ids):
            slot = self._index.get(pid)
            if slot is None:
                continue
            cols, vals = self._arrays(slot)
            if not cols.size:
                continue
            cpos = colmap[cols]
            keep = cpos >= 0
            out[pos, cpos[keep]] = vals[keep]

    def to_matrix(self, order: Sequence[str]) -> np.ndarray:
        ids = list(order)
        mat = np.zeros((len(ids), len(ids)))
        if ids and self._index:
            self._scatter_rows(mat, ids, self._colmap(ids))
        return mat

    def matrix_rows(self, row_ids: Sequence[str], order: Sequence[str]) -> np.ndarray:
        rows = list(row_ids)
        ids = list(order)
        block = np.zeros((len(rows), len(ids)))
        if rows and ids and self._index:
            self._scatter_rows(block, rows, self._colmap(ids))
        return block

    def matrix_column(self, order: Sequence[str], sink: str) -> np.ndarray:
        ids = list(order)
        col = np.zeros(len(ids))
        t = self._index.get(sink)
        if t is None or not ids:
            return col
        colmap = self._colmap(ids)
        for ri in self._in.get(t, ()):
            pos = colmap[ri]
            if pos >= 0:
                col[pos] = self._rows[ri][t]
        return col

    def row_nonzeros(
        self, row_ids: Sequence[str], order: Sequence[str]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR triple ``(indptr, indices, data)`` of the stored
        nonzeros of ``row_ids`` with columns translated to positions in
        ``order`` — O(row degree) per row, nothing densified.

        Column positions *within* a row follow storage order (not
        sorted); consumers that need the documented sorted-column
        reduction order scatter into a position-indexed buffer, which
        imposes it regardless of this iteration order."""
        colmap = self._colmap(list(order))
        indptr = np.zeros(len(row_ids) + 1, dtype=np.int64)
        col_parts: List[np.ndarray] = []
        val_parts: List[np.ndarray] = []
        for pos, pid in enumerate(row_ids):
            slot = self._index.get(pid)
            if slot is None:
                indptr[pos + 1] = indptr[pos]
                continue
            cols, vals = self._arrays(slot)
            cpos = colmap[cols]
            keep = cpos >= 0
            kept_cols = cpos[keep]
            col_parts.append(kept_cols.astype(np.int64, copy=False))
            val_parts.append(vals[keep])
            indptr[pos + 1] = indptr[pos] + kept_cols.size
        indices = (
            np.concatenate(col_parts) if col_parts else np.zeros(0, dtype=np.int64)
        )
        data = np.concatenate(val_parts) if val_parts else np.zeros(0, dtype=float)
        return indptr, indices, data

    def column_nonzeros(
        self, order: Sequence[str], sink: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse view of the sink's in-column: ``(positions, values)``
        with positions ascending in ``order`` space — O(in-degree),
        served from the in-slot index."""
        t = self._index.get(sink)
        if t is None:
            return np.zeros(0, dtype=np.intp), np.zeros(0, dtype=float)
        colmap = self._colmap(list(order))
        pairs = [
            (colmap[ri], self._rows[ri][t])
            for ri in self._in.get(t, ())
            if colmap[ri] >= 0
        ]
        pairs.sort()
        pos = np.fromiter((p for p, _v in pairs), dtype=np.intp, count=len(pairs))
        vals = np.fromiter((v for _p, v in pairs), dtype=float, count=len(pairs))
        return pos, vals

    def dense(self) -> Tuple[List[str], np.ndarray]:
        ids = list(self._index)
        mat = self.to_matrix(ids)
        mat.setflags(write=False)
        return ids, mat

    def export_payload(self, order: Sequence[str]) -> Dict[str, np.ndarray]:
        """CSR snapshot of the mirror in ``order`` space for
        shared-memory publication: ``indptr``/``indices``/``data`` with
        column indices already translated to positions in ``order``.
        Densifying row ``r`` as ``row[indices[lo:hi]] = data[lo:hi]``
        performs exactly the scatter :meth:`matrix_rows` does, so the
        floats land in the same cells (placement only)."""
        ids = list(order)
        indptr, indices, data = self.row_nonzeros(ids, ids)
        return {"indptr": indptr, "indices": indices, "data": data}


class SubjectiveGraph:
    """Directed weighted graph of believed transfers.

    ``weight(u, v)`` is the bytes the owner believes ``u`` uploaded to
    ``v``.  The owner's own direct observations and gossip-received
    records share the same storage; direct observations always win
    because they are at least as fresh (cumulative maxima).

    ``max_nodes`` bounds memory as deployed BarterCast does: when the
    node set would exceed it, the *smallest-degree-weight* node not on
    a path touching the owner's neighbourhood is evicted (pruning weak
    hearsay first; the owner itself is never evicted).

    The graph maintains **per-node edge-version counters** so callers
    can cache derived quantities and invalidate precisely:
    ``out_version(u)`` advances whenever an edge *out of* ``u`` changes
    (raised or removed) and ``in_version(v)`` whenever an edge *into*
    ``v`` changes.  The 2-hop maxflow ``f(s→t)`` depends only on ``s``'s
    out-edges and ``t``'s in-edges, so the pair
    ``(out_version(s), in_version(t))`` is an exact validity key for a
    cached flow.  ``version`` is the total mutation count (any edge
    change anywhere).  Counters are monotone and survive node eviction,
    so a re-added node can never resurrect a stale cache entry.

    Alongside the dict-of-dict adjacency (out- and in-directions are
    both indexed) the graph maintains an incrementally updated
    **matrix mirror** — dense or sparse, see the module docstring — so
    :meth:`to_matrix` and the row/column accessors the flow paths use
    are numpy gathers/scatters instead of O(E) Python rebuilds.
    """

    def __init__(
        self,
        owner: str,
        max_nodes: int = 0,
        backend: str = "auto",
        sparse_threshold: int = DEFAULT_SPARSE_THRESHOLD,
    ):
        if max_nodes < 0:
            raise ValueError("max_nodes must be >= 0 (0 = unbounded)")
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}")
        if sparse_threshold < 0:
            raise ValueError("sparse_threshold must be >= 0")
        self.owner = owner
        self.max_nodes = max_nodes
        self.backend = backend
        self.sparse_threshold = sparse_threshold
        self._out: Dict[str, Dict[str, float]] = {}
        #: in-adjacency mirror of ``_out`` (``{v: {u: weight}}``);
        #: entries are removed when the inner dict empties, so its key
        #: set is exactly "nodes with at least one in-edge".
        self._in_adj: Dict[str, Dict[str, float]] = {}
        self.records_folded = 0
        self.evicted = 0
        self._out_version: Dict[str, int] = {}
        self._in_version: Dict[str, int] = {}
        self._version = 0
        self._mirror = _SparseMirror() if backend == "sparse" else _DenseMirror()

    # ------------------------------------------------------------------
    def add_record(self, record: TransferRecord) -> bool:
        """Fold one record.  Returns ``False`` (and ignores it) if the
        record violates the endpoint acceptance rule for gossip — the
        caller is responsible for passing only records whose *sender*
        matches the reporter; this method enforces internal sanity."""
        self._raise_edge(record.reporter, record.partner, record.up)
        self._raise_edge(record.partner, record.reporter, record.down)
        self.records_folded += 1
        return True

    def observe_direct(self, uploader: str, downloader: str, total_bytes: float) -> None:
        """Fold the owner's own cumulative observation of an edge."""
        self._raise_edge(uploader, downloader, total_bytes)

    def _raise_edge(self, u: str, v: str, w: float) -> None:
        if w <= 0 or u == v:
            return
        row = self._out.get(u)
        if row is not None and w <= row.get(v, 0.0):
            # Stale or equal refold: nothing changed — no version bump
            # and, crucially, no bound-enforcement scan (duplicate
            # gossip records used to pay an O(E) scan here).
            return
        added = self.max_nodes and (
            not self._has_node(u) or not self._has_node(v)
        )
        if row is None:
            row = self._out[u] = {}
        row[v] = w
        self._in_adj.setdefault(v, {})[u] = w
        self._mirror.set(u, v, w)
        self._bump(u, v)
        if self.backend == "auto" and self._mirror.kind == "dense":
            if self._mirror.node_count() > self.sparse_threshold:
                self._convert_to_sparse()
        if added:
            self._enforce_node_bound()

    def _has_node(self, node: str) -> bool:
        return node in self._out or node in self._in_adj

    def _convert_to_sparse(self) -> None:
        """One-time ``auto`` backend switch: rebuild the mirror as
        sparse from the adjacency and drop the dense block."""
        mirror = _SparseMirror()
        for u, row in self._out.items():
            for v, w in row.items():
                mirror.set(u, v, w)
        self._mirror = mirror

    def _bump(self, u: str, v: str) -> None:
        """Record a change to edge ``(u, v)`` in the version counters."""
        self._out_version[u] = self._out_version.get(u, 0) + 1
        self._in_version[v] = self._in_version.get(v, 0) + 1
        self._version += 1

    def _enforce_node_bound(self) -> None:
        nodes = self.nodes()
        if len(nodes) <= self.max_nodes:
            return
        # Owner and its direct neighbours carry the flows that matter —
        # evict the weakest stranger.  The protected set is computed
        # once: a victim has no owner-incident edge by definition, so
        # removing it can never change who is protected.
        protected = {self.owner}
        protected.update(self._out.get(self.owner, ()))
        protected.update(self._in_adj.get(self.owner, ()))
        # Total touched weight per node, computed once and maintained
        # incrementally across evictions (the per-victim O(E) rebuild
        # was quadratic under bound thrash).
        weight_of: Dict[str, float] = {n: 0.0 for n in nodes}
        for u, row in self._out.items():
            for v, w in row.items():
                weight_of[u] = weight_of.get(u, 0.0) + w
                weight_of[v] = weight_of.get(v, 0.0) + w
        while len(nodes) > self.max_nodes:
            candidates = [n for n in nodes if n not in protected]
            if not candidates:
                break
            victim = min(candidates, key=lambda n: (weight_of.get(n, 0.0), n))
            out_edges = list(self._out.get(victim, {}).items())
            in_edges = list(self._in_adj.get(victim, {}).items())
            self._remove_node(victim)
            self.evicted += 1
            nodes.discard(victim)
            weight_of.pop(victim, None)
            for v, w in out_edges:
                if self._has_node(v):
                    weight_of[v] = weight_of.get(v, 0.0) - w
                else:
                    # v's only presence was as the victim's target —
                    # it leaves the node set entirely.
                    nodes.discard(v)
                    weight_of.pop(v, None)
            for u, w in in_edges:
                # In-neighbours keep their (possibly empty) out-row and
                # therefore always stay in the node set.
                weight_of[u] = weight_of.get(u, 0.0) - w

    def _remove_node(self, node: str) -> None:
        removed_out = self._out.pop(node, None)
        if removed_out:
            for v in removed_out:
                inrow = self._in_adj.get(v)
                if inrow is not None:
                    inrow.pop(node, None)
                    if not inrow:
                        del self._in_adj[v]
                        if v not in self._out:
                            # v's only presence was as this node's
                            # target — it leaves the graph, so free its
                            # mirror slot too (otherwise eviction
                            # thrash leaks one slot per orphan).
                            self._mirror.drop(v)
                self._bump(node, v)
        removed_in = self._in_adj.pop(node, None)
        if removed_in:
            for u in removed_in:
                urow = self._out.get(u)
                if urow is not None:
                    # The row may empty out; it stays registered so the
                    # node remains part of the graph (and of the bound).
                    urow.pop(node, None)
                self._bump(u, node)
        self._mirror.drop(node)

    # ------------------------------------------------------------------
    # Version counters (cache-invalidation keys)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Total edge-mutation count — any change anywhere bumps it."""
        return self._version

    def out_version(self, u: str) -> int:
        """Version of ``u``'s out-edge set (0 = never had one)."""
        return self._out_version.get(u, 0)

    def in_version(self, v: str) -> int:
        """Version of ``v``'s in-edge set (0 = never had one)."""
        return self._in_version.get(v, 0)

    # ------------------------------------------------------------------
    def weight(self, u: str, v: str) -> float:
        return self._out.get(u, {}).get(v, 0.0)

    def successors(self, u: str) -> Dict[str, float]:
        """Copy of ``{v: weight}`` for edges out of ``u``."""
        return dict(self._out.get(u, {}))

    def predecessors(self, v: str) -> Dict[str, float]:
        """Copy of ``{u: weight}`` for edges into ``v``."""
        return dict(self._in_adj.get(v, {}))

    def nodes(self) -> Set[str]:
        return set(self._out) | set(self._in_adj)

    def edges(self) -> List[Tuple[str, str, float]]:
        return [(u, v, w) for u, row in self._out.items() for v, w in row.items()]

    def num_edges(self) -> int:
        return sum(len(row) for row in self._out.values())

    # ------------------------------------------------------------------
    @property
    def matrix_backend(self) -> str:
        """The mirror currently in use: ``"dense"`` or ``"sparse"``
        (``backend="auto"`` reports whichever side of the threshold the
        graph is on)."""
        return self._mirror.kind

    def matrix_nbytes(self) -> int:
        """Approximate bytes held by the matrix mirror (the dense
        block's allocation, or the sparse payload estimate)."""
        return self._mirror.nbytes()

    def to_matrix(self, order: Iterable[str]) -> np.ndarray:
        """Dense weight matrix in the given node order (metrics use —
        vectorised CEV computation needs all flows at once).

        Nodes unknown to the graph get zero rows and columns; known
        nodes are permuted into the requested order.  Values are
        identical to a fresh edge-by-edge rebuild regardless of the
        backend (placement only, no arithmetic).  The returned array is
        freshly allocated and the caller's to mutate."""
        return self._mirror.to_matrix(list(order))

    def matrix_rows(
        self, row_ids: Sequence[str], order: Sequence[str]
    ) -> np.ndarray:
        """Dense ``(len(row_ids), len(order))`` block of the rows for
        ``row_ids`` in column order ``order`` — the chunked sparse flow
        path uses this to bound peak memory at O(chunk · n)."""
        return self._mirror.matrix_rows(list(row_ids), list(order))

    def matrix_column(self, order: Sequence[str], sink: str) -> np.ndarray:
        """``weight(u, sink)`` for every ``u`` in ``order`` as a dense
        vector (zero for unknown nodes)."""
        return self._mirror.matrix_column(list(order), sink)

    def row_nonzeros(
        self, row_ids: Sequence[str], order: Sequence[str]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR triple ``(indptr, indices, data)`` of the stored
        nonzeros of ``row_ids``, columns as positions in ``order`` —
        the row-access surface of the sparse-to-sparse flow kernel
        (O(degree) per row under the sparse mirror).  Within-row column
        order is storage order; see the kernel's reduction contract in
        :func:`repro.bartercast.maxflow.two_hop_flows_to_sink`."""
        return self._mirror.row_nonzeros(list(row_ids), list(order))

    def column_nonzeros(
        self, order: Sequence[str], sink: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse in-column view: ``(positions, weights)`` of the
        nodes with an edge *into* ``sink``, positions ascending in
        ``order`` space (O(in-degree) under the sparse mirror)."""
        return self._mirror.column_nonzeros(list(order), sink)

    def dense(self) -> Tuple[List[str], np.ndarray]:
        """The internal node order and the full weight matrix.

        The array is **read-only**: under the dense backend it is a
        view of live storage, under the sparse backend a materialised
        O(n²) snapshot — callers needing to mutate must copy.  Mainly
        for diagnostics and tests; metrics go through :meth:`to_matrix`
        for a stable order."""
        return self._mirror.dense()

    def mirror_payload(
        self, order: Sequence[str]
    ) -> Tuple[str, Dict[str, np.ndarray]]:
        """``(kind, arrays)`` snapshot of the matrix mirror in
        ``order`` space, ready for shared-memory publication.

        Dense mirrors export one ``(n, n)`` float64 weight block
        (``{"W": ...}``), sparse mirrors CSR arrays
        (``{"indptr", "indices", "data"}``) with columns translated to
        positions in ``order``.  Either payload, rehydrated through
        :class:`SharedGraphView`, reproduces :meth:`to_matrix` /
        :meth:`matrix_rows` / :meth:`matrix_column` bit-for-bit — the
        export is placement only, no arithmetic."""
        return self._mirror.kind, self._mirror.export_payload(list(order))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SubjectiveGraph(owner={self.owner!r}, edges={self.num_edges()}, "
            f"backend={self.matrix_backend})"
        )


class SharedGraphView:
    """Read-only graph facade over an exported mirror snapshot.

    Worker processes rebuild one of these from the arrays a
    :meth:`SubjectiveGraph.mirror_payload` export published to shared
    memory (see :class:`repro.sim.parallel.FlowRowPool`) and hand it
    straight to :func:`~repro.bartercast.maxflow.two_hop_flows_to_sink`
    — the view implements exactly the surface that function touches
    (``nodes`` / ``matrix_backend`` / ``to_matrix`` / ``matrix_rows`` /
    ``matrix_column``) without pickling or copying the weight data.

    The snapshot is taken in a fixed ``ids`` order; every accessor
    insists the requested order *is* that order (the flow kernel always
    asks for ``sorted(nodes | {sink} | sources)``, which the exporter
    pre-computed), so a mismatch is a caller bug and raises rather than
    silently breaking bit-identity.
    """

    def __init__(self, ids: Sequence[str], kind: str, arrays: Dict[str, np.ndarray]):
        if kind not in ("dense", "sparse"):
            raise ValueError(f"unknown mirror kind {kind!r}")
        self._ids: List[str] = list(ids)
        self._kind = kind
        self._arrays = arrays
        self._pos: Dict[str, int] = {p: i for i, p in enumerate(self._ids)}

    def nodes(self) -> Set[str]:
        return set(self._ids)

    def num_edges(self) -> int:
        """Stored-edge count of the snapshot (the sparse-kernel
        density heuristic reads it, exactly as it reads the live
        graph's)."""
        if self._kind == "dense":
            return int(np.count_nonzero(self._arrays["W"]))
        return int(self._arrays["data"].size)

    @property
    def matrix_backend(self) -> str:
        return self._kind

    def _check_order(self, order: Sequence[str]) -> None:
        if list(order) != self._ids:
            raise ValueError(
                "SharedGraphView was exported for a different node order"
            )

    def to_matrix(self, order: Iterable[str]) -> np.ndarray:
        self._check_order(list(order))
        return self._arrays["W"]

    def matrix_rows(
        self, row_ids: Sequence[str], order: Sequence[str]
    ) -> np.ndarray:
        self._check_order(order)
        if self._kind == "dense":
            W = self._arrays["W"]
            block = np.zeros((len(row_ids), len(self._ids)))
            for pos, pid in enumerate(row_ids):
                r = self._pos.get(pid)
                if r is not None:
                    block[pos, :] = W[r, :]
            return block
        indptr = self._arrays["indptr"]
        indices = self._arrays["indices"]
        data = self._arrays["data"]
        block = np.zeros((len(row_ids), len(self._ids)))
        for pos, pid in enumerate(row_ids):
            r = self._pos.get(pid)
            if r is None:
                continue
            lo, hi = indptr[r], indptr[r + 1]
            block[pos, indices[lo:hi]] = data[lo:hi]
        return block

    def matrix_column(self, order: Sequence[str], sink: str) -> np.ndarray:
        self._check_order(order)
        n = len(self._ids)
        col = np.zeros(n)
        t = self._pos.get(sink)
        if t is None:
            return col
        if self._kind == "dense":
            col[:] = self._arrays["W"][:, t]
            return col
        indptr = self._arrays["indptr"]
        indices = self._arrays["indices"]
        data = self._arrays["data"]
        hit = indices == t
        if hit.any():
            rows = np.repeat(np.arange(n, dtype=np.intp), np.diff(indptr))
            col[rows[hit]] = data[hit]
        return col

    def row_nonzeros(
        self, row_ids: Sequence[str], order: Sequence[str]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR triple for ``row_ids`` — under the sparse kind this
        *slices the already-shipped CSR segment arrays* (no copy of the
        weight data beyond the requested rows), which is what lets shm
        workers run the sparse-to-sparse kernel directly over shared
        memory."""
        self._check_order(order)
        if self._kind == "dense":
            W = self._arrays["W"]
            indptr = np.zeros(len(row_ids) + 1, dtype=np.int64)
            col_parts: List[np.ndarray] = []
            val_parts: List[np.ndarray] = []
            for pos, pid in enumerate(row_ids):
                r = self._pos.get(pid)
                if r is None:
                    indptr[pos + 1] = indptr[pos]
                    continue
                cols = np.flatnonzero(W[r])
                col_parts.append(cols.astype(np.int64, copy=False))
                val_parts.append(W[r, cols])
                indptr[pos + 1] = indptr[pos] + cols.size
        else:
            src_indptr = self._arrays["indptr"]
            src_indices = self._arrays["indices"]
            src_data = self._arrays["data"]
            indptr = np.zeros(len(row_ids) + 1, dtype=np.int64)
            col_parts = []
            val_parts = []
            for pos, pid in enumerate(row_ids):
                r = self._pos.get(pid)
                if r is None:
                    indptr[pos + 1] = indptr[pos]
                    continue
                lo, hi = src_indptr[r], src_indptr[r + 1]
                col_parts.append(src_indices[lo:hi])
                val_parts.append(src_data[lo:hi])
                indptr[pos + 1] = indptr[pos] + (hi - lo)
        indices = (
            np.concatenate(col_parts) if col_parts else np.zeros(0, dtype=np.int64)
        )
        data = np.concatenate(val_parts) if val_parts else np.zeros(0, dtype=float)
        return indptr, indices, data

    def column_nonzeros(
        self, order: Sequence[str], sink: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sparse in-column view ``(positions, values)``, positions
        ascending — served from the shipped arrays without building the
        dense column."""
        self._check_order(order)
        t = self._pos.get(sink)
        if t is None:
            return np.zeros(0, dtype=np.intp), np.zeros(0, dtype=float)
        if self._kind == "dense":
            col = self._arrays["W"][:, t]
            pos = np.flatnonzero(col)
            return pos, np.ascontiguousarray(col[pos])
        indptr = self._arrays["indptr"]
        indices = self._arrays["indices"]
        data = self._arrays["data"]
        hit = indices == t
        rows = np.repeat(
            np.arange(len(self._ids), dtype=np.intp), np.diff(indptr)
        )
        # ``rows`` ascends with the CSR layout, so the hit positions
        # come out already sorted (a row stores each column once).
        return rows[hit], data[hit]

    def release(self) -> None:
        """Drop every array reference so the backing shared-memory
        mapping can be closed (numpy views keep it pinned otherwise)."""
        self._arrays = {}


class ReadOnlySubjectiveGraph(SubjectiveGraph):
    """An immutable, permanently empty graph.

    :meth:`BarterCastService.graph_of` hands a shared instance to
    callers probing peers the service has never seen, so metric sweeps
    over the full trace population do not materialise per-peer state.
    Any mutation attempt raises instead of silently poisoning the
    shared sentinel."""

    def _raise_edge(self, u: str, v: str, w: float) -> None:
        raise TypeError(
            "this graph is a shared read-only sentinel for an unseen "
            "peer; it cannot be mutated"
        )
