"""The BarterCast gossip service.

Population-managed like the other substrates: one
:class:`BarterCastService` owns every node's direct-record table and
subjective graph.  Wiring:

* the BitTorrent :class:`~repro.bittorrent.ledger.TransferLedger`
  streams transfers into :meth:`local_transfer` (both endpoints update
  their direct tables and graphs);
* the session driver calls :meth:`gossip_tick` per online node on the
  node's gossip cadence; the node meets a PSS-sampled peer and the two
  exchange their most significant *direct* records;
* the experience layer calls :meth:`contribution` to get ``f_{j→i}``.

Acceptance rule: a node only folds received records whose *reporter*
field equals the peer that sent them — hearsay about third parties is
rejected, which is what confines collusive edge-faking to the
colluders' own neighbourhood (the "front peer" discussion in §VII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bartercast.graph import SubjectiveGraph
from repro.bartercast.maxflow import edmonds_karp, two_hop_flow
from repro.bartercast.records import TransferRecord
from repro.pss.base import PeerSamplingService


@dataclass
class BarterCastConfig:
    """Protocol parameters (deployed-BarterCast-like defaults)."""

    #: Max records sent per gossip exchange (most-transferred partners).
    max_records_per_exchange: int = 10
    #: Hop bound for the maxflow evaluation; ``2`` is the deployed
    #: setting and enables the O(degree) closed form.
    max_hops: int = 2
    #: Per-node subjective-graph size bound (0 = unbounded).  Deployed
    #: BarterCast prunes weak hearsay to cap client memory.
    max_graph_nodes: int = 0

    def __post_init__(self) -> None:
        if self.max_records_per_exchange < 1:
            raise ValueError("max_records_per_exchange must be >= 1")
        if self.max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        if self.max_graph_nodes < 0:
            raise ValueError("max_graph_nodes must be >= 0")


class _NodeState:
    __slots__ = ("direct", "graph")

    def __init__(self, owner: str, max_graph_nodes: int = 0):
        #: partner -> (up_total, down_total, last_update)
        self.direct: Dict[str, List[float]] = {}
        self.graph = SubjectiveGraph(owner, max_nodes=max_graph_nodes)


class BarterCastService:
    """All nodes' BarterCast state plus the contribution oracle."""

    def __init__(self, pss: PeerSamplingService, config: Optional[BarterCastConfig] = None):
        self._pss = pss
        self.config = config or BarterCastConfig()
        self._nodes: Dict[str, _NodeState] = {}
        self.exchanges = 0

    def _state(self, peer_id: str) -> _NodeState:
        st = self._nodes.get(peer_id)
        if st is None:
            st = _NodeState(peer_id, self.config.max_graph_nodes)
            self._nodes[peer_id] = st
        return st

    # ------------------------------------------------------------------
    # Local observation (wired to the transfer ledger)
    # ------------------------------------------------------------------
    def local_transfer(self, uploader: str, downloader: str, nbytes: float, now: float) -> None:
        """Both endpoints record the transfer in their direct tables."""
        if nbytes <= 0:
            return
        up_state = self._state(uploader)
        rec = up_state.direct.setdefault(downloader, [0.0, 0.0, now])
        rec[0] += nbytes
        rec[2] = now
        up_state.graph.observe_direct(uploader, downloader, rec[0])

        down_state = self._state(downloader)
        rec2 = down_state.direct.setdefault(uploader, [0.0, 0.0, now])
        rec2[1] += nbytes
        rec2[2] = now
        down_state.graph.observe_direct(uploader, downloader, rec2[1])

    def inject_record(self, holder: str, record: TransferRecord) -> None:
        """Directly fold a record into ``holder``'s graph, bypassing the
        reporter check — used by attack models to simulate colluders
        feeding each other fabricated statements."""
        self._state(holder).graph.add_record(record)

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def gossip_tick(self, peer_id: str, now: float) -> bool:
        """One active exchange: meet a PSS peer, swap direct records."""
        partner = self._pss.sample(peer_id)
        if partner is None or partner == peer_id:
            return False
        self._exchange(peer_id, partner, now)
        self.exchanges += 1
        return True

    def _exchange(self, a: str, b: str, now: float) -> None:
        for sender, receiver in ((a, b), (b, a)):
            records = self.records_of(sender)
            recv_state = self._state(receiver)
            for rec in records:
                # Acceptance rule: sender must be the reporter.
                if rec.reporter != sender:
                    continue
                recv_state.graph.add_record(rec)

    def records_of(self, peer_id: str) -> List[TransferRecord]:
        """The node's own direct records, most-significant first,
        truncated to the per-exchange budget."""
        st = self._state(peer_id)
        items = sorted(
            st.direct.items(),
            key=lambda kv: -(kv[1][0] + kv[1][1]),
        )[: self.config.max_records_per_exchange]
        return [
            TransferRecord(
                reporter=peer_id,
                partner=partner,
                up=totals[0],
                down=totals[1],
                timestamp=totals[2],
            )
            for partner, totals in items
        ]

    # ------------------------------------------------------------------
    # Contribution oracle
    # ------------------------------------------------------------------
    def contribution(self, observer: str, subject: str) -> float:
        """``f_{subject→observer}``: max flow from ``subject`` to
        ``observer`` in the observer's subjective graph (bytes)."""
        if observer == subject:
            return 0.0
        graph = self._state(observer).graph
        if self.config.max_hops == 2:
            return two_hop_flow(graph, subject, observer)
        return edmonds_karp(graph, subject, observer, max_hops=self.config.max_hops)

    def graph_of(self, peer_id: str) -> SubjectiveGraph:
        """The node's subjective graph (read-mostly; metrics use)."""
        return self._state(peer_id).graph
