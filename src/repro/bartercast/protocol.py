"""The BarterCast gossip service.

Population-managed like the other substrates: one
:class:`BarterCastService` owns every node's direct-record table and
subjective graph.  Wiring:

* the BitTorrent :class:`~repro.bittorrent.ledger.TransferLedger`
  streams transfers into :meth:`local_transfer` (both endpoints update
  their direct tables and graphs);
* the session driver calls :meth:`gossip_tick` per online node on the
  node's gossip cadence; the node meets a PSS-sampled peer and the two
  exchange their most significant *direct* records;
* the experience layer calls :meth:`contribution` to get ``f_{j→i}``.

Acceptance rule: a node only folds received records whose *reporter*
field equals the peer that sent them — hearsay about third parties is
rejected, which is what confines collusive edge-faking to the
colluders' own neighbourhood (the "front peer" discussion in §VII).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bartercast.graph import (
    DEFAULT_SPARSE_THRESHOLD,
    ReadOnlySubjectiveGraph,
    SubjectiveGraph,
)
from repro.bartercast.maxflow import edmonds_karp, two_hop_flow, two_hop_flows_to_sink
from repro.bartercast.records import TransferRecord
from repro.pss.base import PeerSamplingService


@dataclass
class BarterCastConfig:
    """Protocol parameters (deployed-BarterCast-like defaults)."""

    #: Max records sent per gossip exchange (most-transferred partners).
    max_records_per_exchange: int = 10
    #: Hop bound for the maxflow evaluation; ``2`` is the deployed
    #: setting and enables the O(degree) closed form.
    max_hops: int = 2
    #: Per-node subjective-graph size bound (0 = unbounded).  Deployed
    #: BarterCast prunes weak hearsay to cap client memory.
    max_graph_nodes: int = 0
    #: Cache ``contribution()`` results keyed by the subjective graph's
    #: edge-version counters (see ``docs/simulator.md`` §Performance &
    #: caching).  Semantically transparent — disable only to measure
    #: the uncached path.
    contribution_cache: bool = True
    #: LRU bound on each node's per-subject contribution cache
    #: (0 = unbounded).  Production-scale populations cap this so a
    #: node gossiping with millions of peers holds O(bound) entries;
    #: evictions are counted in :meth:`BarterCastService.cache_stats`.
    #: ``None`` (the default) derives the bound from the population
    #: size once known — see :func:`adaptive_contrib_cache_entries`;
    #: until/without that resolution ``None`` behaves as unbounded.
    contrib_cache_entries: Optional[int] = None
    #: Matrix mirror for each node's subjective graph: ``"dense"``
    #: (O(n²) memory, fastest gather at paper scale), ``"sparse"``
    #: (CSR-style, O(E) memory) or ``"auto"`` (dense until the node
    #: count crosses ``sparse_graph_threshold``, then sparse).  Flow
    #: results are bit-identical across backends.
    graph_backend: str = "auto"
    #: Node count at which ``graph_backend="auto"`` converts a graph's
    #: mirror from dense to sparse.
    sparse_graph_threshold: int = DEFAULT_SPARSE_THRESHOLD
    #: Batch flow evaluation under the sparse graph backend:
    #: ``"chunked"`` (dense row blocks, O(chunk·n) peak memory),
    #: ``"csr"`` (sparse-to-sparse CSR×column kernel, O(n) peak) or
    #: ``"auto"`` (CSR below a density cutoff).  All kernels are
    #: bit-identical — see ``two_hop_flows_to_sink``'s reduction-order
    #: contract.  Ignored under the dense backend.
    sparse_flow_kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.max_records_per_exchange < 1:
            raise ValueError("max_records_per_exchange must be >= 1")
        if self.max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        if self.max_graph_nodes < 0:
            raise ValueError("max_graph_nodes must be >= 0")
        if self.contrib_cache_entries is not None and self.contrib_cache_entries < 0:
            raise ValueError("contrib_cache_entries must be >= 0")
        if self.graph_backend not in ("dense", "sparse", "auto"):
            raise ValueError("graph_backend must be dense, sparse or auto")
        if self.sparse_graph_threshold < 0:
            raise ValueError("sparse_graph_threshold must be >= 0")
        if self.sparse_flow_kernel not in ("chunked", "csr", "auto"):
            raise ValueError("sparse_flow_kernel must be chunked, csr or auto")


#: Population size up to which the adaptive contribution-cache bound
#: stays unbounded (paper-scale runs cache every subject they meet).
_ADAPTIVE_CACHE_FREE_POPULATION = 10_000

#: Rough per-entry footprint of one contribution-cache slot (OrderedDict
#: link + subject string key + ``((out_v, in_v), flow)`` value), used by
#: :meth:`BarterCastService.cache_stats` to report bytes next to the
#: hit rate so the adaptive default is measurable.
_CONTRIB_ENTRY_BYTES = 200


def adaptive_contrib_cache_entries(population: int) -> int:
    """Default per-node contribution-cache bound for a population.

    Up to :data:`_ADAPTIVE_CACHE_FREE_POPULATION` peers the cache is
    unbounded (``0``): a paper-scale node meets the whole population
    and every entry stays useful.  Beyond that, a node's working set
    is its gossip neighbourhood — O(√population) with uniform sampling
    before the horizon of a run — so the bound grows as ``8·√n``
    (floored at 1024 entries ≈ 200 KiB), not ``n``.
    """
    if population < 0:
        raise ValueError("population must be >= 0")
    if population <= _ADAPTIVE_CACHE_FREE_POPULATION:
        return 0
    return max(1024, 8 * int(population**0.5))


#: Shared sentinel handed out by :meth:`BarterCastService.graph_of`
#: for peers the service has never seen.  Immutable (mutations raise),
#: permanently empty, ``version == 0`` — exactly what a fresh graph
#: would answer, without the allocation.
_EMPTY_GRAPH = ReadOnlySubjectiveGraph("", backend="dense")


class _NodeState:
    __slots__ = (
        "direct",
        "graph",
        "direct_version",
        "records_cache",
        "contrib_cache",
        "batch_cache",
    )

    def __init__(
        self,
        owner: str,
        max_graph_nodes: int = 0,
        graph_backend: str = "auto",
        sparse_graph_threshold: int = DEFAULT_SPARSE_THRESHOLD,
    ):
        #: partner -> (up_total, down_total, last_update)
        self.direct: Dict[str, List[float]] = {}
        self.graph = SubjectiveGraph(
            owner,
            max_nodes=max_graph_nodes,
            backend=graph_backend,
            sparse_threshold=sparse_graph_threshold,
        )
        #: bumped on every direct-table mutation (invalidates the
        #: cached top-K record list below)
        self.direct_version = 0
        #: (direct_version, records) — top-K most-significant records
        self.records_cache: Optional[Tuple[int, List[TransferRecord]]] = None
        #: subject -> ((out_version, in_version), flow) for the owner's
        #: 2-hop contribution oracle; ordered so an LRU bound can evict
        #: the least recently touched subject first
        self.contrib_cache: "OrderedDict[str, Tuple[Tuple[int, int], float]]" = (
            OrderedDict()
        )
        #: ((graph_version, subjects), flows) for the batch oracle
        self.batch_cache: Optional[Tuple[Tuple[int, Tuple[str, ...]], np.ndarray]] = None


class BarterCastService:
    """All nodes' BarterCast state plus the contribution oracle."""

    def __init__(self, pss: PeerSamplingService, config: Optional[BarterCastConfig] = None):
        self._pss = pss
        self.config = config or BarterCastConfig()
        self._nodes: Dict[str, _NodeState] = {}
        #: resolved LRU bound (0 = unbounded).  ``None`` in the config
        #: means "adaptive": unbounded until :meth:`resolve_cache_budget`
        #: learns the population size.
        configured = self.config.contrib_cache_entries
        self._contrib_cap = configured if configured is not None else 0
        self.exchanges = 0
        #: contribution-cache telemetry (see :meth:`cache_stats`)
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0
        self.cache_bypasses = 0
        self.cache_evictions = 0
        self.batch_hits = 0
        self.batch_misses = 0
        self.records_cache_hits = 0
        self.records_cache_misses = 0

    def _state(self, peer_id: str) -> _NodeState:
        """The peer's state, **materialising** it on first access —
        write paths only.  Read paths (:meth:`graph_of`,
        :meth:`contribution`, :meth:`contributions_to_observer`) use
        :meth:`_peek` so probing never-seen peers stays free."""
        st = self._nodes.get(peer_id)
        if st is None:
            cfg = self.config
            st = _NodeState(
                peer_id,
                cfg.max_graph_nodes,
                cfg.graph_backend,
                cfg.sparse_graph_threshold,
            )
            self._nodes[peer_id] = st
        return st

    def _peek(self, peer_id: str) -> Optional[_NodeState]:
        """The peer's state if the service has ever seen it, else
        ``None`` — never materialises."""
        return self._nodes.get(peer_id)

    # ------------------------------------------------------------------
    # Local observation (wired to the transfer ledger)
    # ------------------------------------------------------------------
    def local_transfer(self, uploader: str, downloader: str, nbytes: float, now: float) -> None:
        """Both endpoints record the transfer in their direct tables."""
        if nbytes <= 0:
            return
        up_state = self._state(uploader)
        rec = up_state.direct.setdefault(downloader, [0.0, 0.0, now])
        rec[0] += nbytes
        rec[2] = now
        up_state.direct_version += 1
        up_state.graph.observe_direct(uploader, downloader, rec[0])

        down_state = self._state(downloader)
        rec2 = down_state.direct.setdefault(uploader, [0.0, 0.0, now])
        rec2[1] += nbytes
        rec2[2] = now
        down_state.direct_version += 1
        down_state.graph.observe_direct(uploader, downloader, rec2[1])

    def inject_record(self, holder: str, record: TransferRecord) -> None:
        """Directly fold a record into ``holder``'s graph, bypassing the
        reporter check — used by attack models to simulate colluders
        feeding each other fabricated statements."""
        self._state(holder).graph.add_record(record)

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def gossip_tick(self, peer_id: str, now: float) -> bool:
        """One active exchange: meet a PSS peer, swap direct records."""
        partner = self._pss.sample(peer_id)
        if partner is None or partner == peer_id:
            return False
        self._exchange(peer_id, partner, now)
        self.exchanges += 1
        return True

    def _exchange(self, a: str, b: str, now: float) -> None:
        for sender, receiver in ((a, b), (b, a)):
            records = self.records_of(sender)
            recv_state = self._state(receiver)
            for rec in records:
                # Acceptance rule: sender must be the reporter.
                if rec.reporter != sender:
                    continue
                recv_state.graph.add_record(rec)

    def records_of(self, peer_id: str) -> List[TransferRecord]:
        """The node's own direct records, most-significant first,
        truncated to the per-exchange budget.

        The sorted top-K list is cached per node and invalidated by the
        direct-table version counter, so gossip ticks between transfers
        reuse it instead of re-sorting the whole table."""
        st = self._state(peer_id)
        if st.records_cache is not None and st.records_cache[0] == st.direct_version:
            self.records_cache_hits += 1
            return list(st.records_cache[1])
        self.records_cache_misses += 1
        items = sorted(
            st.direct.items(),
            key=lambda kv: -(kv[1][0] + kv[1][1]),
        )[: self.config.max_records_per_exchange]
        records = [
            TransferRecord(
                reporter=peer_id,
                partner=partner,
                up=totals[0],
                down=totals[1],
                timestamp=totals[2],
            )
            for partner, totals in items
        ]
        st.records_cache = (st.direct_version, records)
        return list(records)

    # ------------------------------------------------------------------
    # Contribution oracle
    # ------------------------------------------------------------------
    def contribution(self, observer: str, subject: str) -> float:
        """``f_{subject→observer}``: max flow from ``subject`` to
        ``observer`` in the observer's subjective graph (bytes).

        With the default 2-hop bound, results are cached per
        ``(observer, subject)`` and keyed by the graph's
        ``(out_version(subject), in_version(observer))`` pair — the
        exact set of edges the 2-hop closed form can see — so warm
        lookups are O(1) dict hits and cached values are the verbatim
        output of :func:`two_hop_flow` (bit-identical to the uncached
        path).  Other hop bounds bypass the cache: a distant edge
        change can alter a deeper flow without touching either
        endpoint's version."""
        if observer == subject:
            return 0.0
        st = self._peek(observer)
        if st is None:
            # Read path: an observer the service has never seen has an
            # empty graph, so every flow is exactly 0 — answer without
            # materialising state or touching cache telemetry.
            return 0.0
        graph = st.graph
        if self.config.max_hops != 2:
            self.cache_bypasses += 1
            return edmonds_karp(graph, subject, observer, max_hops=self.config.max_hops)
        if not self.config.contribution_cache:
            self.cache_bypasses += 1
            return two_hop_flow(graph, subject, observer)
        cap = self._contrib_cap
        key = (graph.out_version(subject), graph.in_version(observer))
        entry = st.contrib_cache.get(subject)
        if entry is not None:
            if entry[0] == key:
                self.cache_hits += 1
                if cap:
                    st.contrib_cache.move_to_end(subject)
                return entry[1]
            self.cache_invalidations += 1
        self.cache_misses += 1
        value = two_hop_flow(graph, subject, observer)
        st.contrib_cache[subject] = (key, value)
        if cap:
            st.contrib_cache.move_to_end(subject)
            while len(st.contrib_cache) > cap:
                st.contrib_cache.popitem(last=False)
                self.cache_evictions += 1
        return value

    def contributions_to_observer(
        self, observer: str, subjects: Sequence[str]
    ) -> np.ndarray:
        """``f_{j→observer}`` for every ``j`` in ``subjects`` at once.

        The batch counterpart of :meth:`contribution`: one vectorised
        2-hop closed-form evaluation (numpy ``minimum`` + ``sum`` over
        the observer's dense weight matrix) instead of a Python loop
        per pair.  The result array is memoised per observer keyed by
        ``(graph.version, subjects)``, so repeated metric probes or
        re-screens over an unchanged graph are O(1).  Values agree with
        :func:`two_hop_flow` up to float summation order.  Non-2-hop
        configurations fall back to per-pair bounded maxflow.  Probing
        a never-seen observer returns zeros without materialising state
        or touching telemetry (metric sweeps over the full trace
        population must leave the service untouched)."""
        subjects = list(subjects)
        st = self._peek(observer)
        if st is None:
            return np.zeros(len(subjects), dtype=float)
        graph = st.graph
        if self.config.max_hops != 2:
            return np.array(
                [self.contribution(observer, s) for s in subjects], dtype=float
            )
        key = (graph.version, tuple(subjects))
        if (
            self.config.contribution_cache
            and st.batch_cache is not None
            and st.batch_cache[0] == key
        ):
            self.batch_hits += 1
            return st.batch_cache[1].copy()
        self.batch_misses += 1
        flows = two_hop_flows_to_sink(
            graph, subjects, observer, sparse_kernel=self.config.sparse_flow_kernel
        )
        if self.config.contribution_cache:
            st.batch_cache = (key, flows)
            return flows.copy()
        return flows

    # ------------------------------------------------------------------
    # Cache telemetry
    # ------------------------------------------------------------------
    def resolve_cache_budget(self, population: int) -> int:
        """Resolve an adaptive (``None``) ``contrib_cache_entries`` to
        a concrete bound for ``population`` peers.

        Called by the runtime once the trace population is known.  An
        explicit configured bound is left untouched.  Returns the
        resolved cap (0 = unbounded).
        """
        if self.config.contrib_cache_entries is None:
            self._contrib_cap = adaptive_contrib_cache_entries(population)
        return self._contrib_cap

    def cache_stats(self) -> Dict[str, object]:
        """Counters for run summaries: hits/misses/invalidations of the
        scalar contribution cache, LRU evictions under a
        ``contrib_cache_entries`` bound, batch-memo hits/misses, top-K
        record cache hits/misses, and bypasses (cache disabled or
        non-2-hop) — plus the resolved cache bound, the scalar hit
        rate, and the live entry count with its estimated footprint,
        so an adaptive bound's hit-rate/memory trade-off is measurable
        from any run summary."""
        entries = sum(len(st.contrib_cache) for st in self._nodes.values())
        lookups = self.cache_hits + self.cache_misses
        return {
            "contribution_hits": self.cache_hits,
            "contribution_misses": self.cache_misses,
            "contribution_invalidations": self.cache_invalidations,
            "contribution_bypasses": self.cache_bypasses,
            "contribution_evictions": self.cache_evictions,
            "contribution_hit_rate": (self.cache_hits / lookups) if lookups else 0.0,
            "contrib_cache_cap": self._contrib_cap,
            "contrib_cache_entries_total": entries,
            "contrib_cache_memory_bytes": entries * _CONTRIB_ENTRY_BYTES,
            "batch_hits": self.batch_hits,
            "batch_misses": self.batch_misses,
            "records_hits": self.records_cache_hits,
            "records_misses": self.records_cache_misses,
        }

    def clear_caches(self) -> None:
        """Drop all cached derived state (benchmarks use this to
        measure the cold path; never needed for correctness)."""
        for st in self._nodes.values():
            st.contrib_cache.clear()
            st.batch_cache = None
            st.records_cache = None

    def graph_of(self, peer_id: str) -> SubjectiveGraph:
        """The node's subjective graph (read path; metrics use).

        For a peer the service has never seen, a **shared read-only
        empty graph** is returned instead of materialising fresh state
        — probing the full trace population must not grow ``_nodes``.
        The sentinel raises on any mutation attempt; write paths go
        through :meth:`local_transfer` / :meth:`inject_record`."""
        st = self._peek(peer_id)
        if st is None:
            return _EMPTY_GRAPH
        return st.graph
