"""Maximum flow over subjective graphs.

Two implementations:

* :func:`edmonds_karp` — textbook BFS-augmenting-path maxflow with an
  optional *hop bound* (augmenting paths of at most ``max_hops``
  edges), matching deployed BarterCast's bounded evaluation;
* :func:`two_hop_flow` — exact closed form for the 2-hop bound.  Paths
  of ≤2 edges from ``s`` to ``t`` are the direct edge plus the 2-edge
  paths ``s→k→t``; these are pairwise edge-disjoint, so the max flow is
  simply ``w(s,t) + Σ_k min(w(s,k), w(k,t))``.  This is the O(degree)
  form used in the hot CEV loop; tests cross-check it against
  :func:`edmonds_karp` and ``networkx``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Sequence

import numpy as np

from repro.bartercast.graph import SubjectiveGraph

#: Row-block size for the sparse-backend batch flow evaluation: peak
#: extra memory is ``chunk · n`` floats instead of the dense ``n²``.
_SPARSE_FLOW_CHUNK = 256


def two_hop_flow(graph: SubjectiveGraph, source: str, sink: str) -> float:
    """Max flow from ``source`` to ``sink`` over paths of ≤ 2 edges.

    Read-only: the graph is left untouched (``successors`` hands out a
    copy, and this function does not mutate even that)."""
    if source == sink:
        return 0.0
    out = graph.successors(source)
    flow = out.get(sink, 0.0)
    for k, w_sk in out.items():
        if k == source or k == sink:
            continue
        w_kt = graph.weight(k, sink)
        if w_kt > 0.0:
            flow += min(w_sk, w_kt)
    return flow


def two_hop_flows_to_sink(
    graph: SubjectiveGraph, sources: Sequence[str], sink: str
) -> np.ndarray:
    """``f(s→sink)`` for every ``s`` in ``sources`` (2-hop bound).

    Vectorised closed form: one dense weight matrix ``W`` over the
    union of the graph's nodes, the sink and the sources, then
    ``f(s→t) = W[s,t] + Σ_k min(W[s,k], W[k,t])`` as a single numpy
    ``minimum`` + row ``sum``.  Column ``t`` of the minimum matrix is
    ``min(W[s,t], W[t,t]=0) = 0`` and the diagonal contributes
    ``min(W[s,s]=0, ·) = 0``, so the direct edge is never double
    counted and ``k = s`` never contributes.  Intermediates range over
    *all* graph nodes, exactly as in :func:`two_hop_flow`; the node
    order is sorted so results are reproducible across processes.

    Under the sparse graph backend the same formula is evaluated over
    chunked dense *row blocks* (sources only) against the sink's dense
    column, so no full ``n × n`` matrix is ever materialised.  The
    per-row reduction is identical either way — numpy's pairwise sum
    over one row does not depend on the other rows — so the two paths
    are **bit-identical** (gated in ``make bench-smoke``).
    """
    ids = sorted(graph.nodes() | {sink} | set(sources))
    idx = {p: i for i, p in enumerate(ids)}
    t = idx[sink]
    if graph.matrix_backend == "sparse":
        return _two_hop_flows_sparse(graph, list(sources), sink, ids, idx, t)
    W = graph.to_matrix(ids)
    col = W[:, t]
    flows = col + np.minimum(W, col[None, :]).sum(axis=1)
    flows[t] = 0.0
    return flows[[idx[s] for s in sources]]


def _two_hop_flows_sparse(
    graph: SubjectiveGraph,
    sources: Sequence[str],
    sink: str,
    ids: Sequence[str],
    idx: Dict[str, int],
    t: int,
) -> np.ndarray:
    """Chunked evaluation of the 2-hop closed form for sparse graphs:
    O(chunk · n) peak memory, bit-identical to the dense path."""
    n_src = len(sources)
    col = graph.matrix_column(ids, sink)
    spos = np.fromiter((idx[s] for s in sources), dtype=np.intp, count=n_src)
    flows = np.empty(n_src, dtype=float)
    for start in range(0, n_src, _SPARSE_FLOW_CHUNK):
        stop = min(start + _SPARSE_FLOW_CHUNK, n_src)
        block = graph.matrix_rows(sources[start:stop], ids)
        flows[start:stop] = col[spos[start:stop]] + np.minimum(
            block, col[None, :]
        ).sum(axis=1)
    flows[spos == t] = 0.0
    return flows


def edmonds_karp(
    graph: SubjectiveGraph,
    source: str,
    sink: str,
    max_hops: Optional[int] = None,
) -> float:
    """Max flow from ``source`` to ``sink``.

    With ``max_hops`` set, only augmenting paths of at most that many
    edges are used.  BFS finds shortest augmenting paths first and path
    lengths in Edmonds-Karp are non-decreasing, so the search stops
    cleanly when the shortest remaining path exceeds the bound.

    Note the hop-bounded variant is a heuristic (as in deployed
    BarterCast): residual arcs may admit length-``h`` paths that do not
    correspond to length-``h`` forward paths, so its value can differ
    from "max flow restricted to short paths" in contrived graphs — but
    it always lower-bounds the unbounded max flow and equals
    :func:`two_hop_flow` for ``max_hops=2`` on BarterCast-shaped inputs
    (tested).
    """
    if source == sink:
        return 0.0
    # Residual capacities as nested dicts.
    residual: Dict[str, Dict[str, float]] = {}
    for u, v, w in graph.edges():
        residual.setdefault(u, {})[v] = residual.setdefault(u, {}).get(v, 0.0) + w
        residual.setdefault(v, {}).setdefault(u, 0.0)
    if source not in residual or sink not in residual:
        return 0.0

    total = 0.0
    while True:
        # BFS for the shortest augmenting path.
        parent: Dict[str, str] = {}
        depth = {source: 0}
        queue = deque([source])
        found = False
        while queue and not found:
            u = queue.popleft()
            if max_hops is not None and depth[u] >= max_hops:
                continue
            for v, cap in residual.get(u, {}).items():
                if cap > 1e-12 and v not in depth:
                    depth[v] = depth[u] + 1
                    parent[v] = u
                    if v == sink:
                        found = True
                        break
                    queue.append(v)
        if not found:
            return total
        # Bottleneck along the path.
        path = []
        v = sink
        while v != source:
            u = parent[v]
            path.append((u, v))
            v = u
        bottleneck = min(residual[u][v] for u, v in path)
        for u, v in path:
            residual[u][v] -= bottleneck
            residual[v][u] = residual[v].get(u, 0.0) + bottleneck
        total += bottleneck
