"""Maximum flow over subjective graphs.

Two implementations:

* :func:`edmonds_karp` — textbook BFS-augmenting-path maxflow with an
  optional *hop bound* (augmenting paths of at most ``max_hops``
  edges), matching deployed BarterCast's bounded evaluation;
* :func:`two_hop_flow` — exact closed form for the 2-hop bound.  Paths
  of ≤2 edges from ``s`` to ``t`` are the direct edge plus the 2-edge
  paths ``s→k→t``; these are pairwise edge-disjoint, so the max flow is
  simply ``w(s,t) + Σ_k min(w(s,k), w(k,t))``.  This is the O(degree)
  form used in the hot CEV loop; tests cross-check it against
  :func:`edmonds_karp` and ``networkx``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Sequence

import numpy as np

from repro.bartercast.graph import SubjectiveGraph

#: Row-block size for the chunked sparse-backend batch flow
#: evaluation: peak extra memory is ``chunk · n`` floats instead of the
#: dense ``n²``.
_SPARSE_FLOW_CHUNK = 256

#: Kernel choices for the sparse-backend batch flow evaluation.
SPARSE_FLOW_KERNELS = ("chunked", "csr", "auto")

#: ``sparse_kernel="auto"`` picks the CSR×column kernel while the
#: graph's stored edges cover at most this fraction of the ``n²``
#: cells; denser graphs keep the chunked row blocks, whose per-block
#: numpy ops amortise better once most cells are nonzero anyway.
_CSR_DENSITY_CUTOFF = 0.25


def two_hop_flow(graph: SubjectiveGraph, source: str, sink: str) -> float:
    """Max flow from ``source`` to ``sink`` over paths of ≤ 2 edges.

    Read-only: the graph is left untouched (``successors`` hands out a
    copy, and this function does not mutate even that)."""
    if source == sink:
        return 0.0
    out = graph.successors(source)
    flow = out.get(sink, 0.0)
    for k, w_sk in out.items():
        if k == source or k == sink:
            continue
        w_kt = graph.weight(k, sink)
        if w_kt > 0.0:
            flow += min(w_sk, w_kt)
    return flow


def two_hop_flows_to_sink(
    graph: SubjectiveGraph,
    sources: Sequence[str],
    sink: str,
    sparse_kernel: str = "auto",
) -> np.ndarray:
    """``f(s→sink)`` for every ``s`` in ``sources`` (2-hop bound).

    Closed form per source: ``f(s→t) = w(s,t) + Σ_k min(w(s,k),
    w(k,t))``.  Intermediates range over *all* graph nodes, exactly as
    in :func:`two_hop_flow`; the node order is sorted so results are
    reproducible across processes.

    **Reduction-order contract.** Every evaluation path reduces the
    ``min`` terms the same way: terms are laid out over the **sink's
    in-column support** (the positions ``k`` with ``w(k,t) > 0``, in
    ascending sorted-node-order position — ``min(·, 0) = 0`` makes any
    other ``k`` an exact zero) and summed by numpy's pairwise
    reduction over that contiguous layout; the direct edge is then
    added as one scalar.  A term's value and its slot in the layout
    are independent of which path produced them, so the dense path,
    the chunked sparse path and the CSR kernel — locally, in threads,
    or in shm worker processes — are **bit-identical** (gated in
    ``make bench-smoke``).

    ``sparse_kernel`` selects the sparse-backend evaluation:
    ``"chunked"`` densifies row blocks (O(chunk · n) peak memory),
    ``"csr"`` is the sparse-to-sparse kernel that touches only each
    row's stored nonzeros against the sink's in-column (O(n) peak) and
    ``"auto"`` (default) picks CSR below an edge-density cutoff.
    Ignored under the dense backend.
    """
    if sparse_kernel not in SPARSE_FLOW_KERNELS:
        raise ValueError(
            f"sparse_kernel must be one of {SPARSE_FLOW_KERNELS}, "
            f"got {sparse_kernel!r}"
        )
    ids = sorted(graph.nodes() | {sink} | set(sources))
    idx = {p: i for i, p in enumerate(ids)}
    t = idx[sink]
    if graph.matrix_backend == "sparse":
        if sparse_kernel == "auto":
            density = graph.num_edges() / max(1, len(ids)) ** 2
            sparse_kernel = "csr" if density <= _CSR_DENSITY_CUTOFF else "chunked"
        if sparse_kernel == "csr":
            return _two_hop_flows_csr(graph, list(sources), sink, ids, idx, t)
        return _two_hop_flows_sparse(graph, list(sources), sink, ids, idx, t)
    W = graph.to_matrix(ids)
    col = W[:, t]
    support = np.flatnonzero(col)
    colv = np.ascontiguousarray(col[support])
    flows = col + np.minimum(W[:, support], colv[None, :]).sum(axis=1)
    flows[t] = 0.0
    return flows[[idx[s] for s in sources]]


def _two_hop_flows_sparse(
    graph: SubjectiveGraph,
    sources: Sequence[str],
    sink: str,
    ids: Sequence[str],
    idx: Dict[str, int],
    t: int,
) -> np.ndarray:
    """Chunked evaluation of the 2-hop closed form for sparse graphs:
    dense row blocks of at most ``_SPARSE_FLOW_CHUNK`` sources, so peak
    memory is O(chunk · n) instead of the dense n².  The min terms are
    sliced down to the sink's in-column support before the row sum, so
    the reduction layout — and therefore every bit — matches the dense
    path and the CSR kernel."""
    n_src = len(sources)
    col = graph.matrix_column(ids, sink)
    support = np.flatnonzero(col)
    colv = np.ascontiguousarray(col[support])
    spos = np.fromiter((idx[s] for s in sources), dtype=np.intp, count=n_src)
    flows = np.empty(n_src, dtype=float)
    for start in range(0, n_src, _SPARSE_FLOW_CHUNK):
        stop = min(start + _SPARSE_FLOW_CHUNK, n_src)
        block = graph.matrix_rows(sources[start:stop], ids)
        flows[start:stop] = col[spos[start:stop]] + np.minimum(
            block[:, support], colv[None, :]
        ).sum(axis=1)
    flows[spos == t] = 0.0
    return flows


def _two_hop_flows_csr(
    graph: SubjectiveGraph,
    sources: Sequence[str],
    sink: str,
    ids: Sequence[str],
    idx: Dict[str, int],
    t: int,
) -> np.ndarray:
    """Sparse-to-sparse 2-hop kernel: CSR rows × sparse in-column.

    Per source row, only the row's stored nonzeros
    (:meth:`~repro.bartercast.graph.SubjectiveGraph.row_nonzeros`) are
    intersected with the sink's in-column support
    (:meth:`~repro.bartercast.graph.SubjectiveGraph.column_nonzeros`)
    — no dense row block is ever materialised, so peak extra memory is
    O(n) scratch (the support buffer plus two translation arrays)
    against the chunked path's O(chunk · n) blocks.

    Bit-identity with the other paths comes from the scatter buffer:
    min terms land at their in-column-support slot and the buffer is
    pairwise-summed in that fixed ascending-position layout, identical
    to the row layout the dense/chunked paths reduce over.  The
    scatter order (rows iterate stored nonzeros in storage order) is
    irrelevant — each slot is written at most once per row."""
    n = len(ids)
    n_src = len(sources)
    cpos, cvals = graph.column_nonzeros(ids, sink)
    # Dense direct-edge lookup and support-slot translation: O(n)
    # scratch, built once per sink.
    direct = np.zeros(n)
    direct[cpos] = cvals
    slot_of = np.full(n, -1, dtype=np.intp)
    slot_of[cpos] = np.arange(cpos.size, dtype=np.intp)
    indptr, indices, data = graph.row_nonzeros(sources, ids)
    buf = np.zeros(cpos.size)
    spos = np.fromiter((idx[s] for s in sources), dtype=np.intp, count=n_src)
    flows = np.empty(n_src, dtype=float)
    for i in range(n_src):
        lo, hi = indptr[i], indptr[i + 1]
        slots = slot_of[indices[lo:hi]]
        keep = slots >= 0
        hit = slots[keep]
        buf[hit] = np.minimum(data[lo:hi][keep], cvals[hit])
        flows[i] = direct[spos[i]] + buf.sum()
        buf[hit] = 0.0
    flows[spos == t] = 0.0
    return flows


def edmonds_karp(
    graph: SubjectiveGraph,
    source: str,
    sink: str,
    max_hops: Optional[int] = None,
) -> float:
    """Max flow from ``source`` to ``sink``.

    With ``max_hops`` set, only augmenting paths of at most that many
    edges are used.  BFS finds shortest augmenting paths first and path
    lengths in Edmonds-Karp are non-decreasing, so the search stops
    cleanly when the shortest remaining path exceeds the bound.

    Note the hop-bounded variant is a heuristic (as in deployed
    BarterCast): residual arcs may admit length-``h`` paths that do not
    correspond to length-``h`` forward paths, so its value can differ
    from "max flow restricted to short paths" in contrived graphs — but
    it always lower-bounds the unbounded max flow and equals
    :func:`two_hop_flow` for ``max_hops=2`` on BarterCast-shaped inputs
    (tested).
    """
    if source == sink:
        return 0.0
    # Residual capacities as nested dicts.
    residual: Dict[str, Dict[str, float]] = {}
    for u, v, w in graph.edges():
        residual.setdefault(u, {})[v] = residual.setdefault(u, {}).get(v, 0.0) + w
        residual.setdefault(v, {}).setdefault(u, 0.0)
    if source not in residual or sink not in residual:
        return 0.0

    total = 0.0
    while True:
        # BFS for the shortest augmenting path.
        parent: Dict[str, str] = {}
        depth = {source: 0}
        queue = deque([source])
        found = False
        while queue and not found:
            u = queue.popleft()
            if max_hops is not None and depth[u] >= max_hops:
                continue
            for v, cap in residual.get(u, {}).items():
                if cap > 1e-12 and v not in depth:
                    depth[v] = depth[u] + 1
                    parent[v] = u
                    if v == sink:
                        found = True
                        break
                    queue.append(v)
        if not found:
            return total
        # Bottleneck along the path.
        path = []
        v = sink
        while v != source:
            u = parent[v]
            path.append((u, v))
            v = u
        bottleneck = min(residual[u][v] for u, v in path)
        for u, v in path:
            residual[u][v] -= bottleneck
            residual[v][u] = residual[v].get(u, 0.0) + bottleneck
        total += bottleneck
