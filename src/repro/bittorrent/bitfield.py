"""Piece possession bitfields.

Backed by a numpy boolean array so set operations used by the piece
picker ("pieces you have that I miss") are vectorised — the guide's
"vectorizing for loops" idiom applied to the simulator's hottest set
algebra.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np


class Bitfield:
    """Which pieces of one file a peer holds."""

    __slots__ = ("_bits", "_count")

    def __init__(self, num_pieces: int, full: bool = False):
        if num_pieces < 1:
            raise ValueError("num_pieces must be >= 1")
        self._bits = np.full(num_pieces, full, dtype=bool)
        self._count = num_pieces if full else 0

    # ------------------------------------------------------------------
    @property
    def num_pieces(self) -> int:
        return int(self._bits.shape[0])

    @property
    def count(self) -> int:
        """Number of pieces held (maintained incrementally)."""
        return self._count

    @property
    def complete(self) -> bool:
        return self._count == self.num_pieces

    @property
    def empty(self) -> bool:
        return self._count == 0

    def has(self, index: int) -> bool:
        return bool(self._bits[index])

    def set(self, index: int) -> bool:
        """Mark a piece held.  Returns ``True`` if it was newly added."""
        if self._bits[index]:
            return False
        self._bits[index] = True
        self._count += 1
        return True

    def fill(self) -> None:
        """Become a full seed bitfield."""
        self._bits[:] = True
        self._count = self.num_pieces

    # ------------------------------------------------------------------
    def missing_mask(self) -> np.ndarray:
        """Boolean mask of pieces not held (view-free copy semantics:
        ``~`` allocates; callers treat it as read-only scratch)."""
        return ~self._bits

    def interesting_mask(self, other: "Bitfield") -> np.ndarray:
        """Pieces ``other`` has that we miss (the 'interested' test)."""
        return other._bits & ~self._bits

    def is_interested_in(self, other: "Bitfield") -> bool:
        """BitTorrent 'interested': other holds ≥1 piece we miss."""
        return bool(np.any(other._bits & ~self._bits))

    def as_array(self) -> np.ndarray:
        """Read-only view of the raw bits (do not mutate)."""
        view = self._bits.view()
        view.flags.writeable = False
        return view

    def held_indices(self) -> List[int]:
        return [int(i) for i in np.flatnonzero(self._bits)]

    @classmethod
    def from_indices(cls, num_pieces: int, indices: Iterable[int]) -> "Bitfield":
        bf = cls(num_pieces)
        for i in indices:
            bf.set(int(i))
        return bf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bitfield({self._count}/{self.num_pieces})"
