"""Piece selection: rarest-first with random-first bootstrap.

The picker ranks candidate pieces (pieces the uploader holds and the
downloader misses) by swarm-wide availability and picks the rarest,
breaking ties uniformly at random.  Until the downloader holds
``random_first_threshold`` pieces it instead picks uniformly among
candidates — mainline BitTorrent's "random first piece" policy that
gets a fresh peer tradeable material quickly.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bittorrent.bitfield import Bitfield


class PiecePicker:
    """Swarm-wide piece availability plus the selection policy.

    One picker exists per swarm; it maintains ``availability[i]`` =
    number of *connected* swarm members holding piece ``i``, updated
    incrementally on join/leave/piece-completed (O(pieces) only on
    membership changes, O(1) per completed piece).
    """

    def __init__(
        self,
        num_pieces: int,
        rng: np.random.Generator,
        random_first_threshold: int = 4,
    ):
        if num_pieces < 1:
            raise ValueError("num_pieces must be >= 1")
        self.num_pieces = num_pieces
        self.availability = np.zeros(num_pieces, dtype=np.int32)
        self._rng = rng
        self.random_first_threshold = random_first_threshold

    # ------------------------------------------------------------------
    # Availability maintenance
    # ------------------------------------------------------------------
    def peer_joined(self, bitfield: Bitfield) -> None:
        self.availability += bitfield.as_array()

    def peer_left(self, bitfield: Bitfield) -> None:
        self.availability -= bitfield.as_array()

    def piece_completed(self, index: int) -> None:
        self.availability[index] += 1

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def pick(
        self,
        downloader: Bitfield,
        uploader: Bitfield,
        exclude: Optional[np.ndarray] = None,
    ) -> Optional[int]:
        """Choose the next piece to fetch from ``uploader``.

        ``exclude`` is an optional boolean mask of pieces already being
        fetched this round (avoids duplicate work across links).
        Returns a piece index, or ``None`` when nothing is available.
        """
        candidates = downloader.interesting_mask(uploader)
        if exclude is not None:
            candidates &= ~exclude
        idx = np.flatnonzero(candidates)
        if idx.size == 0:
            return None
        if downloader.count < self.random_first_threshold:
            return int(idx[self._rng.integers(0, idx.size)])
        avail = self.availability[idx]
        rarest = idx[avail == avail.min()]
        if rarest.size == 1:
            return int(rarest[0])
        return int(rarest[self._rng.integers(0, rarest.size)])

    def pick_many(
        self,
        downloader: Bitfield,
        uploader: Bitfield,
        k: int,
        exclude: Optional[np.ndarray] = None,
    ) -> List[int]:
        """Pick up to ``k`` distinct pieces (used when a round's budget
        covers multiple pieces from one uploader)."""
        taken: List[int] = []
        mask = np.zeros(self.num_pieces, dtype=bool) if exclude is None else exclude.copy()
        for _ in range(k):
            piece = self.pick(downloader, uploader, exclude=mask)
            if piece is None:
                break
            mask[piece] = True
            taken.append(piece)
        return taken
