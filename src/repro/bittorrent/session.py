"""Trace-driven BitTorrent session driver.

Binds the swarm engine to the discrete-event engine: replays a
:class:`~repro.traces.model.Trace` (sessions up/down, swarm join/leave)
and runs every swarm's transfer round on a fixed cadence.  Higher
layers (PSS, BarterCast, the vote-sampling node runtime) subscribe to
its online/offline hooks and read the shared
:class:`~repro.bittorrent.ledger.TransferLedger`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.bittorrent.ledger import TransferLedger
from repro.bittorrent.swarm import Swarm, SwarmConfig
from repro.pss.base import OnlineRegistry
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.traces.model import EventKind, Trace


@dataclass
class SessionConfig:
    """Driver parameters."""

    swarm: SwarmConfig = field(default_factory=SwarmConfig)
    #: Interval between transfer rounds across all swarms.
    round_interval: float = 30.0

    def __post_init__(self) -> None:
        if self.round_interval <= 0:
            raise ValueError("round_interval must be positive")


class BitTorrentSession:
    """Replays one trace on one engine.

    Usage::

        engine = Engine()
        session = BitTorrentSession(engine, trace, rng=RngRegistry(0))
        session.start()
        engine.run_until(trace.duration)
    """

    def __init__(
        self,
        engine: Engine,
        trace: Trace,
        rng: RngRegistry,
        config: Optional[SessionConfig] = None,
        registry: Optional[OnlineRegistry] = None,
        ledger: Optional[TransferLedger] = None,
    ):
        self.engine = engine
        self.trace = trace
        self.config = config or SessionConfig()
        self.registry = registry if registry is not None else OnlineRegistry()
        self.ledger = ledger if ledger is not None else TransferLedger()
        self._rng = rng
        self.swarms: Dict[str, Swarm] = {
            sid: Swarm(spec, self.config.swarm, rng.stream("swarm", sid), self.ledger)
            for sid, spec in trace.swarms.items()
        }
        self._online_listeners: List[Callable[[str, float], None]] = []
        self._offline_listeners: List[Callable[[str, float], None]] = []
        self._started = False
        self._last_round_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_peer_online(self, listener: Callable[[str, float], None]) -> None:
        """``listener(peer_id, now)`` when a peer's session starts."""
        self._online_listeners.append(listener)

    def on_peer_offline(self, listener: Callable[[str, float], None]) -> None:
        """``listener(peer_id, now)`` when a peer's session ends."""
        self._offline_listeners.append(listener)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule all trace events and the recurring transfer round."""
        if self._started:
            raise RuntimeError("session already started")
        self._started = True
        for ev in self.trace.events:
            # Priority mirrors the trace's canonical kind order so
            # same-time events replay in trace order.
            self.engine.schedule_at(
                ev.time, self._apply_event, ev, priority=ev.kind.order
            )
        # Transfer rounds run at low priority (after the trace events at
        # the same timestamp), so a join at t sees its first round at t.
        self._last_round_at = self.engine.now
        self._schedule_next_round()

    def _schedule_next_round(self) -> None:
        self.engine.schedule(
            self.config.round_interval, self._run_rounds, priority=10
        )

    def _run_rounds(self) -> None:
        now = self.engine.now
        assert self._last_round_at is not None
        dt = now - self._last_round_at
        self._last_round_at = now
        if dt > 0:
            for swarm in self.swarms.values():
                if len(swarm.active) >= 2:
                    swarm.run_round(now, dt)
        if now < self.trace.duration:
            self._schedule_next_round()

    # ------------------------------------------------------------------
    def _apply_event(self, ev) -> None:
        now = self.engine.now
        if ev.kind is EventKind.SESSION_START:
            self.registry.set_online(ev.peer_id)
            for listener in self._online_listeners:
                listener(ev.peer_id, now)
        elif ev.kind is EventKind.SESSION_END:
            # Leave any swarms the peer is still in (safety net; traces
            # normally emit explicit leaves first).
            for swarm in self.swarms.values():
                swarm.leave(ev.peer_id, now)
            self.registry.set_offline(ev.peer_id)
            for listener in self._offline_listeners:
                listener(ev.peer_id, now)
        elif ev.kind is EventKind.SWARM_JOIN:
            profile = self.trace.peers[ev.peer_id]
            self.swarms[ev.swarm_id].join(profile, now)
        elif ev.kind is EventKind.SWARM_LEAVE:
            self.swarms[ev.swarm_id].leave(ev.peer_id, now)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Convenience: start (if needed) and run to ``until`` (defaults
        to the trace horizon)."""
        if not self._started:
            self.start()
        self.engine.run_until(until if until is not None else self.trace.duration)
