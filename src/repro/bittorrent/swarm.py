"""Swarm state and the round-based transfer engine.

Each swarm advances in fixed *rounds* (default 30 s — a small multiple
of mainline's 10 s choke interval).  A round:

1. recomputes interest and runs every active peer's choker;
2. allocates rates — an uploader splits its capacity evenly across its
   unchoked+interested links, then each downloader's incoming rates are
   scaled down to its download capacity;
3. moves bytes along links, converting them into pieces via
   rarest-first picking (partial pieces carry over between rounds);
4. handles completions: altruists keep seeding, free-riders leave the
   swarm immediately (the behaviour split §VI simulates).

Piece identity is tracked end-to-end: a downloader only ever completes
pieces its uploader actually holds, in-flight pieces are not picked
twice, and the final piece costs only the file remainder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from repro.bittorrent.bitfield import Bitfield
from repro.bittorrent.choker import Choker, ChokerConfig
from repro.bittorrent.ledger import TransferLedger
from repro.bittorrent.picker import PiecePicker
from repro.traces.model import PeerProfile, SwarmSpec


@dataclass
class SwarmConfig:
    """Per-swarm engine parameters."""

    max_connections: int = 30
    round_interval: float = 30.0
    random_first_threshold: int = 4
    choker: ChokerConfig = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if self.round_interval <= 0:
            raise ValueError("round_interval must be positive")
        if self.choker is None:
            self.choker = ChokerConfig()


class SwarmPeer:
    """Per-(swarm, peer) state.  Survives across sessions so partial
    downloads resume, mirroring a real client's disk state."""

    __slots__ = (
        "profile",
        "bitfield",
        "choker",
        "active",
        "received_last_round",
        "accum",
        "in_flight",
        "in_flight_mask",
        "completed_at",
    )

    def __init__(self, profile: PeerProfile, num_pieces: int, choker: Choker):
        self.profile = profile
        self.bitfield = Bitfield(num_pieces)
        self.choker = choker
        self.active = False
        #: bytes received per uploader during the current round (t4t signal)
        self.received_last_round: Dict[str, float] = {}
        #: partial-piece bytes accumulated per uploader
        self.accum: Dict[str, float] = {}
        #: piece currently being fetched from each uploader
        self.in_flight: Dict[str, int] = {}
        self.in_flight_mask = np.zeros(num_pieces, dtype=bool)
        self.completed_at: Optional[float] = None

    @property
    def peer_id(self) -> str:
        return self.profile.peer_id

    def reset_link_state(self) -> None:
        """Drop in-flight transfer state (on leave: connections die)."""
        self.received_last_round = {}
        self.accum = {}
        self.in_flight = {}
        self.in_flight_mask[:] = False


class Swarm:
    """One torrent's swarm: membership, connections, and transfers."""

    def __init__(
        self,
        spec: SwarmSpec,
        config: SwarmConfig,
        rng: np.random.Generator,
        ledger: TransferLedger,
    ):
        self.spec = spec
        self.config = config
        self._rng = rng
        self.ledger = ledger
        self.num_pieces = spec.num_pieces
        self.picker = PiecePicker(
            self.num_pieces, rng, random_first_threshold=config.random_first_threshold
        )
        #: every peer that ever joined (bitfields persist)
        self.members: Dict[str, SwarmPeer] = {}
        #: currently active members
        self.active: Dict[str, SwarmPeer] = {}
        self.neighbors: Dict[str, Set[str]] = {}
        self.rounds_run = 0
        self._completion_listeners: List[Callable[[str, str, float], None]] = []
        # Piece cost: uniform except the final remainder piece.
        last = spec.file_size - (self.num_pieces - 1) * spec.piece_size
        self._last_piece_cost = max(last, 1.0)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def piece_cost(self, index: int) -> float:
        if index == self.num_pieces - 1:
            return self._last_piece_cost
        return self.spec.piece_size

    def add_completion_listener(
        self, listener: Callable[[str, str, float], None]
    ) -> None:
        """``listener(peer_id, swarm_id, now)`` on download completion."""
        self._completion_listeners.append(listener)

    def progress_of(self, peer_id: str) -> float:
        member = self.members.get(peer_id)
        if member is None:
            return 0.0
        return member.bitfield.count / self.num_pieces

    def seeds(self) -> List[str]:
        return [p for p, m in self.active.items() if m.bitfield.complete]

    def leechers(self) -> List[str]:
        return [p for p, m in self.active.items() if not m.bitfield.complete]

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self, profile: PeerProfile, now: float) -> bool:
        """Add a peer to the active swarm.  Returns ``False`` if the
        join is refused/meaningless (already active, or a free-rider
        that already holds the full file — it has nothing to gain and
        will not seed)."""
        pid = profile.peer_id
        member = self.members.get(pid)
        if member is None:
            choker = Choker(self.config.choker, self._rng)
            member = SwarmPeer(profile, self.num_pieces, choker)
            if self.spec.initial_seeder == pid:
                member.bitfield.fill()
                member.completed_at = now
            self.members[pid] = member
        if member.active:
            return False
        if profile.free_rider and member.bitfield.complete:
            return False
        member.active = True
        self.active[pid] = member
        self.picker.peer_joined(member.bitfield)
        self._connect(pid)
        return True

    def leave(self, peer_id: str, now: float) -> None:
        """Remove a peer from the active swarm.  Idempotent."""
        member = self.active.pop(peer_id, None)
        if member is None:
            return
        member.active = False
        member.reset_link_state()
        self.picker.peer_left(member.bitfield)
        for nb in self.neighbors.pop(peer_id, set()):
            self.neighbors.get(nb, set()).discard(peer_id)

    def _connect(self, pid: str) -> None:
        """Open connections to up to ``max_connections`` active members,
        respecting connectability (two firewalled peers cannot connect)."""
        me = self.members[pid].profile
        mine = self.neighbors.setdefault(pid, set())
        candidates = [
            other
            for other in self.active
            if other != pid
            and other not in mine
            and (me.connectable or self.members[other].profile.connectable)
            and len(self.neighbors.get(other, ())) < 4 * self.config.max_connections
        ]
        budget = self.config.max_connections - len(mine)
        if budget <= 0 or not candidates:
            return
        if len(candidates) > budget:
            picks = self._rng.choice(len(candidates), size=budget, replace=False)
            chosen = [candidates[int(i)] for i in picks]
        else:
            chosen = candidates
        for other in chosen:
            mine.add(other)
            self.neighbors.setdefault(other, set()).add(pid)

    # ------------------------------------------------------------------
    # Round engine
    # ------------------------------------------------------------------
    def run_round(self, now: float, dt: Optional[float] = None) -> float:
        """Advance the swarm by one round of ``dt`` seconds.

        Returns the number of bytes transferred this round.
        """
        dt = dt if dt is not None else self.config.round_interval
        self.rounds_run += 1
        if len(self.active) < 2:
            return 0.0
        links = self._choke_and_link()
        if not links:
            # Reset t4t signal so stale rates do not linger.
            for member in self.active.values():
                member.received_last_round = {}
            return 0.0
        moved = self._transfer(links, now, dt)
        self._handle_completions(now)
        return moved

    def _choke_and_link(self) -> List[tuple]:
        """Run every active peer's choker; return (uploader, downloader)
        links that are unchoked *and* interested."""
        links: List[tuple] = []
        # Stable iteration order for determinism.
        order = sorted(self.active)
        interest: Dict[str, List[str]] = {}
        for pid in order:
            member = self.active[pid]
            nbs = sorted(self.neighbors.get(pid, ()))
            interested_in_me = [
                nb
                for nb in nbs
                if nb in self.active
                and self.active[nb].bitfield.is_interested_in(member.bitfield)
            ]
            interest[pid] = interested_in_me
        for pid in order:
            member = self.active[pid]
            unchoked = member.choker.select(
                interest[pid],
                member.received_last_round,
                seeding=member.bitfield.complete,
            )
            for d in unchoked:
                links.append((pid, d))
        return links

    def _transfer(self, links: List[tuple], now: float, dt: float) -> float:
        # Upload-side allocation: capacity split evenly across links.
        out_degree: Dict[str, int] = {}
        for u, _d in links:
            out_degree[u] = out_degree.get(u, 0) + 1
        rates: Dict[tuple, float] = {}
        in_sum: Dict[str, float] = {}
        for u, d in links:
            r = self.active[u].profile.upload_capacity / out_degree[u]
            rates[(u, d)] = r
            in_sum[d] = in_sum.get(d, 0.0) + r
        # Download-side cap: proportional scale-down.
        scale: Dict[str, float] = {}
        for d, total in in_sum.items():
            cap = self.active[d].profile.download_capacity
            scale[d] = min(1.0, cap / total) if total > 0 else 1.0
        # Reset this round's reception record.
        for pid in self.active:
            self.active[pid].received_last_round = {}
        moved = 0.0
        for (u, d), r in rates.items():
            nbytes = r * scale[d] * dt
            if nbytes <= 0:
                continue
            delivered = self._deliver(u, d, nbytes, now)
            if delivered > 0:
                moved += delivered
        return moved

    def _deliver(self, u: str, d: str, nbytes: float, now: float) -> float:
        """Move up to ``nbytes`` from ``u`` to ``d``, completing pieces."""
        down = self.active[d]
        up = self.active[u]
        budget = nbytes
        delivered = 0.0
        while budget > 0:
            piece = down.in_flight.get(u)
            if piece is None:
                piece = self.picker.pick(
                    down.bitfield, up.bitfield, exclude=down.in_flight_mask
                )
                if piece is None:
                    break  # nothing (more) to fetch from u
                down.in_flight[u] = piece
                down.in_flight_mask[piece] = True
                down.accum[u] = 0.0
            cost = self.piece_cost(piece)
            need = cost - down.accum.get(u, 0.0)
            take = min(budget, need)
            down.accum[u] = down.accum.get(u, 0.0) + take
            budget -= take
            delivered += take
            if down.accum[u] >= cost - 1e-9:
                # Piece complete.
                down.in_flight.pop(u, None)
                down.in_flight_mask[piece] = False
                down.accum[u] = 0.0
                if down.bitfield.set(piece):
                    self.picker.piece_completed(piece)
                if down.bitfield.complete:
                    break
        if delivered > 0:
            self.ledger.record(u, d, delivered, now)
            down.received_last_round[u] = (
                down.received_last_round.get(u, 0.0) + delivered
            )
        return delivered

    def _handle_completions(self, now: float) -> None:
        finished = [
            pid
            for pid, m in self.active.items()
            if m.bitfield.complete and m.completed_at is None
        ]
        for pid in finished:
            member = self.active[pid]
            member.completed_at = now
            for listener in self._completion_listeners:
                listener(pid, self.spec.swarm_id, now)
            if member.profile.free_rider:
                # Free-riders leave as soon as the download completes.
                self.leave(pid, now)
