"""Swarm-level statistics.

Instrumentation over :class:`~repro.bittorrent.swarm.Swarm` /
:class:`~repro.bittorrent.session.BitTorrentSession`: download
completion times, seeder/leecher population series, and per-peer
throughput — the numbers a tracker operator (or a paper's §VI) reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.bittorrent.session import BitTorrentSession
from repro.bittorrent.swarm import Swarm


@dataclass
class CompletionRecord:
    """One finished download."""

    peer_id: str
    swarm_id: str
    completed_at: float


@dataclass
class SwarmSnapshot:
    """Seeder/leecher census of one swarm at one instant."""

    time: float
    seeds: int
    leechers: int

    @property
    def total(self) -> int:
        return self.seeds + self.leechers


class SwarmStats:
    """Collects completions and periodic censuses across all swarms.

    Attach before the run::

        stats = SwarmStats(session)
        stats.install()
        session.run()
        print(stats.completion_times())
    """

    def __init__(self, session: BitTorrentSession, census_interval: float = 3600.0):
        if census_interval <= 0:
            raise ValueError("census_interval must be positive")
        self.session = session
        self.census_interval = census_interval
        self.completions: List[CompletionRecord] = []
        self.censuses: Dict[str, List[SwarmSnapshot]] = {
            sid: [] for sid in session.swarms
        }
        self._installed = False

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Register listeners and schedule the census loop."""
        if self._installed:
            raise RuntimeError("already installed")
        self._installed = True
        for swarm in self.session.swarms.values():
            swarm.add_completion_listener(self._on_completion)
        self.session.engine.schedule(
            self.census_interval, self._census, priority=90
        )

    def _on_completion(self, peer_id: str, swarm_id: str, now: float) -> None:
        self.completions.append(CompletionRecord(peer_id, swarm_id, now))

    def _census(self) -> None:
        now = self.session.engine.now
        for sid, swarm in self.session.swarms.items():
            self.censuses[sid].append(
                SwarmSnapshot(
                    time=now,
                    seeds=len(swarm.seeds()),
                    leechers=len(swarm.leechers()),
                )
            )
        if now < self.session.trace.duration:
            self.session.engine.schedule(
                self.census_interval, self._census, priority=90
            )

    # ------------------------------------------------------------------
    def completion_times(self, swarm_id: Optional[str] = None) -> List[float]:
        """Completion timestamps, optionally for one swarm."""
        return [
            c.completed_at
            for c in self.completions
            if swarm_id is None or c.swarm_id == swarm_id
        ]

    def completions_by_swarm(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for c in self.completions:
            out[c.swarm_id] = out.get(c.swarm_id, 0) + 1
        return out

    def mean_seed_leecher_ratio(self, swarm_id: str) -> float:
        """Time-averaged seeds/(leechers+1) — availability health."""
        snaps = self.censuses.get(swarm_id, [])
        if not snaps:
            return 0.0
        return float(np.mean([s.seeds / (s.leechers + 1) for s in snaps]))

    def peak_swarm_size(self, swarm_id: str) -> int:
        snaps = self.censuses.get(swarm_id, [])
        return max((s.total for s in snaps), default=0)

    def throughput_by_peer(self) -> Dict[str, float]:
        """Total uploaded bytes per peer (from the shared ledger)."""
        ledger = self.session.ledger
        peers = set(self.session.trace.peers)
        return {p: ledger.uploaded_by(p) for p in peers}


def download_duration(swarm: Swarm, peer_id: str, joined_at: float) -> Optional[float]:
    """Seconds from ``joined_at`` to the peer's completion, if any."""
    member = swarm.members.get(peer_id)
    if member is None or member.completed_at is None:
        return None
    return max(0.0, member.completed_at - joined_at)
