"""Piece-level BitTorrent swarm simulator.

Section VI of the paper: "Our simulations operate at the BitTorrent
file piece level.  This means we simulate every action that a
BitTorrent client would need to take, down to the exchange of file
chunks, peer choking and piece selection."

This package is that simulator:

* :mod:`repro.bittorrent.bitfield` — piece possession bitfields;
* :mod:`repro.bittorrent.picker` — rarest-first (+ random-first) piece
  selection;
* :mod:`repro.bittorrent.choker` — tit-for-tat choking with optimistic
  unchoke; seeds use round-robin unchoking;
* :mod:`repro.bittorrent.swarm` — per-swarm state, connectability
  rules, round-based rate allocation and piece completion;
* :mod:`repro.bittorrent.ledger` — the directed transfer ledger that
  BarterCast consumes;
* :mod:`repro.bittorrent.session` — the trace-driven session driver
  that binds everything to the discrete-event engine.
"""

from repro.bittorrent.bitfield import Bitfield
from repro.bittorrent.choker import Choker, ChokerConfig
from repro.bittorrent.ledger import TransferLedger
from repro.bittorrent.picker import PiecePicker
from repro.bittorrent.session import BitTorrentSession, SessionConfig
from repro.bittorrent.swarm import Swarm, SwarmConfig

__all__ = [
    "Bitfield",
    "Choker",
    "ChokerConfig",
    "TransferLedger",
    "PiecePicker",
    "BitTorrentSession",
    "SessionConfig",
    "Swarm",
    "SwarmConfig",
]
