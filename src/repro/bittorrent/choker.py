"""Choking: tit-for-tat with optimistic unchoke.

Every choke round each leecher unchokes the ``regular_slots`` peers
that uploaded to it fastest in the previous round (reciprocity) plus
one optimistic slot rotated every ``optimistic_rounds`` rounds.  Seeds
have nothing to reciprocate, so they unchoke round-robin over
interested peers — spreading upload (and hence BarterCast credit)
across the swarm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass
class ChokerConfig:
    """Choking parameters (mainline defaults)."""

    regular_slots: int = 3
    optimistic_slots: int = 1
    #: Optimistic unchoke rotates every this many choke rounds.
    optimistic_rounds: int = 3

    def __post_init__(self) -> None:
        if self.regular_slots < 0 or self.optimistic_slots < 0:
            raise ValueError("slot counts must be non-negative")
        if self.regular_slots + self.optimistic_slots < 1:
            raise ValueError("need at least one unchoke slot")
        if self.optimistic_rounds < 1:
            raise ValueError("optimistic_rounds must be >= 1")


class Choker:
    """Per-peer choking state machine.

    The owner calls :meth:`select` once per choke round with the
    current interested neighbours and the bytes each of them uploaded
    to the owner in the last round; it returns the unchoke set.
    """

    def __init__(self, config: ChokerConfig, rng: np.random.Generator):
        self.config = config
        self._rng = rng
        self._round = 0
        self._optimistic: List[str] = []
        self._rr_cursor = 0

    def select(
        self,
        interested: Sequence[str],
        received_from: Dict[str, float],
        seeding: bool,
    ) -> List[str]:
        """Unchoke decision for this round.

        Parameters
        ----------
        interested:
            Neighbours currently interested in our pieces (stable order
            supplied by the swarm for determinism).
        received_from:
            Bytes received from each neighbour during the last round —
            the tit-for-tat signal.
        seeding:
            ``True`` once our download is complete.
        """
        self._round += 1
        cfg = self.config
        total_slots = cfg.regular_slots + cfg.optimistic_slots
        if not interested:
            self._optimistic = []
            return []
        if len(interested) <= total_slots:
            return list(interested)
        if seeding:
            return self._seed_select(interested, total_slots)
        return self._leech_select(list(interested), received_from)

    # ------------------------------------------------------------------
    def _seed_select(self, interested: Sequence[str], slots: int) -> List[str]:
        """Round-robin over interested peers, advancing each round."""
        n = len(interested)
        start = self._rr_cursor % n
        picked = [interested[(start + i) % n] for i in range(slots)]
        self._rr_cursor = (start + slots) % n
        return picked

    def _leech_select(
        self, interested: List[str], received_from: Dict[str, float]
    ) -> List[str]:
        cfg = self.config
        # Reciprocity: fastest recent uploaders first; stable tie-break
        # on peer id keeps runs deterministic.
        ranked = sorted(
            interested,
            key=lambda p: (-received_from.get(p, 0.0), p),
        )
        regular = ranked[: cfg.regular_slots]
        pool = [p for p in interested if p not in regular]
        # Rotate the optimistic pick every optimistic_rounds rounds or
        # when the current pick disappeared / got promoted.
        rotate = (
            (self._round - 1) % cfg.optimistic_rounds == 0
            or not self._optimistic
            or any(p not in pool for p in self._optimistic)
        )
        if rotate:
            self._optimistic = []
            if pool and cfg.optimistic_slots > 0:
                k = min(cfg.optimistic_slots, len(pool))
                picks = self._rng.choice(len(pool), size=k, replace=False)
                self._optimistic = [pool[int(i)] for i in picks]
        return regular + self._optimistic
