"""Directed transfer ledger.

Records cumulative bytes transferred between ordered peer pairs.  This
is the ground truth the BarterCast layer consumes: each peer's *own
direct statistics* are exactly its rows/columns here, and the
simulator's instrumentation can read global totals for metrics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Tuple


class TransferLedger:
    """Cumulative ``bytes[u → d]`` with per-peer views.

    Listeners (e.g. BarterCast local records) receive every transfer as
    ``listener(uploader, downloader, nbytes, now)``.
    """

    def __init__(self) -> None:
        self._sent: Dict[str, Dict[str, float]] = defaultdict(dict)
        self._received: Dict[str, Dict[str, float]] = defaultdict(dict)
        self.total_bytes = 0.0
        self._listeners: List[Callable[[str, str, float, float], None]] = []

    def add_listener(self, listener: Callable[[str, str, float, float], None]) -> None:
        self._listeners.append(listener)

    def record(self, uploader: str, downloader: str, nbytes: float, now: float) -> None:
        """Record ``nbytes`` flowing ``uploader → downloader`` at ``now``."""
        if nbytes <= 0:
            return
        if uploader == downloader:
            raise ValueError("self-transfer is meaningless")
        row = self._sent[uploader]
        row[downloader] = row.get(downloader, 0.0) + nbytes
        col = self._received[downloader]
        col[uploader] = col.get(uploader, 0.0) + nbytes
        self.total_bytes += nbytes
        for listener in self._listeners:
            listener(uploader, downloader, nbytes, now)

    # ------------------------------------------------------------------
    def sent(self, uploader: str, downloader: str) -> float:
        """Total bytes ``uploader`` sent to ``downloader``."""
        return self._sent.get(uploader, {}).get(downloader, 0.0)

    def uploaded_by(self, peer: str) -> float:
        """Total bytes uploaded by ``peer`` to anyone."""
        return sum(self._sent.get(peer, {}).values())

    def downloaded_by(self, peer: str) -> float:
        """Total bytes downloaded by ``peer`` from anyone."""
        return sum(self._received.get(peer, {}).values())

    def upload_partners(self, peer: str) -> Dict[str, float]:
        """Copy of ``{downloader: bytes}`` for ``peer``'s uploads."""
        return dict(self._sent.get(peer, {}))

    def download_partners(self, peer: str) -> Dict[str, float]:
        """Copy of ``{uploader: bytes}`` for ``peer``'s downloads."""
        return dict(self._received.get(peer, {}))

    def edges(self) -> List[Tuple[str, str, float]]:
        """All ``(uploader, downloader, bytes)`` edges (metrics use)."""
        return [
            (u, d, b)
            for u, row in self._sent.items()
            for d, b in row.items()
        ]

    def sharing_ratio(self, peer: str) -> float:
        """Upload/download ratio (∞-safe: 0 download ⇒ ratio of upload)."""
        down = self.downloaded_by(peer)
        up = self.uploaded_by(peer)
        return up / down if down > 0 else up
