"""Convergence/recovery extraction from experiment time series."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.metrics.timeseries import TimeSeries


def time_to_fraction(series: TimeSeries, target: float) -> Optional[float]:
    """First sample time at which the series reaches ``target``
    (``None`` if it never does)."""
    values = series.values
    times = series.times
    hits = np.flatnonzero(values >= target)
    if hits.size == 0:
        return None
    return float(times[hits[0]])


def recovery_time(
    series: TimeSeries, fraction_of_peak: float = 0.5
) -> Optional[float]:
    """Time from the series' peak until it first falls to
    ``fraction_of_peak × peak`` (``None`` if it never recovers).

    Used on Fig 8 pollution curves: the paper's "most new nodes are
    defeated … for approximately 24 hours" is the recovery time of the
    2× attack curve.
    """
    if not (0.0 < fraction_of_peak < 1.0):
        raise ValueError("fraction_of_peak must be in (0, 1)")
    values = series.values
    times = series.times
    if values.size == 0 or values.max() <= 0.0:
        return None
    peak_idx = int(values.argmax())
    threshold = values[peak_idx] * fraction_of_peak
    after = values[peak_idx:]
    hits = np.flatnonzero(after <= threshold)
    if hits.size == 0:
        return None
    return float(times[peak_idx + hits[0]] - times[peak_idx])
