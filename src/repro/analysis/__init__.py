"""Analysis tools.

§V-A frames BallotBox as every peer running its own opinion poll:
"Assuming the PSS produces random samples and ``B_max`` is large enough
then we can expect the local cache to converge to a reasonable
accuracy."  This package quantifies that claim:

* :mod:`repro.analysis.sampling` — ground-truth vote shares, per-node
  estimates, sampling error, and the binomial error bound the poll
  analogy predicts;
* :mod:`repro.analysis.convergence` — time-to-threshold and
  peak-recovery extraction from experiment time series.
"""

from repro.analysis.convergence import recovery_time, time_to_fraction
from repro.analysis.sampling import (
    ballot_share_estimate,
    binomial_error_bound,
    mean_estimation_error,
    true_vote_shares,
)

__all__ = [
    "recovery_time",
    "time_to_fraction",
    "ballot_share_estimate",
    "binomial_error_bound",
    "mean_estimation_error",
    "true_vote_shares",
]
