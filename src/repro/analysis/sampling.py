"""Sampling accuracy of the BallotBox "opinion poll".

Ground truth is the population of local vote lists: for moderator *m*,
the true positive share is ``p_m = (#peers voting +m) / (#peers voting
on m)``.  A node's ballot box estimates ``p_m`` from at most ``B_max``
sampled voters; if the PSS is uniform the estimate is a without-
replacement binomial sample, so its standard error is bounded by
``1 / (2 · sqrt(n))`` — the classic opinion-poll bound the paper's
analogy invokes.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional

from repro.core.ballotbox import BallotBox
from repro.core.votes import LocalVoteList, Vote


def true_vote_shares(
    vote_lists: Mapping[str, LocalVoteList]
) -> Dict[str, float]:
    """Population ground truth: positive share per moderator.

    Only moderators with at least one vote appear.
    """
    pos: Dict[str, int] = {}
    total: Dict[str, int] = {}
    for vl in vote_lists.values():
        for entry in vl.entries():
            total[entry.moderator_id] = total.get(entry.moderator_id, 0) + 1
            if entry.vote is Vote.POSITIVE:
                pos[entry.moderator_id] = pos.get(entry.moderator_id, 0) + 1
    return {m: pos.get(m, 0) / t for m, t in total.items()}


def ballot_share_estimate(
    ballot_box: BallotBox, moderator_id: str
) -> Optional[float]:
    """The node's estimate of a moderator's positive share, or ``None``
    if its sample holds no votes on that moderator."""
    p, n = ballot_box.counts(moderator_id)
    if p + n == 0:
        return None
    return p / (p + n)


def mean_estimation_error(
    ballot_boxes: Iterable[BallotBox],
    truth: Mapping[str, float],
) -> float:
    """Mean absolute error of per-node share estimates vs ground truth,
    averaged over (node, moderator) pairs where the node has a sample.

    Nodes with no sample for any moderator contribute nothing — the
    metric measures *accuracy of estimates*, not coverage.
    """
    total_err = 0.0
    count = 0
    for bb in ballot_boxes:
        for m, p_true in truth.items():
            est = ballot_share_estimate(bb, m)
            if est is None:
                continue
            total_err += abs(est - p_true)
            count += 1
    return total_err / count if count else 0.0


def binomial_error_bound(sample_size: int) -> float:
    """Worst-case standard error of a share estimate from ``n``
    independent samples: ``1 / (2·sqrt(n))`` (maximised at p = 1/2)."""
    if sample_size < 1:
        raise ValueError("sample_size must be >= 1")
    return 1.0 / (2.0 * math.sqrt(sample_size))
