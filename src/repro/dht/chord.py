"""Simplified Chord ring with cost accounting.

Faithful pieces: consistent-hash ring placement (BLAKE2 of the peer
id), successor-based ownership, ``m``-entry finger tables, and greedy
closest-preceding-finger routing (O(log n) hops on a fresh ring).

Cost model (message counts, the currency §II argues in):

* **join** — ``m`` finger initialisations, each costing one lookup's
  hops, plus a key-transfer message from the successor;
* **graceful leave** — key transfer + predecessor/successor repair;
* **failure** (session ends without leave — the common case under
  churn) — detected by the successor's stabilisation, costing repair
  messages and losing locally stored keys until re-publication;
* **stabilisation** — each online node, every period, runs one
  successor check and refreshes one finger (Chord's incremental
  schedule): 2 messages.

Fingers go stale between stabilisations: lookups that route through a
node that has since gone offline pay a timeout penalty and retry via
the predecessor finger — counted, like everything else, in messages.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


def chord_id(name: str, bits: int) -> int:
    """Stable ring position for a peer or key name."""
    digest = hashlib.blake2b(name.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % (1 << bits)


@dataclass
class ChordConfig:
    """Ring parameters."""

    bits: int = 16
    #: seconds between per-node stabilisation rounds (cost accounting).
    stabilize_interval: float = 60.0

    def __post_init__(self) -> None:
        if not (4 <= self.bits <= 48):
            raise ValueError("bits must be in [4, 48]")
        if self.stabilize_interval <= 0:
            raise ValueError("stabilize_interval must be positive")


class _Node:
    __slots__ = ("name", "ident", "fingers", "fingers_built_at")

    def __init__(self, name: str, ident: int):
        self.name = name
        self.ident = ident
        #: finger i targets (ident + 2^i); stores ``(ident, name)`` of
        #: the node found.  The name disambiguates liveness: a linear-
        #: probed collision ident can be *recycled* by a later joiner,
        #: so a bare ident cannot tell a dead finger from its impostor.
        self.fingers: List[Tuple[int, str]] = []
        self.fingers_built_at = -1.0


class ChordRing:
    """The ring, its finger tables, and the message ledger."""

    def __init__(self, config: Optional[ChordConfig] = None):
        self.config = config or ChordConfig()
        self._nodes: Dict[str, _Node] = {}
        #: sorted idents of online nodes + ident->name
        self._ring: List[int] = []
        self._by_ident: Dict[int, str] = {}
        # message counters
        self.join_messages = 0
        self.leave_messages = 0
        self.failure_messages = 0
        self.stabilize_messages = 0
        self.lookup_messages = 0
        self.timeouts = 0
        self.keys_lost = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self, name: str, now: float) -> None:
        """Node joins: finger bootstrap + key transfer."""
        if name in self._nodes:
            return
        ident = chord_id(name, self.config.bits)
        while ident in self._by_ident:  # collision: linear probe
            ident = (ident + 1) % (1 << self.config.bits)
        # m finger-init lookups over the *existing* ring (before the
        # newcomer is inserted), each routed from the joining node's
        # successor — the node that introduces it to the ring.
        if self._ring:
            start = self._successor_ident(ident)
            for i in range(self.config.bits):
                target = (ident + (1 << i)) % (1 << self.config.bits)
                hops = self._route_hops(target, start=start)
                self.join_messages += max(1, hops)
            self.join_messages += 1  # key transfer from successor
        node = _Node(name, ident)
        self._nodes[name] = node
        insort(self._ring, ident)
        self._by_ident[ident] = name
        self._build_fingers(node, now)

    def leave(self, name: str, now: float, graceful: bool = False) -> None:
        """Node departs.  Graceful ⇒ handover; otherwise a failure the
        ring pays to detect and repair, losing the node's keys."""
        node = self._nodes.pop(name, None)
        if node is None:
            return
        i = bisect_left(self._ring, node.ident)
        if i < len(self._ring) and self._ring[i] == node.ident:
            self._ring.pop(i)
        self._by_ident.pop(node.ident, None)
        if graceful:
            self.leave_messages += 3  # key transfer + 2 pointer updates
        else:
            self.failure_messages += 4  # detection probe + repair
            self.keys_lost += 1

    def online_count(self) -> int:
        return len(self._ring)

    # ------------------------------------------------------------------
    # Stabilisation
    # ------------------------------------------------------------------
    def stabilize_all(self, now: float) -> None:
        """One stabilisation round for every online node (2 messages
        each) and refresh of its finger table snapshot."""
        for node in self._nodes.values():
            self.stabilize_messages += 2
            self._build_fingers(node, now)

    def _build_fingers(self, node: _Node, now: float) -> None:
        node.fingers = []
        if not self._ring:
            return
        for i in range(self.config.bits):
            target = (node.ident + (1 << i)) % (1 << self.config.bits)
            ident = self._successor_ident(target)
            node.fingers.append((ident, self._by_ident[ident]))
        node.fingers_built_at = now

    def _successor_ident(self, target: int) -> int:
        i = bisect_left(self._ring, target)
        if i == len(self._ring):
            return self._ring[0]
        return self._ring[i]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _route_hops(self, target: int, start: Optional[int] = None) -> int:
        """Hop count of a greedy finger walk on the *current* ring.

        Each hop jumps via the largest power-of-2 finger that does not
        overshoot the target — halving the clockwise distance, i.e.
        O(log n) hops on a fresh ring."""
        if len(self._ring) <= 1:
            return 0
        size = 1 << self.config.bits
        current = self._ring[0] if start is None else start
        hops = 0
        while not self._owns_live(current, target) and hops <= 2 * self.config.bits:
            dist = (target - current) % size
            step = 1 << max(0, dist.bit_length() - 1)
            nxt = self._successor_ident((current + step) % size)
            hops += 1
            if nxt == current:
                break
            current = nxt
        return hops

    def lookup(self, from_name: str, key: str, now: float) -> Tuple[int, bool]:
        """Route a lookup from ``from_name`` to the key's owner using
        the requester's (possibly stale) fingers.

        Returns ``(messages, succeeded)``.  Each hop is one message; a
        hop into a now-offline finger costs a timeout (one extra
        message-equivalent) and falls back to the live successor.
        """
        node = self._nodes.get(from_name)
        if node is None or not self._ring:
            return (0, False)
        target = chord_id(key, self.config.bits)
        size = 1 << self.config.bits
        current = node.ident
        fingers = node.fingers
        messages = 0
        for _ in range(2 * self.config.bits):
            if self._owns_live(current, target):
                self.lookup_messages += messages
                return (messages, True)
            dist = (target - current) % size
            step = 1 << max(0, dist.bit_length() - 1)
            # the requester's stale finger for this step:
            stale = None
            if fingers:
                idx = min(max(0, step.bit_length() - 1), len(fingers) - 1)
                stale = fingers[idx]
            messages += 1
            if stale is not None and self._by_ident.get(stale[0]) != stale[1]:
                # timeout on a dead finger (or a recycled ident now
                # owned by a different node), retry via live ring
                self.timeouts += 1
                messages += 1
            nxt = self._successor_ident((current + step) % size)
            if nxt == current:
                break
            current = nxt
            fingers = []  # remote hops use live routing
        self.lookup_messages += messages
        return (messages, self._owns_live(current, target))

    def _owns_live(self, ident: int, target: int) -> bool:
        if not self._ring:
            return False
        return self._successor_ident(target) == ident

    # ------------------------------------------------------------------
    def total_maintenance_messages(self) -> int:
        return (
            self.join_messages
            + self.leave_messages
            + self.failure_messages
            + self.stabilize_messages
        )
