"""Chord-style DHT substrate (§II's rejected storage design).

"We could have stored metadata in a Distributed Hash Table but these
require explicit leave and join operations which are costly in systems
with high churn … Additionally, search performance is considerably
enhanced if metadata is stored locally because it is not necessary to
perform multi-hop look-ups."

:mod:`repro.dht.chord` implements enough of Chord [Stoica et al. 2001]
to measure both costs on the paper's own traces: ring membership,
finger tables, greedy multi-hop lookups with hop counting, and a
maintenance-message model for join/leave/stabilisation under churn.
The bench ``benchmarks/test_design_dht_vs_gossip.py`` quantifies the
§II argument.
"""

from repro.dht.chord import ChordConfig, ChordRing

__all__ = ["ChordConfig", "ChordRing"]
