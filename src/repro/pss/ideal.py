"""Oracle PSS — the paper's idealised sampling assumption."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.pss.base import OnlineRegistry, PeerSamplingService


class OraclePSS(PeerSamplingService):
    """Uniform random peer from the set of currently online peers.

    This is exactly the service §III assumes ("periodically returns a
    random peer from the entire population of online peers").  Draws
    are O(1) against the registry's swap-remove list.
    """

    def __init__(self, registry: OnlineRegistry, rng: np.random.Generator):
        self._registry = registry
        self._rng = rng

    def sample(self, requester: str) -> Optional[str]:
        n = self._registry.online_count()
        if n == 0 or (n == 1 and self._registry.is_online(requester)):
            return None
        # Rejection-sample the requester out: at most a couple of
        # retries in expectation even for tiny populations.
        for _ in range(64):
            peer = self._registry.peer_at(int(self._rng.integers(0, n)))
            if peer != requester:
                return peer
        return None

    def sample_batch(self, requesters: List[str]) -> List[Optional[str]]:
        """Vectorised :meth:`sample` for a whole due batch.

        The common case — every optimistic draw misses its requester —
        costs one ``integers(0, n, size=m)`` call, which produces
        exactly the integers ``m`` scalar ``integers(0, n)`` calls
        would.  On any collision (a draw hitting its own requester,
        where the scalar path would re-draw) the generator state is
        restored from a snapshot and the batch replays through the
        scalar rejection loop, so the draw sequence is bit-identical
        either way.  ``n == 1`` also takes the scalar path: it is the
        one case where :meth:`sample` may return without drawing.
        """
        m = len(requesters)
        registry = self._registry
        n = registry.online_count()
        if n == 0:
            return [None] * m
        if n == 1 or m < 2:
            return [self.sample(r) for r in requesters]
        rng = self._rng
        state = rng.bit_generator.state
        draws = rng.integers(0, n, size=m)
        peer_at = registry.peer_at
        out: List[str] = [peer_at(i) for i in draws.tolist()]
        for picked, requester in zip(out, requesters):
            if picked == requester:
                rng.bit_generator.state = state
                return [self.sample(r) for r in requesters]
        return out

    def sample_many(self, requester: str, k: int) -> List[str]:
        online = [p for p in self._registry.online_peers() if p != requester]
        if not online:
            return []
        k = min(k, len(online))
        picks = self._rng.choice(len(online), size=k, replace=False)
        return [online[int(i)] for i in picks]
