"""Oracle PSS — the paper's idealised sampling assumption."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.pss.base import OnlineRegistry, PeerSamplingService


class OraclePSS(PeerSamplingService):
    """Uniform random peer from the set of currently online peers.

    This is exactly the service §III assumes ("periodically returns a
    random peer from the entire population of online peers").  Draws
    are O(1) against the registry's swap-remove list.
    """

    def __init__(self, registry: OnlineRegistry, rng: np.random.Generator):
        self._registry = registry
        self._rng = rng

    def sample(self, requester: str) -> Optional[str]:
        n = self._registry.online_count()
        if n == 0 or (n == 1 and self._registry.is_online(requester)):
            return None
        # Rejection-sample the requester out: at most a couple of
        # retries in expectation even for tiny populations.
        for _ in range(64):
            peer = self._registry.peer_at(int(self._rng.integers(0, n)))
            if peer != requester:
                return peer
        return None

    def sample_many(self, requester: str, k: int) -> List[str]:
        online = [p for p in self._registry.online_peers() if p != requester]
        if not online:
            return []
        k = min(k, len(online))
        picks = self._rng.choice(len(online), size=k, replace=False)
        return [online[int(i)] for i in picks]
