"""PSS interface and the online-membership registry."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional


class OnlineRegistry:
    """Tracks which peers are currently online.

    The session driver flips peers online/offline as trace events fire;
    every other component (PSS, protocols, metrics) reads through this
    registry.  Sampling support uses a swap-remove list so both updates
    and uniform draws are O(1) (hot path: one draw per gossip tick per
    node).
    """

    def __init__(self) -> None:
        self._order: List[str] = []
        self._index: Dict[str, int] = {}
        self._listeners: List[Callable[[str, bool], None]] = []

    # ------------------------------------------------------------------
    def set_online(self, peer_id: str) -> None:
        """Mark ``peer_id`` online.  Idempotent."""
        if peer_id in self._index:
            return
        self._index[peer_id] = len(self._order)
        self._order.append(peer_id)
        for listener in self._listeners:
            listener(peer_id, True)

    def set_offline(self, peer_id: str) -> None:
        """Mark ``peer_id`` offline.  Idempotent."""
        i = self._index.pop(peer_id, None)
        if i is None:
            return
        last = self._order.pop()
        if last != peer_id:
            self._order[i] = last
            self._index[last] = i
        for listener in self._listeners:
            listener(peer_id, False)

    def is_online(self, peer_id: str) -> bool:
        return peer_id in self._index

    def online_count(self) -> int:
        return len(self._order)

    def online_peers(self) -> List[str]:
        """Snapshot of online peer ids (copy; safe to mutate)."""
        return list(self._order)

    def peer_at(self, index: int) -> str:
        """Internal-order access used by O(1) uniform sampling."""
        return self._order[index]

    def add_listener(self, listener: Callable[[str, bool], None]) -> None:
        """Register ``listener(peer_id, is_online)`` for status changes."""
        self._listeners.append(listener)

    def __contains__(self, peer_id: str) -> bool:
        return peer_id in self._index

    def __len__(self) -> int:
        return len(self._order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OnlineRegistry(online={len(self._order)})"


class PeerSamplingService(ABC):
    """Interface of §III: return a random online peer."""

    @abstractmethod
    def sample(self, requester: str) -> Optional[str]:
        """A random online peer ≠ ``requester``, or ``None`` if the
        service cannot currently provide one."""

    def sample_many(self, requester: str, k: int) -> List[str]:
        """Up to ``k`` *distinct* random online peers ≠ ``requester``.

        Default implementation draws repeatedly; subclasses may
        override with something more efficient.
        """
        out: List[str] = []
        seen = {requester}
        attempts = 0
        while len(out) < k and attempts < 8 * max(k, 1):
            attempts += 1
            peer = self.sample(requester)
            if peer is None:
                break
            if peer not in seen:
                seen.add(peer)
                out.append(peer)
        return out

    def sample_batch(self, requesters: List[str]) -> List[Optional[str]]:
        """One :meth:`sample` result per requester, in order.

        Must consume the service's RNG exactly as the equivalent
        sequence of scalar :meth:`sample` calls would — batched tick
        dispatch relies on this to stay bit-identical to the scalar
        loop.  The default is that scalar loop; subclasses may
        vectorise (see :class:`~repro.pss.ideal.OraclePSS`).
        """
        return [self.sample(r) for r in requesters]
