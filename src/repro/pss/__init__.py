"""Peer sampling service (PSS).

Section III of the paper assumes "each peer has access to a peer
sampling service which periodically returns a random peer from the
entire population of online peers", implemented in Tribler by the
Newscast variant BuddyCast.  Two implementations are provided:

* :class:`~repro.pss.ideal.OraclePSS` — exactly the paper's
  assumption: a uniform sample over currently-online peers;
* :class:`~repro.pss.newscast.NewscastService` — a real gossip PSS
  (bounded partial views, freshest-c merge, self-healing under churn),
  used by the A3 ablation to show results do not depend on the oracle.
"""

from repro.pss.base import OnlineRegistry, PeerSamplingService
from repro.pss.ideal import OraclePSS
from repro.pss.newscast import NewscastConfig, NewscastService

__all__ = [
    "OnlineRegistry",
    "PeerSamplingService",
    "OraclePSS",
    "NewscastConfig",
    "NewscastService",
]
