"""Newscast-style gossip peer sampling.

Tribler's BuddyCast is a Newscast [Jelasity et al. 2003] variant: each
node keeps a bounded *partial view* of ``(peer, heartbeat)`` descriptors
and periodically swaps views with a random view member; both sides merge
and keep the ``c`` freshest descriptors.  The emergent overlay is
random-like, self-healing under churn, and supports sampling by drawing
from the local view.

The implementation here is population-managed (one
:class:`NewscastService` owns all node views) so the session driver can
flip nodes online/offline and drive gossip ticks without per-node
plumbing, and so the whole service doubles as a
:class:`~repro.pss.base.PeerSamplingService` for the protocol layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.pss.base import OnlineRegistry, PeerSamplingService


@dataclass
class NewscastConfig:
    """Newscast parameters.

    ``view_size`` of 20 matches the literature's robust regime;
    ``bootstrap_size`` models the tracker/superpeer introduction a
    BitTorrent client gets on startup.
    """

    view_size: int = 20
    bootstrap_size: int = 5

    def __post_init__(self) -> None:
        if self.view_size < 1:
            raise ValueError("view_size must be >= 1")
        if self.bootstrap_size < 1:
            raise ValueError("bootstrap_size must be >= 1")


class NewscastService(PeerSamplingService):
    """All Newscast node views plus the sampling interface.

    Lifecycle hooks (called by the session driver):

    * :meth:`node_online` — (re)bootstrap the node's view;
    * :meth:`node_offline` — freeze the view (descriptors pointing at
      the node decay out of other views via freshness);
    * :meth:`gossip_tick` — one active-thread exchange for one node.
    """

    def __init__(
        self,
        registry: OnlineRegistry,
        rng: np.random.Generator,
        config: Optional[NewscastConfig] = None,
    ):
        self._registry = registry
        self._rng = rng
        self.config = config or NewscastConfig()
        self._views: Dict[str, Dict[str, float]] = {}
        self.exchanges = 0
        self.failed_exchanges = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def node_online(self, peer_id: str, now: float) -> None:
        """Bootstrap ``peer_id``'s view from a few online contacts."""
        view = self._views.setdefault(peer_id, {})
        online = [p for p in self._registry.online_peers() if p != peer_id]
        if online:
            k = min(self.config.bootstrap_size, len(online))
            picks = self._rng.choice(len(online), size=k, replace=False)
            for i in picks:
                view[online[int(i)]] = now
        self._trim(peer_id, view)

    def node_offline(self, peer_id: str) -> None:
        """No-op by design: the node keeps its (aging) view for its next
        session; remote descriptors for it age out naturally."""

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def gossip_tick(self, peer_id: str, now: float) -> bool:
        """One active Newscast exchange for ``peer_id``.

        Returns ``True`` if an exchange happened.  A chosen partner that
        is offline is dropped from the view (connection failure) and the
        tick counts as failed.
        """
        view = self._views.get(peer_id)
        if view is None or not self._registry.is_online(peer_id):
            return False
        partner = self._pick_partner(peer_id, view)
        if partner is None:
            # View exhausted/stale — fall back to re-bootstrap, which
            # models asking the introducer again.
            self.node_online(peer_id, now)
            self.failed_exchanges += 1
            return False
        if not self._registry.is_online(partner):
            view.pop(partner, None)
            self.failed_exchanges += 1
            return False
        self._exchange(peer_id, partner, now)
        self.exchanges += 1
        return True

    def _pick_partner(self, peer_id: str, view: Dict[str, float]) -> Optional[str]:
        candidates = list(view.keys())
        if not candidates:
            return None
        return candidates[int(self._rng.integers(0, len(candidates)))]

    def _exchange(self, a: str, b: str, now: float) -> None:
        view_a = self._views.setdefault(a, {})
        view_b = self._views.setdefault(b, {})
        # Each side sends its view plus a fresh self-descriptor.
        sent_a = dict(view_a)
        sent_a[a] = now
        sent_b = dict(view_b)
        sent_b[b] = now
        self._merge(a, view_a, sent_b)
        self._merge(b, view_b, sent_a)

    def _merge(self, owner: str, view: Dict[str, float], incoming: Dict[str, float]) -> None:
        for peer, ts in incoming.items():
            if peer == owner:
                continue
            if peer not in view or ts > view[peer]:
                view[peer] = ts
        self._trim(owner, view)

    def _trim(self, owner: str, view: Dict[str, float]) -> None:
        c = self.config.view_size
        if len(view) <= c:
            return
        # Keep the c freshest; tie-break on peer id for determinism.
        keep = sorted(view.items(), key=lambda kv: (-kv[1], kv[0]))[:c]
        view.clear()
        view.update(keep)

    # ------------------------------------------------------------------
    # Sampling interface
    # ------------------------------------------------------------------
    def sample(self, requester: str) -> Optional[str]:
        """Random member of the requester's view.

        Unlike the oracle, a Newscast sample may be stale; callers see
        ``None`` only when the view is empty.  Offline picks are
        reported as-is — the protocol layer treats them as failed
        connections, exactly as a deployed client would.
        """
        view = self._views.get(requester)
        if not view:
            return None
        candidates = list(view.keys())
        return candidates[int(self._rng.integers(0, len(candidates)))]

    def view_of(self, peer_id: str) -> Dict[str, float]:
        """Copy of a node's current view (tests / metrics)."""
        return dict(self._views.get(peer_id, {}))

    def view_sizes(self) -> Dict[str, int]:
        return {p: len(v) for p, v in self._views.items()}
