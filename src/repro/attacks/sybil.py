"""Sybil attack: one operator, many cheap identities (§V-B).

Operationally a Sybil attack on this system *is* a flash crowd — the
identities all behave like :class:`~repro.attacks.spam.SpamColluderNode`
— but modelling the operator separately makes the paper's cost argument
measurable: identities are free to mint, yet each one must still upload
``T`` bytes of real data *per victim neighbourhood* before its votes
count, so the attack cost scales with the experienced core.
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.spam import FlashCrowd
from repro.core.runtime import ProtocolRuntime
from repro.identity.authority import IdentityAuthority, PeerIdentity


class SybilAttacker:
    """An operator minting identities and deploying them as a crowd."""

    def __init__(
        self,
        runtime: ProtocolRuntime,
        authority: IdentityAuthority,
        spam_moderator: str = "M0",
        id_prefix: str = "sybil",
    ):
        self.runtime = runtime
        self.authority = authority
        self.spam_moderator = spam_moderator
        self.id_prefix = id_prefix
        self.identities: List[PeerIdentity] = []
        self.crowd: Optional[FlashCrowd] = None

    def mint_identities(self, count: int) -> List[PeerIdentity]:
        """Create ``count`` fresh identities.  Cheap by design — the
        system's defence is the experience gate, not identity cost."""
        start = len(self.identities)
        fresh = [
            self.authority.create_identity(f"{self.id_prefix}{start + i:03d}")
            for i in range(count)
        ]
        self.identities.extend(fresh)
        return fresh

    def deploy(self, now: float) -> FlashCrowd:
        """Register every minted identity as a colluder and flash them
        online."""
        if not self.identities:
            raise RuntimeError("mint identities before deploying")
        if self.crowd is not None:
            raise RuntimeError("already deployed")
        self.crowd = FlashCrowd(
            self.runtime,
            size=len(self.identities),
            spam_moderator=self.spam_moderator,
            id_prefix=self.id_prefix,
        )
        self.crowd.arrive(now)
        return self.crowd

    # ------------------------------------------------------------------
    def upload_cost_to_influence(self, victims: List[str], threshold: float) -> float:
        """Lower bound on the *real upload* the operator still owes for
        its identities' votes to be accepted by ``victims``: every
        identity needs ``f ≥ threshold`` into every victim, and flow is
        conserved, so the operator must genuinely push at least
        ``threshold`` bytes per (identity, victim) pair into the honest
        neighbourhood."""
        return float(len(self.identities) * len(victims) * threshold)
