"""Fake-experience ("front peer" / "mole") attack on BarterCast (§VII).

Colluders fabricate mutual transfer statements — each reports enormous
uploads to its accomplices — and gossip them like honest records.  The
acceptance rule lets these through (each colluder *is* an endpoint of
its own claims), so victims' subjective graphs grow a richly-connected
fake cluster.  What defeats the attack is flow conservation: maxflow
from a colluder to the victim is capped by the capacity of edges
*entering the victim's honest neighbourhood*, which only honest nodes
report, and only for real upload.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Sequence

from repro.bartercast.protocol import BarterCastService
from repro.bartercast.records import TransferRecord


class FakeExperienceColluders:
    """A clique of nodes claiming huge mutual transfers."""

    def __init__(
        self,
        bartercast: BarterCastService,
        members: Sequence[str],
        claimed_bytes: float = 1e12,
    ):
        if len(members) < 2:
            raise ValueError("need at least two colluders")
        if claimed_bytes <= 0:
            raise ValueError("claimed_bytes must be positive")
        self.bartercast = bartercast
        self.members = list(members)
        self.claimed_bytes = claimed_bytes

    def fabricate_records(self, now: float) -> List[TransferRecord]:
        """The clique's lies: every ordered pair claims huge transfers."""
        records = []
        for a, b in combinations(self.members, 2):
            records.append(
                TransferRecord(
                    reporter=a,
                    partner=b,
                    up=self.claimed_bytes,
                    down=self.claimed_bytes,
                    timestamp=now,
                )
            )
            records.append(
                TransferRecord(
                    reporter=b,
                    partner=a,
                    up=self.claimed_bytes,
                    down=self.claimed_bytes,
                    timestamp=now,
                )
            )
        return records

    def poison_node(self, victim: str, now: float) -> int:
        """Deliver the fabricated records to one victim (as if the
        victim had met each colluder and accepted their own-edge
        claims).  Returns the number of records delivered."""
        records = self.fabricate_records(now)
        for rec in records:
            self.bartercast.inject_record(victim, rec)
        return len(records)

    def seed_own_tables(self, now: float) -> None:
        """Make the lies self-sustaining: each colluder's *direct*
        table claims the transfers, so ordinary BarterCast gossip
        spreads them from here on."""
        for a, b in combinations(self.members, 2):
            state_a = self.bartercast._state(a)
            state_a.direct[b] = [self.claimed_bytes, self.claimed_bytes, now]
            state_a.graph.observe_direct(a, b, self.claimed_bytes)
            state_a.graph.observe_direct(b, a, self.claimed_bytes)
            state_b = self.bartercast._state(b)
            state_b.direct[a] = [self.claimed_bytes, self.claimed_bytes, now]
            state_b.graph.observe_direct(b, a, self.claimed_bytes)
            state_b.graph.observe_direct(a, b, self.claimed_bytes)
