"""Attack models (§V-B, §VI-C, §VII).

* :mod:`repro.attacks.spam` — collusive flash crowds promoting a spam
  moderator (the Fig 8 attack), including the malicious VoxPopuli
  responder behaviour;
* :mod:`repro.attacks.sybil` — a single attacker minting many cheap
  identities (operationally a flash crowd; the identity ledger makes
  the "cheap identities" point measurable);
* :mod:`repro.attacks.collusion` — the BarterCast front-peer / fake
  experience attack: colluders fabricate mutual transfer statements.
"""

from repro.attacks.collusion import FakeExperienceColluders
from repro.attacks.spam import FlashCrowd, SpamColluderNode
from repro.attacks.sybil import SybilAttacker

__all__ = [
    "FlashCrowd",
    "SpamColluderNode",
    "SybilAttacker",
    "FakeExperienceColluders",
]
