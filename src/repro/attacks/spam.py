"""Flash-crowd spam attack (Fig 7/8).

A crowd of fresh identities joins with the single goal of promoting a
spam moderator ``M0``:

* their local vote lists contain only ``+M0`` (sent on every BallotBox
  exchange — honest nodes discard these unless the colluder somehow
  became experienced);
* they answer **every** VoxPopuli request with ``[M0, …]`` regardless
  of their own ballot state — this is the unprotected channel the
  attack actually exploits;
* they gossip M0's spam moderation to everyone they meet;
* they never bootstrap-poll others (they don't care about real
  rankings) and they ignore incoming votes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.moderation import Moderation
from repro.core.node import NodeConfig, VoteSamplingNode
from repro.core.runtime import ProtocolRuntime
from repro.core.votes import Vote, VoteEntry


class SpamColluderNode(VoteSamplingNode):
    """One member of the flash crowd."""

    def __init__(
        self,
        peer_id: str,
        spam_moderator: str,
        config: Optional[NodeConfig] = None,
        rng: Optional[np.random.Generator] = None,
        decoys: Sequence[str] = (),
    ):
        super().__init__(peer_id, config, rng)
        self.spam_moderator = spam_moderator
        self.decoys = list(decoys)
        if spam_moderator != peer_id:
            # Colluders approve the spam moderator so ModerationCast
            # forwards its metadata through them.
            self.vote_list.cast(spam_moderator, Vote.POSITIVE, 0.0)
        self.store.insert(
            Moderation(
                moderator_id=spam_moderator,
                torrent_id="spam-torrent",
                title="TOTALLY LEGIT RELEASE",
                description="spam",
            ),
            now=0.0,
        )

    # -- BallotBox ------------------------------------------------------
    def votes_to_send(self) -> List[VoteEntry]:
        """Always push +M0 (plus decoy negatives on honest moderators)."""
        out = [VoteEntry(self.spam_moderator, Vote.POSITIVE, 0.0)]
        out.extend(VoteEntry(d, Vote.NEGATIVE, 0.0) for d in self.decoys)
        return out

    def receive_votes(self, voter, entries, now, experienced) -> int:
        """Colluders don't build honest statistics."""
        return 0

    # -- VoxPopuli -------------------------------------------------------
    def needs_bootstrap(self) -> bool:
        """Never poll others — the crowd's ranking is fixed."""
        return False

    def respond_top_k(self) -> Optional[List[str]]:
        """Answer every request with the spam list, regardless of B_min
        — the malicious behaviour Fig 3(c)'s honest guard cannot stop
        at the sender side."""
        return [self.spam_moderator] + self.decoys[: self.config.k - 1]

    def current_ranking(self):
        return [(self.spam_moderator, float("inf"))]


class FlashCrowd:
    """Creates, registers and (de)activates a crowd of colluders."""

    def __init__(
        self,
        runtime: ProtocolRuntime,
        size: int,
        spam_moderator: str = "M0",
        id_prefix: str = "colluder",
        decoys: Sequence[str] = (),
    ):
        if size < 1:
            raise ValueError("crowd size must be >= 1")
        self.runtime = runtime
        self.spam_moderator = spam_moderator
        self.members: List[str] = []
        for i in range(size):
            pid = f"{id_prefix}{i:03d}"
            node = SpamColluderNode(
                pid,
                spam_moderator,
                config=runtime.config.node,
                rng=runtime._rng.stream("colluder", pid),
                decoys=decoys,
            )
            runtime.register_node(node)
            self.members.append(pid)

    def arrive(self, now: float) -> None:
        """Bring the whole crowd online (the flash)."""
        for pid in self.members:
            self.runtime.bring_online(pid, now)

    def depart(self, now: float) -> None:
        for pid in self.members:
            self.runtime.take_offline(pid, now)

    def schedule_arrival(self, at: float) -> None:
        """Schedule the flash on the runtime's engine."""
        self.runtime.engine.schedule_at(at, self.arrive, at)
