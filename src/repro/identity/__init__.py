"""Simulated PKI identity layer.

Tribler binds every protocol message to a permanent, non-spoofable peer
identity via public-key signatures.  Inside the simulator we reproduce
the *guarantees* (identity binding, tamper evidence, unforgeability)
without real asymmetric crypto: an :class:`IdentityAuthority` issues
keypairs whose secret half never leaves it, signs with a keyed BLAKE2b
MAC, and verifies by recomputation.  A malicious simulated node cannot
forge a signature because it has no API that exposes another node's
secret — the substitution is documented in ``DESIGN.md``.
"""

from repro.identity.authority import IdentityAuthority, PeerIdentity
from repro.identity.signatures import SignatureError, SignedMessage

__all__ = [
    "IdentityAuthority",
    "PeerIdentity",
    "SignedMessage",
    "SignatureError",
]
