"""Identity issuance and the signing/verification oracle."""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

_DIGEST_SIZE = 16


@dataclass(frozen=True)
class PeerIdentity:
    """A peer's public identity.

    ``public_key`` is what other peers see; the matching secret is held
    only by the :class:`IdentityAuthority`, mirroring a private key that
    never leaves the owning client.
    """

    peer_id: str
    public_key: str

    def __str__(self) -> str:
        return f"{self.peer_id}<{self.public_key[:8]}>"


@dataclass
class IdentityAuthority:
    """Issues identities and performs sign/verify.

    This object *is* the simulated crypto substrate: honest nodes sign
    through :meth:`sign`; any byte flipped in transit (or a signature
    copied onto a different payload / different signer) fails
    :meth:`verify`.  Creating identities is **cheap** by design — the
    paper's whole point is that cheap identities must not translate
    into voting power, which the experience function enforces.
    """

    seed: int = 0
    _secrets: Dict[str, bytes] = field(default_factory=dict, repr=False)
    _by_peer: Dict[str, PeerIdentity] = field(default_factory=dict)
    _counter: int = 0

    def create_identity(self, peer_id: str) -> PeerIdentity:
        """Issue a fresh identity for ``peer_id``.

        Re-issuing for an existing peer id raises: permanent identities
        are the Tribler invariant our protocols rely on.  (A Sybil
        attacker instead creates *many distinct* peer ids.)
        """
        if peer_id in self._by_peer:
            raise ValueError(f"identity already issued for {peer_id!r}")
        self._counter += 1
        material = f"{self.seed}:{peer_id}:{self._counter}".encode()
        secret = hashlib.blake2b(material, digest_size=32, person=b"repro-sk").digest()
        public = hashlib.blake2b(secret, digest_size=16, person=b"repro-pk").hexdigest()
        ident = PeerIdentity(peer_id=peer_id, public_key=public)
        self._secrets[public] = secret
        self._by_peer[peer_id] = ident
        return ident

    def identity_of(self, peer_id: str) -> Optional[PeerIdentity]:
        """The identity issued for ``peer_id``, or ``None``."""
        return self._by_peer.get(peer_id)

    def known_public_keys(self) -> int:
        """Number of identities issued so far."""
        return len(self._secrets)

    # ------------------------------------------------------------------
    def sign(self, signer: PeerIdentity, payload: bytes) -> bytes:
        """Sign ``payload`` on behalf of ``signer``.

        Raises ``KeyError`` for identities this authority never issued —
        a node cannot sign as somebody else.
        """
        secret = self._secrets[signer.public_key]
        return hmac.new(secret, payload, digestmod=hashlib.sha256).digest()[:_DIGEST_SIZE]

    def verify(self, public_key: str, payload: bytes, signature: bytes) -> bool:
        """``True`` iff ``signature`` is valid for ``(public_key, payload)``."""
        secret = self._secrets.get(public_key)
        if secret is None:
            return False
        expected = hmac.new(secret, payload, digestmod=hashlib.sha256).digest()[:_DIGEST_SIZE]
        return hmac.compare_digest(expected, signature)

    # ------------------------------------------------------------------
    def forge_signature(self, rng: Optional[np.random.Generator] = None) -> bytes:
        """Produce a random (invalid) signature — used by attack models
        to exercise the rejection path without guessing real secrets."""
        if rng is not None:
            return rng.bytes(_DIGEST_SIZE)
        return b"\x00" * _DIGEST_SIZE
