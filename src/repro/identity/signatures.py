"""Signed-message envelope.

Moderations and vote lists travel the network wrapped in a
:class:`SignedMessage`: a canonically-serialised payload plus the
signer's public key and signature.  Receivers call :meth:`verify`
before trusting anything — the paper's defence against moderation
tampering ("To authenticate moderations we use digital signatures").
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.identity.authority import IdentityAuthority, PeerIdentity


class SignatureError(ValueError):
    """Raised when a message fails signature verification."""


def canonical_bytes(payload: Mapping[str, Any]) -> bytes:
    """Serialise a payload deterministically (sorted keys, no spaces).

    Both signer and verifier must produce identical bytes for identical
    logical content; JSON with sorted keys gives that for the simple
    payloads (moderations, votes) used here.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True)
class SignedMessage:
    """An authenticated payload bound to its signer."""

    payload: Mapping[str, Any]
    signer_public_key: str
    signature: bytes

    @classmethod
    def create(
        cls,
        authority: IdentityAuthority,
        signer: PeerIdentity,
        payload: Mapping[str, Any],
    ) -> "SignedMessage":
        """Sign ``payload`` as ``signer`` via the authority."""
        sig = authority.sign(signer, canonical_bytes(payload))
        return cls(payload=dict(payload), signer_public_key=signer.public_key, signature=sig)

    def verify(self, authority: IdentityAuthority) -> bool:
        """``True`` iff the signature matches payload and signer."""
        return authority.verify(
            self.signer_public_key, canonical_bytes(self.payload), self.signature
        )

    def verified_payload(self, authority: IdentityAuthority) -> Mapping[str, Any]:
        """Return the payload, raising :class:`SignatureError` if invalid."""
        if not self.verify(authority):
            raise SignatureError(
                f"invalid signature from {self.signer_public_key[:8]}…"
            )
        return self.payload

    def tampered_with(self, **changes: Any) -> "SignedMessage":
        """Return a copy whose payload was altered but signature kept —
        attack models use this to exercise the rejection path."""
        new_payload = dict(self.payload)
        new_payload.update(changes)
        return SignedMessage(
            payload=new_payload,
            signer_public_key=self.signer_public_key,
            signature=self.signature,
        )
