"""Fig 8 metric: pollution of newly arrived nodes by a spam moderator.

A node is *polluted* when the spam moderator is strictly at the top of
its current ranking — the spam metadata would be what the user sees
first.  Nodes with no ranking information yet are unpolluted (they see
nothing at all, which is not a spam win).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.node import VoteSamplingNode


def is_polluted(node: VoteSamplingNode, spam_id: str) -> bool:
    """``True`` iff ``spam_id`` is the strict top of the node's ranking."""
    ranking = node.current_ranking()
    if not ranking or ranking[0][0] != spam_id:
        return False
    if len(ranking) == 1:
        return True
    # strict: no tie with the runner-up
    return ranking[0][1] > ranking[1][1]


def pollution_fraction(
    nodes: Mapping[str, VoteSamplingNode],
    spam_id: str,
    include: Iterable[str],
) -> float:
    """Fraction of ``include`` nodes currently polluted by ``spam_id``."""
    eval_ids = list(include)
    if not eval_ids:
        return 0.0
    polluted = 0
    for pid in eval_ids:
        node = nodes.get(pid)
        if node is not None and is_polluted(node, spam_id):
            polluted += 1
    return polluted / len(eval_ids)
