"""Collective Experience Value (§VI-A).

::

    CEV = (1/N) · Σ_i Σ_{j≠i} e_i(j) / (N − 1)

where ``e_i(j) = 1`` iff ``E_i(j)`` — a directed graph-density measure
of how much experience exists between ordered node pairs.  The paper
computes it with global knowledge over *all* peers in the trace (not
just the online ones); so do we.

The hot path is vectorised: BarterCast's deployed 2-hop maxflow has the
closed form ``f(j→i) = W[j,i] + Σ_k min(W[j,k], W[k,i])`` per observer
``i`` over the observer's subjective weight matrix ``W``, which numpy
evaluates as one ``minimum`` + ``sum`` per observer.  Computing flows
for *all* sources at once also lets one simulation run yield the CEV
for every threshold ``T`` simultaneously (Fig 5 plots several).
"""

from __future__ import annotations

import warnings
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bartercast.maxflow import two_hop_flows_to_sink
from repro.bartercast.protocol import BarterCastService
from repro.sim.parallel import (
    FlowRowPool,
    _spawn_main_is_reimportable,
    resolve_worker_count,
)

#: Population size past which ``executor="auto"`` picks processes over
#: threads: below this, per-row numpy work is too small to amortise the
#: shared-memory publish + task dispatch, and threads (which share the
#: graph in place) win.
_AUTO_PROCESS_MIN_PEERS = 512


def flows_to_observer(
    bartercast: BarterCastService, observer: str, peers: Sequence[str]
) -> np.ndarray:
    """``f_{j→observer}`` for every ``j`` in ``peers`` (2-hop bound).

    Routed through the service's vectorised batch-contribution oracle
    (:meth:`BarterCastService.contributions_to_observer`), which also
    memoises the result while the observer's graph is unchanged —
    successive metric samples over idle observers cost O(1).
    Intermediate hops range over every node the observer's graph knows,
    matching ``two_hop_flow`` exactly.
    """
    return bartercast.contributions_to_observer(observer, list(peers))


class FlowMatrixCache:
    """Incrementally maintained flow matrix over a fixed population.

    Holds ``F[i, j] = f_{j→i}`` across metric samples and, on each
    :meth:`matrix` call, recomputes **only the rows whose observer's
    subjective graph changed** since the previous sample — row ``i``
    depends solely on observer ``i``'s graph, whose monotone
    ``version`` counter is an exact validity key.  Unchanged rows are
    reused verbatim, so the result is bit-identical to a full
    recompute.  ``rows_recomputed`` / ``rows_reused`` expose the split
    for telemetry and tests.

    ``jobs`` parallelises the changed-row recompute: ``jobs=1``
    (default) is the exact serial path, ``jobs=None`` auto-sizes to the
    CPU count.  ``executor`` picks *where* parallel rows run:

    * ``"thread"`` (default) — a thread pool; numpy releases the GIL
      inside the dense ``minimum`` + ``sum`` closed form, so rows
      genuinely overlap on multi-core machines while sharing the live
      graphs in place;
    * ``"process"`` — a persistent
      :class:`~repro.sim.parallel.FlowRowPool`; each stale observer's
      adjacency snapshot is published through shared memory and workers
      run the same closed form in separate interpreters (no GIL, no
      shared allocator).  Worth it for large populations where the
      per-row gather loops themselves become the bottleneck;
    * ``"auto"`` — processes for populations of at least
      ``_AUTO_PROCESS_MIN_PEERS`` peers, threads below.

    Parallel workers of either kind evaluate
    :func:`two_hop_flows_to_sink` directly on each observer's graph —
    a pure read, bit-identical to the service's batch oracle —
    bypassing the service's batch memo and its telemetry counters
    (which are not thread-safe).  Row values and the
    ``rows_recomputed``/``rows_reused`` split are identical for every
    ``jobs``/``executor`` combination; non-2-hop configurations always
    recompute serially because their fallback path is the per-pair
    bounded maxflow.  ``jobs=1`` never spawns workers or creates
    shared-memory segments regardless of ``executor``.

    When the process tier cannot run safely (spawn children could not
    re-import the parent's ``__main__``, e.g. a script fed via stdin)
    the cache degrades to threads with a :class:`RuntimeWarning` rather
    than hanging.  Call :meth:`close` (or rely on the finalizer) to
    shut a process pool down.
    """

    def __init__(
        self,
        bartercast: BarterCastService,
        peers: Sequence[str],
        jobs: Optional[int] = 1,
        executor: str = "thread",
    ):
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1 (or None for auto)")
        if executor not in ("thread", "process", "auto"):
            raise ValueError(
                f"executor must be 'thread', 'process' or 'auto', "
                f"got {executor!r}"
            )
        self.bartercast = bartercast
        self.peers: List[str] = list(peers)
        self.jobs = jobs
        self.executor = executor
        self._row_pool: Optional[FlowRowPool] = None
        self._finalizer = None
        n = len(self.peers)
        self._versions: List[Optional[int]] = [None] * n
        self._F = np.zeros((n, n))
        self.rows_recomputed = 0
        self.rows_reused = 0

    def invalidate(self) -> None:
        """Forget every cached row: the next :meth:`matrix` call
        recomputes the full population.  Counters and any process pool
        are left untouched — benchmarks use this to time repeated cold
        recomputes against a warm worker pool."""
        self._versions = [None] * len(self.peers)

    def close(self) -> None:
        """Shut down the process pool, if one was ever started
        (idempotent; thread/serial configurations hold no resources)."""
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._row_pool = None

    def _resolve_executor(self) -> str:
        """The executor actually used this call (``"auto"`` resolved,
        unsafe process tier degraded to threads with a warning)."""
        executor = self.executor
        if executor == "auto":
            executor = (
                "process"
                if len(self.peers) >= _AUTO_PROCESS_MIN_PEERS
                else "thread"
            )
        if executor == "process" and not _spawn_main_is_reimportable():
            warnings.warn(
                "spawn workers cannot re-import this __main__ "
                "(script fed via stdin?); flow rows fall back to the "
                "thread executor",
                RuntimeWarning,
                stacklevel=3,
            )
            executor = "thread"
        return executor

    def matrix(self) -> np.ndarray:
        """The up-to-date flow matrix (a live internal array — callers
        must treat it as read-only; :func:`flow_matrix` hands out
        copies)."""
        stale: List[Tuple[int, str, int]] = []
        for row, observer in enumerate(self.peers):
            version = self.bartercast.graph_of(observer).version
            if self._versions[row] == version:
                self.rows_reused += 1
            else:
                stale.append((row, observer, version))
        if not stale:
            return self._F
        workers = resolve_worker_count(len(stale), self.jobs)
        if workers > 1 and self.bartercast.config.max_hops == 2:
            if self._resolve_executor() == "process":
                computed = self._recompute_rows_process(stale)
            else:
                computed = self._recompute_rows_parallel(stale, workers)
        else:
            computed = [
                (row, version, flows_to_observer(self.bartercast, observer, self.peers))
                for row, observer, version in stale
            ]
        for row, version, values in computed:
            self._F[row, :] = values
            self._versions[row] = version
            self.rows_recomputed += 1
        return self._F

    def _recompute_rows_parallel(
        self, stale: Sequence[Tuple[int, str, int]], workers: int
    ) -> List[Tuple[int, int, np.ndarray]]:
        """Changed rows chunked across a thread pool; results are
        collected (in row order) and written back on the caller's
        thread so the cache itself is only ever mutated serially."""
        bartercast = self.bartercast
        peers = self.peers

        kernel = bartercast.config.sparse_flow_kernel

        def compute(item: Tuple[int, str, int]) -> Tuple[int, int, np.ndarray]:
            row, observer, version = item
            graph = bartercast.graph_of(observer)
            return row, version, two_hop_flows_to_sink(
                graph, peers, observer, sparse_kernel=kernel
            )

        chunksize = max(1, -(-len(stale) // workers))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(compute, stale, chunksize=chunksize))

    def _recompute_rows_process(
        self, stale: Sequence[Tuple[int, str, int]]
    ) -> List[Tuple[int, int, np.ndarray]]:
        """Changed rows sharded over the persistent
        :class:`~repro.sim.parallel.FlowRowPool` (started lazily on
        first use, shut down by :meth:`close` or the finalizer)."""
        if self._row_pool is None:
            self._row_pool = FlowRowPool(
                self.peers,
                jobs=self.jobs,
                sparse_kernel=self.bartercast.config.sparse_flow_kernel,
            )
            self._finalizer = weakref.finalize(self, self._row_pool.close)
        rows = self._row_pool.run_rows(
            [
                (row, observer, self.bartercast.graph_of(observer))
                for row, observer, _version in stale
            ]
        )
        versions = {row: version for row, _observer, version in stale}
        return [(row, versions[row], values) for row, values in rows]


def flow_matrix(
    bartercast: BarterCastService,
    peers: Sequence[str],
    cache: Optional[FlowMatrixCache] = None,
) -> np.ndarray:
    """``F[i, j] = f_{j→i}``: what observer ``i`` credits source ``j``.

    With ``cache`` (a :class:`FlowMatrixCache` built over the same
    peer list) only changed-observer rows are recomputed; the returned
    array is always the caller's to mutate."""
    ids = list(peers)
    if cache is not None:
        if cache.peers != ids:
            raise ValueError("cache was built over a different peer list")
        return cache.matrix().copy()
    F = np.zeros((len(ids), len(ids)))
    for row, observer in enumerate(ids):
        F[row, :] = flows_to_observer(bartercast, observer, ids)
    return F


def collective_experience_value(
    bartercast: BarterCastService,
    peers: Sequence[str],
    thresholds: Sequence[float],
    cache: Optional[FlowMatrixCache] = None,
) -> Dict[float, float]:
    """CEV for each threshold ``T`` — one pass over the flow matrix.

    Returns ``{T: CEV}``.  ``peers`` is the *total* trace population.
    Passing a :class:`FlowMatrixCache` makes successive samples
    incremental (only changed-observer rows are recomputed).
    """
    ids = list(peers)
    n = len(ids)
    if n < 2:
        return {float(t): 0.0 for t in thresholds}
    if cache is not None:
        if cache.peers != ids:
            raise ValueError("cache was built over a different peer list")
        F = cache.matrix()
    else:
        F = flow_matrix(bartercast, ids)
    out: Dict[float, float] = {}
    denom = n * (n - 1)
    for t in thresholds:
        # diagonal is zero flow, so with t > 0 it never counts; guard
        # t == 0 by masking the diagonal explicitly.
        hits = F >= float(t)
        if t <= 0:
            np.fill_diagonal(hits, False)
        out[float(t)] = float(hits.sum()) / denom
    return out
