"""Collective Experience Value (§VI-A).

::

    CEV = (1/N) · Σ_i Σ_{j≠i} e_i(j) / (N − 1)

where ``e_i(j) = 1`` iff ``E_i(j)`` — a directed graph-density measure
of how much experience exists between ordered node pairs.  The paper
computes it with global knowledge over *all* peers in the trace (not
just the online ones); so do we.

The hot path is vectorised: BarterCast's deployed 2-hop maxflow has the
closed form ``f(j→i) = W[j,i] + Σ_k min(W[j,k], W[k,i])`` per observer
``i`` over the observer's subjective weight matrix ``W``, which numpy
evaluates as one ``minimum`` + ``sum`` per observer.  Computing flows
for *all* sources at once also lets one simulation run yield the CEV
for every threshold ``T`` simultaneously (Fig 5 plots several).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.bartercast.protocol import BarterCastService


def flows_to_observer(
    bartercast: BarterCastService, observer: str, peers: Sequence[str]
) -> np.ndarray:
    """``f_{j→observer}`` for every ``j`` in ``peers`` (2-hop bound).

    Routed through the service's vectorised batch-contribution oracle
    (:meth:`BarterCastService.contributions_to_observer`), which also
    memoises the result while the observer's graph is unchanged —
    successive metric samples over idle observers cost O(1).
    Intermediate hops range over every node the observer's graph knows,
    matching ``two_hop_flow`` exactly.
    """
    return bartercast.contributions_to_observer(observer, list(peers))


def flow_matrix(
    bartercast: BarterCastService, peers: Sequence[str]
) -> np.ndarray:
    """``F[i, j] = f_{j→i}``: what observer ``i`` credits source ``j``."""
    ids = list(peers)
    F = np.zeros((len(ids), len(ids)))
    for row, observer in enumerate(ids):
        F[row, :] = flows_to_observer(bartercast, observer, ids)
    return F


def collective_experience_value(
    bartercast: BarterCastService,
    peers: Sequence[str],
    thresholds: Sequence[float],
) -> Dict[float, float]:
    """CEV for each threshold ``T`` — one pass over the flow matrix.

    Returns ``{T: CEV}``.  ``peers`` is the *total* trace population.
    """
    ids = list(peers)
    n = len(ids)
    if n < 2:
        return {float(t): 0.0 for t in thresholds}
    F = flow_matrix(bartercast, ids)
    out: Dict[float, float] = {}
    denom = n * (n - 1)
    for t in thresholds:
        # diagonal is zero flow, so with t > 0 it never counts; guard
        # t == 0 by masking the diagonal explicitly.
        hits = F >= float(t)
        if t <= 0:
            np.fill_diagonal(hits, False)
        out[float(t)] = float(hits.sum()) / denom
    return out
