"""Protocol overhead accounting — the paper's "light-weight" claim.

The abstract promises a "light-weight, fully decentralized" design.
:class:`TrafficMeter` counts every protocol exchange and the items it
carried, and converts them to bytes with a wire-size model calibrated
to Tribler-era message encodings:

* moderation: ≈300 B (ids, title, description, signature);
* vote entry: ≈50 B (moderator id, vote, timestamp, signature share);
* BarterCast record: ≈60 B (two ids, two counters, timestamp);
* top-K list: ≈K·20 B;
* Newscast descriptor: ≈30 B.

The headline check (``benchmarks/test_overhead_lightweight.py``): the
whole metadata/rating stack costs well under 1 % of the BitTorrent
payload traffic it rides on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: wire-size model (bytes per item)
MODERATION_BYTES = 300.0
VOTE_BYTES = 50.0
RECORD_BYTES = 60.0
TOPK_ENTRY_BYTES = 20.0
DESCRIPTOR_BYTES = 30.0
#: Chord control message (ids, a couple of idents, rtt bookkeeping)
DHT_MESSAGE_BYTES = 40.0
#: fixed per-exchange framing cost (headers, handshake share)
EXCHANGE_OVERHEAD_BYTES = 80.0


@dataclass
class ProtocolCounter:
    """Counts for one protocol.

    Only integers accumulate (exchanges and items); :attr:`bytes` is
    derived at read time.  The wire model's per-item sizes are
    integral, so the derived value equals the old running float sum
    exactly while letting batched paths fold thousands of exchanges
    into two integer adds.
    """

    exchanges: int = 0
    items: int = 0
    item_bytes: float = 0.0

    def record(self, items: int, item_bytes: float) -> None:
        self.item_bytes = item_bytes
        self.exchanges += 1
        self.items += items

    def record_many(self, exchanges: int, items: int, item_bytes: float) -> None:
        """Fold a whole batch of exchanges in at once."""
        self.item_bytes = item_bytes
        self.exchanges += exchanges
        self.items += items

    @property
    def bytes(self) -> float:
        return self.exchanges * EXCHANGE_OVERHEAD_BYTES + self.items * self.item_bytes


@dataclass
class TrafficMeter:
    """Per-protocol traffic counters for a whole run."""

    counters: Dict[str, ProtocolCounter] = field(default_factory=dict)

    def _get(self, protocol: str) -> ProtocolCounter:
        c = self.counters.get(protocol)
        if c is None:
            c = ProtocolCounter()
            self.counters[protocol] = c
        return c

    # ------------------------------------------------------------------
    def moderation_exchange(self, n_sent: int, n_received: int) -> None:
        self._get("moderationcast").record(n_sent + n_received, MODERATION_BYTES)

    def vote_exchange(self, n_sent: int, n_received: int) -> None:
        self._get("ballotbox").record(n_sent + n_received, VOTE_BYTES)

    def vote_exchange_many(self, exchanges: int, items: int) -> None:
        """A batch of vote exchanges (the SoA columnar tick path)."""
        self._get("ballotbox").record_many(exchanges, items, VOTE_BYTES)

    def voxpopuli_exchange(self, k: int) -> None:
        self._get("voxpopuli").record(k, TOPK_ENTRY_BYTES)

    def voxpopuli_exchange_many(self, exchanges: int, entries: int) -> None:
        self._get("voxpopuli").record_many(exchanges, entries, TOPK_ENTRY_BYTES)

    def bartercast_exchange(self, n_records: int) -> None:
        self._get("bartercast").record(n_records, RECORD_BYTES)

    def newscast_exchange(self, view_entries: int) -> None:
        self._get("newscast").record(view_entries, DESCRIPTOR_BYTES)

    def dht_exchange_many(self, exchanges: int, messages: int) -> None:
        """A batch of Chord operations (lookups, stores, fetches,
        timeout retries) from the inter-shard aggregation path."""
        self._get("dht").record_many(exchanges, messages, DHT_MESSAGE_BYTES)

    def aggregation_exchange_many(self, exchanges: int, votes: int) -> None:
        """Digest payload votes shipped between shards via the DHT."""
        self._get("aggregation").record_many(exchanges, votes, VOTE_BYTES)

    # ------------------------------------------------------------------
    def total_bytes(self) -> float:
        return sum(c.bytes for c in self.counters.values())

    def total_exchanges(self) -> int:
        return sum(c.exchanges for c in self.counters.values())

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {
                "exchanges": c.exchanges,
                "items": c.items,
                "bytes": c.bytes,
            }
            for name, c in sorted(self.counters.items())
        }

    def per_node_hour(self, n_node_hours: float) -> Dict[str, float]:
        """Protocol bytes per online-node-hour (the deployable cost)."""
        if n_node_hours <= 0:
            raise ValueError("n_node_hours must be positive")
        return {
            name: c.bytes / n_node_hours for name, c in sorted(self.counters.items())
        }
