"""Fig 6 metric: fraction of nodes holding the correct moderator order.

"The correct ordering is M1 > M2 > M3 based on votes."  A node counts
as correct iff its *current ranking* (ballot box once ≥ B_min unique
voters, VoxPopuli merge before that) ranks the three moderators with
strictly decreasing scores — ties and unknown moderators do not count.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.core.node import VoteSamplingNode
from repro.core.ranking import strictly_ordered


def correct_order_fraction(
    nodes: Mapping[str, VoteSamplingNode],
    order: Sequence[str],
    include: Optional[Iterable[str]] = None,
) -> float:
    """Fraction of nodes whose current ranking strictly matches ``order``.

    Parameters
    ----------
    nodes:
        All protocol nodes (e.g. ``runtime.nodes``).
    order:
        The ground-truth moderator ordering, best first.
    include:
        Peer ids to evaluate over.  Defaults to every node except the
        moderators themselves (a moderator never ranks itself).
    """
    moderators = set(order)
    if include is None:
        eval_ids = [pid for pid in nodes if pid not in moderators]
    else:
        eval_ids = [pid for pid in include if pid not in moderators]
    if not eval_ids:
        return 0.0
    correct = 0
    for pid in eval_ids:
        node = nodes.get(pid)
        if node is None:
            continue
        if strictly_ordered(node.current_ranking(), order):
            correct += 1
    return correct / len(eval_ids)
