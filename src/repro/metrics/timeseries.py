"""Engine-driven periodic measurement.

A :class:`TimeSeriesRecorder` schedules a sampling callback on the
simulation engine every ``interval`` seconds and accumulates named
series; experiments hand the result straight to the figure renderers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Tuple, Union

import numpy as np

from repro.sim.engine import Engine

SampleValue = Union[float, Mapping[str, float]]


class TimeSeries:
    """One named series of ``(t, value)`` samples."""

    def __init__(self, name: str):
        self.name = name
        self._t: List[float] = []
        self._v: List[float] = []

    def append(self, t: float, value: float) -> None:
        self._t.append(float(t))
        self._v.append(float(value))

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._t)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._v)

    def as_array(self) -> np.ndarray:
        """Two-column ``[t, value]`` array."""
        return np.column_stack([self.times, self.values])

    def value_at(self, t: float) -> float:
        """Last sample at or before ``t`` (step interpolation)."""
        times = self.times
        i = int(np.searchsorted(times, t, side="right")) - 1
        if i < 0:
            raise ValueError(f"no sample at or before t={t}")
        return float(self._v[i])

    def final(self) -> float:
        if not self._v:
            raise ValueError("empty series")
        return self._v[-1]

    def __len__(self) -> int:
        return len(self._t)


class TimeSeriesRecorder:
    """Samples one or more probes on a fixed cadence.

    ``probe()`` may return a float (recorded under the probe's name) or
    a mapping of sub-series names to floats (e.g. CEV per threshold).
    """

    def __init__(self, engine: Engine, interval: float, sample_at_start: bool = True):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.interval = interval
        self.series: Dict[str, TimeSeries] = {}
        self._probes: List[Tuple[str, Callable[[], SampleValue]]] = []
        self._sample_at_start = sample_at_start
        self._started = False

    def add_probe(self, name: str, probe: Callable[[], SampleValue]) -> None:
        self._probes.append((name, probe))

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        delay = 0.0 if self._sample_at_start else self.interval
        self.engine.schedule(delay, self._tick, priority=100)

    def _tick(self) -> None:
        now = self.engine.now
        for name, probe in self._probes:
            value = probe()
            if isinstance(value, Mapping):
                for sub, v in value.items():
                    self._series(f"{name}:{sub}").append(now, v)
            else:
                self._series(name).append(now, float(value))
        self.engine.schedule(self.interval, self._tick, priority=100)

    def _series(self, name: str) -> TimeSeries:
        s = self.series.get(name)
        if s is None:
            s = TimeSeries(name)
            self.series[name] = s
        return s

    def get(self, name: str) -> TimeSeries:
        return self.series[name]
