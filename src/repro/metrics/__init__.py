"""Measurement instruments for the paper's figures.

* :mod:`repro.metrics.cev` — the Collective Experience Value (Fig 5),
  computed with global knowledge exactly as the paper does ("CEV plays
  no part in the protocols running in the nodes");
* :mod:`repro.metrics.ordering` — the Fig 6 correctness predicate
  (fraction of nodes strictly ordering M1 > M2 > M3);
* :mod:`repro.metrics.pollution` — the Fig 8 pollution fraction
  (newly-arrived nodes ranking the spam moderator top);
* :mod:`repro.metrics.timeseries` — engine-driven periodic samplers.
"""

from repro.metrics.cev import collective_experience_value, flow_matrix
from repro.metrics.ordering import correct_order_fraction
from repro.metrics.pollution import pollution_fraction
from repro.metrics.timeseries import TimeSeries, TimeSeriesRecorder

__all__ = [
    "collective_experience_value",
    "flow_matrix",
    "correct_order_fraction",
    "pollution_fraction",
    "TimeSeries",
    "TimeSeriesRecorder",
]
