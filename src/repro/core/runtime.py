"""Protocol runtime — binds nodes, PSS, BarterCast and the engine.

The runtime owns one :class:`~repro.core.node.VoteSamplingNode` per
peer and drives the paper's ``do forever: wait Δ; …`` loops as jittered
periodic processes per online node:

* **ModerationCast tick** — push/pull moderation exchange (Fig 1);
* **vote tick** — BallotBox exchange with experience gating, plus the
  conditional VoxPopuli top-K request (Fig 3 a);
* **BarterCast tick** — transfer-record gossip;
* **Newscast tick** — view exchange (only when the gossip PSS is used);
* **adaptive-T tick** — dispersion controller update (only when the
  adaptive experience function is configured).

Transfers observed by the BitTorrent ledger stream straight into
BarterCast; experience is evaluated on demand at each vote exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.bartercast.protocol import BarterCastConfig, BarterCastService
from repro.bittorrent.session import BitTorrentSession
from repro.core.experience import (
    AdaptiveThresholdExperience,
    ExperienceFunction,
    ThresholdExperience,
)
from repro.core.node import NodeConfig, VoteSamplingNode
from repro.metrics.traffic import TrafficMeter
from repro.pss.base import PeerSamplingService
from repro.pss.ideal import OraclePSS
from repro.pss.newscast import NewscastConfig, NewscastService
from repro.sim.population import PopulationEngine, ProtocolSpec
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RngRegistry
from repro.sim.units import MB


@dataclass
class RuntimeConfig:
    """Runtime parameters.

    The paper does not pin Δ numerically; 5 minutes per protocol loop
    gives each node ≈288 exchanges/day, comfortably faster than the
    experience-formation dynamics that dominate the figures.
    """

    node: NodeConfig = field(default_factory=NodeConfig)
    moderation_interval: float = 300.0
    vote_interval: float = 300.0
    bartercast_interval: float = 900.0
    newscast_interval: float = 60.0
    adaptive_update_interval: float = 900.0
    #: Jitter each loop by ±(fraction · interval) to desynchronise.
    jitter_fraction: float = 0.1
    #: Use the Newscast gossip PSS instead of the oracle.
    use_newscast: bool = False
    #: T for the default threshold experience function (bytes).
    experience_threshold: float = 5 * MB
    bartercast: BarterCastConfig = field(default_factory=BarterCastConfig)
    #: Partners gated and exchanged with per vote tick.  1 is the
    #: paper's loop; larger fan-outs gate the whole round's partner set
    #: through one batched ``experienced_many`` evaluation.
    vote_fanout: int = 1
    #: Convenience mirror of ``BarterCastConfig.contrib_cache_entries``
    #: (LRU bound on per-node contribution caches; 0 = unbounded).
    #: When set it overrides the value in ``bartercast``.
    contrib_cache_entries: Optional[int] = None
    #: Convenience mirror of ``BarterCastConfig.graph_backend``
    #: (``"dense"`` / ``"sparse"`` / ``"auto"`` matrix mirror for every
    #: subjective graph).  When set it overrides ``bartercast``.
    graph_backend: Optional[str] = None
    #: Convenience mirror of ``BarterCastConfig.sparse_graph_threshold``
    #: (node count at which ``"auto"`` graphs switch to the sparse
    #: mirror).  When set it overrides ``bartercast``.
    sparse_graph_threshold: Optional[int] = None
    #: Convenience mirror of ``BarterCastConfig.sparse_flow_kernel``
    #: (``"chunked"`` / ``"csr"`` / ``"auto"`` batch flow kernel under
    #: the sparse graph backend).  When set it overrides ``bartercast``.
    sparse_flow_kernel: Optional[str] = None
    #: Probability that any protocol exchange fails (connection reset,
    #: NAT timeout, …) beyond what churn already causes.  Failure
    #: injection for robustness tests; 0 in the paper's experiments.
    message_loss: float = 0.0
    #: Tick scheduler: ``"object"`` = one ``PeriodicProcess`` heap
    #: entry per peer per protocol; ``"soa"`` = the structure-of-arrays
    #: population engine (``repro.sim.population``) with batched
    #: dispatch; ``"auto"`` = ``"soa"`` once the trace population
    #: reaches ``population_engine_threshold``.  The tick schedule and
    #: every protocol result are bit-identical across engines.
    population_engine: str = "auto"
    #: Trace population size at which ``"auto"`` switches to the
    #: structure-of-arrays engine.
    population_engine_threshold: int = 10_000

    def __post_init__(self) -> None:
        if not (0.0 <= self.message_loss < 1.0):
            raise ValueError("message_loss must be in [0, 1)")
        for name in (
            "moderation_interval",
            "vote_interval",
            "bartercast_interval",
            "newscast_interval",
            "adaptive_update_interval",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not (0.0 <= self.jitter_fraction < 1.0):
            raise ValueError("jitter_fraction must be in [0, 1)")
        if self.vote_fanout < 1:
            raise ValueError("vote_fanout must be >= 1")
        if self.contrib_cache_entries is not None and self.contrib_cache_entries < 0:
            raise ValueError("contrib_cache_entries must be >= 0")
        if self.graph_backend is not None and self.graph_backend not in (
            "dense",
            "sparse",
            "auto",
        ):
            raise ValueError("graph_backend must be dense, sparse or auto")
        if self.sparse_graph_threshold is not None and self.sparse_graph_threshold < 0:
            raise ValueError("sparse_graph_threshold must be >= 0")
        if self.sparse_flow_kernel is not None and self.sparse_flow_kernel not in (
            "chunked",
            "csr",
            "auto",
        ):
            raise ValueError("sparse_flow_kernel must be chunked, csr or auto")
        if self.population_engine not in ("object", "soa", "auto"):
            raise ValueError("population_engine must be object, soa or auto")
        if self.population_engine_threshold < 0:
            raise ValueError("population_engine_threshold must be >= 0")


NodeFactory = Callable[[str], VoteSamplingNode]


class ProtocolRuntime:
    """Drives the full protocol stack over one BitTorrent session."""

    def __init__(
        self,
        session: BitTorrentSession,
        rng: RngRegistry,
        config: Optional[RuntimeConfig] = None,
        experience: Optional[ExperienceFunction] = None,
        pss: Optional[PeerSamplingService] = None,
        node_factory: Optional[NodeFactory] = None,
    ):
        self.session = session
        self.engine = session.engine
        self.registry = session.registry
        self.config = config or RuntimeConfig()
        self._rng = rng
        self._node_factory = node_factory

        self.newscast: Optional[NewscastService] = None
        if pss is not None:
            self.pss = pss
        elif self.config.use_newscast:
            self.newscast = NewscastService(
                self.registry, rng.stream("newscast"), NewscastConfig()
            )
            self.pss = self.newscast
        else:
            self.pss = OraclePSS(self.registry, rng.stream("pss"))

        bartercast_config = self.config.bartercast
        overrides: Dict[str, object] = {}
        if self.config.contrib_cache_entries is not None:
            overrides["contrib_cache_entries"] = self.config.contrib_cache_entries
        if self.config.graph_backend is not None:
            overrides["graph_backend"] = self.config.graph_backend
        if self.config.sparse_graph_threshold is not None:
            overrides["sparse_graph_threshold"] = self.config.sparse_graph_threshold
        if self.config.sparse_flow_kernel is not None:
            overrides["sparse_flow_kernel"] = self.config.sparse_flow_kernel
        if overrides:
            bartercast_config = replace(bartercast_config, **overrides)
        self.bartercast = BarterCastService(self.pss, bartercast_config)
        self.bartercast.resolve_cache_budget(len(session.trace.peers))
        session.ledger.add_listener(self.bartercast.local_transfer)

        self.experience: ExperienceFunction = (
            experience
            if experience is not None
            else ThresholdExperience(self.bartercast, self.config.experience_threshold)
        )

        self.nodes: Dict[str, VoteSamplingNode] = {}
        self._processes: Dict[str, List[PeriodicProcess]] = {}
        mode = self.config.population_engine
        if mode == "auto":
            mode = (
                "soa"
                if len(session.trace.peers) >= self.config.population_engine_threshold
                else "object"
            )
        #: resolved tick scheduler ("object" or "soa")
        self.population_engine: str = mode
        self._population: Optional[PopulationEngine] = None
        self.dropped_exchanges = 0
        # Hoisted from _partner_for: the registry memoises streams by
        # name, so caching the generator object draws the identical
        # sequence while skipping a dict lookup per exchange.
        self._message_loss_rng = rng.stream("message-loss")
        self.traffic = TrafficMeter()
        #: accumulated online node-seconds (for per-node-hour costs)
        self._online_seconds = 0.0
        self._online_since: Dict[str, float] = {}

        session.on_peer_online(self._peer_online)
        session.on_peer_offline(self._peer_offline)

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def ensure_node(self, peer_id: str) -> VoteSamplingNode:
        """Get (creating if needed) the protocol node for a peer."""
        node = self.nodes.get(peer_id)
        if node is None:
            if self._node_factory is not None:
                node = self._node_factory(peer_id)
            else:
                node = VoteSamplingNode(
                    peer_id, self.config.node, self._rng.stream("node", peer_id)
                )
            self.nodes[peer_id] = node
        return node

    def register_node(self, node: VoteSamplingNode) -> None:
        """Install a custom node object (attack models use this)."""
        if node.peer_id in self.nodes:
            raise ValueError(f"node {node.peer_id!r} already registered")
        self.nodes[node.peer_id] = node

    def bring_online(self, peer_id: str, now: float) -> None:
        """Manually bring a peer online (for peers outside the trace,
        e.g. a flash crowd arriving mid-run)."""
        self.registry.set_online(peer_id)
        self._peer_online(peer_id, now)

    def take_offline(self, peer_id: str, now: float) -> None:
        self.registry.set_offline(peer_id)
        self._peer_offline(peer_id, now)

    # ------------------------------------------------------------------
    def _peer_online(self, peer_id: str, now: float) -> None:
        node = self.ensure_node(peer_id)
        if node.online:
            return
        node.online = True
        self._online_since[peer_id] = now
        if self.newscast is not None:
            self.newscast.node_online(peer_id, now)
        if self.population_engine == "soa":
            self._population_scheduler().peer_online(peer_id, now)
        else:
            for proc in self._processes_for(peer_id):
                proc.start()

    def _peer_offline(self, peer_id: str, now: float) -> None:
        node = self.nodes.get(peer_id)
        if node is None or not node.online:
            return
        node.online = False
        since = self._online_since.pop(peer_id, None)
        if since is not None:
            self._online_seconds += max(0.0, now - since)
        if self.newscast is not None:
            self.newscast.node_offline(peer_id)
        if self._population is not None:
            self._population.peer_offline(peer_id, now)
        else:
            for proc in self._processes.get(peer_id, ()):
                proc.stop()

    def _processes_for(self, peer_id: str) -> List[PeriodicProcess]:
        procs = self._processes.get(peer_id)
        if procs is not None:
            return procs
        cfg = self.config
        jrng = self._rng.stream("jitter", peer_id)

        def make(interval: float, action: Callable[[], None]) -> PeriodicProcess:
            return PeriodicProcess(
                self.engine,
                interval,
                action,
                jitter=interval * cfg.jitter_fraction,
                rng=jrng,
            )

        procs = [
            make(cfg.moderation_interval, lambda: self._moderation_tick(peer_id)),
            make(cfg.vote_interval, lambda: self._vote_tick(peer_id)),
            make(cfg.bartercast_interval, lambda: self._bartercast_tick(peer_id)),
        ]
        if self.newscast is not None:
            procs.append(
                make(cfg.newscast_interval, lambda: self._newscast_tick(peer_id))
            )
        if isinstance(self.experience, AdaptiveThresholdExperience):
            procs.append(
                make(cfg.adaptive_update_interval, lambda: self._adaptive_tick(peer_id))
            )
        self._processes[peer_id] = procs
        return procs

    def _protocol_specs(self) -> List[ProtocolSpec]:
        """The canonical per-peer protocol loops, in the object
        engine's registration order (``_processes_for``)."""
        cfg = self.config
        specs: List[ProtocolSpec] = [
            ("moderation", cfg.moderation_interval, self._moderation_tick),
            ("vote", cfg.vote_interval, self._vote_tick),
            ("bartercast", cfg.bartercast_interval, self._bartercast_tick),
        ]
        if self.newscast is not None:
            specs.append(("newscast", cfg.newscast_interval, self._newscast_tick))
        if isinstance(self.experience, AdaptiveThresholdExperience):
            specs.append(
                ("adaptive", cfg.adaptive_update_interval, self._adaptive_tick)
            )
        return specs

    def _population_scheduler(self) -> PopulationEngine:
        """The SoA scheduler, built at first peer-online — the same
        moment ``_processes_for`` freezes a peer's protocol set, so a
        pre-start ``runtime.experience`` swap is honoured by both
        engines (swapping after the first online is unsupported
        either way)."""
        population = self._population
        if population is None:
            population = PopulationEngine(
                self.engine,
                self._rng,
                self._protocol_specs(),
                jitter_fraction=self.config.jitter_fraction,
            )
            self.engine.attach_source(population)
            self._population = population
        return population

    def run_summary(self) -> Dict[str, object]:
        """One dict with everything a run report needs: per-protocol
        traffic (the TrafficMeter), BarterCast exchange and cache
        counters, node-level protocol counters, drops, accumulated
        online node-hours, and population-engine telemetry.

        Everything except the ``population`` section is bit-identical
        across tick schedulers; ``population`` describes the scheduler
        itself (engine name, batch shape) and so differs by design.
        """
        return {
            "traffic": self.traffic.summary(),
            "bartercast": {
                "exchanges": self.bartercast.exchanges,
                **self.bartercast.cache_stats(),
            },
            "nodes": self.node_counters(),
            "dropped_exchanges": self.dropped_exchanges,
            "online_node_hours": self.online_node_hours(),
            "population": self.population_summary(),
        }

    def population_summary(self) -> Dict[str, object]:
        """Tick-scheduler telemetry: which engine ran, population and
        online counts, ticks dispatched per protocol, batch shape.
        Under the object engine every tick is its own heap event, so
        batches degenerate to size 1."""
        if self._population is not None:
            return self._population.telemetry()
        names = [name for name, _interval, _action in self._protocol_specs()]
        ticks_by_protocol: Dict[str, int] = {}
        ticks = 0
        for procs in self._processes.values():
            for name, proc in zip(names, procs):
                ticks_by_protocol[name] = ticks_by_protocol.get(name, 0) + proc.ticks
                ticks += proc.ticks
        peers_online = sum(1 for node in self.nodes.values() if node.online)
        return {
            "engine": self.population_engine,
            "peers_total": len(self.nodes),
            "peers_online": peers_online,
            "ticks": ticks,
            "batches": ticks,
            "mean_batch_size": 1.0 if ticks else 0.0,
            "max_batch_size": 1 if ticks else 0,
            "ticks_by_protocol": ticks_by_protocol,
        }

    def node_counters(self) -> Dict[str, int]:
        """Protocol counters summed over every materialised node."""
        totals = {
            "moderations_received": 0,
            "votes_merged": 0,
            "votes_rejected_inexperienced": 0,
            "votes_truncated": 0,
            "vp_requests_answered": 0,
            "vp_requests_declined": 0,
        }
        for node in self.nodes.values():
            for key in totals:
                totals[key] += getattr(node, key)
        return totals

    def online_node_hours(self) -> float:
        """Accumulated online node-hours (closed sessions plus the
        still-open ones up to the current simulated time)."""
        total = self._online_seconds
        now = self.engine.now
        for since in self._online_since.values():
            total += max(0.0, now - since)
        return total / 3600.0

    # ------------------------------------------------------------------
    # Ticks
    # ------------------------------------------------------------------
    def _partner_for(self, peer_id: str) -> Optional[VoteSamplingNode]:
        partner = self.pss.sample(peer_id)
        if partner is None or partner == peer_id:
            return None
        if not self.registry.is_online(partner):
            # Stale PSS entry (possible with Newscast) = failed connect.
            return None
        if self.config.message_loss > 0.0:
            if self._message_loss_rng.random() < self.config.message_loss:
                self.dropped_exchanges += 1
                return None
        return self.ensure_node(partner)

    def _moderation_tick(self, peer_id: str) -> None:
        node = self.nodes[peer_id]
        if not node.online:
            return
        partner = self._partner_for(peer_id)
        if partner is None:
            return
        now = self.engine.now
        # Push/pull (Fig 1): both sides extract then merge.
        outbound = node.moderations_to_send()
        inbound = partner.moderations_to_send()
        partner.receive_moderations(outbound, now)
        node.receive_moderations(inbound, now)
        self.traffic.moderation_exchange(len(outbound), len(inbound))

    def _vote_tick(self, peer_id: str) -> None:
        node = self.nodes[peer_id]
        if not node.online:
            return
        # The round's partner set: `vote_fanout` PSS draws (duplicates
        # and failed connects dropped).  The whole set is gated through
        # one `experienced_many` evaluation, which batches the forward
        # flows; with the default fanout of 1 the single-subject fast
        # path makes this bit-identical to the old pairwise gating.
        partners: List[VoteSamplingNode] = []
        seen = {peer_id}
        for _ in range(self.config.vote_fanout):
            candidate = self._partner_for(peer_id)
            if candidate is None or candidate.peer_id in seen:
                continue
            seen.add(candidate.peer_id)
            partners.append(candidate)
        if not partners:
            return
        now = self.engine.now
        verdicts = self.experience.experienced_many(
            peer_id, [p.peer_id for p in partners]
        )
        # Reverse direction: each partner needs its own evaluation of
        # this peer (one call per partner is irreducible), but the
        # single-subject list is loop-invariant — build it once.
        reverse_subjects = [peer_id]
        for partner in partners:
            # BallotBox (Fig 3 a+b): bidirectional vote-list exchange,
            # each side gating on its own experience evaluation.
            votes_out = node.votes_to_send()
            votes_in = partner.votes_to_send()
            node.receive_votes(
                partner.peer_id,
                votes_in,
                now,
                experienced=verdicts[partner.peer_id],
            )
            partner.receive_votes(
                peer_id,
                votes_out,
                now,
                experienced=self.experience.experienced_many(
                    partner.peer_id, reverse_subjects
                )[peer_id],
            )
            self.traffic.vote_exchange(len(votes_out), len(votes_in))
            # VoxPopuli (Fig 3 a+c): only while bootstrapping.
            if node.config.voxpopuli_enabled and node.needs_bootstrap():
                response = partner.respond_top_k()
                node.receive_top_k(response)
                self.traffic.voxpopuli_exchange(len(response) if response else 0)

    def _bartercast_tick(self, peer_id: str) -> None:
        node = self.nodes[peer_id]
        if not node.online:
            return
        before = self.bartercast.exchanges
        self.bartercast.gossip_tick(peer_id, self.engine.now)
        if self.bartercast.exchanges > before:
            # Both directions carry up to the per-exchange record cap.
            n = len(self.bartercast.records_of(peer_id))
            self.traffic.bartercast_exchange(n)

    def _newscast_tick(self, peer_id: str) -> None:
        node = self.nodes[peer_id]
        if not node.online:
            return
        assert self.newscast is not None
        if self.newscast.gossip_tick(peer_id, self.engine.now):
            self.traffic.newscast_exchange(
                2 * self.newscast.config.view_size
            )

    def _adaptive_tick(self, peer_id: str) -> None:
        node = self.nodes[peer_id]
        if not node.online:
            return
        assert isinstance(self.experience, AdaptiveThresholdExperience)
        before = self.experience.threshold_for(peer_id)
        after = self.experience.update(peer_id, node.ballot_box)
        if after > before:
            # Raising T means "shield myself from the votes of
            # newcomers": re-screen the ballot box so votes accepted
            # under the looser threshold no longer count.  One batch
            # contribution evaluation covers every voter at once.
            voters = list(node.ballot_box.voters())
            verdicts = self.experience.experienced_many(peer_id, voters)
            for voter in voters:
                if not verdicts[voter]:
                    node.ballot_box.remove_voter(voter)
