"""Protocol runtime — binds nodes, PSS, BarterCast and the engine.

The runtime owns one :class:`~repro.core.node.VoteSamplingNode` per
peer and drives the paper's ``do forever: wait Δ; …`` loops as jittered
periodic processes per online node:

* **ModerationCast tick** — push/pull moderation exchange (Fig 1);
* **vote tick** — BallotBox exchange with experience gating, plus the
  conditional VoxPopuli top-K request (Fig 3 a);
* **BarterCast tick** — transfer-record gossip;
* **Newscast tick** — view exchange (only when the gossip PSS is used);
* **adaptive-T tick** — dispersion controller update (only when the
  adaptive experience function is configured).

Transfers observed by the BitTorrent ledger stream straight into
BarterCast; experience is evaluated on demand at each vote exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.bartercast.protocol import BarterCastConfig, BarterCastService
from repro.bittorrent.session import BitTorrentSession
from repro.core.columnar import ColumnarStateStore
from repro.core.experience import (
    AdaptiveThresholdExperience,
    AlwaysExperienced,
    ExperienceFunction,
    ThresholdExperience,
)
from repro.core.node import NodeConfig, VoteSamplingNode
from repro.metrics.traffic import TrafficMeter
from repro.pss.base import PeerSamplingService
from repro.pss.ideal import OraclePSS
from repro.pss.newscast import NewscastConfig, NewscastService
from repro.sim.population import PopulationEngine, ProtocolSpec
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RngRegistry
from repro.sim.units import MB


@dataclass
class RuntimeConfig:
    """Runtime parameters.

    The paper does not pin Δ numerically; 5 minutes per protocol loop
    gives each node ≈288 exchanges/day, comfortably faster than the
    experience-formation dynamics that dominate the figures.
    """

    node: NodeConfig = field(default_factory=NodeConfig)
    moderation_interval: float = 300.0
    vote_interval: float = 300.0
    bartercast_interval: float = 900.0
    newscast_interval: float = 60.0
    adaptive_update_interval: float = 900.0
    #: Jitter each loop by ±(fraction · interval) to desynchronise.
    jitter_fraction: float = 0.1
    #: Use the Newscast gossip PSS instead of the oracle.
    use_newscast: bool = False
    #: T for the default threshold experience function (bytes).
    experience_threshold: float = 5 * MB
    bartercast: BarterCastConfig = field(default_factory=BarterCastConfig)
    #: Partners gated and exchanged with per vote tick.  1 is the
    #: paper's loop; larger fan-outs gate the whole round's partner set
    #: through one batched ``experienced_many`` evaluation.
    vote_fanout: int = 1
    #: Convenience mirror of ``BarterCastConfig.contrib_cache_entries``
    #: (LRU bound on per-node contribution caches; 0 = unbounded).
    #: When set it overrides the value in ``bartercast``.
    contrib_cache_entries: Optional[int] = None
    #: Convenience mirror of ``BarterCastConfig.graph_backend``
    #: (``"dense"`` / ``"sparse"`` / ``"auto"`` matrix mirror for every
    #: subjective graph).  When set it overrides ``bartercast``.
    graph_backend: Optional[str] = None
    #: Convenience mirror of ``BarterCastConfig.sparse_graph_threshold``
    #: (node count at which ``"auto"`` graphs switch to the sparse
    #: mirror).  When set it overrides ``bartercast``.
    sparse_graph_threshold: Optional[int] = None
    #: Convenience mirror of ``BarterCastConfig.sparse_flow_kernel``
    #: (``"chunked"`` / ``"csr"`` / ``"auto"`` batch flow kernel under
    #: the sparse graph backend).  When set it overrides ``bartercast``.
    sparse_flow_kernel: Optional[str] = None
    #: Probability that any protocol exchange fails (connection reset,
    #: NAT timeout, …) beyond what churn already causes.  Failure
    #: injection for robustness tests; 0 in the paper's experiments.
    message_loss: float = 0.0
    #: Tick scheduler: ``"object"`` = one ``PeriodicProcess`` heap
    #: entry per peer per protocol; ``"soa"`` = the structure-of-arrays
    #: population engine (``repro.sim.population``) with batched
    #: dispatch; ``"auto"`` = ``"soa"`` once the trace population
    #: reaches ``population_engine_threshold``.  The tick schedule and
    #: every protocol result are bit-identical across engines.
    population_engine: str = "auto"
    #: Trace population size at which ``"auto"`` switches to the
    #: structure-of-arrays engine.
    population_engine_threshold: int = 10_000
    #: Columnar protocol state: ``"on"`` = node ballot boxes, adaptive
    #: thresholds and store membership live in a shared
    #: :class:`~repro.core.columnar.ColumnarStateStore` (numpy columns
    #: keyed by the population engine's rows), enabling the batched
    #: vote-tick path under the SoA scheduler; ``"off"`` = classic
    #: per-node dict state; ``"auto"`` = follow the resolved tick
    #: scheduler (columns exactly when the SoA engine runs).  Results
    #: are bit-identical either way.
    columnar_state: str = "auto"

    def __post_init__(self) -> None:
        if not (0.0 <= self.message_loss < 1.0):
            raise ValueError("message_loss must be in [0, 1)")
        for name in (
            "moderation_interval",
            "vote_interval",
            "bartercast_interval",
            "newscast_interval",
            "adaptive_update_interval",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not (0.0 <= self.jitter_fraction < 1.0):
            raise ValueError("jitter_fraction must be in [0, 1)")
        if self.vote_fanout < 1:
            raise ValueError("vote_fanout must be >= 1")
        if self.contrib_cache_entries is not None and self.contrib_cache_entries < 0:
            raise ValueError("contrib_cache_entries must be >= 0")
        if self.graph_backend is not None and self.graph_backend not in (
            "dense",
            "sparse",
            "auto",
        ):
            raise ValueError("graph_backend must be dense, sparse or auto")
        if self.sparse_graph_threshold is not None and self.sparse_graph_threshold < 0:
            raise ValueError("sparse_graph_threshold must be >= 0")
        if self.sparse_flow_kernel is not None and self.sparse_flow_kernel not in (
            "chunked",
            "csr",
            "auto",
        ):
            raise ValueError("sparse_flow_kernel must be chunked, csr or auto")
        if self.population_engine not in ("object", "soa", "auto"):
            raise ValueError("population_engine must be object, soa or auto")
        if self.population_engine_threshold < 0:
            raise ValueError("population_engine_threshold must be >= 0")
        if self.columnar_state not in ("on", "off", "auto"):
            raise ValueError("columnar_state must be on, off or auto")


NodeFactory = Callable[[str], VoteSamplingNode]


class ProtocolRuntime:
    """Drives the full protocol stack over one BitTorrent session."""

    def __init__(
        self,
        session: BitTorrentSession,
        rng: RngRegistry,
        config: Optional[RuntimeConfig] = None,
        experience: Optional[ExperienceFunction] = None,
        pss: Optional[PeerSamplingService] = None,
        node_factory: Optional[NodeFactory] = None,
    ):
        self.session = session
        self.engine = session.engine
        self.registry = session.registry
        self.config = config or RuntimeConfig()
        self._rng = rng
        self._node_factory = node_factory

        self.newscast: Optional[NewscastService] = None
        if pss is not None:
            self.pss = pss
        elif self.config.use_newscast:
            self.newscast = NewscastService(
                self.registry, rng.stream("newscast"), NewscastConfig()
            )
            self.pss = self.newscast
        else:
            self.pss = OraclePSS(self.registry, rng.stream("pss"))

        bartercast_config = self.config.bartercast
        overrides: Dict[str, object] = {}
        if self.config.contrib_cache_entries is not None:
            overrides["contrib_cache_entries"] = self.config.contrib_cache_entries
        if self.config.graph_backend is not None:
            overrides["graph_backend"] = self.config.graph_backend
        if self.config.sparse_graph_threshold is not None:
            overrides["sparse_graph_threshold"] = self.config.sparse_graph_threshold
        if self.config.sparse_flow_kernel is not None:
            overrides["sparse_flow_kernel"] = self.config.sparse_flow_kernel
        if overrides:
            bartercast_config = replace(bartercast_config, **overrides)
        self.bartercast = BarterCastService(self.pss, bartercast_config)
        self.bartercast.resolve_cache_budget(len(session.trace.peers))
        session.ledger.add_listener(self.bartercast.local_transfer)

        self.experience: ExperienceFunction = (
            experience
            if experience is not None
            else ThresholdExperience(self.bartercast, self.config.experience_threshold)
        )

        self.nodes: Dict[str, VoteSamplingNode] = {}
        self._processes: Dict[str, List[PeriodicProcess]] = {}
        mode = self.config.population_engine
        if mode == "auto":
            mode = (
                "soa"
                if len(session.trace.peers) >= self.config.population_engine_threshold
                else "object"
            )
        #: resolved tick scheduler ("object" or "soa")
        self.population_engine: str = mode
        self._population: Optional[PopulationEngine] = None
        col_mode = self.config.columnar_state
        col_on = mode == "soa" if col_mode == "auto" else col_mode == "on"
        #: resolved columnar protocol state ("on" or "off")
        self.columnar_state: str = "on" if col_on else "off"
        self._col_store: Optional[ColumnarStateStore] = (
            ColumnarStateStore() if col_on else None
        )
        #: the batched vote tick inlines VoteSamplingNode handlers, so
        #: custom node classes (attack models, factories) disable it
        self._batch_safe = node_factory is None
        self.dropped_exchanges = 0
        # Hoisted from _partner_for: the registry memoises streams by
        # name, so caching the generator object draws the identical
        # sequence while skipping a dict lookup per exchange.
        self._message_loss_rng = rng.stream("message-loss")
        self.traffic = TrafficMeter()
        #: accumulated online node-seconds (for per-node-hour costs)
        self._online_seconds = 0.0
        self._online_since: Dict[str, float] = {}

        session.on_peer_online(self._peer_online)
        session.on_peer_offline(self._peer_offline)

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def ensure_node(self, peer_id: str) -> VoteSamplingNode:
        """Get (creating if needed) the protocol node for a peer."""
        node = self.nodes.get(peer_id)
        if node is None:
            if self._node_factory is not None:
                node = self._node_factory(peer_id)
            else:
                node = VoteSamplingNode(
                    peer_id,
                    self.config.node,
                    self._rng.stream("node", peer_id),
                    col_store=self._col_store,
                )
            self.nodes[peer_id] = node
        return node

    def register_node(self, node: VoteSamplingNode) -> None:
        """Install a custom node object (attack models use this)."""
        if node.peer_id in self.nodes:
            raise ValueError(f"node {node.peer_id!r} already registered")
        self.nodes[node.peer_id] = node
        # A registered node may override any handler; the batched vote
        # tick would bypass those overrides, so fall back to scalar.
        self._batch_safe = False

    def bring_online(self, peer_id: str, now: float) -> None:
        """Manually bring a peer online (for peers outside the trace,
        e.g. a flash crowd arriving mid-run)."""
        self.registry.set_online(peer_id)
        self._peer_online(peer_id, now)

    def take_offline(self, peer_id: str, now: float) -> None:
        self.registry.set_offline(peer_id)
        self._peer_offline(peer_id, now)

    # ------------------------------------------------------------------
    def _peer_online(self, peer_id: str, now: float) -> None:
        node = self.ensure_node(peer_id)
        if node.online:
            return
        node.online = True
        self._online_since[peer_id] = now
        if self.newscast is not None:
            self.newscast.node_online(peer_id, now)
        if self.population_engine == "soa":
            self._population_scheduler().peer_online(peer_id, now)
        else:
            for proc in self._processes_for(peer_id):
                proc.start()

    def _peer_offline(self, peer_id: str, now: float) -> None:
        node = self.nodes.get(peer_id)
        if node is None or not node.online:
            return
        node.online = False
        since = self._online_since.pop(peer_id, None)
        if since is not None:
            self._online_seconds += max(0.0, now - since)
        if self.newscast is not None:
            self.newscast.node_offline(peer_id)
        if self._population is not None:
            self._population.peer_offline(peer_id, now)
        else:
            for proc in self._processes.get(peer_id, ()):
                proc.stop()

    def _processes_for(self, peer_id: str) -> List[PeriodicProcess]:
        procs = self._processes.get(peer_id)
        if procs is not None:
            return procs
        cfg = self.config
        jrng = self._rng.stream("jitter", peer_id)

        def make(interval: float, action: Callable[[], None]) -> PeriodicProcess:
            return PeriodicProcess(
                self.engine,
                interval,
                action,
                jitter=interval * cfg.jitter_fraction,
                rng=jrng,
            )

        procs = [
            make(cfg.moderation_interval, lambda: self._moderation_tick(peer_id)),
            make(cfg.vote_interval, lambda: self._vote_tick(peer_id)),
            make(cfg.bartercast_interval, lambda: self._bartercast_tick(peer_id)),
        ]
        if self.newscast is not None:
            procs.append(
                make(cfg.newscast_interval, lambda: self._newscast_tick(peer_id))
            )
        if isinstance(self.experience, AdaptiveThresholdExperience):
            procs.append(
                make(cfg.adaptive_update_interval, lambda: self._adaptive_tick(peer_id))
            )
        self._processes[peer_id] = procs
        return procs

    def _protocol_specs(self) -> List[ProtocolSpec]:
        """The canonical per-peer protocol loops, in the object
        engine's registration order (``_processes_for``)."""
        cfg = self.config
        vote_spec: ProtocolSpec = ("vote", cfg.vote_interval, self._vote_tick)
        if (
            self._col_store is not None
            and cfg.vote_fanout == 1
            and type(self.pss) is OraclePSS
            and "_vote_tick" not in self.__dict__
        ):
            # Batched vote dispatch needs the columnar state store
            # (inline merges write the columns), the paper's fanout of
            # 1 (one PSS draw per tick, vectorised by sample_batch)
            # and the oracle PSS (its sampling never reads state the
            # in-batch exchanges could mutate).  An instance-level
            # ``_vote_tick`` override (instrumentation wrappers) also
            # opts out — inlining would bypass it.  ``_batch_safe``
            # handles the remaining dynamic conditions at call time.
            vote_spec = (
                "vote", cfg.vote_interval, self._vote_tick,
                self._vote_tick_batch,
            )
        specs: List[ProtocolSpec] = [
            ("moderation", cfg.moderation_interval, self._moderation_tick),
            vote_spec,
            ("bartercast", cfg.bartercast_interval, self._bartercast_tick),
        ]
        if self.newscast is not None:
            specs.append(("newscast", cfg.newscast_interval, self._newscast_tick))
        if isinstance(self.experience, AdaptiveThresholdExperience):
            specs.append(
                ("adaptive", cfg.adaptive_update_interval, self._adaptive_tick)
            )
        return specs

    def _population_scheduler(self) -> PopulationEngine:
        """The SoA scheduler, built at first peer-online — the same
        moment ``_processes_for`` freezes a peer's protocol set, so a
        pre-start ``runtime.experience`` swap is honoured by both
        engines (swapping after the first online is unsupported
        either way)."""
        population = self._population
        if population is None:
            col_store = self._col_store
            if col_store is not None and isinstance(
                self.experience, AdaptiveThresholdExperience
            ):
                # Mirror per-node thresholds into the exp_threshold
                # column so the batched vote tick can gate fast.
                self.experience.bind_store(col_store)
            population = PopulationEngine(
                self.engine,
                self._rng,
                self._protocol_specs(),
                jitter_fraction=self.config.jitter_fraction,
                rows=col_store.rows if col_store is not None else None,
            )
            self.engine.attach_source(population)
            self._population = population
        return population

    def run_summary(self) -> Dict[str, object]:
        """One dict with everything a run report needs: per-protocol
        traffic (the TrafficMeter), BarterCast exchange and cache
        counters, node-level protocol counters, drops, accumulated
        online node-hours, and population-engine telemetry.

        Everything except the ``population`` section is bit-identical
        across tick schedulers; ``population`` describes the scheduler
        itself (engine name, batch shape) and so differs by design.
        """
        return {
            "traffic": self.traffic.summary(),
            "bartercast": {
                "exchanges": self.bartercast.exchanges,
                **self.bartercast.cache_stats(),
            },
            "nodes": self.node_counters(),
            "dropped_exchanges": self.dropped_exchanges,
            "online_node_hours": self.online_node_hours(),
            "population": self.population_summary(),
        }

    def ballot_memory_bytes(self) -> int:
        """Measured retained bytes of all ballot-box state, comparable
        across backings: the columnar store's columns, payload slabs
        and bookkeeping when columnar state is on, otherwise the sum of
        every materialised node's dict-box containers (both sides
        exclude shared id strings, so the numbers are like-for-like)."""
        if self._col_store is not None:
            return self._col_store.memory_bytes()
        return sum(node.ballot_box.memory_bytes() for node in self.nodes.values())

    def population_summary(self) -> Dict[str, object]:
        """Tick-scheduler telemetry: which engine ran, population and
        online counts, ticks dispatched per protocol, batch shape, and
        the measured ballot-box memory footprint.  Under the object
        engine every tick is its own heap event, so batches degenerate
        to size 1."""
        if self._population is not None:
            out = self._population.telemetry()
            out["columnar_state"] = self.columnar_state
            out["ballot_memory_bytes"] = self.ballot_memory_bytes()
            return out
        names = [spec[0] for spec in self._protocol_specs()]
        ticks_by_protocol: Dict[str, int] = {}
        ticks = 0
        for procs in self._processes.values():
            for name, proc in zip(names, procs):
                ticks_by_protocol[name] = ticks_by_protocol.get(name, 0) + proc.ticks
                ticks += proc.ticks
        peers_online = sum(1 for node in self.nodes.values() if node.online)
        return {
            "engine": self.population_engine,
            "columnar_state": self.columnar_state,
            "peers_total": len(self.nodes),
            "peers_online": peers_online,
            "ticks": ticks,
            "batches": ticks,
            "mean_batch_size": 1.0 if ticks else 0.0,
            "max_batch_size": 1 if ticks else 0,
            "ticks_by_protocol": ticks_by_protocol,
            "ballot_memory_bytes": self.ballot_memory_bytes(),
        }

    def node_counters(self) -> Dict[str, int]:
        """Protocol counters summed over every materialised node."""
        totals = {
            "moderations_received": 0,
            "votes_merged": 0,
            "votes_rejected_inexperienced": 0,
            "votes_truncated": 0,
            "vp_requests_answered": 0,
            "vp_requests_declined": 0,
        }
        for node in self.nodes.values():
            for key in totals:
                totals[key] += getattr(node, key)
        return totals

    def online_node_hours(self) -> float:
        """Accumulated online node-hours (closed sessions plus the
        still-open ones up to the current simulated time)."""
        total = self._online_seconds
        now = self.engine.now
        for since in self._online_since.values():
            total += max(0.0, now - since)
        return total / 3600.0

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def materialize_population(self) -> PopulationEngine:
        """Force-create the SoA scheduler (checkpoint-restore API).

        Restore paths pre-populate :attr:`nodes` directly and then
        replay the scheduler columns, so the lazy first-peer-online
        construction never happens; this exposes it explicitly.  Only
        valid when the runtime resolved ``population_engine="soa"``.
        """
        if self.population_engine != "soa":
            raise RuntimeError("materialize_population requires the soa engine")
        return self._population_scheduler()

    def counters_state(self) -> Dict[str, object]:
        """Run-level counters (not owned by any node) as JSON-clean
        state: traffic meter, drop count, online-time accounting and
        the BarterCast exchange counter.  Cache hit/miss telemetry is
        deliberately excluded — a restarted process starts cold, and
        cache warmth is performance state, not protocol state."""
        return {
            "traffic": {
                name: {
                    "exchanges": counter.exchanges,
                    "items": counter.items,
                    "item_bytes": counter.item_bytes,
                }
                for name, counter in self.traffic.counters.items()
            },
            "dropped_exchanges": self.dropped_exchanges,
            "online_seconds": self._online_seconds,
            "online_since": dict(self._online_since),
            "bartercast_exchanges": self.bartercast.exchanges,
        }

    def restore_counters(self, state: Dict[str, object]) -> None:
        """Adopt a :meth:`counters_state` snapshot (saved dict order is
        preserved so float summaries reduce in the same order)."""
        meter = TrafficMeter()
        for name, rec in state["traffic"].items():  # type: ignore[union-attr]
            counter = meter._get(name)
            counter.exchanges = int(rec["exchanges"])
            counter.items = int(rec["items"])
            counter.item_bytes = float(rec["item_bytes"])
        self.traffic = meter
        self.dropped_exchanges = int(state["dropped_exchanges"])  # type: ignore[arg-type]
        self._online_seconds = float(state["online_seconds"])  # type: ignore[arg-type]
        self._online_since = {
            peer: float(since)
            for peer, since in state["online_since"].items()  # type: ignore[union-attr]
        }
        self.bartercast.exchanges = int(state["bartercast_exchanges"])  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Ticks
    # ------------------------------------------------------------------
    def _partner_for(self, peer_id: str) -> Optional[VoteSamplingNode]:
        partner = self.pss.sample(peer_id)
        if partner is None or partner == peer_id:
            return None
        if not self.registry.is_online(partner):
            # Stale PSS entry (possible with Newscast) = failed connect.
            return None
        if self.config.message_loss > 0.0:
            if self._message_loss_rng.random() < self.config.message_loss:
                self.dropped_exchanges += 1
                return None
        return self.ensure_node(partner)

    def _moderation_tick(self, peer_id: str) -> None:
        node = self.nodes[peer_id]
        if not node.online:
            return
        partner = self._partner_for(peer_id)
        if partner is None:
            return
        now = self.engine.now
        # Push/pull (Fig 1): both sides extract then merge.
        outbound = node.moderations_to_send()
        inbound = partner.moderations_to_send()
        partner.receive_moderations(outbound, now)
        node.receive_moderations(inbound, now)
        self.traffic.moderation_exchange(len(outbound), len(inbound))

    def _vote_tick(self, peer_id: str) -> None:
        node = self.nodes[peer_id]
        if not node.online:
            return
        # The round's partner set: `vote_fanout` PSS draws (duplicates
        # and failed connects dropped).  The whole set is gated through
        # one `experienced_many` evaluation, which batches the forward
        # flows; with the default fanout of 1 the single-subject fast
        # path makes this bit-identical to the old pairwise gating.
        partners: List[VoteSamplingNode] = []
        seen = {peer_id}
        for _ in range(self.config.vote_fanout):
            candidate = self._partner_for(peer_id)
            if candidate is None or candidate.peer_id in seen:
                continue
            seen.add(candidate.peer_id)
            partners.append(candidate)
        if not partners:
            return
        now = self.engine.now
        verdicts = self.experience.experienced_many(
            peer_id, [p.peer_id for p in partners]
        )
        # Reverse direction: each partner needs its own evaluation of
        # this peer (one call per partner is irreducible), but the
        # single-subject list is loop-invariant — build it once.
        reverse_subjects = [peer_id]
        for partner in partners:
            # BallotBox (Fig 3 a+b): bidirectional vote-list exchange,
            # each side gating on its own experience evaluation.
            votes_out = node.votes_to_send()
            votes_in = partner.votes_to_send()
            node.receive_votes(
                partner.peer_id,
                votes_in,
                now,
                experienced=verdicts[partner.peer_id],
            )
            partner.receive_votes(
                peer_id,
                votes_out,
                now,
                experienced=self.experience.experienced_many(
                    partner.peer_id, reverse_subjects
                )[peer_id],
            )
            self.traffic.vote_exchange(len(votes_out), len(votes_in))
            # VoxPopuli (Fig 3 a+c): only while bootstrapping.
            if node.config.voxpopuli_enabled and node.needs_bootstrap():
                response = partner.respond_top_k()
                node.receive_top_k(response)
                self.traffic.voxpopuli_exchange(len(response) if response else 0)

    def _vote_tick_batch(
        self, times: List[float], pids: List[str], rows: List[int]
    ) -> None:
        """One vote tick per due entry, over the state columns.

        Registered as the SoA engine's batch handler for the vote
        protocol.  Bit-identical to running :meth:`_vote_tick` per
        entry because every random draw and order-sensitive call is
        replayed in the scalar order: PSS draws per entry (vectorised
        by ``sample_batch`` with scalar replay on collision), loss
        draws only for connectable candidates, partner nodes created
        in entry order, the forward experience verdict before vote
        selection and the reverse verdict after this node's merge
        (BarterCast's contribution caches see the same call sequence),
        and merges through the same columnar operations the object API
        uses.

        The columns carry the batch: one gather per direction over
        ``vl_size`` and ``bb_unique`` proves most entries side-effect
        free — no votes on either side, no VoxPopuli bootstrap, and an
        all-accepting experience gate — so the Python loop only visits
        the entries that do real work.  The skip is sound because vote
        lists cannot change mid-batch, box occupancy only grows while
        votes merge (an entry starting at or above ``B_min`` can never
        re-enter bootstrap), and an accepted empty exchange touches
        nothing but the aggregate counters.  Those aggregates are
        exact wholesale: every selection policy returns
        ``min(vl_size, cap)`` entries, so per-exchange traffic folds
        into two integer adds per protocol, and byte totals are
        derived from the integer counters.
        """
        engine = self.engine
        if not self._batch_safe:
            # Custom node classes in play (factory or register_node):
            # their handler overrides must run, so tick scalar.
            vote_tick = self._vote_tick
            for t, pid in zip(times, pids):
                engine._now = t
                vote_tick(pid)
            return
        nodes = self.nodes
        m = len(pids)
        own: List[VoteSamplingNode] = []
        for pid in pids:
            node = nodes[pid]
            if not node.online:
                # Runtime/engine online flags out of sync (manual
                # flips): the scalar tick skips such peers *before*
                # sampling, so replay the whole run scalar.
                vote_tick = self._vote_tick
                for t, pid2 in zip(times, pids):
                    engine._now = t
                    vote_tick(pid2)
                return
            own.append(node)
        partner_ids = self.pss.sample_batch(pids)
        is_online = self.registry.is_online
        loss = self.config.message_loss
        loss_rng = self._message_loss_rng
        ensure_node = self.ensure_node
        partners: List[Optional[VoteSamplingNode]] = [None] * m
        for k in range(m):
            partner = partner_ids[k]
            if partner is None or partner == pids[k]:
                continue
            if not is_online(partner):
                continue
            if loss > 0.0 and loss_rng.random() < loss:
                self.dropped_exchanges += 1
                continue
            partners[k] = ensure_node(partner)
        store = self._col_store
        assert store is not None  # batch registration requires columns
        exp = self.experience
        exp_type = type(exp)
        # Experience gating: the all-accepting cases resolve once for
        # the whole batch, adaptive thresholds gate via one column
        # gather per direction, and anything else falls back to the
        # scalar evaluation in the scalar call order.
        fast_all = exp_type is AlwaysExperienced or (
            exp_type is ThresholdExperience and exp.threshold <= 0.0
        )
        rows_arr = np.fromiter(rows, np.int64, m)
        prow_list = [0 if p is None else p.row for p in partners]
        prows_arr = np.fromiter(prow_list, np.int64, m)
        valid = np.fromiter((p is not None for p in partners), np.bool_, m)
        n_ex = int(np.count_nonzero(valid))
        if n_ex == 0:
            return
        cfg = self.config.node
        cap = cfg.votes_per_exchange
        policy = cfg.exchange_policy
        b_max = cfg.b_max
        b_min = cfg.b_min
        vox = cfg.voxpopuli_enabled
        # Vote-list sizes cannot change mid-batch (casting happens off
        # the vote tick), so one gather per direction stands in for the
        # per-entry reads, and — because every selection policy returns
        # exactly ``min(vl_size, cap)`` entries — the exchange item
        # total folds into one vectorised sum.
        vl_col = store.vl_size
        vl_own_arr = vl_col[rows_arr]
        vl_par_arr = vl_col[prows_arr]
        n_items = int(
            (np.minimum(vl_own_arr, cap) + np.minimum(vl_par_arr, cap))[
                valid
            ].sum()
        )
        # An entry must run scalar when any per-entry side effect is
        # possible: votes to merge in either direction, a VoxPopuli
        # bootstrap candidate (occupancy below B_min *before* the
        # batch — occupancy only grows as votes merge, so entries at
        # or above B_min can never re-enter bootstrap mid-batch), or
        # an experience gate that isn't a column fast path (rejection
        # counters fire even on empty exchanges).
        active = (vl_own_arr > 0) | (vl_par_arr > 0)
        bb_unique = store.bb_unique
        pre_vox = None
        if vox and b_min > 0:
            pre_vox_arr = bb_unique[rows_arr] < b_min
            active |= pre_vox_arr
            pre_vox = pre_vox_arr.tolist()
        fwd_fast = rev_fast = None
        if not fast_all:
            if (
                exp_type is AdaptiveThresholdExperience
                and exp._store is store
            ):
                thr = store.exp_threshold
                fwd_ok = thr[rows_arr] <= 0.0
                rev_ok = thr[prows_arr] <= 0.0
                active |= ~(fwd_ok & rev_ok)
                fwd_fast = fwd_ok.tolist()
                rev_fast = rev_ok.tolist()
            else:
                active[:] = True
        active &= valid
        vl_own = vl_own_arr.tolist()
        vl_par = vl_par_arr.tolist()
        bb_merge = store.bb_merge
        vp_ex = 0
        vp_entries = 0
        for k in np.nonzero(active)[0].tolist():
            now = times[k]
            engine._now = now
            partner = partners[k]
            node = own[k]
            pid = pids[k]
            partner_id = partner.peer_id
            row = rows[k]
            prow = prow_list[k]
            # Forward verdict (observer = this node), before selection.
            if fast_all or (fwd_fast is not None and fwd_fast[k]):
                fwd = True
            else:
                fwd = exp.experienced_many(pid, [partner_id])[partner_id]
            # node.votes_to_send() minus the wrapper: config fields are
            # hoisted, selection memoises below the cap.
            if vl_own[k]:
                votes_out = node.vote_list.select_for_exchange(
                    cap, node.rng, policy
                )
            else:
                votes_out = ()
            if vl_par[k]:
                votes_in = partner.vote_list.select_for_exchange(
                    cap, partner.rng, policy
                )
            else:
                votes_in = ()
            # node.receive_votes(partner_id, votes_in, now, fwd) inline
            if fwd:
                if votes_in:
                    lv = len(votes_in)
                    if lv > cap:
                        node.votes_truncated += lv - cap
                        votes_in_capped = votes_in[:cap]
                    else:
                        votes_in_capped = votes_in
                    node.votes_merged += bb_merge(
                        row, b_max, partner_id, votes_in_capped, now, prow
                    )
            else:
                node.votes_rejected_inexperienced += 1
            # Reverse verdict (observer = partner), after our merge —
            # the contribution caches must see the scalar call order.
            if fast_all or (rev_fast is not None and rev_fast[k]):
                rev = True
            else:
                rev = exp.experienced_many(partner_id, [pid])[pid]
            if rev:
                if votes_out:
                    lv = len(votes_out)
                    if lv > cap:
                        partner.votes_truncated += lv - cap
                        votes_out_capped = votes_out[:cap]
                    else:
                        votes_out_capped = votes_out
                    partner.votes_merged += bb_merge(
                        prow, b_max, pid, votes_out_capped, now, row
                    )
            else:
                partner.votes_rejected_inexperienced += 1
            # VoxPopuli (Fig 3 a+c): pre-gated on the occupancy column,
            # re-checked live — earlier merges this batch may have
            # lifted this node past B_min.
            if pre_vox is not None and pre_vox[k] and bb_unique[row] < b_min:
                response = partner.respond_top_k()
                if response:
                    node.topk_cache.add(response)
                    vp_entries += len(response)
                vp_ex += 1
        self.traffic.vote_exchange_many(n_ex, n_items)
        if vp_ex:
            self.traffic.voxpopuli_exchange_many(vp_ex, vp_entries)

    def _bartercast_tick(self, peer_id: str) -> None:
        node = self.nodes[peer_id]
        if not node.online:
            return
        before = self.bartercast.exchanges
        self.bartercast.gossip_tick(peer_id, self.engine.now)
        if self.bartercast.exchanges > before:
            # Both directions carry up to the per-exchange record cap.
            n = len(self.bartercast.records_of(peer_id))
            self.traffic.bartercast_exchange(n)

    def _newscast_tick(self, peer_id: str) -> None:
        node = self.nodes[peer_id]
        if not node.online:
            return
        assert self.newscast is not None
        if self.newscast.gossip_tick(peer_id, self.engine.now):
            self.traffic.newscast_exchange(
                2 * self.newscast.config.view_size
            )

    def _adaptive_tick(self, peer_id: str) -> None:
        node = self.nodes[peer_id]
        if not node.online:
            return
        assert isinstance(self.experience, AdaptiveThresholdExperience)
        before = self.experience.threshold_for(peer_id)
        after = self.experience.update(peer_id, node.ballot_box)
        if after > before:
            # Raising T means "shield myself from the votes of
            # newcomers": re-screen the ballot box so votes accepted
            # under the looser threshold no longer count.  One batch
            # contribution evaluation covers every voter at once.
            voters = list(node.ballot_box.voters())
            verdicts = self.experience.experienced_many(peer_id, voters)
            for voter in voters:
                if not verdicts[voter]:
                    node.ballot_box.remove_voter(voter)
