"""Moderations (metadata items) and the local moderation database.

A *moderation* is a signed metadata item a *moderator* attaches to a
torrent: description, thumbnail URL, and so on (§I–§IV).  Each node
stores received moderations in a local database (``local_db`` in Fig 1)
keyed by ``(moderator, torrent)``; newer versions replace older ones,
and disapproving a moderator purges every moderation they authored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Moderation:
    """One signed metadata item.

    ``signature_valid`` carries the envelope verification result: the
    runtime verifies against the identity layer at creation/receipt and
    protocol code drops anything invalid (simulating the paper's "we
    use digital signatures" authentication).
    """

    moderator_id: str
    torrent_id: str
    title: str
    description: str = ""
    created_at: float = 0.0
    version: int = 1
    signature_valid: bool = True

    def key(self) -> Tuple[str, str]:
        return (self.moderator_id, self.torrent_id)


class ModerationStore:
    """A node's ``local_db`` of moderations.

    Capacity-bounded: when full, the oldest-received moderation from a
    *non-approved* moderator is evicted first, then the oldest overall —
    approved moderators' metadata is what the user actually wants to
    keep and forward.
    """

    def __init__(self, capacity: int = 1000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: Dict[Tuple[str, str], Moderation] = {}
        self._received_at: Dict[Tuple[str, str], float] = {}
        self._seq = 0
        self._order: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    def insert(self, moderation: Moderation, now: float) -> bool:
        """Store/refresh a moderation.  Returns ``True`` if it is new
        (not previously held in any version)."""
        if not moderation.signature_valid:
            return False
        key = moderation.key()
        existing = self._items.get(key)
        if existing is not None and existing.version >= moderation.version:
            return False
        is_new = existing is None
        self._items[key] = moderation
        self._received_at[key] = now
        self._seq += 1
        self._order[key] = self._seq
        return is_new

    def _evict_if_needed(self, approved: frozenset) -> None:
        while len(self._items) > self.capacity:
            # Oldest non-approved first; then oldest overall.
            candidates = [
                k for k in self._items if k[0] not in approved
            ] or list(self._items)
            victim = min(candidates, key=lambda k: self._order[k])
            self._items.pop(victim, None)
            self._received_at.pop(victim, None)
            self._order.pop(victim, None)
            self._seq += 1

    def enforce_capacity(self, approved: frozenset = frozenset()) -> None:
        """Apply the eviction policy (called by the owning node after
        merges so one pass covers a whole batch)."""
        self._evict_if_needed(approved)

    def purge_moderator(self, moderator_id: str) -> int:
        """Remove all moderations by ``moderator_id`` (disapproval).
        Returns the number removed."""
        victims = [k for k in self._items if k[0] == moderator_id]
        for k in victims:
            del self._items[k]
            self._received_at.pop(k, None)
            self._order.pop(k, None)
        if victims:
            self._seq += 1
        return len(victims)

    # ------------------------------------------------------------------
    def get(self, moderator_id: str, torrent_id: str) -> Optional[Moderation]:
        return self._items.get((moderator_id, torrent_id))

    def has_moderator(self, moderator_id: str) -> bool:
        return any(k[0] == moderator_id for k in self._items)

    def moderators(self) -> List[str]:
        """Distinct moderator ids present, sorted for determinism."""
        return sorted({k[0] for k in self._items})

    def by_moderator(self, moderator_id: str) -> List[Moderation]:
        return [m for k, m in self._items.items() if k[0] == moderator_id]

    def all_items(self) -> List[Moderation]:
        return list(self._items.values())

    def received_at(self, moderation: Moderation) -> Optional[float]:
        return self._received_at.get(moderation.key())

    def recency_order(self) -> List[Moderation]:
        """Items newest-received first (Extract's recency half)."""
        keys = sorted(self._items, key=lambda k: -self._order[k])
        return [self._items[k] for k in keys]

    @property
    def mutation_count(self) -> int:
        """Monotone counter bumped on every insert (purges keep it) —
        lets derived structures (e.g. the search index) detect change
        cheaply."""
        return self._seq

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._items
