"""Moderator ranking (§V-A) and the VoxPopuli rank merge (§V-C).

Two ranking methods over a ballot box: plain **summation**
(positives − negatives; the paper's default "any suitable method could
be applied such as simple summation") and a **proportional** variant
(net score over total votes, damped by a pseudo-count prior so a
single vote does not pin a moderator to ±1).

VoxPopuli merges cached top-K lists by **rank averaging**: a
moderator's merged rank is the mean of its ranks over all cached
lists, counting rank ``K+1`` in lists where it does not appear.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.ballotbox import BallotBox

#: A ranking: moderators best-first with their scores.
Ranking = List[Tuple[str, float]]


def rank_by_sum(
    ballot_box: BallotBox, universe: Optional[Iterable[str]] = None
) -> Ranking:
    """Summation ranking; unvoted moderators from ``universe`` score 0.

    Deterministic: ties break on moderator id.
    """
    moderators = set(ballot_box.moderators())
    if universe is not None:
        moderators.update(universe)
    scored = [(m, float(ballot_box.score(m))) for m in moderators]
    scored.sort(key=lambda ms: (-ms[1], ms[0]))
    return scored


def rank_proportional(
    ballot_box: BallotBox,
    universe: Optional[Iterable[str]] = None,
    prior: float = 1.0,
) -> Ranking:
    """Proportional ranking: ``(pos − neg) / (pos + neg + prior)``."""
    if prior < 0:
        raise ValueError("prior must be non-negative")
    moderators = set(ballot_box.moderators())
    if universe is not None:
        moderators.update(universe)
    scored = []
    for m in moderators:
        pos, neg = ballot_box.counts(m)
        scored.append((m, (pos - neg) / (pos + neg + prior)))
    scored.sort(key=lambda ms: (-ms[1], ms[0]))
    return scored


def top_k(ranking: Ranking, k: int) -> List[str]:
    """Best ``k`` moderator ids from a ranking."""
    if k < 1:
        return []
    return [m for m, _s in ranking[:k]]


def merge_rank_lists(lists: Sequence[Sequence[str]], k: int) -> Ranking:
    """VoxPopuli rank-average merge.

    Every moderator appearing in any list gets the average of its
    1-based ranks across **all** lists, with rank ``k + 1`` where
    absent.  Lower average rank is better; the returned scores are the
    *negated* average ranks so that "higher score = better" matches the
    other ranking functions.

    A moderator id repeated inside one list (malformed or hostile
    response — :meth:`TopKCache.add` already dedups, this guards direct
    callers) counts once per list, at its *first* occurrence's rank:
    later duplicates neither add rank mass nor shift the ranks of the
    ids behind them beyond the positions the duplicates occupy.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if not lists:
        return []
    n = len(lists)
    rank_sum: Dict[str, float] = {}
    appearances: Dict[str, int] = {}
    for lst in lists:
        ranked: Dict[str, int] = {}
        for m in lst:
            if m not in ranked:
                ranked[m] = len(ranked) + 1
                if len(ranked) >= k:
                    break
        for m, pos in ranked.items():
            rank_sum[m] = rank_sum.get(m, 0.0) + pos
            appearances[m] = appearances.get(m, 0) + 1
    out: Ranking = [
        (m, -(partial + (n - appearances[m]) * (k + 1)) / n)
        for m, partial in rank_sum.items()
    ]
    out.sort(key=lambda ms: (-ms[1], ms[0]))
    return out


def strictly_ordered(ranking: Ranking, order: Sequence[str]) -> bool:
    """``True`` iff every moderator in ``order`` appears in the ranking
    with *strictly* decreasing score — the Fig 6 correctness predicate
    (ties or unknowns do not count as correct)."""
    scores = dict(ranking)
    try:
        values = [scores[m] for m in order]
    except KeyError:
        return False
    return all(a > b for a, b in zip(values, values[1:]))
