"""The experience function E (§V-B) and the adaptive-T extension (§VII).

``E_i(j)`` decides whether node *i* accepts votes from node *j*.  The
paper's implementation: *j* is experienced to *i* iff the BarterCast
contribution ``f_{j→i}`` (maxflow from j to i in i's subjective graph)
reaches a threshold ``T`` (5 MB in the evaluation).

The Discussion sketches an adaptive variant: start at ``T = 0`` and
raise ``T`` when the *dispersion* of incoming votes exceeds ``D_max``
(disagreement suggests an attack), lower it when opinion re-converges.
:class:`AdaptiveThresholdExperience` implements that controller.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Sequence

from repro.sim.units import MB

if TYPE_CHECKING:  # pragma: no cover
    from repro.bartercast.protocol import BarterCastService
    from repro.core.ballotbox import BallotBox
    from repro.core.columnar import ColumnarStateStore


class ExperienceFunction(ABC):
    """Binary experience predicate ``E_i(j)``."""

    @abstractmethod
    def is_experienced(self, observer: str, subject: str) -> bool:
        """``True`` iff ``observer`` considers ``subject`` experienced."""

    def experienced_many(
        self, observer: str, subjects: Sequence[str]
    ) -> Dict[str, bool]:
        """Evaluate ``E_observer`` over many subjects at once.

        Semantically equivalent to calling :meth:`is_experienced` per
        subject; BarterCast-backed implementations override this to use
        the vectorised batch-contribution oracle instead of one flow
        evaluation per pair."""
        return {s: self.is_experienced(observer, s) for s in subjects}

    def threshold_for(self, observer: str) -> float:
        """The observer's current threshold in bytes (diagnostics)."""
        return 0.0


class AlwaysExperienced(ExperienceFunction):
    """Degenerate E ≡ true — the no-defence baseline used in ablations
    to show what Sybil voting does without the experience gate."""

    def is_experienced(self, observer: str, subject: str) -> bool:
        return observer != subject


@dataclass
class ThresholdExperience(ExperienceFunction):
    """The paper's E: ``f_{j→i} ≥ T`` over BarterCast maxflow."""

    bartercast: "BarterCastService"
    threshold: float = 5 * MB

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")

    def is_experienced(self, observer: str, subject: str) -> bool:
        if observer == subject:
            return False
        if self.threshold <= 0.0:
            # Flows are non-negative, so T <= 0 accepts everyone —
            # skip the contribution evaluation entirely (the same
            # fast path the adaptive controller takes at T = 0).
            return True
        return self.bartercast.contribution(observer, subject) >= self.threshold

    def experienced_many(
        self, observer: str, subjects: Sequence[str]
    ) -> Dict[str, bool]:
        subjects = list(subjects)
        if self.threshold <= 0.0:
            return {s: s != observer for s in subjects}
        if len(subjects) == 1:
            # A batch of one is cheaper (and bit-identical) through the
            # scalar version-keyed cache than through densifying the
            # observer's matrix — the vote tick's default fanout hits
            # this path on every exchange.
            return {subjects[0]: self.is_experienced(observer, subjects[0])}
        flows = self.bartercast.contributions_to_observer(observer, subjects)
        return {
            s: (s != observer and f >= self.threshold)
            for s, f in zip(subjects, flows)
        }

    def threshold_for(self, observer: str) -> float:
        return self.threshold


class AdaptiveThresholdExperience(ExperienceFunction):
    """Per-node dispersion-driven threshold (§VII, future work).

    Each node starts at ``T = 0``.  Periodically the runtime calls
    :meth:`update` with the node's current ballot box; the controller
    measures *vote dispersion* — for every moderator with at least two
    votes, ``4·p·(1−p)`` where ``p`` is the positive fraction (0 when
    everyone agrees, 1 at a 50/50 split) — taking the **maximum** over
    moderators: one sharply contested moderator is the attack signal,
    and averaging would let unanimous spam on other names dilute it.
    Dispersion above ``d_max`` raises ``T`` by ``step`` (capped at
    ``t_max``); dispersion at or below ``d_max`` lowers it by ``step``
    (floored at 0).  "Peers look to shield themselves from the votes of
    newcomers and place their trust in more experienced members."
    """

    def __init__(
        self,
        bartercast: "BarterCastService",
        d_max: float = 0.5,
        step: float = 1 * MB,
        t_max: float = 50 * MB,
    ):
        if not (0.0 <= d_max <= 1.0):
            raise ValueError("d_max must be in [0, 1]")
        if step <= 0 or t_max <= 0:
            raise ValueError("step and t_max must be positive")
        self.bartercast = bartercast
        self.d_max = d_max
        self.step = step
        self.t_max = t_max
        self._thresholds: Dict[str, float] = {}
        self._store: "ColumnarStateStore | None" = None

    def bind_store(self, store: "ColumnarStateStore") -> None:
        """Mirror per-node thresholds into the store's
        ``exp_threshold`` column.  The dict stays authoritative for
        scalar reads; the column lets batched paths gate a whole due
        batch with one slice compare (``exp_threshold[rows] <= 0``)."""
        self._store = store
        for observer, t in self._thresholds.items():
            store.exp_threshold[store.ensure_row(observer)] = t

    # ------------------------------------------------------------------
    @staticmethod
    def dispersion(ballot_box: "BallotBox") -> float:
        """Worst-case per-moderator vote disagreement in ``[0, 1]``.

        Delegates to :meth:`~repro.core.ballotbox.BallotBox.dispersion`
        so the scan matches the box's backing: the dict box does one
        pass over ``all_counts()``; a columnar box runs the vectorised
        ``np.bincount`` scan over interned moderator ids — bit-identical
        floats, no Python-dict walking on the adaptive tick."""
        return ballot_box.dispersion()

    def update(self, observer: str, ballot_box: "BallotBox") -> float:
        """Adapt the observer's T from its current ballot box; returns
        the new threshold."""
        t = self._thresholds.get(observer, 0.0)
        if self.dispersion(ballot_box) > self.d_max:
            t = min(t + self.step, self.t_max)
        else:
            t = max(t - self.step, 0.0)
        self._thresholds[observer] = t
        if self._store is not None:
            self._store.exp_threshold[self._store.ensure_row(observer)] = t
        return t

    def is_experienced(self, observer: str, subject: str) -> bool:
        if observer == subject:
            return False
        t = self._thresholds.get(observer, 0.0)
        if t <= 0.0:
            return True
        return self.bartercast.contribution(observer, subject) >= t

    def experienced_many(
        self, observer: str, subjects: Sequence[str]
    ) -> Dict[str, bool]:
        subjects = list(subjects)
        t = self._thresholds.get(observer, 0.0)
        if t <= 0.0:
            return {s: s != observer for s in subjects}
        if len(subjects) == 1:
            # Same single-subject fast path as ThresholdExperience.
            return {subjects[0]: self.is_experienced(observer, subjects[0])}
        flows = self.bartercast.contributions_to_observer(observer, subjects)
        return {s: (s != observer and f >= t) for s, f in zip(subjects, flows)}

    def threshold_for(self, observer: str) -> float:
        return self._thresholds.get(observer, 0.0)
