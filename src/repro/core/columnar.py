"""Columnar protocol state — structure-of-arrays node state.

PR 6 made the tick *scheduler* columnar (:mod:`repro.sim.population`);
this module does the same for the protocol *state*.  A
:class:`ColumnarStateStore` holds, for every known peer, numpy columns
keyed by the population engine's row↔peer-id table
(:class:`RowTable`):

* **ballot-box occupancy** — per-(box, voter) vote counts
  (``bb_nvotes``), ``last_received`` recency (``bb_last``) and the
  ``B_max`` eviction order (``bb_order``), in ``[box_row, slot]``
  2-D columns with swap-remove slot recycling;
* **ballot-box payloads** — the votes themselves, packed per box into
  parallel slab arrays (see below) instead of per-slot Python dicts;
* **experience thresholds** — the adaptive-T controller's per-node
  threshold (``exp_threshold``), read as a column slice by the batched
  experience gate;
* **vote / moderation store membership** — ``vl_size`` and
  ``store_size`` per peer, so a whole due batch can skip empty
  exchanges with one gather.

:class:`ColumnarBallotBox` is a drop-in :class:`~repro.core.ballotbox
.BallotBox` whose state lives in the store's columns; the object API
(and therefore persistence FORMAT_VERSION 2 and every existing test)
is unchanged, and the semantics — self-vote drops, store-nothing
merges leaving recency untouched, oldest-voter eviction — are
bit-identical to the dict implementation (property-tested in
``tests/test_core_columnar.py`` and ``tests/test_columnar_payloads.py``).

Packed payload layout
---------------------
Moderator ids are interned once, globally, through a second
:class:`RowTable` (``store.mods``): the table is append-only and never
garbage-collected, so an interned id is stable for the lifetime of the
store and each id string is held exactly once no matter how many boxes
vote on it.  Each box owns three parallel slab arrays —

* ``vote_mod`` (int32): interned moderator id,
* ``vote_val`` (int8): the vote value (+1/−1),
* ``vote_at`` (float64): per-vote ``received_at``,

— and each occupied slot owns one contiguous *segment* of the slab,
located by ``bb_off`` (offset) / ``bb_nvotes`` (live length) /
``bb_segcap`` (capacity).  Segments keep the dict's insertion order
(new moderators append; repeat votes overwrite in place), capacities
are powers of two with a minimum of 2, and a segment that outgrows its
capacity relocates to the slab tail.  Freed segments (evictions,
wholesale restores) become slab garbage; a box compacts when more than
half its slab is dead and the slab is non-trivial, so retained slab
bytes stay within 2× the live votes.  The minimum capacity of 2 means
capacity slack alone can never trip the dead-bytes threshold —
compaction only chases actual garbage, never thrashes.

The packed layout is what makes the hot reads vectorisable:
``all_counts`` and the adaptive-T dispersion scan are ``np.bincount``
passes over the interned ids of one box's gathered segments, with no
Python-dict walking.

Box rows are allocated lazily on first merge (``_box_of``
indirection), and the slot width grows in powers of two up to the
widest ``b_max`` actually used, so a million-peer population whose
boxes stay empty pays nothing for the 2-D columns.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.ballotbox import BallotBox
from repro.core.votes import Vote, VoteEntry


class RowTable:
    """Append-only ``peer_id ↔ row`` assignment shared by the
    population engine and the state store.

    Rows are dense (``0 .. len-1``) and never reused, so any component
    may key a column by row.  ``ids`` and ``index`` are exposed
    directly — the population engine's hot loop reads them without a
    method call — but must only be mutated through :meth:`row`.
    """

    __slots__ = ("ids", "index")

    def __init__(self) -> None:
        self.ids: List[str] = []
        self.index: Dict[str, int] = {}

    def row(self, peer_id: str) -> int:
        """The peer's row, assigned on first sight."""
        row = self.index.get(peer_id)
        if row is None:
            row = len(self.ids)
            self.ids.append(peer_id)
            self.index[peer_id] = row
        return row

    def get(self, peer_id: str) -> Optional[int]:
        return self.index.get(peer_id)

    def __len__(self) -> int:
        return len(self.ids)


class ColumnarStateStore:
    """Structure-of-arrays protocol state for a whole population."""

    def __init__(self, rows: Optional[RowTable] = None):
        self.rows = rows if rows is not None else RowTable()
        #: global moderator intern table (id ↔ int32), append-only
        self.mods = RowTable()
        self._cap = 0
        #: unique voters currently in the peer's ballot box
        self.bb_unique = np.zeros(0, dtype=np.int32)
        #: entries in the peer's local vote list
        self.vl_size = np.zeros(0, dtype=np.int32)
        #: moderations in the peer's local store
        self.store_size = np.zeros(0, dtype=np.int32)
        #: adaptive experience threshold T (bytes); 0 = accept all
        self.exp_threshold = np.zeros(0, dtype=np.float64)

        # Ballot-box sub-store: box rows are allocated on first merge
        # (``_box_of`` indirection), slots within a box are recycled
        # with swap-remove.  Scalar per-box bookkeeping (``_box_of``,
        # ``bb_used``, ``_bb_seq``) lives in plain Python lists — the
        # merge hot path reads and writes them one element at a time,
        # where list indexing is several times cheaper than a numpy
        # scalar access — while the per-(box, slot) state stays in 2-D
        # numpy columns for the vectorised reads and the memory win.
        self._box_of: List[int] = []
        self._box_cap = 0
        self._width = 0
        self._n_boxes = 0
        #: ``[box_row, slot] -> voter row`` (-1 = free slot)
        self.bb_voter = np.full((0, 0), -1, dtype=np.int32)
        #: ``last_received`` per (box, slot)
        self.bb_last = np.zeros((0, 0), dtype=np.float64)
        #: recency stamp per (box, slot) — strictly increasing per box
        self.bb_order = np.zeros((0, 0), dtype=np.int64)
        #: stored votes per (box, slot) — the segment's live length
        self.bb_nvotes = np.zeros((0, 0), dtype=np.int32)
        #: slab offset of the slot's payload segment per (box, slot)
        self.bb_off = np.zeros((0, 0), dtype=np.int64)
        #: capacity of the slot's payload segment (0 = none)
        self.bb_segcap = np.zeros((0, 0), dtype=np.int32)
        #: occupied slots per box
        self.bb_used: List[int] = []
        self._bb_seq: List[int] = []
        #: per box: ``voter row -> slot``, insertion-ordered by recency
        #: (move-to-end on bump) — O(1) eviction victim at the head
        self._slots: List[Dict[int, int]] = []
        # Per-box payload slabs (see the module docstring's layout).
        self._pay_mod: List[np.ndarray] = []
        self._pay_val: List[np.ndarray] = []
        self._pay_at: List[np.ndarray] = []
        #: slab tail (next free offset) per box
        self._pay_used: List[int] = []
        #: live (non-garbage) payload entries per box
        self._pay_live: List[int] = []

    # ------------------------------------------------------------------
    # Row / box allocation
    # ------------------------------------------------------------------
    def ensure_row(self, peer_id: str) -> int:
        """The peer's row, growing the per-row columns to cover it."""
        row = self.rows.row(peer_id)
        if row >= self._cap:
            self._grow_rows(row + 1)
        return row

    def _grow_rows(self, needed: int) -> None:
        new_cap = max(self._cap * 2, 1024)
        while new_cap < needed:
            new_cap *= 2

        def _resize(arr: np.ndarray, fill, dtype) -> np.ndarray:
            out = np.full(new_cap, fill, dtype=dtype)
            out[: arr.size] = arr
            return out

        self.bb_unique = _resize(self.bb_unique, 0, np.int32)
        self.vl_size = _resize(self.vl_size, 0, np.int32)
        self.store_size = _resize(self.store_size, 0, np.int32)
        self.exp_threshold = _resize(self.exp_threshold, 0.0, np.float64)
        self._box_of.extend([-1] * (new_cap - len(self._box_of)))
        self._cap = new_cap

    def _box_row(self, owner_row: int) -> int:
        box = self._box_of[owner_row]
        if box >= 0:
            return box
        box = self._n_boxes
        if box >= self._box_cap:
            self._grow_boxes(box + 1)
        self._n_boxes = box + 1
        self._box_of[owner_row] = box
        self._slots.append({})
        self.bb_used.append(0)
        self._bb_seq.append(0)
        self._pay_mod.append(np.empty(0, dtype=np.int32))
        self._pay_val.append(np.empty(0, dtype=np.int8))
        self._pay_at.append(np.empty(0, dtype=np.float64))
        self._pay_used.append(0)
        self._pay_live.append(0)
        return box

    def _grow_boxes(self, needed: int) -> None:
        new_cap = max(self._box_cap * 2, 256)
        while new_cap < needed:
            new_cap *= 2
        w = self._width

        def _resize2(arr: np.ndarray, fill, dtype) -> np.ndarray:
            out = np.full((new_cap, w), fill, dtype=dtype)
            out[: arr.shape[0], :] = arr
            return out

        self.bb_voter = _resize2(self.bb_voter, -1, np.int32)
        self.bb_last = _resize2(self.bb_last, 0.0, np.float64)
        self.bb_order = _resize2(self.bb_order, 0, np.int64)
        self.bb_nvotes = _resize2(self.bb_nvotes, 0, np.int32)
        self.bb_off = _resize2(self.bb_off, 0, np.int64)
        self.bb_segcap = _resize2(self.bb_segcap, 0, np.int32)
        self._box_cap = new_cap

    def _grow_width(self, needed: int) -> None:
        new_w = max(self._width * 2, 4)
        while new_w < needed:
            new_w *= 2

        def _widen(arr: np.ndarray, fill, dtype) -> np.ndarray:
            out = np.full((self._box_cap, new_w), fill, dtype=dtype)
            out[:, : self._width] = arr
            return out

        self.bb_voter = _widen(self.bb_voter, -1, np.int32)
        self.bb_last = _widen(self.bb_last, 0.0, np.float64)
        self.bb_order = _widen(self.bb_order, 0, np.int64)
        self.bb_nvotes = _widen(self.bb_nvotes, 0, np.int32)
        self.bb_off = _widen(self.bb_off, 0, np.int64)
        self.bb_segcap = _widen(self.bb_segcap, 0, np.int32)
        self._width = new_w

    # ------------------------------------------------------------------
    # Payload slab management
    # ------------------------------------------------------------------
    def _seg_alloc(self, box: int, need: int) -> Tuple[int, int]:
        """Reserve a tail segment of power-of-two capacity ≥ ``need``.

        The minimum capacity of 2 bounds capacity slack at half the
        slab, so the dead-bytes compaction trigger below can only fire
        on real garbage (freed or relocated segments)."""
        cap = 2
        while cap < need:
            cap <<= 1
        if self._pay_used[box] + cap > self._pay_mod[box].size:
            used = self._pay_used[box]
            if used - self._pay_live[box] > (used >> 1) and used > 64:
                self._compact_box(box)
            if self._pay_used[box] + cap > self._pay_mod[box].size:
                self._grow_slab(box, self._pay_used[box] + cap)
        off = self._pay_used[box]
        self._pay_used[box] = off + cap
        return off, cap

    def _grow_slab(self, box: int, needed: int) -> None:
        size = max(self._pay_mod[box].size * 2, 16)
        while size < needed:
            size *= 2
        for slabs, dtype in (
            (self._pay_mod, np.int32),
            (self._pay_val, np.int8),
            (self._pay_at, np.float64),
        ):
            old = slabs[box]
            out = np.empty(size, dtype=dtype)
            out[: old.size] = old
            slabs[box] = out

    def _seg_free(self, box: int, slot: int) -> None:
        """Orphan a slot's segment (it becomes slab garbage)."""
        self._pay_live[box] -= int(self.bb_nvotes[box, slot])
        self.bb_nvotes[box, slot] = 0
        self.bb_segcap[box, slot] = 0

    def _seg_write(self, box: int, slot: int, mids, vals, ats) -> None:
        """Write a fresh segment for a slot that currently owns none.
        ``ats`` may be a scalar (merge: everything lands ``now``) or a
        per-entry sequence (restore)."""
        n = len(mids)
        off, cap = self._seg_alloc(box, n)
        end = off + n
        self._pay_mod[box][off:end] = mids
        self._pay_val[box][off:end] = vals
        self._pay_at[box][off:end] = ats
        self.bb_off[box, slot] = off
        self.bb_segcap[box, slot] = cap
        self.bb_nvotes[box, slot] = n
        self._pay_live[box] += n

    def _seg_update(self, box: int, slot: int, merged: Dict[int, int], now: float) -> None:
        """Fold ``merged`` (interned moderator → vote value) into an
        existing segment: repeat moderators overwrite in place, new
        ones append (relocating the segment to the slab tail when it
        outgrows its capacity) — the same first-occurrence insertion
        order the dict backend's payload dicts keep."""
        off = int(self.bb_off[box, slot])
        n = int(self.bb_nvotes[box, slot])
        pm = self._pay_mod[box]
        pv = self._pay_val[box]
        pa = self._pay_at[box]
        pos = {m: i for i, m in enumerate(pm[off : off + n].tolist())}
        app_m: List[int] = []
        app_v: List[int] = []
        for mid, val in merged.items():
            i = pos.get(mid)
            if i is None:
                app_m.append(mid)
                app_v.append(val)
            else:
                pv[off + i] = val
                pa[off + i] = now
        k = len(app_m)
        if not k:
            return
        if n + k > int(self.bb_segcap[box, slot]):
            new_off, new_cap = self._seg_alloc(box, n + k)
            # _seg_alloc may have compacted the box (moving this very
            # segment), so re-read the slab arrays and the offset.
            pm = self._pay_mod[box]
            pv = self._pay_val[box]
            pa = self._pay_at[box]
            src = int(self.bb_off[box, slot])
            pm[new_off : new_off + n] = pm[src : src + n]
            pv[new_off : new_off + n] = pv[src : src + n]
            pa[new_off : new_off + n] = pa[src : src + n]
            off = new_off
            self.bb_off[box, slot] = new_off
            self.bb_segcap[box, slot] = new_cap
        end = off + n
        pm[end : end + k] = app_m
        pv[end : end + k] = app_v
        pa[end : end + k] = now
        self.bb_nvotes[box, slot] = n + k
        self._pay_live[box] += k

    def _compact_box(self, box: int) -> None:
        """Rewrite the box's slab with only the live segments (fresh
        power-of-two capacities), dropping all garbage."""
        used_slots = self.bb_used[box]
        offs = self.bb_off[box]
        lens = self.bb_nvotes[box]
        caps = self.bb_segcap[box]
        old_mod = self._pay_mod[box]
        old_val = self._pay_val[box]
        old_at = self._pay_at[box]
        total = 0
        for s in range(used_slots):
            n = int(lens[s])
            if n == 0:
                continue
            c = 2
            while c < n:
                c <<= 1
            total += c
        size = 16
        while size < total:
            size <<= 1
        new_mod = np.empty(size, dtype=np.int32)
        new_val = np.empty(size, dtype=np.int8)
        new_at = np.empty(size, dtype=np.float64)
        pos = 0
        live = 0
        for s in range(used_slots):
            n = int(lens[s])
            if n == 0:
                offs[s] = 0
                caps[s] = 0
                continue
            c = 2
            while c < n:
                c <<= 1
            o = int(offs[s])
            new_mod[pos : pos + n] = old_mod[o : o + n]
            new_val[pos : pos + n] = old_val[o : o + n]
            new_at[pos : pos + n] = old_at[o : o + n]
            offs[s] = pos
            caps[s] = c
            pos += c
            live += n
        self._pay_mod[box] = new_mod
        self._pay_val[box] = new_val
        self._pay_at[box] = new_at
        self._pay_used[box] = pos
        self._pay_live[box] = live

    # ------------------------------------------------------------------
    # Ballot-box operations (semantics of repro.core.ballotbox)
    # ------------------------------------------------------------------
    def bb_merge(
        self,
        owner_row: int,
        b_max: int,
        voter: str,
        entries: Iterable[VoteEntry],
        now: float,
        voter_row: Optional[int] = None,
    ) -> int:
        """:meth:`BallotBox.merge` over the columns; returns the number
        of *distinct* moderators stored (duplicate ids in one list
        collapse to their last vote and count once, matching the dict
        backend).  Recency is bumped only when something was stored.

        This is the batched vote tick's innermost call (twice per
        exchange), so the common shapes are specialised: sequence
        inputs skip the defensive copy, entries carrying real
        :class:`Vote` values skip the enum conversion, and a full box
        evicts *before* inserting so the newcomer reuses the head
        voter's slot in place — the same final state the insert-then-
        evict order produces (``b_max >= 1`` keeps the newcomer off
        the victim list), without the swap-remove column traffic.
        Callers that already know the sender's row pass ``voter_row``
        to skip the id lookup.
        """
        if type(entries) is not list and type(entries) is not tuple:
            entries = list(entries)
        if not entries:
            return 0
        mods = self.mods
        # Intern and dedup first: ``merged`` keeps first-occurrence
        # order with last-wins values, exactly what a payload dict
        # would hold after folding the same list in.
        merged: Dict[int, int] = {}
        for e in entries:
            moderator = e.moderator_id
            if moderator == voter:
                # Self-votes carry no information (see BallotBox.merge).
                continue
            v = e.vote
            merged[mods.row(moderator)] = int(v) if type(v) is Vote else int(Vote(v))
        if not merged:
            return 0
        box = self._box_of[owner_row]
        if box < 0:
            box = self._box_row(owner_row)
        slots = self._slots[box]
        vrow = self.rows.row(voter) if voter_row is None else voter_row
        slot = slots.get(vrow)
        if slot is None:
            nslots = len(slots)
            if nslots >= b_max:
                # Evict-then-insert: same victims as the reference
                # insert-then-evict (heads of the recency order; the
                # newcomer would sit at the tail), but the last victim's
                # slot is reused in place.
                while nslots > b_max:
                    self._drop_slot(box, slots, owner_row, next(iter(slots)))
                    nslots -= 1
                slot = slots.pop(next(iter(slots)))
                self._seg_free(box, slot)
                self.bb_voter[box, slot] = vrow
            else:
                slot = self.bb_used[box]
                if slot >= self._width:
                    self._grow_width(slot + 1)
                self.bb_voter[box, slot] = vrow
                self.bb_used[box] = slot + 1
                self.bb_unique[owner_row] += 1
            slots[vrow] = slot
            self._seg_write(box, slot, list(merged.keys()), list(merged.values()), now)
        else:
            # Move-to-end: recency order is the dict's insertion order.
            slots.pop(vrow)
            slots[vrow] = slot
            self._seg_update(box, slot, merged, now)
        seq = self._bb_seq[box] + 1
        self._bb_seq[box] = seq
        self.bb_last[box, slot] = now
        self.bb_order[box, slot] = seq
        if len(slots) > b_max:
            # Only reachable when b_max shrank between merges on an
            # already-present voter (the insert path bounds itself).
            self._evict(box, slots, owner_row, b_max)
        return len(merged)

    def bb_restore_voter(
        self,
        owner_row: int,
        b_max: int,
        voter: str,
        votes: Iterable[Tuple[str, Vote, float]],
        last_received: float,
    ) -> None:
        """:meth:`BallotBox.restore_voter` over the columns — the
        voter's previous segment (if any) is wholesale replaced."""
        mods = self.mods
        stored: Dict[int, Tuple[int, float]] = {
            mods.row(moderator): (int(Vote(vote)), received_at)
            for moderator, vote, received_at in votes
            if moderator != voter
        }
        if not stored:
            return
        box = self._box_row(owner_row)
        slots = self._slots[box]
        vrow = self.rows.row(voter)
        slot = slots.get(vrow)
        if slot is None:
            slot = self.bb_used[box]
            if slot >= self._width:
                self._grow_width(slot + 1)
            self.bb_voter[box, slot] = vrow
            self.bb_used[box] = slot + 1
            self.bb_unique[owner_row] += 1
        else:
            self._seg_free(box, slot)
            slots.pop(vrow)
        slots[vrow] = slot
        vals_ats = list(stored.values())
        self._seg_write(
            box,
            slot,
            list(stored.keys()),
            [v for v, _ in vals_ats],
            [a for _, a in vals_ats],
        )
        self._stamp(box, slot, last_received)
        self._evict(box, slots, owner_row, b_max)

    def bb_remove_voter(self, owner_row: int, voter: str) -> bool:
        box = self._box_of[owner_row]
        if box < 0:
            return False
        vrow = self.rows.get(voter)
        if vrow is None or vrow not in self._slots[box]:
            return False
        self._drop_slot(box, self._slots[box], owner_row, vrow)
        return True

    def _stamp(self, box: int, slot: int, when: float) -> None:
        seq = self._bb_seq[box] + 1
        self._bb_seq[box] = seq
        self.bb_last[box, slot] = when
        self.bb_order[box, slot] = seq

    def _evict(
        self, box: int, slots: Dict[int, int], owner_row: int, b_max: int
    ) -> None:
        while len(slots) > b_max:
            victim = next(iter(slots))
            self._drop_slot(box, slots, owner_row, victim)

    def _drop_slot(
        self, box: int, slots: Dict[int, int], owner_row: int, vrow: int
    ) -> None:
        """Free a voter's slot, swap-filling from the box's last slot
        (a value-only dict update, so the moved voter keeps its recency
        position).  The dropped segment becomes slab garbage; the box
        compacts when dead entries outnumber live ones."""
        slot = slots.pop(vrow)
        last = self.bb_used[box] - 1
        self._pay_live[box] -= int(self.bb_nvotes[box, slot])
        if slot != last:
            moved = int(self.bb_voter[box, last])
            self.bb_voter[box, slot] = moved
            self.bb_last[box, slot] = self.bb_last[box, last]
            self.bb_order[box, slot] = self.bb_order[box, last]
            self.bb_nvotes[box, slot] = self.bb_nvotes[box, last]
            self.bb_off[box, slot] = self.bb_off[box, last]
            self.bb_segcap[box, slot] = self.bb_segcap[box, last]
            slots[moved] = slot
        self.bb_voter[box, last] = -1
        self.bb_nvotes[box, last] = 0
        self.bb_segcap[box, last] = 0
        self.bb_used[box] = last
        self.bb_unique[owner_row] -= 1
        used = self._pay_used[box]
        if used - self._pay_live[box] > (used >> 1) and used > 64:
            self._compact_box(box)

    # ------------------------------------------------------------------
    # Ballot-box reads
    # ------------------------------------------------------------------
    def bb_slots(self, owner_row: int) -> Dict[int, int]:
        """The owner's ``voter row -> slot`` map (recency-ordered);
        empty for a peer whose box was never merged into."""
        box = self._box_of[owner_row]
        return self._slots[box] if box >= 0 else {}

    def _slot_of(self, owner_row: int, voter: str) -> Tuple[int, int]:
        """``(box, slot)`` for a stored voter, ``(-1, -1)`` otherwise."""
        box = self._box_of[owner_row]
        if box < 0:
            return -1, -1
        vrow = self.rows.get(voter)
        if vrow is None:
            return -1, -1
        slot = self._slots[box].get(vrow)
        return (box, slot) if slot is not None else (-1, -1)

    def _box_votes(self, box: int) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """All of one box's live ``(moderator ids, vote values)``,
        gathered from the slot segments with one ragged fancy-index."""
        used = self.bb_used[box]
        if used == 0:
            return None
        lens = self.bb_nvotes[box, :used].astype(np.int64)
        total = int(lens.sum())
        if total == 0:
            return None
        offs = self.bb_off[box, :used]
        starts = np.cumsum(lens) - lens
        idx = np.repeat(offs - starts, lens) + np.arange(total, dtype=np.int64)
        return self._pay_mod[box][idx], self._pay_val[box][idx]

    def bb_votes_of(self, owner_row: int, voter: str) -> List[Tuple[str, Vote, float]]:
        box, slot = self._slot_of(owner_row, voter)
        if box < 0:
            return []
        off = int(self.bb_off[box, slot])
        end = off + int(self.bb_nvotes[box, slot])
        ids = self.mods.ids
        return [
            (ids[m], Vote(v), a)
            for m, v, a in zip(
                self._pay_mod[box][off:end].tolist(),
                self._pay_val[box][off:end].tolist(),
                self._pay_at[box][off:end].tolist(),
            )
        ]

    def bb_vote_of(self, owner_row: int, voter: str, moderator_id: str):
        box, slot = self._slot_of(owner_row, voter)
        if box < 0:
            return None
        mid = self.mods.get(moderator_id)
        if mid is None:
            return None
        off = int(self.bb_off[box, slot])
        end = off + int(self.bb_nvotes[box, slot])
        hits = np.nonzero(self._pay_mod[box][off:end] == mid)[0]
        if hits.size == 0:
            return None
        return Vote(int(self._pay_val[box][off + int(hits[0])]))

    def bb_moderators(self, owner_row: int) -> List[str]:
        box = self._box_of[owner_row]
        if box < 0:
            return []
        gathered = self._box_votes(box)
        if gathered is None:
            return []
        ids = self.mods.ids
        return sorted(ids[m] for m in np.unique(gathered[0]).tolist())

    def bb_counts(self, owner_row: int, moderator_id: str) -> Tuple[int, int]:
        box = self._box_of[owner_row]
        if box < 0:
            return 0, 0
        mid = self.mods.get(moderator_id)
        if mid is None:
            return 0, 0
        gathered = self._box_votes(box)
        if gathered is None:
            return 0, 0
        mods_arr, vals_arr = gathered
        sel = mods_arr == mid
        tot = int(np.count_nonzero(sel))
        if tot == 0:
            return 0, 0
        pos = int(np.count_nonzero(vals_arr[sel] > 0))
        return pos, tot - pos

    def bb_all_counts(self, owner_row: int) -> Dict[str, Tuple[int, int]]:
        """``moderator → (positive, negative)`` as one pair of bincount
        scans over the box's interned moderator ids."""
        box = self._box_of[owner_row]
        if box < 0:
            return {}
        gathered = self._box_votes(box)
        if gathered is None:
            return {}
        mods_arr, vals_arr = gathered
        nbins = int(mods_arr.max()) + 1
        tot = np.bincount(mods_arr, minlength=nbins)
        pos = np.bincount(mods_arr[vals_arr > 0], minlength=nbins)
        ids = self.mods.ids
        out: Dict[str, Tuple[int, int]] = {}
        for mid in np.unique(mods_arr).tolist():
            p = int(pos[mid])
            out[ids[mid]] = (p, int(tot[mid]) - p)
        return out

    def bb_dispersion(self, owner_row: int) -> float:
        """Worst-case per-moderator disagreement (the adaptive-T
        signal): max over moderators with ≥ 2 votes of ``4·p·(1−p)``.
        Same bincount scan as :meth:`bb_all_counts`, but the tallies
        never materialise as a Python dict — this is the vectorised
        fast path behind :meth:`ColumnarBallotBox.dispersion`."""
        box = self._box_of[owner_row]
        if box < 0:
            return 0.0
        gathered = self._box_votes(box)
        if gathered is None:
            return 0.0
        mods_arr, vals_arr = gathered
        nbins = int(mods_arr.max()) + 1
        tot = np.bincount(mods_arr, minlength=nbins)
        mask = tot >= 2
        if not mask.any():
            return 0.0
        pos = np.bincount(mods_arr[vals_arr > 0], minlength=nbins)
        # int/int true division and 4·p·(1−p) are elementwise float64
        # ops — bit-identical to the scalar loop over all_counts().
        p = pos[mask] / tot[mask]
        return float((4.0 * p * (1.0 - p)).max())

    def bb_export_digest(
        self, owner_row: int
    ) -> List[Tuple[str, str, int, float]]:
        """Every stored vote of one box as flat ``(voter, moderator,
        vote, received_at)`` rows sorted by ``(voter, moderator)`` —
        the columnar side of :meth:`BallotBox.export_digest`, gathered
        straight from the packed payload slabs."""
        box = self._box_of[owner_row]
        if box < 0:
            return []
        mod_ids = self.mods.ids
        row_ids = self.rows.ids
        out: List[Tuple[str, str, int, float]] = []
        for vrow, slot in self._slots[box].items():
            voter = row_ids[vrow]
            off = int(self.bb_off[box, slot])
            end = off + int(self.bb_nvotes[box, slot])
            out.extend(
                (voter, mod_ids[m], int(v), float(a))
                for m, v, a in zip(
                    self._pay_mod[box][off:end].tolist(),
                    self._pay_val[box][off:end].tolist(),
                    self._pay_at[box][off:end].tolist(),
                )
            )
        out.sort(key=lambda r: (r[0], r[1]))
        return out

    def bb_last_received(self, owner_row: int, voter: str) -> float:
        box, slot = self._slot_of(owner_row, voter)
        return 0.0 if box < 0 else float(self.bb_last[box, slot])

    def bb_total_votes(self, owner_row: int) -> int:
        box = self._box_of[owner_row]
        if box < 0:
            return 0
        used = self.bb_used[box]
        return int(self.bb_nvotes[box, :used].sum())

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Measured retained footprint: every numpy column, every
        payload slab, the per-box slot dicts and bookkeeping lists, and
        the moderator intern table's containers.  Peer/moderator id
        *strings* are shared with the rest of the system (the row
        tables hold one reference each) and excluded — the dict
        backend's :meth:`BallotBox.memory_bytes` draws the same line,
        so the two layouts are comparable like-for-like."""
        total = sum(
            arr.nbytes
            for arr in (
                self.bb_unique,
                self.vl_size,
                self.store_size,
                self.exp_threshold,
                self.bb_voter,
                self.bb_last,
                self.bb_order,
                self.bb_nvotes,
                self.bb_off,
                self.bb_segcap,
            )
        )
        for slabs in (self._pay_mod, self._pay_val, self._pay_at):
            total += sys.getsizeof(slabs)
            for arr in slabs:
                total += arr.nbytes
        for d in self._slots:
            total += sys.getsizeof(d)
        for container in (
            self._box_of,
            self.bb_used,
            self._bb_seq,
            self._slots,
            self._pay_used,
            self._pay_live,
            self.mods.ids,
            self.mods.index,
        ):
            total += sys.getsizeof(container)
        return total

    def box_memory_bytes(self, owner_row: int) -> int:
        """One box's share of the retained footprint: its rows of the
        2-D columns, its payload slabs and its slot dict.  (The global
        intern table is shared and not attributed to any single box.)"""
        box = self._box_of[owner_row]
        if box < 0:
            return 0
        per_slot = sum(
            arr.itemsize
            for arr in (
                self.bb_voter,
                self.bb_last,
                self.bb_order,
                self.bb_nvotes,
                self.bb_off,
                self.bb_segcap,
            )
        )
        total = self._width * per_slot
        total += self._pay_mod[box].nbytes
        total += self._pay_val[box].nbytes
        total += self._pay_at[box].nbytes
        total += sys.getsizeof(self._slots[box])
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarStateStore(rows={len(self.rows)}, "
            f"boxes={self._n_boxes}, width={self._width}, "
            f"moderators={len(self.mods)})"
        )


class ColumnarBallotBox(BallotBox):
    """A :class:`BallotBox` whose state lives in a
    :class:`ColumnarStateStore`.

    Same public API and bit-identical semantics; the dict-backed
    attributes of the parent are never created.  The view holds only
    ``(store, owner_row, b_max)`` — equality of behaviour is enforced
    by the property tests, and persistence works unchanged because
    FORMAT_VERSION 2 reads and writes through the public API only.
    """

    def __init__(self, store: ColumnarStateStore, owner_row: int, b_max: int = 100):
        if b_max < 1:
            raise ValueError("b_max must be >= 1")
        self.b_max = b_max
        self._store = store
        self._row = owner_row

    # -- mutations ------------------------------------------------------
    def merge(self, voter: str, entries: Iterable[VoteEntry], now: float) -> int:
        return self._store.bb_merge(self._row, self.b_max, voter, entries, now)

    def restore_voter(
        self,
        voter: str,
        votes: Iterable[Tuple[str, Vote, float]],
        last_received: float,
    ) -> None:
        self._store.bb_restore_voter(
            self._row, self.b_max, voter, votes, last_received
        )

    def remove_voter(self, voter: str) -> bool:
        return self._store.bb_remove_voter(self._row, voter)

    # -- reads ----------------------------------------------------------
    def num_unique_users(self) -> int:
        return len(self._store.bb_slots(self._row))

    def voters(self) -> List[str]:
        ids = self._store.rows.ids
        return sorted(ids[vrow] for vrow in self._store.bb_slots(self._row))

    def voters_by_recency(self) -> List[str]:
        ids = self._store.rows.ids
        return [ids[vrow] for vrow in self._store.bb_slots(self._row)]

    def votes_of(self, voter: str) -> List[Tuple[str, Vote, float]]:
        return self._store.bb_votes_of(self._row, voter)

    def last_received_of(self, voter: str) -> float:
        return self._store.bb_last_received(self._row, voter)

    def moderators(self) -> List[str]:
        return self._store.bb_moderators(self._row)

    def counts(self, moderator_id: str) -> Tuple[int, int]:
        return self._store.bb_counts(self._row, moderator_id)

    def all_counts(self) -> Dict[str, Tuple[int, int]]:
        return self._store.bb_all_counts(self._row)

    def total_votes(self) -> int:
        return self._store.bb_total_votes(self._row)

    def vote_of(self, voter: str, moderator_id: str):
        return self._store.bb_vote_of(self._row, voter, moderator_id)

    def export_digest(self) -> List[Tuple[str, str, int, float]]:
        return self._store.bb_export_digest(self._row)

    def dispersion(self) -> float:
        return self._store.bb_dispersion(self._row)

    def memory_bytes(self) -> int:
        return self._store.box_memory_bytes(self._row)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarBallotBox(voters={self.num_unique_users()}/"
            f"{self.b_max}, votes={self.total_votes()})"
        )
