"""Columnar protocol state — structure-of-arrays node state (phase 2).

PR 6 made the tick *scheduler* columnar (:mod:`repro.sim.population`);
this module does the same for the protocol *state*.  A
:class:`ColumnarStateStore` holds, for every known peer, numpy columns
keyed by the population engine's row↔peer-id table
(:class:`RowTable`):

* **ballot-box occupancy** — per-(box, voter) vote counts
  (``bb_nvotes``), ``last_received`` recency (``bb_last``) and the
  ``B_max`` eviction order (``bb_order``), in ``[box_row, slot]``
  2-D columns with swap-remove slot recycling;
* **experience thresholds** — the adaptive-T controller's per-node
  threshold (``exp_threshold``), read as a column slice by the batched
  experience gate;
* **vote / moderation store membership** — ``vl_size`` and
  ``store_size`` per peer, so a whole due batch can skip empty
  exchanges with one gather.

:class:`ColumnarBallotBox` is a drop-in :class:`~repro.core.ballotbox
.BallotBox` whose state lives in the store's columns; the object API
(and therefore persistence FORMAT_VERSION 2 and every existing test)
is unchanged, and the semantics — self-vote drops, store-nothing
merges leaving recency untouched, oldest-voter eviction — are
bit-identical to the dict implementation (property-tested in
``tests/test_core_columnar.py``).

Box rows are allocated lazily on first merge (``_box_of``
indirection), and the slot width grows in powers of two up to the
widest ``b_max`` actually used, so a million-peer population whose
boxes stay empty pays nothing for the 2-D columns.

Vote payloads (``moderator → (vote, received_at)``) stay in per-slot
Python dicts: they are string-keyed, variable-width and read whole
(``votes_of``/``all_counts``), so a numpy layout would buy nothing —
the columns carry exactly the fixed-width state the batched merge and
eviction path actually computes on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.ballotbox import BallotBox
from repro.core.votes import Vote, VoteEntry


class RowTable:
    """Append-only ``peer_id ↔ row`` assignment shared by the
    population engine and the state store.

    Rows are dense (``0 .. len-1``) and never reused, so any component
    may key a column by row.  ``ids`` and ``index`` are exposed
    directly — the population engine's hot loop reads them without a
    method call — but must only be mutated through :meth:`row`.
    """

    __slots__ = ("ids", "index")

    def __init__(self) -> None:
        self.ids: List[str] = []
        self.index: Dict[str, int] = {}

    def row(self, peer_id: str) -> int:
        """The peer's row, assigned on first sight."""
        row = self.index.get(peer_id)
        if row is None:
            row = len(self.ids)
            self.ids.append(peer_id)
            self.index[peer_id] = row
        return row

    def get(self, peer_id: str) -> Optional[int]:
        return self.index.get(peer_id)

    def __len__(self) -> int:
        return len(self.ids)


class ColumnarStateStore:
    """Structure-of-arrays protocol state for a whole population."""

    def __init__(self, rows: Optional[RowTable] = None):
        self.rows = rows if rows is not None else RowTable()
        self._cap = 0
        #: unique voters currently in the peer's ballot box
        self.bb_unique = np.zeros(0, dtype=np.int32)
        #: entries in the peer's local vote list
        self.vl_size = np.zeros(0, dtype=np.int32)
        #: moderations in the peer's local store
        self.store_size = np.zeros(0, dtype=np.int32)
        #: adaptive experience threshold T (bytes); 0 = accept all
        self.exp_threshold = np.zeros(0, dtype=np.float64)

        # Ballot-box sub-store: box rows are allocated on first merge
        # (``_box_of`` indirection), slots within a box are recycled
        # with swap-remove.  Scalar per-box bookkeeping (``_box_of``,
        # ``bb_used``, ``_bb_seq``) lives in plain Python lists — the
        # merge hot path reads and writes them one element at a time,
        # where list indexing is several times cheaper than a numpy
        # scalar access — while the per-(box, slot) state stays in 2-D
        # numpy columns for the vectorised reads and the memory win.
        self._box_of: List[int] = []
        self._box_cap = 0
        self._width = 0
        self._n_boxes = 0
        #: ``[box_row, slot] -> voter row`` (-1 = free slot)
        self.bb_voter = np.full((0, 0), -1, dtype=np.int32)
        #: ``last_received`` per (box, slot)
        self.bb_last = np.zeros((0, 0), dtype=np.float64)
        #: recency stamp per (box, slot) — strictly increasing per box
        self.bb_order = np.zeros((0, 0), dtype=np.int64)
        #: stored votes per (box, slot)
        self.bb_nvotes = np.zeros((0, 0), dtype=np.int32)
        #: occupied slots per box
        self.bb_used: List[int] = []
        self._bb_seq: List[int] = []
        #: per box: ``voter row -> slot``, insertion-ordered by recency
        #: (move-to-end on bump) — O(1) eviction victim at the head
        self._slots: List[Dict[int, int]] = []
        #: per box, per slot: ``moderator -> (vote, received_at)``
        self._payload: List[List[Optional[Dict[str, Tuple[Vote, float]]]]] = []

    # ------------------------------------------------------------------
    # Row / box allocation
    # ------------------------------------------------------------------
    def ensure_row(self, peer_id: str) -> int:
        """The peer's row, growing the per-row columns to cover it."""
        row = self.rows.row(peer_id)
        if row >= self._cap:
            self._grow_rows(row + 1)
        return row

    def _grow_rows(self, needed: int) -> None:
        new_cap = max(self._cap * 2, 1024)
        while new_cap < needed:
            new_cap *= 2

        def _resize(arr: np.ndarray, fill, dtype) -> np.ndarray:
            out = np.full(new_cap, fill, dtype=dtype)
            out[: arr.size] = arr
            return out

        self.bb_unique = _resize(self.bb_unique, 0, np.int32)
        self.vl_size = _resize(self.vl_size, 0, np.int32)
        self.store_size = _resize(self.store_size, 0, np.int32)
        self.exp_threshold = _resize(self.exp_threshold, 0.0, np.float64)
        self._box_of.extend([-1] * (new_cap - len(self._box_of)))
        self._cap = new_cap

    def _box_row(self, owner_row: int) -> int:
        box = self._box_of[owner_row]
        if box >= 0:
            return box
        box = self._n_boxes
        if box >= self._box_cap:
            self._grow_boxes(box + 1)
        self._n_boxes = box + 1
        self._box_of[owner_row] = box
        self._slots.append({})
        self._payload.append([None] * self._width)
        self.bb_used.append(0)
        self._bb_seq.append(0)
        return box

    def _grow_boxes(self, needed: int) -> None:
        new_cap = max(self._box_cap * 2, 256)
        while new_cap < needed:
            new_cap *= 2
        w = self._width

        def _resize2(arr: np.ndarray, fill, dtype) -> np.ndarray:
            out = np.full((new_cap, w), fill, dtype=dtype)
            out[: arr.shape[0], :] = arr
            return out

        self.bb_voter = _resize2(self.bb_voter, -1, np.int32)
        self.bb_last = _resize2(self.bb_last, 0.0, np.float64)
        self.bb_order = _resize2(self.bb_order, 0, np.int64)
        self.bb_nvotes = _resize2(self.bb_nvotes, 0, np.int32)
        self._box_cap = new_cap

    def _grow_width(self, needed: int) -> None:
        new_w = max(self._width * 2, 4)
        while new_w < needed:
            new_w *= 2
        pad = new_w - self._width

        def _widen(arr: np.ndarray, fill, dtype) -> np.ndarray:
            out = np.full((self._box_cap, new_w), fill, dtype=dtype)
            out[:, : self._width] = arr
            return out

        self.bb_voter = _widen(self.bb_voter, -1, np.int32)
        self.bb_last = _widen(self.bb_last, 0.0, np.float64)
        self.bb_order = _widen(self.bb_order, 0, np.int64)
        self.bb_nvotes = _widen(self.bb_nvotes, 0, np.int32)
        for payload in self._payload:
            payload.extend([None] * pad)
        self._width = new_w

    # ------------------------------------------------------------------
    # Ballot-box operations (semantics of repro.core.ballotbox)
    # ------------------------------------------------------------------
    def bb_merge(
        self,
        owner_row: int,
        b_max: int,
        voter: str,
        entries: Iterable[VoteEntry],
        now: float,
        voter_row: Optional[int] = None,
    ) -> int:
        """:meth:`BallotBox.merge` over the columns; returns entries
        stored.  Recency is bumped only when something was stored.

        This is the batched vote tick's innermost call (twice per
        exchange), so the common shapes are specialised: sequence
        inputs skip the defensive copy, entries carrying real
        :class:`Vote` values skip the enum conversion, and a full box
        evicts *before* inserting so the newcomer reuses the head
        voter's slot in place — the same final state the insert-then-
        evict order produces (``b_max >= 1`` keeps the newcomer off
        the victim list), without the swap-remove column traffic.
        Callers that already know the sender's row pass ``voter_row``
        to skip the id lookup.
        """
        if type(entries) is not list and type(entries) is not tuple:
            entries = list(entries)
        if not entries:
            return 0
        box = self._box_of[owner_row]
        if box < 0:
            box = self._box_row(owner_row)
        slots = self._slots[box]
        vrow = self.rows.row(voter) if voter_row is None else voter_row
        slot = slots.get(vrow)
        payload = self._payload[box]
        votes = payload[slot] if slot is not None else {}
        stored = 0
        for e in entries:
            moderator = e.moderator_id
            if moderator == voter:
                # Self-votes carry no information (see BallotBox.merge).
                continue
            v = e.vote
            votes[moderator] = (v if type(v) is Vote else Vote(v), now)
            stored += 1
        if stored == 0:
            return 0
        if slot is None:
            nslots = len(slots)
            if nslots >= b_max:
                # Evict-then-insert: same victims as the reference
                # insert-then-evict (heads of the recency order; the
                # newcomer would sit at the tail), but the last victim's
                # slot is reused in place.
                while nslots > b_max:
                    self._drop_slot(box, slots, owner_row, next(iter(slots)))
                    nslots -= 1
                slot = slots.pop(next(iter(slots)))
                self.bb_voter[box, slot] = vrow
                payload[slot] = votes
            else:
                slot = self.bb_used[box]
                if slot >= self._width:
                    self._grow_width(slot + 1)
                self.bb_voter[box, slot] = vrow
                self.bb_used[box] = slot + 1
                self.bb_unique[owner_row] += 1
                payload[slot] = votes
            slots[vrow] = slot
        else:
            # Move-to-end: recency order is the dict's insertion order.
            slots.pop(vrow)
            slots[vrow] = slot
        seq = self._bb_seq[box] + 1
        self._bb_seq[box] = seq
        self.bb_last[box, slot] = now
        self.bb_order[box, slot] = seq
        self.bb_nvotes[box, slot] = len(votes)
        if len(slots) > b_max:
            # Only reachable when b_max shrank between merges on an
            # already-present voter (the insert path bounds itself).
            self._evict(box, slots, owner_row, b_max)
        return stored

    def bb_restore_voter(
        self,
        owner_row: int,
        b_max: int,
        voter: str,
        votes: Iterable[Tuple[str, Vote, float]],
        last_received: float,
    ) -> None:
        """:meth:`BallotBox.restore_voter` over the columns."""
        stored = {
            moderator: (Vote(vote), received_at)
            for moderator, vote, received_at in votes
            if moderator != voter
        }
        if not stored:
            return
        box = self._box_row(owner_row)
        slots = self._slots[box]
        vrow = self.rows.row(voter)
        slot = slots.get(vrow)
        if slot is None:
            slot = self._take_slot(box, owner_row, vrow, stored)
        else:
            self._payload[box][slot] = stored
            slots.pop(vrow)
        slots[vrow] = slot
        self._stamp(box, slot, last_received, len(stored))
        self._evict(box, slots, owner_row, b_max)

    def bb_remove_voter(self, owner_row: int, voter: str) -> bool:
        box = self._box_of[owner_row]
        if box < 0:
            return False
        vrow = self.rows.get(voter)
        if vrow is None or vrow not in self._slots[box]:
            return False
        self._drop_slot(box, self._slots[box], owner_row, vrow)
        return True

    def _take_slot(
        self,
        box: int,
        owner_row: int,
        vrow: int,
        votes: Dict[str, Tuple[Vote, float]],
    ) -> int:
        slot = self.bb_used[box]
        if slot >= self._width:
            self._grow_width(slot + 1)
        self.bb_voter[box, slot] = vrow
        self.bb_used[box] = slot + 1
        self.bb_unique[owner_row] += 1
        self._payload[box][slot] = votes
        return slot

    def _stamp(self, box: int, slot: int, when: float, nvotes: int) -> None:
        seq = self._bb_seq[box] + 1
        self._bb_seq[box] = seq
        self.bb_last[box, slot] = when
        self.bb_order[box, slot] = seq
        self.bb_nvotes[box, slot] = nvotes

    def _evict(
        self, box: int, slots: Dict[int, int], owner_row: int, b_max: int
    ) -> None:
        while len(slots) > b_max:
            victim = next(iter(slots))
            self._drop_slot(box, slots, owner_row, victim)

    def _drop_slot(
        self, box: int, slots: Dict[int, int], owner_row: int, vrow: int
    ) -> None:
        """Free a voter's slot, swap-filling from the box's last slot
        (a value-only dict update, so the moved voter keeps its recency
        position)."""
        slot = slots.pop(vrow)
        last = self.bb_used[box] - 1
        payload = self._payload[box]
        if slot != last:
            moved = int(self.bb_voter[box, last])
            self.bb_voter[box, slot] = moved
            self.bb_last[box, slot] = self.bb_last[box, last]
            self.bb_order[box, slot] = self.bb_order[box, last]
            self.bb_nvotes[box, slot] = self.bb_nvotes[box, last]
            payload[slot] = payload[last]
            slots[moved] = slot
        self.bb_voter[box, last] = -1
        self.bb_nvotes[box, last] = 0
        payload[last] = None
        self.bb_used[box] = last
        self.bb_unique[owner_row] -= 1

    # ------------------------------------------------------------------
    # Ballot-box reads
    # ------------------------------------------------------------------
    def bb_slots(self, owner_row: int) -> Dict[int, int]:
        """The owner's ``voter row -> slot`` map (recency-ordered);
        empty for a peer whose box was never merged into."""
        box = self._box_of[owner_row]
        return self._slots[box] if box >= 0 else {}

    def bb_payload(
        self, owner_row: int, voter: str
    ) -> Optional[Dict[str, Tuple[Vote, float]]]:
        box = self._box_of[owner_row]
        if box < 0:
            return None
        vrow = self.rows.get(voter)
        if vrow is None:
            return None
        slot = self._slots[box].get(vrow)
        return None if slot is None else self._payload[box][slot]

    def bb_payloads(self, owner_row: int) -> List[Dict[str, Tuple[Vote, float]]]:
        """Every voter's payload dict, in recency order."""
        box = self._box_of[owner_row]
        if box < 0:
            return []
        payload = self._payload[box]
        return [payload[slot] for slot in self._slots[box].values()]

    def bb_last_received(self, owner_row: int, voter: str) -> float:
        box = self._box_of[owner_row]
        if box < 0:
            return 0.0
        vrow = self.rows.get(voter)
        if vrow is None:
            return 0.0
        slot = self._slots[box].get(vrow)
        return 0.0 if slot is None else float(self.bb_last[box, slot])

    def bb_total_votes(self, owner_row: int) -> int:
        box = self._box_of[owner_row]
        if box < 0:
            return 0
        used = self.bb_used[box]
        return int(self.bb_nvotes[box, :used].sum())

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Numpy column footprint (payload dicts and the per-box
        Python bookkeeping lists excluded)."""
        return sum(
            arr.nbytes
            for arr in (
                self.bb_unique,
                self.vl_size,
                self.store_size,
                self.exp_threshold,
                self.bb_voter,
                self.bb_last,
                self.bb_order,
                self.bb_nvotes,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarStateStore(rows={len(self.rows)}, "
            f"boxes={self._n_boxes}, width={self._width})"
        )


class ColumnarBallotBox(BallotBox):
    """A :class:`BallotBox` whose state lives in a
    :class:`ColumnarStateStore`.

    Same public API and bit-identical semantics; the dict-backed
    attributes of the parent are never created.  The view holds only
    ``(store, owner_row, b_max)`` — equality of behaviour is enforced
    by the property tests, and persistence works unchanged because
    FORMAT_VERSION 2 reads and writes through the public API only.
    """

    def __init__(self, store: ColumnarStateStore, owner_row: int, b_max: int = 100):
        if b_max < 1:
            raise ValueError("b_max must be >= 1")
        self.b_max = b_max
        self._store = store
        self._row = owner_row

    # -- mutations ------------------------------------------------------
    def merge(self, voter: str, entries: Iterable[VoteEntry], now: float) -> int:
        return self._store.bb_merge(self._row, self.b_max, voter, entries, now)

    def restore_voter(
        self,
        voter: str,
        votes: Iterable[Tuple[str, Vote, float]],
        last_received: float,
    ) -> None:
        self._store.bb_restore_voter(
            self._row, self.b_max, voter, votes, last_received
        )

    def remove_voter(self, voter: str) -> bool:
        return self._store.bb_remove_voter(self._row, voter)

    # -- reads ----------------------------------------------------------
    def num_unique_users(self) -> int:
        return len(self._store.bb_slots(self._row))

    def voters(self) -> List[str]:
        ids = self._store.rows.ids
        return sorted(ids[vrow] for vrow in self._store.bb_slots(self._row))

    def voters_by_recency(self) -> List[str]:
        ids = self._store.rows.ids
        return [ids[vrow] for vrow in self._store.bb_slots(self._row)]

    def votes_of(self, voter: str) -> List[Tuple[str, Vote, float]]:
        payload = self._store.bb_payload(self._row, voter)
        if payload is None:
            return []
        return [
            (moderator, vote, received_at)
            for moderator, (vote, received_at) in payload.items()
        ]

    def last_received_of(self, voter: str) -> float:
        return self._store.bb_last_received(self._row, voter)

    def moderators(self) -> List[str]:
        out = set()
        for votes in self._store.bb_payloads(self._row):
            out.update(votes.keys())
        return sorted(out)

    def counts(self, moderator_id: str) -> Tuple[int, int]:
        pos = neg = 0
        for votes in self._store.bb_payloads(self._row):
            entry = votes.get(moderator_id)
            if entry is None:
                continue
            if entry[0] is Vote.POSITIVE:
                pos += 1
            else:
                neg += 1
        return pos, neg

    def all_counts(self) -> Dict[str, Tuple[int, int]]:
        totals: Dict[str, Tuple[int, int]] = {}
        for votes in self._store.bb_payloads(self._row):
            for moderator_id, (vote, _at) in votes.items():
                pos, neg = totals.get(moderator_id, (0, 0))
                if vote is Vote.POSITIVE:
                    totals[moderator_id] = (pos + 1, neg)
                else:
                    totals[moderator_id] = (pos, neg + 1)
        return totals

    def total_votes(self) -> int:
        return self._store.bb_total_votes(self._row)

    def vote_of(self, voter: str, moderator_id: str):
        payload = self._store.bb_payload(self._row, voter)
        entry = payload.get(moderator_id) if payload else None
        return entry[0] if entry else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarBallotBox(voters={self.num_unique_users()}/"
            f"{self.b_max}, votes={self.total_votes()})"
        )
