"""One peer's complete vote-sampling protocol state.

:class:`VoteSamplingNode` composes the local moderation database, the
local vote list, the ballot box and the VoxPopuli cache, and implements
the per-message logic of Figs 1 and 3.  It is engine-agnostic — the
:mod:`repro.core.runtime` schedules its exchanges — which keeps every
protocol rule unit-testable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.ballotbox import BallotBox
from repro.core.columnar import ColumnarBallotBox, ColumnarStateStore
from repro.core.moderation import Moderation, ModerationStore
from repro.core.moderationcast import extract_moderations
from repro.core.ranking import Ranking, rank_by_sum, top_k
from repro.core.votes import LocalVoteList, Vote, VoteEntry
from repro.core.voxpopuli import TopKCache


@dataclass
class NodeConfig:
    """Protocol parameters (§VI defaults)."""

    b_min: int = 5
    b_max: int = 100
    v_max: int = 10
    k: int = 3
    votes_per_exchange: int = 50
    moderations_per_exchange: int = 25
    moderation_store_capacity: int = 1000
    #: Vote selection policy: "recency_random" (paper), "recency", "random".
    exchange_policy: str = "recency_random"
    #: Disable the VoxPopuli bootstrap entirely (ablation A6): nodes
    #: below B_min simply have no ranking.
    voxpopuli_enabled: bool = True

    def __post_init__(self) -> None:
        if self.exchange_policy not in ("recency_random", "recency", "random"):
            raise ValueError(f"unknown exchange_policy {self.exchange_policy!r}")
        if self.b_min < 1 or self.b_max < self.b_min:
            raise ValueError("need 1 <= b_min <= b_max")
        if self.v_max < 1 or self.k < 1:
            raise ValueError("v_max and k must be >= 1")
        if self.votes_per_exchange < 1 or self.moderations_per_exchange < 1:
            raise ValueError("exchange budgets must be >= 1")


class VoteSamplingNode:
    """Protocol state and message handlers for one peer."""

    def __init__(
        self,
        peer_id: str,
        config: Optional[NodeConfig] = None,
        rng: Optional[np.random.Generator] = None,
        col_store: Optional[ColumnarStateStore] = None,
    ):
        self.peer_id = peer_id
        self.config = config or NodeConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.store = ModerationStore(self.config.moderation_store_capacity)
        self.vote_list = LocalVoteList()
        #: columnar backing (``None`` = classic per-node dict state).
        #: With a store, the ballot box is a thin view over the shared
        #: columns and the vl_size/store_size membership columns track
        #: this node's vote list and moderation store.
        self.col_store = col_store
        if col_store is not None:
            self.row = col_store.ensure_row(peer_id)
            self.ballot_box: BallotBox = ColumnarBallotBox(
                col_store, self.row, self.config.b_max
            )
        else:
            self.row = -1
            self.ballot_box = BallotBox(self.config.b_max)
        self.topk_cache = TopKCache(self.config.v_max, self.config.k)
        #: votes the user will cast when the moderator's metadata arrives
        self.vote_intentions: Dict[str, Vote] = {}
        self.online = False
        # Counters for instrumentation.
        self.moderations_received = 0
        self.votes_merged = 0
        self.votes_rejected_inexperienced = 0
        self.votes_truncated = 0
        self.vp_requests_answered = 0
        self.vp_requests_declined = 0

    def _sync_membership(self) -> None:
        """Refresh this node's vl_size/store_size columns.  Called at
        the end of every node method that mutates the vote list or the
        moderation store — the contract that lets batched paths trust
        the membership columns without touching the objects."""
        store = self.col_store
        if store is not None:
            store.vl_size[self.row] = len(self.vote_list)
            store.store_size[self.row] = len(self.store)

    # ------------------------------------------------------------------
    # User actions
    # ------------------------------------------------------------------
    def create_moderation(
        self, torrent_id: str, title: str, now: float, description: str = ""
    ) -> Moderation:
        """Author a moderation (we are the moderator) and store it."""
        mod = Moderation(
            moderator_id=self.peer_id,
            torrent_id=torrent_id,
            title=title,
            description=description,
            created_at=now,
        )
        self.store.insert(mod, now)
        self._sync_membership()
        return mod

    def cast_vote(self, moderator_id: str, vote: Vote, now: float) -> None:
        """The user approves/disapproves a moderator.

        Disapproval purges the moderator's metadata from the local
        database and blocks future moderations from them (§IV).
        """
        if moderator_id == self.peer_id:
            raise ValueError("a node cannot vote on itself")
        self.vote_list.cast(moderator_id, vote, now)
        if Vote(vote) is Vote.NEGATIVE:
            self.store.purge_moderator(moderator_id)
        self._sync_membership()

    def set_vote_intention(self, moderator_id: str, vote: Vote) -> None:
        """Declare how the user will vote once they actually *see*
        metadata from this moderator (Fig 6 workload semantics: "Voting
        nodes do not vote until they receive the appropriate
        moderations")."""
        self.vote_intentions[moderator_id] = Vote(vote)

    # ------------------------------------------------------------------
    # ModerationCast (Fig 1)
    # ------------------------------------------------------------------
    def moderations_to_send(self) -> List[Moderation]:
        """``Extract(local_db)`` — own + approved moderators only."""
        return extract_moderations(
            self.store,
            self.vote_list,
            self.peer_id,
            self.config.moderations_per_exchange,
            self.rng,
        )

    def receive_moderations(self, items: Sequence[Moderation], now: float) -> int:
        """``Merge(local_db, ml)`` — returns how many were newly stored.

        Drops invalid signatures and anything from disapproved
        moderators; fires pending vote intentions on first contact with
        a moderator's metadata.
        """
        disapproved = self.vote_list.disapproved()
        new_count = 0
        for mod in items:
            if not mod.signature_valid:
                continue
            if mod.moderator_id in disapproved:
                continue
            if mod.moderator_id == self.peer_id and mod.key() not in self.store:
                # Somebody echoing our id with content we never made —
                # signature checking upstream should prevent this, but
                # never let it override our own authorship.
                continue
            if self.store.insert(mod, now):
                new_count += 1
                self.moderations_received += 1
                self._maybe_apply_intention(mod.moderator_id, now)
        self.store.enforce_capacity(self.vote_list.approved())
        self._sync_membership()
        return new_count

    def _maybe_apply_intention(self, moderator_id: str, now: float) -> None:
        intention = self.vote_intentions.get(moderator_id)
        if intention is not None and not self.vote_list.has_voted(moderator_id):
            self.cast_vote(moderator_id, intention, now)

    # ------------------------------------------------------------------
    # BallotBox (Fig 3 a/b)
    # ------------------------------------------------------------------
    def votes_to_send(self) -> List[VoteEntry]:
        """Our vote list, truncated to the exchange cap by the
        configured selection policy."""
        return self.vote_list.select_for_exchange(
            self.config.votes_per_exchange,
            self.rng,
            policy=self.config.exchange_policy,
        )

    def receive_votes(
        self, voter: str, entries: Sequence[VoteEntry], now: float, experienced: bool
    ) -> int:
        """Merge a received vote list iff the sender is experienced.

        The ``votes_per_exchange`` cap is enforced *here*, on the
        receiver — honest senders already truncate in
        :meth:`votes_to_send`, but a malicious peer can ship an
        arbitrarily long list, and trusting the sender would let it
        bloat the ballot box with unbounded distinct moderators per
        voter (memory ``B_max`` alone does not bound).

        Returns the number of stored entries (0 on rejection).
        """
        if voter == self.peer_id:
            return 0
        if not experienced:
            self.votes_rejected_inexperienced += 1
            return 0
        entries = list(entries)
        cap = self.config.votes_per_exchange
        if len(entries) > cap:
            self.votes_truncated += len(entries) - cap
            entries = entries[:cap]
        stored = self.ballot_box.merge(voter, entries, now)
        self.votes_merged += stored
        return stored

    # ------------------------------------------------------------------
    # VoxPopuli (Fig 3 a/c)
    # ------------------------------------------------------------------
    def needs_bootstrap(self) -> bool:
        """Active thread condition: unique voters below ``B_min``."""
        return self.ballot_box.num_unique_users() < self.config.b_min

    def respond_top_k(self) -> Optional[List[str]]:
        """Passive thread (Fig 3 c): answer with our top-K only when we
        are *not* ourselves bootstrapping, else ``null`` — "this
        prevents nodes unwittingly passing potentially malicious top-K
        lists received from others"."""
        if self.needs_bootstrap():
            self.vp_requests_declined += 1
            return None
        self.vp_requests_answered += 1
        return top_k(self.ballot_ranking(), self.config.k)

    def receive_top_k(self, top_k_list: Optional[Sequence[str]]) -> None:
        """Cache a VoxPopuli response (``null`` responses are ignored)."""
        if top_k_list:
            self.topk_cache.add(top_k_list)

    # ------------------------------------------------------------------
    # Ranking
    # ------------------------------------------------------------------
    def known_moderators(self) -> List[str]:
        """Moderators this node can rank: metadata seen, votes heard,
        own votes cast, or names from cached top-K lists."""
        known = set(self.store.moderators())
        known.update(self.ballot_box.moderators())
        known.update(m for m in self.topk_cache.known_moderators())
        known.update(e.moderator_id for e in self.vote_list.entries())
        known.discard(self.peer_id)
        return sorted(known)

    def ballot_ranking(self) -> Ranking:
        """Summation ranking over everything we know."""
        return rank_by_sum(self.ballot_box, universe=self.known_moderators())

    def current_ranking(self) -> Ranking:
        """The ranking the UI would show right now.

        Sample big enough (≥ ``B_min`` voters) → ballot-box statistics;
        otherwise → VoxPopuli merged ranking (possibly empty if nothing
        has been received yet)."""
        if not self.needs_bootstrap():
            return self.ballot_ranking()
        return self.topk_cache.merged_ranking()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VoteSamplingNode({self.peer_id!r}, votes={len(self.vote_list)}, "
            f"ballot={self.ballot_box.num_unique_users()}, "
            f"mods={len(self.store)})"
        )
