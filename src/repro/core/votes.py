"""Votes and the local vote list (§V-A).

A vote is +1 (approval) or −1 (disapproval) of a **moderator** (not of
an individual moderation — the paper's key efficiency decision).  Each
node keeps its own votes in a :class:`LocalVoteList`: one entry per
moderator (re-voting replaces), timestamped, ordered.  Exchanges send
at most ``max_votes`` entries selected by the paper's *recency and
random* policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Optional

import numpy as np


class Vote(IntEnum):
    """A thumbs-up / thumbs-down on a moderator."""

    POSITIVE = 1
    NEGATIVE = -1


@dataclass(frozen=True)
class VoteEntry:
    """One (moderator, vote) pair with the time the vote was cast."""

    moderator_id: str
    vote: Vote
    cast_at: float


class LocalVoteList:
    """The node's own ballot paper.

    Invariant: at most one entry per moderator.  ``cast`` with a new
    value replaces the old entry (the user changed their mind) and
    refreshes the timestamp.
    """

    def __init__(self) -> None:
        self._votes: Dict[str, VoteEntry] = {}
        #: bumped on every cast; keys the under-cap selection cache
        self._version = 0
        self._sel_version = -1
        self._sel_cache: List[VoteEntry] = []

    def cast(self, moderator_id: str, vote: Vote, now: float) -> VoteEntry:
        """Record the local user's vote on a moderator."""
        entry = VoteEntry(moderator_id, Vote(vote), now)
        self._votes[moderator_id] = entry
        self._version += 1
        return entry

    def vote_on(self, moderator_id: str) -> Optional[Vote]:
        entry = self._votes.get(moderator_id)
        return entry.vote if entry else None

    def has_voted(self, moderator_id: str) -> bool:
        return moderator_id in self._votes

    def entries(self) -> List[VoteEntry]:
        """All entries, newest first (deterministic tie-break on id)."""
        return sorted(
            self._votes.values(), key=lambda e: (-e.cast_at, e.moderator_id)
        )

    def approved(self) -> frozenset:
        """Moderators the local user gave a positive vote."""
        return frozenset(
            m for m, e in self._votes.items() if e.vote is Vote.POSITIVE
        )

    def disapproved(self) -> frozenset:
        """Moderators the local user gave a negative vote."""
        return frozenset(
            m for m, e in self._votes.items() if e.vote is Vote.NEGATIVE
        )

    def select_for_exchange(
        self,
        max_votes: int,
        rng: np.random.Generator,
        policy: str = "recency_random",
    ) -> List[VoteEntry]:
        """Select votes to send, bounded by ``max_votes``.

        Policies (the A2 ablation compares them):

        * ``"recency_random"`` — the paper's default: half the budget
          goes to the most recent votes, the rest is drawn uniformly
          from the remainder ("experiments demonstrated that combining
          these policies produced acceptable performance");
        * ``"recency"`` — most recent only;
        * ``"random"`` — uniform over all votes.

        When the list fits the budget everything is sent.

        The under-cap result is memoised against a cast-version
        counter: no RNG is consumed below the cap, so returning the
        cached sorted list between casts is bit-identical, and the
        vote tick — which calls this twice per exchange, usually far
        below the cap — skips the per-call sort.  Callers must treat
        the returned list as read-only (receivers copy before
        truncating).
        """
        if max_votes < 1:
            return []
        if len(self._votes) <= max_votes:
            if self._sel_version == self._version:
                return self._sel_cache
            entries = self.entries()
            self._sel_cache = entries
            self._sel_version = self._version
            return entries
        entries = self.entries()
        if policy == "recency":
            return entries[:max_votes]
        if policy == "random":
            picks = rng.choice(len(entries), size=max_votes, replace=False)
            return [entries[int(i)] for i in sorted(picks)]
        if policy != "recency_random":
            raise ValueError(f"unknown exchange policy {policy!r}")
        recent_budget = max_votes // 2
        recent = entries[:recent_budget]
        rest = entries[recent_budget:]
        random_budget = max_votes - recent_budget
        picks = rng.choice(len(rest), size=random_budget, replace=False)
        return recent + [rest[int(i)] for i in sorted(picks)]

    def __len__(self) -> int:
        return len(self._votes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LocalVoteList(votes={len(self._votes)})"
