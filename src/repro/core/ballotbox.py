"""The local ballot box (§V-A).

Each entry maps ``(voter peer, moderator) → (vote, received_at)``.  The
box holds votes from at most ``B_max`` *unique peers*; beyond that, the
peer whose votes were received longest ago is evicted wholesale ("new
votes replace the oldest votes").  One-node-one-vote-per-moderator is
structural: a voter's repeated vote on the same moderator overwrites.

Nodes never forward ballot-box contents — only their *own* vote lists —
which is the design's defence against vote-count fabrication.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.votes import Vote, VoteEntry


class BallotBox:
    """Bounded sample of other peers' votes."""

    def __init__(self, b_max: int = 100):
        if b_max < 1:
            raise ValueError("b_max must be >= 1")
        self.b_max = b_max
        #: voter -> moderator -> (vote, received_at)
        self._votes: Dict[str, Dict[str, Tuple[Vote, float]]] = {}
        #: voter -> last time we received votes from them
        self._last_received: Dict[str, float] = {}
        self._seq = 0
        #: voter -> recency stamp, kept in *recency order*: a bump pops
        #: and re-inserts (move-to-end), so the dict's insertion order
        #: IS the eviction order and the oldest voter is the head.
        self._voter_order: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def merge(self, voter: str, entries: Iterable[VoteEntry], now: float) -> int:
        """Fold a voter's vote list into the box.

        Returns the number of *distinct* moderators stored (new or
        updated).  A list that repeats a moderator id collapses to its
        last vote — one-node-one-vote is structural — so the count must
        not credit the duplicates, or a ``["m","m",...]``-style list
        would report N stored votes while storing 1 and inflate the
        stored-votes telemetry for free.  Eviction by unique-voter
        count runs after the merge.  A merge that stores nothing
        leaves the voter's recency untouched.
        """
        entries = list(entries)
        if not entries:
            return 0
        votes = self._votes.setdefault(voter, {})
        stored: Set[str] = set()
        for e in entries:
            if e.moderator_id == voter:
                # Self-votes carry no information; a moderator always
                # approves of itself.
                continue
            votes[e.moderator_id] = (Vote(e.vote), now)
            stored.add(e.moderator_id)
        if not votes:
            self._votes.pop(voter, None)
            return 0
        if not stored:
            # Nothing usable arrived (e.g. a self-vote-only list).  Do
            # NOT refresh the voter's recency: bumping it here would let
            # a peer dodge B_max eviction forever by periodically
            # shipping empty-calorie exchanges.
            return 0
        self._last_received[voter] = now
        self._bump_recency(voter)
        self._evict()
        return len(stored)

    def _bump_recency(self, voter: str) -> None:
        """Move the voter to the end of the recency order.  A plain
        value assignment would keep the dict's original insertion
        position, so an existing key is popped first."""
        self._seq += 1
        self._voter_order.pop(voter, None)
        self._voter_order[voter] = self._seq

    def _evict(self) -> None:
        # The recency-ordered dict makes the victim the head — O(1)
        # amortised per eviction instead of a min-scan over every
        # voter per merge under eviction pressure.
        while len(self._votes) > self.b_max:
            victim = next(iter(self._voter_order))
            self._votes.pop(victim, None)
            self._last_received.pop(victim, None)
            self._voter_order.pop(victim, None)

    def restore_voter(
        self,
        voter: str,
        votes: Iterable[Tuple[str, Vote, float]],
        last_received: float,
    ) -> None:
        """Reinstall one voter's saved state (persistence restore path).

        ``votes`` is ``(moderator, vote, received_at)`` triples exactly
        as :meth:`votes_of` reported them.  The voter is appended at the
        *end* of the recency order, so calling this oldest-first (the
        order :meth:`voters_by_recency` yields) reproduces the saved
        box's relative eviction order — which is all `B_max` eviction
        ever compares.  Self-votes are dropped as in :meth:`merge`."""
        stored = {
            moderator: (Vote(vote), received_at)
            for moderator, vote, received_at in votes
            if moderator != voter
        }
        if not stored:
            return
        self._votes[voter] = stored
        self._last_received[voter] = last_received
        self._bump_recency(voter)
        self._evict()

    def remove_voter(self, voter: str) -> bool:
        """Drop all votes from one peer (e.g. identity revoked)."""
        if voter not in self._votes:
            return False
        del self._votes[voter]
        self._last_received.pop(voter, None)
        self._voter_order.pop(voter, None)
        return True

    # ------------------------------------------------------------------
    def num_unique_users(self) -> int:
        """The Fig 3 ``num_unique_users`` guard — voters sampled."""
        return len(self._votes)

    def voters(self) -> List[str]:
        return sorted(self._votes)

    def voters_by_recency(self) -> List[str]:
        """Voters ordered oldest-received first — the order `B_max`
        eviction consumes them (persistence saves in this order so a
        restored box evicts the same victims)."""
        return list(self._voter_order)

    def votes_of(self, voter: str) -> List[Tuple[str, Vote, float]]:
        """One voter's stored ``(moderator, vote, received_at)``
        triples — a single pass over the voter's votes, no per-moderator
        probing."""
        return [
            (moderator, vote, received_at)
            for moderator, (vote, received_at) in self._votes.get(voter, {}).items()
        ]

    def last_received_of(self, voter: str) -> float:
        """When the voter's votes last arrived (0.0 if unknown)."""
        return self._last_received.get(voter, 0.0)

    def moderators(self) -> List[str]:
        out = set()
        for votes in self._votes.values():
            out.update(votes.keys())
        return sorted(out)

    def counts(self, moderator_id: str) -> Tuple[int, int]:
        """``(positive, negative)`` vote counts for a moderator."""
        pos = neg = 0
        for votes in self._votes.values():
            entry = votes.get(moderator_id)
            if entry is None:
                continue
            if entry[0] is Vote.POSITIVE:
                pos += 1
            else:
                neg += 1
        return pos, neg

    def all_counts(self) -> Dict[str, Tuple[int, int]]:
        """``moderator → (positive, negative)`` for every moderator the
        box has votes on, in one pass over the stored votes.

        Equivalent to calling :meth:`counts` per moderator (integer
        tallies, so bit-identical) but O(total votes) instead of
        O(moderators × voters) — the difference between a linear and a
        quadratic dispersion scan per adaptive tick."""
        totals: Dict[str, Tuple[int, int]] = {}
        for votes in self._votes.values():
            for moderator_id, (vote, _at) in votes.items():
                pos, neg = totals.get(moderator_id, (0, 0))
                if vote is Vote.POSITIVE:
                    totals[moderator_id] = (pos + 1, neg)
                else:
                    totals[moderator_id] = (pos, neg + 1)
        return totals

    def dispersion(self) -> float:
        """Worst-case per-moderator vote disagreement in ``[0, 1]`` —
        the adaptive-T controller's signal (§VII): for every moderator
        with at least two votes, ``4·p·(1−p)`` where ``p`` is the
        positive fraction, taking the maximum over moderators.  One
        pass over the stored votes via :meth:`all_counts`; the columnar
        backing overrides this with a bincount scan over interned
        moderator ids that produces bit-identical floats."""
        worst = 0.0
        for pos, neg in self.all_counts().values():
            total = pos + neg
            if total < 2:
                continue
            p = pos / total
            worst = max(worst, 4.0 * p * (1.0 - p))
        return worst

    def memory_bytes(self) -> int:
        """Measured retained footprint of the box's containers: the
        per-voter payload dicts, their ``(vote, received_at)`` tuples
        and timestamp floats, and the recency/last-received
        bookkeeping.  Peer/moderator id strings and :class:`Vote`
        members are shared objects (one reference here, owned
        elsewhere) and excluded — the columnar store's
        ``memory_bytes`` draws the same line, so dict and packed
        layouts compare like-for-like."""
        total = (
            sys.getsizeof(self._votes)
            + sys.getsizeof(self._last_received)
            + sys.getsizeof(self._voter_order)
        )
        for votes in self._votes.values():
            total += sys.getsizeof(votes)
            for entry in votes.values():
                total += sys.getsizeof(entry) + sys.getsizeof(entry[1])
        for when in self._last_received.values():
            total += sys.getsizeof(when)
        for seq in self._voter_order.values():
            total += sys.getsizeof(seq)
        return total

    def export_digest(self) -> List[Tuple[str, str, int, float]]:
        """Every stored vote as flat ``(voter, moderator, vote,
        received_at)`` rows, sorted by ``(voter, moderator)``.

        The inter-shard aggregation path serializes ballot samples
        from here; the sort makes the export independent of dict
        insertion/recency order, so the dict and columnar backings
        produce byte-identical digests for equal box contents."""
        rows = [
            (voter, moderator, int(vote), received_at)
            for voter, votes in self._votes.items()
            for moderator, (vote, received_at) in votes.items()
        ]
        rows.sort(key=lambda r: (r[0], r[1]))
        return rows

    def score(self, moderator_id: str) -> int:
        """Summation score: positives − negatives."""
        pos, neg = self.counts(moderator_id)
        return pos - neg

    def vote_of(self, voter: str, moderator_id: str):
        entry = self._votes.get(voter, {}).get(moderator_id)
        return entry[0] if entry else None

    def total_votes(self) -> int:
        return sum(len(v) for v in self._votes.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BallotBox(voters={len(self._votes)}/{self.b_max}, "
            f"votes={self.total_votes()})"
        )
