"""ModerationCast extract policy (§IV, Fig 1).

The gossip loop itself is driven by the runtime; this module holds the
``Extract()`` policy: which moderations a node offers a partner.

Rules (Fig 2): a node forwards only moderations authored by itself or
by moderators it *approved* (+ vote).  Within that eligible set the
selection is *recency + random* — half the budget goes to the most
recently received items, the rest is drawn uniformly — mirroring the
vote-exchange policy the paper carried over from [6].
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.moderation import Moderation, ModerationStore
from repro.core.votes import LocalVoteList


def extract_moderations(
    store: ModerationStore,
    vote_list: LocalVoteList,
    own_id: str,
    max_items: int,
    rng: np.random.Generator,
) -> List[Moderation]:
    """The ``Extract(local_db)`` of Fig 1 for one exchange."""
    if max_items < 1:
        return []
    approved = vote_list.approved()
    eligible = [
        m
        for m in store.recency_order()
        if m.moderator_id == own_id or m.moderator_id in approved
    ]
    if len(eligible) <= max_items:
        return eligible
    recent_budget = max_items // 2
    recent = eligible[:recent_budget]
    rest = eligible[recent_budget:]
    random_budget = max_items - recent_budget
    picks = rng.choice(len(rest), size=random_budget, replace=False)
    return recent + [rest[int(i)] for i in sorted(picks)]
