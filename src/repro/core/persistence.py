"""Node state (de)serialisation.

Tribler "provides local database services allowing state to be
maintained over sessions" (§I).  Inside one simulation run our node
objects simply live on, but a real client restarts: this module
round-trips a :class:`~repro.core.node.VoteSamplingNode`'s durable
state (moderation database, own vote list, ballot box, VoxPopuli
cache, pending vote intentions) through plain JSON.

Volatile state is deliberately *not* persisted: protocol processes,
online flags and instrumentation counters restart fresh, exactly as a
client reboot would leave them.

Format history
--------------
* **v2** (current): ballot-box state is saved *per voter*, oldest
  received first, as ``{"voter", "last_received", "votes": [[moderator,
  vote, received_at], ...]}`` — both the per-vote ``received_at`` and
  the per-voter recency survive the round trip, so a restored box picks
  the same ``B_max`` eviction victims (oldest first) the live box would
  have.
* **v1** (still loadable): ballot entries were flat
  ``{"voter", "moderator", "vote"}`` records with no timestamps.
  **Caveat:** a v1 restore re-merges every voter at ``now=0.0`` in
  alphabetical order, so all recency is lost and subsequent ``B_max``
  evictions pick victims alphabetically until fresh merges rebuild real
  recency — exactly the pre-v2 behaviour, preserved for old saves.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.core.columnar import ColumnarStateStore
from repro.core.moderation import Moderation
from repro.core.node import NodeConfig, VoteSamplingNode
from repro.core.votes import Vote, VoteEntry

PathLike = Union[str, Path]
FORMAT_VERSION = 2

#: Formats :func:`node_from_dict` can still read (v1 loses ballot-box
#: recency; see the module docstring's format history).
_SUPPORTED_FORMATS = (1, 2)


def node_to_dict(node: VoteSamplingNode) -> Dict[str, Any]:
    """Extract the durable state as a JSON-serialisable dict."""
    moderations = []
    for mod in node.store.all_items():
        moderations.append(
            {
                "moderator_id": mod.moderator_id,
                "torrent_id": mod.torrent_id,
                "title": mod.title,
                "description": mod.description,
                "created_at": mod.created_at,
                "version": mod.version,
                "received_at": node.store.received_at(mod),
            }
        )
    votes = [
        {"moderator": e.moderator_id, "vote": int(e.vote), "cast_at": e.cast_at}
        for e in node.vote_list.entries()
    ]
    # One pass over the stored votes (votes_of), voters oldest-received
    # first so the restore path can replay them in recency order.
    ballot = [
        {
            "voter": voter,
            "last_received": node.ballot_box.last_received_of(voter),
            "votes": [
                [moderator, int(vote), received_at]
                for moderator, vote, received_at in node.ballot_box.votes_of(voter)
            ],
        }
        for voter in node.ballot_box.voters_by_recency()
    ]
    return {
        "format": FORMAT_VERSION,
        "peer_id": node.peer_id,
        "config": {
            "b_min": node.config.b_min,
            "b_max": node.config.b_max,
            "v_max": node.config.v_max,
            "k": node.config.k,
            "votes_per_exchange": node.config.votes_per_exchange,
            "moderations_per_exchange": node.config.moderations_per_exchange,
            "moderation_store_capacity": node.config.moderation_store_capacity,
            "exchange_policy": node.config.exchange_policy,
            "voxpopuli_enabled": node.config.voxpopuli_enabled,
        },
        "moderations": moderations,
        "votes": votes,
        "ballot": ballot,
        "topk_lists": node.topk_cache.lists(),
        "intentions": {m: int(v) for m, v in node.vote_intentions.items()},
    }


def node_from_dict(
    data: Dict[str, Any],
    rng: Union[np.random.Generator, None] = None,
    col_store: Union[ColumnarStateStore, None] = None,
) -> VoteSamplingNode:
    """Reconstruct a node from :func:`node_to_dict` output.

    Reads the current v2 format and legacy v1; a v1 restore loses
    ballot-box recency (see the module docstring's format history).
    Pass ``col_store`` to restore into a column-backed node — the
    save format is backing-agnostic (everything goes through the
    public BallotBox API), so dict-state saves restore into columnar
    boxes and vice versa, bit-identically.  The columnar store's
    packed payload slabs are invisible here for the same reason:
    ``votes_of`` yields the same insertion-ordered triples whether
    they come from a payload dict or a slab segment."""
    fmt = data.get("format")
    if fmt not in _SUPPORTED_FORMATS:
        raise ValueError(f"unsupported node-state format {fmt!r}")
    config = NodeConfig(**data["config"])
    node = VoteSamplingNode(
        data["peer_id"],
        config,
        rng if rng is not None else np.random.default_rng(0),
        col_store=col_store,
    )
    for rec in data["moderations"]:
        # A plain pop would mutate the caller's dict and strip the
        # timestamp from any later restore of the same payload.
        received_at = rec.get("received_at", 0.0)
        fields = {k: v for k, v in rec.items() if k != "received_at"}
        node.store.insert(Moderation(**fields), received_at or 0.0)
    for rec in data["votes"]:
        node.vote_list.cast(rec["moderator"], Vote(rec["vote"]), rec["cast_at"])
    if fmt >= 2:
        # Voters were saved oldest-received first; restore_voter appends
        # at the end of the recency order, so replaying in file order
        # reproduces the saved box's relative eviction order exactly.
        for rec in data["ballot"]:
            node.ballot_box.restore_voter(
                rec["voter"],
                [
                    (moderator, Vote(vote), received_at)
                    for moderator, vote, received_at in rec["votes"]
                ],
                rec["last_received"],
            )
    else:
        # v1: flat entries without timestamps.  Group per voter so
        # merges preserve voter identity; recency is unrecoverable
        # (every voter re-merges at now=0.0, alphabetically).
        per_voter: Dict[str, list] = {}
        for rec in data["ballot"]:
            per_voter.setdefault(rec["voter"], []).append(
                VoteEntry(rec["moderator"], Vote(rec["vote"]), 0.0)
            )
        for voter, entries in per_voter.items():
            node.ballot_box.merge(voter, entries, now=0.0)
    for lst in data["topk_lists"]:
        node.topk_cache.add(lst)
    for moderator, vote in data["intentions"].items():
        node.set_vote_intention(moderator, Vote(vote))
    # The restore loops above write the vote list and moderation store
    # directly; refresh the membership columns once at the end.
    node._sync_membership()
    return node


def save_node(node: VoteSamplingNode, path: PathLike) -> None:
    """Persist the node's durable state to ``path`` (JSON)."""
    Path(path).write_text(json.dumps(node_to_dict(node)), encoding="utf-8")


def load_node(
    path: PathLike, rng: Union[np.random.Generator, None] = None
) -> VoteSamplingNode:
    """Restore a node persisted by :func:`save_node`."""
    return node_from_dict(json.loads(Path(path).read_text(encoding="utf-8")), rng)
