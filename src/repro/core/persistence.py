"""Node state (de)serialisation.

Tribler "provides local database services allowing state to be
maintained over sessions" (§I).  Inside one simulation run our node
objects simply live on, but a real client restarts: this module
round-trips a :class:`~repro.core.node.VoteSamplingNode`'s durable
state (moderation database, own vote list, ballot box, VoxPopuli
cache, pending vote intentions) through plain JSON.

Volatile state is deliberately *not* persisted: protocol processes,
online flags and instrumentation counters restart fresh, exactly as a
client reboot would leave them.

Format history
--------------
* **v3** (current): v2 plus ``"rng_state"`` — the node RNG's
  ``bit_generator.state`` dict — so a restored node continues the
  *same* random stream the saved node would have produced.  Earlier
  formats restored with a fresh ``default_rng(0)`` unless the caller
  passed an ``rng``, silently replaying a different stream.
* **v2** (still loadable): ballot-box state is saved *per voter*, oldest
  received first, as ``{"voter", "last_received", "votes": [[moderator,
  vote, received_at], ...]}`` — both the per-vote ``received_at`` and
  the per-voter recency survive the round trip, so a restored box picks
  the same ``B_max`` eviction victims (oldest first) the live box would
  have.
* **v1** (still loadable): ballot entries were flat
  ``{"voter", "moderator", "vote"}`` records with no timestamps.
  **Caveat:** a v1 restore re-merges every voter at ``now=0.0`` in
  alphabetical order, so all recency is lost and subsequent ``B_max``
  evictions pick victims alphabetically until fresh merges rebuild real
  recency — exactly the pre-v2 behaviour, preserved for old saves.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.core.columnar import ColumnarStateStore
from repro.core.moderation import Moderation
from repro.core.node import NodeConfig, VoteSamplingNode
from repro.core.votes import Vote, VoteEntry

PathLike = Union[str, Path]
FORMAT_VERSION = 3

#: Formats :func:`node_from_dict` can still read (v1 loses ballot-box
#: recency, v1/v2 lose the RNG stream; see the module docstring's
#: format history).
_SUPPORTED_FORMATS = (1, 2, 3)

_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(NodeConfig))


# ----------------------------------------------------------------------
# RNG state round trip
# ----------------------------------------------------------------------
def rng_state_to_jsonable(rng: np.random.Generator) -> Dict[str, Any]:
    """The generator's ``bit_generator.state`` as plain JSON types.

    PCG64 state is already JSON-clean (Python ints); MT19937 and
    friends embed ndarrays, which become lists here.
    """

    def _clean(value: Any) -> Any:
        if isinstance(value, dict):
            return {k: _clean(v) for k, v in value.items()}
        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, np.integer):
            return int(value)
        return value

    return _clean(dict(rng.bit_generator.state))


def generator_from_state(state: Dict[str, Any]) -> np.random.Generator:
    """A generator positioned exactly at a saved bit-generator state."""
    name = state.get("bit_generator")
    cls = getattr(np.random, str(name), None)
    if cls is None:
        raise ValueError(f"unknown bit generator {name!r} in rng_state")
    bit_gen = cls()
    bit_gen.state = state
    return np.random.Generator(bit_gen)


def _config_from_dict(data: Dict[str, Any]) -> NodeConfig:
    """Build a :class:`NodeConfig` from a checkpoint's config payload.

    Checkpoints written by newer builds may carry config fields this
    build does not know; those are skipped with a warning instead of
    crashing the restore with an opaque ``TypeError``.  Missing fields
    fall back to the dataclass defaults.
    """
    known = {k: v for k, v in data.items() if k in _CONFIG_FIELDS}
    ignored = sorted(set(data) - _CONFIG_FIELDS)
    if ignored:
        warnings.warn(
            "node-state config has unknown fields (written by a newer "
            f"build?), ignoring: {', '.join(ignored)}",
            RuntimeWarning,
            stacklevel=3,
        )
    return NodeConfig(**known)


def atomic_write_text(path: PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp +
    ``os.replace``), so readers see either the old contents or the new
    — never a torn prefix."""
    target = Path(path)
    tmp = target.with_name(f".{target.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - cleanup best effort
                pass


def node_to_dict(node: VoteSamplingNode) -> Dict[str, Any]:
    """Extract the durable state as a JSON-serialisable dict."""
    moderations = []
    for mod in node.store.all_items():
        moderations.append(
            {
                "moderator_id": mod.moderator_id,
                "torrent_id": mod.torrent_id,
                "title": mod.title,
                "description": mod.description,
                "created_at": mod.created_at,
                "version": mod.version,
                "received_at": node.store.received_at(mod),
            }
        )
    votes = [
        {"moderator": e.moderator_id, "vote": int(e.vote), "cast_at": e.cast_at}
        for e in node.vote_list.entries()
    ]
    # One pass over the stored votes (votes_of), voters oldest-received
    # first so the restore path can replay them in recency order.
    ballot = [
        {
            "voter": voter,
            "last_received": node.ballot_box.last_received_of(voter),
            "votes": [
                [moderator, int(vote), received_at]
                for moderator, vote, received_at in node.ballot_box.votes_of(voter)
            ],
        }
        for voter in node.ballot_box.voters_by_recency()
    ]
    return {
        "format": FORMAT_VERSION,
        "peer_id": node.peer_id,
        "config": {
            "b_min": node.config.b_min,
            "b_max": node.config.b_max,
            "v_max": node.config.v_max,
            "k": node.config.k,
            "votes_per_exchange": node.config.votes_per_exchange,
            "moderations_per_exchange": node.config.moderations_per_exchange,
            "moderation_store_capacity": node.config.moderation_store_capacity,
            "exchange_policy": node.config.exchange_policy,
            "voxpopuli_enabled": node.config.voxpopuli_enabled,
        },
        "moderations": moderations,
        "votes": votes,
        "ballot": ballot,
        "topk_lists": node.topk_cache.lists(),
        "intentions": {m: int(v) for m, v in node.vote_intentions.items()},
        "rng_state": rng_state_to_jsonable(node.rng),
    }


def node_from_dict(
    data: Dict[str, Any],
    rng: Union[np.random.Generator, None] = None,
    col_store: Union[ColumnarStateStore, None] = None,
) -> VoteSamplingNode:
    """Reconstruct a node from :func:`node_to_dict` output.

    Reads the current v3 format and legacy v2/v1; a v1 restore loses
    ballot-box recency (see the module docstring's format history).

    The node's RNG comes from (highest priority first): the explicit
    ``rng`` argument (legacy callers that manage their own streams),
    the payload's saved ``rng_state`` (v3+), else ``default_rng(0)``
    — the historical fallback, kept for old saves only.

    Pass ``col_store`` to restore into a column-backed node — the
    save format is backing-agnostic (everything goes through the
    public BallotBox API), so dict-state saves restore into columnar
    boxes and vice versa, bit-identically.  The columnar store's
    packed payload slabs are invisible here for the same reason:
    ``votes_of`` yields the same insertion-ordered triples whether
    they come from a payload dict or a slab segment."""
    fmt = data.get("format")
    if fmt not in _SUPPORTED_FORMATS:
        raise ValueError(f"unsupported node-state format {fmt!r}")
    config = _config_from_dict(data["config"])
    if rng is None:
        saved_state = data.get("rng_state")
        if saved_state is not None:
            rng = generator_from_state(saved_state)
        else:
            rng = np.random.default_rng(0)
    node = VoteSamplingNode(
        data["peer_id"],
        config,
        rng,
        col_store=col_store,
    )
    for rec in data["moderations"]:
        # A plain pop would mutate the caller's dict and strip the
        # timestamp from any later restore of the same payload.
        received_at = rec.get("received_at", 0.0)
        fields = {k: v for k, v in rec.items() if k != "received_at"}
        node.store.insert(Moderation(**fields), received_at or 0.0)
    for rec in data["votes"]:
        node.vote_list.cast(rec["moderator"], Vote(rec["vote"]), rec["cast_at"])
    if fmt >= 2:
        # Voters were saved oldest-received first; restore_voter appends
        # at the end of the recency order, so replaying in file order
        # reproduces the saved box's relative eviction order exactly.
        for rec in data["ballot"]:
            node.ballot_box.restore_voter(
                rec["voter"],
                [
                    (moderator, Vote(vote), received_at)
                    for moderator, vote, received_at in rec["votes"]
                ],
                rec["last_received"],
            )
    else:
        # v1: flat entries without timestamps.  Group per voter so
        # merges preserve voter identity; recency is unrecoverable
        # (every voter re-merges at now=0.0, alphabetically).
        per_voter: Dict[str, list] = {}
        for rec in data["ballot"]:
            per_voter.setdefault(rec["voter"], []).append(
                VoteEntry(rec["moderator"], Vote(rec["vote"]), 0.0)
            )
        for voter, entries in per_voter.items():
            node.ballot_box.merge(voter, entries, now=0.0)
    for lst in data["topk_lists"]:
        node.topk_cache.add(lst)
    for moderator, vote in data["intentions"].items():
        node.set_vote_intention(moderator, Vote(vote))
    # The restore loops above write the vote list and moderation store
    # directly; refresh the membership columns once at the end.
    node._sync_membership()
    return node


def save_node(node: VoteSamplingNode, path: PathLike) -> None:
    """Persist the node's durable state to ``path`` (JSON).

    The write is atomic: a crash mid-save leaves the previous
    checkpoint readable instead of a torn JSON prefix."""
    atomic_write_text(path, json.dumps(node_to_dict(node)))


def load_node(
    path: PathLike,
    rng: Union[np.random.Generator, None] = None,
    col_store: Union[ColumnarStateStore, None] = None,
) -> VoteSamplingNode:
    """Restore a node persisted by :func:`save_node`.

    ``col_store`` is forwarded to :func:`node_from_dict`, so on-disk
    checkpoints restore into columnar-backed nodes too."""
    return node_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8")), rng, col_store=col_store
    )
