"""Node state (de)serialisation.

Tribler "provides local database services allowing state to be
maintained over sessions" (§I).  Inside one simulation run our node
objects simply live on, but a real client restarts: this module
round-trips a :class:`~repro.core.node.VoteSamplingNode`'s durable
state (moderation database, own vote list, ballot box, VoxPopuli
cache, pending vote intentions) through plain JSON.

Volatile state is deliberately *not* persisted: protocol processes,
online flags and instrumentation counters restart fresh, exactly as a
client reboot would leave them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.core.moderation import Moderation
from repro.core.node import NodeConfig, VoteSamplingNode
from repro.core.votes import Vote, VoteEntry

PathLike = Union[str, Path]
FORMAT_VERSION = 1


def node_to_dict(node: VoteSamplingNode) -> Dict[str, Any]:
    """Extract the durable state as a JSON-serialisable dict."""
    moderations = []
    for mod in node.store.all_items():
        moderations.append(
            {
                "moderator_id": mod.moderator_id,
                "torrent_id": mod.torrent_id,
                "title": mod.title,
                "description": mod.description,
                "created_at": mod.created_at,
                "version": mod.version,
                "received_at": node.store.received_at(mod),
            }
        )
    votes = [
        {"moderator": e.moderator_id, "vote": int(e.vote), "cast_at": e.cast_at}
        for e in node.vote_list.entries()
    ]
    ballot = []
    for voter in node.ballot_box.voters():
        for moderator in node.ballot_box.moderators():
            v = node.ballot_box.vote_of(voter, moderator)
            if v is not None:
                ballot.append({"voter": voter, "moderator": moderator, "vote": int(v)})
    return {
        "format": FORMAT_VERSION,
        "peer_id": node.peer_id,
        "config": {
            "b_min": node.config.b_min,
            "b_max": node.config.b_max,
            "v_max": node.config.v_max,
            "k": node.config.k,
            "votes_per_exchange": node.config.votes_per_exchange,
            "moderations_per_exchange": node.config.moderations_per_exchange,
            "moderation_store_capacity": node.config.moderation_store_capacity,
            "exchange_policy": node.config.exchange_policy,
            "voxpopuli_enabled": node.config.voxpopuli_enabled,
        },
        "moderations": moderations,
        "votes": votes,
        "ballot": ballot,
        "topk_lists": [list(lst) for lst in node.topk_cache._lists],
        "intentions": {m: int(v) for m, v in node.vote_intentions.items()},
    }


def node_from_dict(
    data: Dict[str, Any], rng: Union[np.random.Generator, None] = None
) -> VoteSamplingNode:
    """Reconstruct a node from :func:`node_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported node-state format {data.get('format')!r}")
    config = NodeConfig(**data["config"])
    node = VoteSamplingNode(
        data["peer_id"], config, rng if rng is not None else np.random.default_rng(0)
    )
    for rec in data["moderations"]:
        received_at = rec.pop("received_at", 0.0)
        node.store.insert(Moderation(**rec), received_at or 0.0)
    for rec in data["votes"]:
        node.vote_list.cast(rec["moderator"], Vote(rec["vote"]), rec["cast_at"])
    # Group ballot entries per voter so merges preserve voter identity.
    per_voter: Dict[str, list] = {}
    for rec in data["ballot"]:
        per_voter.setdefault(rec["voter"], []).append(
            VoteEntry(rec["moderator"], Vote(rec["vote"]), 0.0)
        )
    for voter, entries in per_voter.items():
        node.ballot_box.merge(voter, entries, now=0.0)
    for lst in data["topk_lists"]:
        node.topk_cache.add(lst)
    for moderator, vote in data["intentions"].items():
        node.set_vote_intention(moderator, Vote(vote))
    return node


def save_node(node: VoteSamplingNode, path: PathLike) -> None:
    """Persist the node's durable state to ``path`` (JSON)."""
    Path(path).write_text(json.dumps(node_to_dict(node)), encoding="utf-8")


def load_node(
    path: PathLike, rng: Union[np.random.Generator, None] = None
) -> VoteSamplingNode:
    """Restore a node persisted by :func:`save_node`."""
    return node_from_dict(json.loads(Path(path).read_text(encoding="utf-8")), rng)
