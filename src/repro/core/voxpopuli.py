"""VoxPopuli support structures (§V-C).

The protocol logic lives in :class:`~repro.core.node.VoteSamplingNode`
(request/respond) — this module provides the bounded cache of received
top-K lists and its merge.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Sequence

from repro.core.ranking import Ranking, merge_rank_lists


class TopKCache:
    """The last ``v_max`` top-K lists received via VoxPopuli."""

    def __init__(self, v_max: int = 10, k: int = 3):
        if v_max < 1:
            raise ValueError("v_max must be >= 1")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.v_max = v_max
        self.k = k
        self._lists: Deque[List[str]] = deque(maxlen=v_max)

    def add(self, top_k_list: Sequence[str]) -> None:
        """Cache one received list (deduplicated on first occurrence,
        then truncated to K; empty ignored).

        Dedup happens *before* truncation, so a malformed or hostile
        response padded with repeats of one id cannot crowd the other
        ids out of the cached window or hand that id extra rank mass in
        :meth:`merged_ranking`."""
        trimmed = list(dict.fromkeys(top_k_list))[: self.k]
        if trimmed:
            self._lists.append(trimmed)

    def lists(self) -> List[List[str]]:
        """Copies of the cached lists, oldest first — the public read
        surface (persistence uses it; the deque stays private)."""
        return [list(lst) for lst in self._lists]

    def merged_ranking(self) -> Ranking:
        """Rank-average merge of every cached list."""
        return merge_rank_lists(list(self._lists), self.k)

    def known_moderators(self) -> List[str]:
        out = set()
        for lst in self._lists:
            out.update(lst)
        return sorted(out)

    def clear(self) -> None:
        self._lists.clear()

    def __len__(self) -> int:
        return len(self._lists)

    def __bool__(self) -> bool:
        return len(self._lists) > 0
