"""The paper's core contribution.

Three protocols plus the experience function (§II–§V):

* :mod:`repro.core.moderationcast` — approval-gated gossip of metadata
  items ("moderations");
* :mod:`repro.core.ballotbox` / :mod:`repro.core.votes` — direct-sample
  vote polling into a bounded local ballot box, gated by experience;
* :mod:`repro.core.voxpopuli` — top-K bootstrap for nodes below the
  ``B_min`` sample threshold;
* :mod:`repro.core.experience` — the BarterCast-maxflow threshold
  experience function (plus the §VII adaptive-T extension);
* :mod:`repro.core.ranking` — summation / proportional ranking and the
  rank-average merge used by VoxPopuli;
* :mod:`repro.core.node` — :class:`~repro.core.node.VoteSamplingNode`,
  one peer's complete protocol state;
* :mod:`repro.core.runtime` — binds a population of nodes to the
  simulation engine, the PSS, BarterCast and the BitTorrent session.
"""

from repro.core.ballotbox import BallotBox
from repro.core.columnar import ColumnarBallotBox, ColumnarStateStore, RowTable
from repro.core.experience import (
    AdaptiveThresholdExperience,
    AlwaysExperienced,
    ExperienceFunction,
    ThresholdExperience,
)
from repro.core.moderation import Moderation, ModerationStore
from repro.core.moderationcast import extract_moderations
from repro.core.node import NodeConfig, VoteSamplingNode
from repro.core.persistence import load_node, save_node
from repro.core.ranking import (
    merge_rank_lists,
    rank_by_sum,
    rank_proportional,
    top_k,
)
from repro.core.runtime import ProtocolRuntime, RuntimeConfig
from repro.core.votes import LocalVoteList, Vote
from repro.core.voxpopuli import TopKCache

__all__ = [
    "BallotBox",
    "ColumnarBallotBox",
    "ColumnarStateStore",
    "RowTable",
    "ExperienceFunction",
    "ThresholdExperience",
    "AdaptiveThresholdExperience",
    "AlwaysExperienced",
    "Moderation",
    "ModerationStore",
    "extract_moderations",
    "NodeConfig",
    "VoteSamplingNode",
    "save_node",
    "load_node",
    "merge_rank_lists",
    "rank_by_sum",
    "rank_proportional",
    "top_k",
    "ProtocolRuntime",
    "RuntimeConfig",
    "LocalVoteList",
    "Vote",
    "TopKCache",
]
