"""On-disk trace format (JSON Lines).

One header object followed by one object per event::

    {"type": "header", "name": ..., "duration": ..., "peers": [...], "swarms": [...]}
    {"type": "event", "t": 0.0, "peer": "peer000", "kind": "session_start"}
    ...

The format is line-oriented so multi-hundred-thousand-event traces can
be streamed without loading everything through a JSON parser at once.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.traces.model import (
    EventKind,
    PeerProfile,
    SwarmSpec,
    Trace,
    TraceEvent,
)

PathLike = Union[str, Path]
FORMAT_VERSION = 1


def save_trace(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` in the JSONL trace format."""
    p = Path(path)
    header = {
        "type": "header",
        "version": FORMAT_VERSION,
        "name": trace.name,
        "duration": trace.duration,
        "peers": [
            {
                "peer_id": pr.peer_id,
                "connectable": pr.connectable,
                "free_rider": pr.free_rider,
                "upload_capacity": pr.upload_capacity,
                "download_capacity": pr.download_capacity,
            }
            for pr in trace.peers.values()
        ],
        "swarms": [
            {
                "swarm_id": sw.swarm_id,
                "file_size": sw.file_size,
                "piece_size": sw.piece_size,
                "initial_seeder": sw.initial_seeder,
            }
            for sw in trace.swarms.values()
        ],
    }
    with p.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header) + "\n")
        for ev in trace.events:
            rec = {
                "type": "event",
                "t": ev.time,
                "peer": ev.peer_id,
                "kind": ev.kind.value,
            }
            if ev.swarm_id is not None:
                rec["swarm"] = ev.swarm_id
            fh.write(json.dumps(rec) + "\n")


def load_trace(path: PathLike) -> Trace:
    """Read a trace written by :func:`save_trace` and validate it."""
    p = Path(path)
    peers: Dict[str, PeerProfile] = {}
    swarms: Dict[str, SwarmSpec] = {}
    events: List[TraceEvent] = []
    duration = 0.0
    name = p.stem
    with p.open("r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first:
            raise ValueError(f"{p}: empty trace file")
        header = json.loads(first)
        if header.get("type") != "header":
            raise ValueError(f"{p}: first line must be the header object")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{p}: unsupported trace version {header.get('version')!r}"
            )
        duration = float(header["duration"])
        name = header.get("name", name)
        for rec in header["peers"]:
            pr = PeerProfile(
                peer_id=rec["peer_id"],
                connectable=bool(rec["connectable"]),
                free_rider=bool(rec["free_rider"]),
                upload_capacity=float(rec["upload_capacity"]),
                download_capacity=float(rec["download_capacity"]),
            )
            peers[pr.peer_id] = pr
        for rec in header["swarms"]:
            sw = SwarmSpec(
                swarm_id=rec["swarm_id"],
                file_size=float(rec["file_size"]),
                piece_size=float(rec["piece_size"]),
                initial_seeder=rec.get("initial_seeder"),
            )
            swarms[sw.swarm_id] = sw
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("type") != "event":
                raise ValueError(f"{p}:{line_no}: expected event record")
            events.append(
                TraceEvent(
                    time=float(rec["t"]),
                    peer_id=rec["peer"],
                    kind=EventKind(rec["kind"]),
                    swarm_id=rec.get("swarm"),
                )
            )
    trace = Trace(duration=duration, peers=peers, swarms=swarms, events=events, name=name)
    trace.validate()
    return trace
