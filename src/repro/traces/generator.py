"""Synthetic filelist.org-style trace generator.

The original 10-trace dataset behind the paper (``tom-data.zip``) is no
longer available, so we generate traces calibrated to **every statistic
the paper reports** about it:

* 100 unique peers observed over 7 days;
* ≈23,000 events per trace (session up/down + swarm join/leave);
* ≈50 % of the population offline at any given moment (high churn);
* a tail of peers that are "rarely present";
* ≈25 % of peers that upload little (free-riders);
* per-swarm shared-file sizes and per-peer connectability flags.

Churn model: each peer alternates exponential online/offline periods.
Per-peer mean availability is drawn from a Beta(2,2) (population mean
0.5), except for a "rarely present" subpopulation drawn from Beta(1,8).
Swarm interest: at each session start a peer joins ``Poisson(λ)``
swarms chosen with Zipf popularity weights, and leaves them when its
session ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.sim.rng import RngRegistry
from repro.sim.units import DAY, HOUR, KIB, MIB
from repro.traces.model import (
    EventKind,
    PeerProfile,
    SwarmSpec,
    Trace,
    TraceEvent,
)


@dataclass
class TraceGeneratorConfig:
    """Knobs of the synthetic trace generator.

    Defaults reproduce the paper's reported trace statistics; tests in
    ``tests/test_trace_calibration.py`` assert the calibration.
    """

    n_peers: int = 100
    duration: float = 7 * DAY
    #: Fraction of peers predisposed to free-ride (paper: ≈25 %).
    free_rider_fraction: float = 0.25
    #: Fraction of peers that can accept incoming connections.
    connectable_fraction: float = 0.6
    #: Fraction of peers that are "rarely present" (low-availability tail).
    rare_fraction: float = 0.15
    #: Beta parameters for regular peers' availability (mean 0.5).
    availability_beta: Sequence[float] = (2.0, 2.0)
    #: Beta parameters for rarely-present peers (mean ≈0.11).
    rare_availability_beta: Sequence[float] = (1.0, 8.0)
    #: Mean online-session length in seconds (lognormal across peers).
    mean_session: float = 1.8 * HOUR
    #: Sigma of the per-peer lognormal session-length multiplier.
    session_sigma: float = 0.5
    #: Number of distinct swarms (torrents) in the trace.
    n_swarms: int = 12
    #: Mean number of swarms joined per session (Poisson).
    swarms_per_session: float = 1.4
    #: Zipf exponent for swarm popularity.
    swarm_zipf: float = 1.1
    #: Shared-file size range (log-uniform), bytes.
    file_size_min: float = 50 * MIB
    file_size_max: float = 1024 * MIB
    #: BitTorrent piece size, bytes.
    piece_size: float = 256 * KIB
    #: Upload capacities (bytes/s) for normal and free-riding peers —
    #: 2009-era consumer uplinks (ADSL ≈ 128–512 kbit/s up).  These are
    #: what calibrate the experience-formation speed of Fig 5.
    upload_capacity: float = 8 * KIB
    free_rider_upload_capacity: float = 2 * KIB
    download_capacity: float = 128 * KIB
    #: Stagger first arrivals across this window so there is a
    #: well-defined arrival order (moderators = first arrivals).
    arrival_window: float = 6 * HOUR
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.n_peers < 2:
            raise ValueError("need at least 2 peers")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not (0 <= self.free_rider_fraction <= 1):
            raise ValueError("free_rider_fraction must be in [0,1]")
        if self.n_swarms < 1:
            raise ValueError("need at least one swarm")


class TraceGenerator:
    """Generate :class:`~repro.traces.model.Trace` objects.

    Each call to :meth:`generate` with a distinct ``replica`` index
    yields an independent trace from the same configuration — this is
    how the paper's "10 unique traces" dataset is reproduced.
    """

    def __init__(self, config: Optional[TraceGeneratorConfig] = None, seed: int = 0):
        self.config = config or TraceGeneratorConfig()
        self._seed = seed

    # ------------------------------------------------------------------
    def generate(self, replica: int = 0) -> Trace:
        """Build one trace (deterministic in ``(seed, replica)``)."""
        cfg = self.config
        rng = RngRegistry(self._seed).fork(("trace", replica))
        peers = self._make_peers(rng)
        swarms = self._make_swarms(rng, peers)
        events = self._make_events(rng, peers, swarms)
        trace = Trace(
            duration=cfg.duration,
            peers=peers,
            swarms=swarms,
            events=events,
            name=f"{cfg.name}-{replica:02d}",
        )
        trace.validate()
        return trace

    # ------------------------------------------------------------------
    def _make_peers(self, rng: RngRegistry) -> Dict[str, PeerProfile]:
        cfg = self.config
        gen = rng.stream("peers")
        n = cfg.n_peers
        free_riders = np.zeros(n, dtype=bool)
        free_riders[: int(round(n * cfg.free_rider_fraction))] = True
        gen.shuffle(free_riders)
        connectable = gen.random(n) < cfg.connectable_fraction
        out: Dict[str, PeerProfile] = {}
        for i in range(n):
            pid = f"peer{i:03d}"
            out[pid] = PeerProfile(
                peer_id=pid,
                connectable=bool(connectable[i]),
                free_rider=bool(free_riders[i]),
                upload_capacity=(
                    cfg.free_rider_upload_capacity if free_riders[i] else cfg.upload_capacity
                ),
                download_capacity=cfg.download_capacity,
            )
        return out

    def _make_swarms(
        self, rng: RngRegistry, peers: Dict[str, PeerProfile]
    ) -> Dict[str, SwarmSpec]:
        cfg = self.config
        gen = rng.stream("swarms")
        # Initial seeders: prefer connectable non-free-riders so content
        # is actually available (filelist is a ratio-enforced tracker —
        # every swarm has a committed seeder).
        candidates = [p.peer_id for p in peers.values() if not p.free_rider]
        if not candidates:
            candidates = list(peers)
        out: Dict[str, SwarmSpec] = {}
        log_lo, log_hi = np.log(cfg.file_size_min), np.log(cfg.file_size_max)
        for s in range(cfg.n_swarms):
            size = float(np.exp(gen.uniform(log_lo, log_hi)))
            seeder = candidates[int(gen.integers(0, len(candidates)))]
            sid = f"swarm{s:02d}"
            out[sid] = SwarmSpec(
                swarm_id=sid,
                file_size=size,
                piece_size=cfg.piece_size,
                initial_seeder=seeder,
            )
        return out

    def _availability(self, rng: RngRegistry) -> np.ndarray:
        cfg = self.config
        gen = rng.stream("availability")
        n = cfg.n_peers
        a, b = cfg.availability_beta
        avail = gen.beta(a, b, size=n)
        rare = gen.random(n) < cfg.rare_fraction
        ra, rb = cfg.rare_availability_beta
        avail[rare] = gen.beta(ra, rb, size=int(rare.sum()))
        # Clamp away from 0/1 so on/off means stay finite.
        return np.clip(avail, 0.02, 0.95)

    def _make_events(
        self,
        rng: RngRegistry,
        peers: Dict[str, PeerProfile],
        swarms: Dict[str, SwarmSpec],
    ) -> List[TraceEvent]:
        cfg = self.config
        avail = self._availability(rng)
        swarm_ids = list(swarms)
        ranks = np.arange(1, len(swarm_ids) + 1, dtype=float)
        weights = ranks ** (-cfg.swarm_zipf)
        weights /= weights.sum()

        events: List[TraceEvent] = []
        for idx, pid in enumerate(peers):
            gen = rng.stream("sessions", pid)
            a = float(avail[idx])
            mean_on = cfg.mean_session * float(
                np.exp(gen.normal(0.0, cfg.session_sigma))
            )
            mean_off = mean_on * (1.0 - a) / a
            # Initial seeders arrive at t=0 and stay long; everyone else
            # staggers in across the arrival window.
            seeds_for = [s for s in swarms.values() if s.initial_seeder == pid]
            t = 0.0 if seeds_for else float(gen.uniform(0.0, cfg.arrival_window))
            while t < cfg.duration:
                on = float(gen.exponential(mean_on))
                end = min(t + max(on, 60.0), cfg.duration)
                if end <= t:
                    break
                events.append(TraceEvent(t, pid, EventKind.SESSION_START))
                joined = self._session_swarms(gen, swarm_ids, weights, seeds_for)
                for sid in joined:
                    events.append(TraceEvent(t, pid, EventKind.SWARM_JOIN, sid))
                for sid in joined:
                    events.append(TraceEvent(end, pid, EventKind.SWARM_LEAVE, sid))
                events.append(TraceEvent(end, pid, EventKind.SESSION_END))
                t = end + float(gen.exponential(mean_off))
        events.sort(key=TraceEvent.sort_key)
        return events

    def _session_swarms(
        self,
        gen: np.random.Generator,
        swarm_ids: List[str],
        weights: np.ndarray,
        seeds_for: List[SwarmSpec],
    ) -> List[str]:
        cfg = self.config
        k = int(gen.poisson(cfg.swarms_per_session))
        k = min(k, len(swarm_ids))
        chosen: List[str] = [s.swarm_id for s in seeds_for]
        if k > 0:
            picks = gen.choice(len(swarm_ids), size=k, replace=False, p=weights)
            for i in picks:
                sid = swarm_ids[int(i)]
                if sid not in chosen:
                    chosen.append(sid)
        return chosen


def generate_dataset(
    n_traces: int = 10,
    config: Optional[TraceGeneratorConfig] = None,
    seed: int = 0,
) -> List[Trace]:
    """Generate the paper's '10 unique traces' dataset."""
    gen = TraceGenerator(config, seed=seed)
    return [gen.generate(replica=i) for i in range(n_traces)]
