"""Trace statistics — the calibration targets from §VI of the paper.

The paper characterises its filelist.org traces with a handful of
numbers; :func:`compute_stats` recomputes each of them for any trace so
the synthetic generator can be validated against the paper:

* event count per trace (≈23,000);
* mean fraction of the population offline at any time (≈50 %);
* fraction of peers that are rarely present;
* fraction of free-riding peers (≈25 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.traces.model import Trace


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace."""

    n_peers: int
    n_swarms: int
    n_events: int
    n_sessions: int
    #: Time-averaged fraction of the population online.
    mean_online_fraction: float
    #: Per-peer availability (fraction of the window spent online).
    availability: Dict[str, float]
    #: Fraction of peers online less than 10 % of the window.
    rare_fraction: float
    #: Fraction of peers flagged free-rider in the profile.
    free_rider_fraction: float
    mean_session_length: float

    def __str__(self) -> str:  # pragma: no cover - human-readable report
        return (
            f"TraceStats(peers={self.n_peers}, swarms={self.n_swarms}, "
            f"events={self.n_events}, sessions={self.n_sessions}, "
            f"online={self.mean_online_fraction:.2%}, "
            f"rare={self.rare_fraction:.2%}, "
            f"free_riders={self.free_rider_fraction:.2%}, "
            f"mean_session={self.mean_session_length / 3600:.2f}h)"
        )


def compute_stats(trace: Trace, samples: int = 256) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``.

    ``mean_online_fraction`` is integrated exactly from session
    intervals (not sampled); ``samples`` is retained for API
    compatibility but unused.
    """
    sessions = trace.sessions()
    n = len(trace.peers)
    total_online_time = 0.0
    total_sessions = 0
    availability: Dict[str, float] = {}
    for pid in trace.peers:
        sess = sessions.get(pid, [])
        online = sum(s.duration for s in sess)
        availability[pid] = online / trace.duration if trace.duration else 0.0
        total_online_time += online
        total_sessions += len(sess)
    mean_online_fraction = (
        total_online_time / (n * trace.duration) if n and trace.duration else 0.0
    )
    rare = sum(1 for a in availability.values() if a < 0.10)
    free_riders = sum(1 for p in trace.peers.values() if p.free_rider)
    mean_session_length = (
        total_online_time / total_sessions if total_sessions else 0.0
    )
    return TraceStats(
        n_peers=n,
        n_swarms=len(trace.swarms),
        n_events=len(trace.events),
        n_sessions=total_sessions,
        mean_online_fraction=float(mean_online_fraction),
        availability=availability,
        rare_fraction=rare / n if n else 0.0,
        free_rider_fraction=free_riders / n if n else 0.0,
        mean_session_length=float(mean_session_length),
    )


def online_fraction_series(trace: Trace, step: float = 3600.0) -> np.ndarray:
    """Fraction of the population online sampled every ``step`` seconds.

    Returns a 2-column array ``[t, fraction]`` — handy for plotting the
    churn profile of a trace.
    """
    times = np.arange(0.0, trace.duration + step / 2, step)
    sessions = trace.sessions()
    n = len(trace.peers) or 1
    frac = np.zeros_like(times)
    for sess_list in sessions.values():
        for s in sess_list:
            lo = np.searchsorted(times, s.start, side="left")
            hi = np.searchsorted(times, s.end, side="left")
            frac[lo:hi] += 1.0
    frac /= n
    return np.column_stack([times, frac])
