"""Trace data model.

A :class:`Trace` records, for a fixed population over a fixed window:

* :class:`PeerProfile` — per-peer constants: connectability (firewalled
  or not), bandwidth class, and behavioural predisposition (altruistic
  seeder vs free-rider), mirroring what the paper's filelist.org traces
  expose;
* :class:`SwarmSpec` — per-swarm constants: shared file size and piece
  size;
* :class:`Session` — one continuous online interval of one peer;
* :class:`TraceEvent` — the flattened, time-ordered event stream
  (session up/down, swarm join/leave) that drives the simulator.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class EventKind(str, Enum):
    """Kinds of trace events, in the order they tie-break at equal time."""

    SESSION_START = "session_start"
    SWARM_JOIN = "swarm_join"
    SWARM_LEAVE = "swarm_leave"
    SESSION_END = "session_end"

    @property
    def order(self) -> int:
        """Tie-break rank: ends before starts would lose sessions, so
        starts sort first at equal timestamps."""
        return _KIND_ORDER[self]


_KIND_ORDER = {
    EventKind.SESSION_START: 0,
    EventKind.SWARM_JOIN: 1,
    EventKind.SWARM_LEAVE: 2,
    EventKind.SESSION_END: 3,
}


@dataclass(frozen=True)
class PeerProfile:
    """Static per-peer attributes recorded by the tracker.

    Attributes
    ----------
    peer_id:
        Stable identifier, unique within the trace.
    connectable:
        ``False`` for firewalled/NATed peers that cannot accept
        incoming connections (the filelist.org traces record this).
    free_rider:
        ``True`` for peers predisposed to leave swarms as soon as their
        download completes and to cap upload aggressively.  The paper
        reports ≈25 % of traced peers "uploaded little to others".
    upload_capacity / download_capacity:
        Link capacities in bytes/second.
    """

    peer_id: str
    connectable: bool = True
    free_rider: bool = False
    upload_capacity: float = 64_000.0
    download_capacity: float = 512_000.0

    def __post_init__(self) -> None:
        if self.upload_capacity <= 0 or self.download_capacity <= 0:
            raise ValueError(f"capacities must be positive for {self.peer_id}")


@dataclass(frozen=True)
class SwarmSpec:
    """Static per-swarm attributes.

    Attributes
    ----------
    swarm_id:
        Stable identifier, unique within the trace.
    file_size:
        Size of the shared file in bytes.
    piece_size:
        BitTorrent piece size in bytes (default 256 KiB as in mainline).
    initial_seeder:
        Peer id of the original seeder (holds all pieces at t=0), or
        ``None`` if the trace leaves seeding to session dynamics.
    """

    swarm_id: str
    file_size: float
    piece_size: float = 262_144.0
    initial_seeder: Optional[str] = None

    def __post_init__(self) -> None:
        if self.file_size <= 0:
            raise ValueError(f"file_size must be positive for {self.swarm_id}")
        if self.piece_size <= 0:
            raise ValueError(f"piece_size must be positive for {self.swarm_id}")

    @property
    def num_pieces(self) -> int:
        """Number of pieces (last piece may be short)."""
        return max(1, int(-(-self.file_size // self.piece_size)))


@dataclass(frozen=True)
class Session:
    """One continuous online interval ``[start, end)`` of one peer."""

    peer_id: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"session end {self.end} must exceed start {self.start} ({self.peer_id})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, t: float) -> bool:
        """``True`` if the peer is online at time ``t`` (half-open)."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped trace event.

    ``swarm_id`` is ``None`` for session events and set for swarm
    join/leave events.
    """

    time: float
    peer_id: str
    kind: EventKind
    swarm_id: Optional[str] = None

    def sort_key(self) -> Tuple[float, int, str]:
        return (self.time, self.kind.order, self.peer_id)


@dataclass
class Trace:
    """A complete churn trace: population, swarms, and the event stream.

    The event list is kept sorted by :meth:`TraceEvent.sort_key`;
    :meth:`validate` checks structural invariants (sessions well formed,
    joins inside sessions, every join eventually left or truncated).
    """

    duration: float
    peers: Dict[str, PeerProfile]
    swarms: Dict[str, SwarmSpec]
    events: List[TraceEvent]
    name: str = "trace"
    _session_index: Optional[Dict[str, List[Session]]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def sessions(self) -> Dict[str, List[Session]]:
        """Per-peer online sessions reconstructed from the event stream.

        A dangling SESSION_START (no matching end before the trace
        horizon) is truncated at ``duration``.  The result is cached.
        """
        if self._session_index is not None:
            return self._session_index
        open_at: Dict[str, float] = {}
        out: Dict[str, List[Session]] = {pid: [] for pid in self.peers}
        for ev in self.events:
            if ev.kind is EventKind.SESSION_START:
                open_at[ev.peer_id] = ev.time
            elif ev.kind is EventKind.SESSION_END:
                start = open_at.pop(ev.peer_id, None)
                if start is not None and ev.time > start:
                    out.setdefault(ev.peer_id, []).append(
                        Session(ev.peer_id, start, ev.time)
                    )
        for pid, start in open_at.items():
            if self.duration > start:
                out.setdefault(pid, []).append(Session(pid, start, self.duration))
        self._session_index = out
        return out

    def online_at(self, t: float) -> List[str]:
        """Peer ids online at time ``t`` (half-open session semantics)."""
        result = []
        for pid, sess in self.sessions().items():
            starts = [s.start for s in sess]
            i = bisect.bisect_right(starts, t) - 1
            if i >= 0 and sess[i].contains(t):
                result.append(pid)
        return result

    def swarm_members(self) -> Dict[str, List[str]]:
        """Peers that ever join each swarm, in join order (deduplicated)."""
        out: Dict[str, List[str]] = {sid: [] for sid in self.swarms}
        seen: Dict[str, set] = {sid: set() for sid in self.swarms}
        for ev in self.events:
            if ev.kind is EventKind.SWARM_JOIN and ev.swarm_id is not None:
                if ev.peer_id not in seen[ev.swarm_id]:
                    seen[ev.swarm_id].add(ev.peer_id)
                    out[ev.swarm_id].append(ev.peer_id)
        return out

    def arrival_order(self) -> List[str]:
        """Peer ids by first SESSION_START (the paper's 'first three
        nodes entering the system' become moderators)."""
        seen = set()
        order = []
        for ev in self.events:
            if ev.kind is EventKind.SESSION_START and ev.peer_id not in seen:
                seen.add(ev.peer_id)
                order.append(ev.peer_id)
        return order

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` on any structural violation."""
        last_key: Optional[Tuple[float, int, str]] = None
        online: Dict[str, bool] = {pid: False for pid in self.peers}
        joined: Dict[Tuple[str, str], bool] = {}
        for ev in self.events:
            key = ev.sort_key()
            if last_key is not None and key < last_key:
                raise ValueError(f"events out of order at t={ev.time}")
            last_key = key
            if ev.peer_id not in self.peers:
                raise ValueError(f"unknown peer {ev.peer_id!r} at t={ev.time}")
            if not (0.0 <= ev.time <= self.duration):
                raise ValueError(f"event outside [0, duration] at t={ev.time}")
            if ev.kind is EventKind.SESSION_START:
                if online[ev.peer_id]:
                    raise ValueError(f"{ev.peer_id} started while online at t={ev.time}")
                online[ev.peer_id] = True
            elif ev.kind is EventKind.SESSION_END:
                if not online[ev.peer_id]:
                    raise ValueError(f"{ev.peer_id} ended while offline at t={ev.time}")
                online[ev.peer_id] = False
            else:
                if ev.swarm_id is None or ev.swarm_id not in self.swarms:
                    raise ValueError(f"bad swarm ref {ev.swarm_id!r} at t={ev.time}")
                if not online[ev.peer_id]:
                    raise ValueError(
                        f"{ev.peer_id} touched swarm {ev.swarm_id} while offline"
                    )
                jkey = (ev.peer_id, ev.swarm_id)
                if ev.kind is EventKind.SWARM_JOIN:
                    if joined.get(jkey):
                        raise ValueError(f"double join {jkey} at t={ev.time}")
                    joined[jkey] = True
                else:
                    if not joined.get(jkey):
                        raise ValueError(f"leave without join {jkey} at t={ev.time}")
                    joined[jkey] = False

    # ------------------------------------------------------------------
    @staticmethod
    def sorted_events(events: Iterable[TraceEvent]) -> List[TraceEvent]:
        """Return events sorted by the canonical key."""
        return sorted(events, key=TraceEvent.sort_key)

    def __len__(self) -> int:
        """Number of events — the paper's '≈23,000 events' measure."""
        return len(self.events)


def merge_event_streams(streams: Sequence[Sequence[TraceEvent]]) -> List[TraceEvent]:
    """Merge several per-peer event streams into one canonical stream."""
    merged: List[TraceEvent] = [ev for stream in streams for ev in stream]
    merged.sort(key=TraceEvent.sort_key)
    return merged
