"""BitTorrent churn traces.

The paper evaluates on 10 traces from the private tracker filelist.org
(7 days, 100 unique peers, ≈23,000 events each; ≈50 % of peers offline
at any moment; ≈25 % of peers upload little).  The original dataset
(``tom-data.zip``) is no longer retrievable, so this package provides:

* :mod:`repro.traces.model` — the trace data model (peers, swarms,
  sessions, events);
* :mod:`repro.traces.generator` — a synthetic generator calibrated to
  every statistic the paper reports about the real traces;
* :mod:`repro.traces.loader` — a JSONL on-disk format with round-trip
  read/write;
* :mod:`repro.traces.stats` — churn / availability / event-count
  statistics used to validate calibration.
"""

from repro.traces.generator import TraceGenerator, TraceGeneratorConfig, generate_dataset
from repro.traces.loader import load_trace, save_trace
from repro.traces.model import (
    EventKind,
    PeerProfile,
    Session,
    SwarmSpec,
    Trace,
    TraceEvent,
)
from repro.traces.stats import TraceStats, compute_stats

__all__ = [
    "EventKind",
    "PeerProfile",
    "Session",
    "SwarmSpec",
    "Trace",
    "TraceEvent",
    "TraceGenerator",
    "TraceGeneratorConfig",
    "generate_dataset",
    "load_trace",
    "save_trace",
    "TraceStats",
    "compute_stats",
]
