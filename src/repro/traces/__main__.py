"""Command-line trace tooling.

Usage::

    python -m repro.traces generate --out traces/ --n 10 [--seed 42]
    python -m repro.traces stats trace.jsonl [more.jsonl ...]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.traces.generator import TraceGeneratorConfig, generate_dataset
from repro.traces.loader import load_trace, save_trace
from repro.traces.stats import compute_stats


def cmd_generate(args) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    cfg = TraceGeneratorConfig(
        n_peers=args.peers,
        n_swarms=args.swarms,
        duration=args.days * 86400.0,
    )
    dataset = generate_dataset(n_traces=args.n, config=cfg, seed=args.seed)
    for trace in dataset:
        path = out / f"{trace.name}.jsonl"
        save_trace(trace, path)
        print(f"wrote {path} ({len(trace)} events)")
    return 0


def cmd_stats(args) -> int:
    for path in args.traces:
        trace = load_trace(path)
        print(f"{path}: {compute_stats(trace)}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.traces")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic trace dataset")
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--n", type=int, default=10, help="number of traces")
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--peers", type=int, default=100)
    gen.add_argument("--swarms", type=int, default=12)
    gen.add_argument("--days", type=float, default=7.0)
    gen.set_defaults(func=cmd_generate)

    stats = sub.add_parser("stats", help="print statistics of trace files")
    stats.add_argument("traces", nargs="+")
    stats.set_defaults(func=cmd_stats)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
