"""Dependency-free visualisation.

:mod:`repro.viz.svg` writes line charts as standalone SVG files using
only the standard library — enough to publish the reproduced figures
without pulling a plotting stack into the runtime dependencies.
"""

from repro.viz.svg import LineChart, render_series

__all__ = ["LineChart", "render_series"]
