"""Minimal SVG line charts (no third-party dependencies).

Designed for the reproduction figures: multiple named series over
simulated time, a y range of [0, 1]-ish metrics, axis ticks, and a
legend.  Output is a standalone ``.svg`` readable by any browser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Tuple, Union

from repro.metrics.timeseries import TimeSeries

PathLike = Union[str, Path]

_PALETTE = [
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#9467bd",
    "#ff7f0e",
    "#8c564b",
    "#17becf",
    "#7f7f7f",
]


@dataclass
class LineChart:
    """A multi-series line chart."""

    title: str
    x_label: str = "hours"
    y_label: str = ""
    width: int = 720
    height: int = 420
    margin: int = 60
    y_min: float = 0.0
    y_max: Optional[float] = None
    #: divide x values by this before plotting (seconds → hours).
    x_scale: float = 3600.0
    _series: List[Tuple[str, Sequence[float], Sequence[float]]] = field(
        default_factory=list
    )

    # ------------------------------------------------------------------
    def add(self, name: str, xs: Sequence[float], ys: Sequence[float]) -> None:
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        if len(xs) == 0:
            return
        self._series.append((name, list(xs), list(ys)))

    def add_timeseries(self, name: str, series: TimeSeries) -> None:
        self.add(name, list(series.times), list(series.values))

    # ------------------------------------------------------------------
    def _bounds(self) -> Tuple[float, float, float, float]:
        xs = [x / self.x_scale for _n, xv, _y in self._series for x in xv]
        ys = [y for _n, _x, yv in self._series for y in yv]
        x_lo, x_hi = min(xs), max(xs)
        y_lo = self.y_min
        y_hi = self.y_max if self.y_max is not None else max(max(ys), y_lo + 1e-9)
        if x_hi <= x_lo:
            x_hi = x_lo + 1.0
        if y_hi <= y_lo:
            y_hi = y_lo + 1.0
        return x_lo, x_hi, y_lo, y_hi

    def _project(self, x, y, bounds):
        x_lo, x_hi, y_lo, y_hi = bounds
        m = self.margin
        px = m + (x - x_lo) / (x_hi - x_lo) * (self.width - 2 * m)
        py = self.height - m - (y - y_lo) / (y_hi - y_lo) * (self.height - 2 * m)
        return px, py

    @staticmethod
    def _fmt(v: float) -> str:
        return f"{v:g}"

    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        if not self._series:
            raise ValueError("no series added")
        bounds = self._bounds()
        x_lo, x_hi, y_lo, y_hi = bounds
        m = self.margin
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2}" y="24" text-anchor="middle" '
            f'font-size="16" font-family="sans-serif">{self.title}</text>',
        ]
        # axes
        parts.append(
            f'<line x1="{m}" y1="{self.height - m}" x2="{self.width - m}" '
            f'y2="{self.height - m}" stroke="black"/>'
        )
        parts.append(
            f'<line x1="{m}" y1="{m}" x2="{m}" y2="{self.height - m}" stroke="black"/>'
        )
        # ticks (5 per axis)
        for i in range(6):
            fx = x_lo + (x_hi - x_lo) * i / 5
            px, _ = self._project(fx, y_lo, bounds)
            parts.append(
                f'<line x1="{px:.1f}" y1="{self.height - m}" x2="{px:.1f}" '
                f'y2="{self.height - m + 5}" stroke="black"/>'
            )
            parts.append(
                f'<text x="{px:.1f}" y="{self.height - m + 20}" text-anchor="middle" '
                f'font-size="11" font-family="sans-serif">{self._fmt(fx)}</text>'
            )
            fy = y_lo + (y_hi - y_lo) * i / 5
            _, py = self._project(x_lo, fy, bounds)
            parts.append(
                f'<line x1="{m - 5}" y1="{py:.1f}" x2="{m}" y2="{py:.1f}" '
                f'stroke="black"/>'
            )
            parts.append(
                f'<text x="{m - 8}" y="{py + 4:.1f}" text-anchor="end" '
                f'font-size="11" font-family="sans-serif">{self._fmt(fy)}</text>'
            )
        # axis labels
        parts.append(
            f'<text x="{self.width / 2}" y="{self.height - 12}" text-anchor="middle" '
            f'font-size="12" font-family="sans-serif">{self.x_label}</text>'
        )
        if self.y_label:
            parts.append(
                f'<text x="16" y="{self.height / 2}" text-anchor="middle" '
                f'font-size="12" font-family="sans-serif" '
                f'transform="rotate(-90 16 {self.height / 2})">{self.y_label}</text>'
            )
        # series
        for idx, (name, xs, ys) in enumerate(self._series):
            color = _PALETTE[idx % len(_PALETTE)]
            pts = " ".join(
                "{:.1f},{:.1f}".format(*self._project(x / self.x_scale, y, bounds))
                for x, y in zip(xs, ys)
            )
            parts.append(
                f'<polyline points="{pts}" fill="none" stroke="{color}" '
                f'stroke-width="1.8"/>'
            )
            # legend entry
            ly = m + 16 * idx
            lx = self.width - m - 150
            parts.append(
                f'<line x1="{lx}" y1="{ly}" x2="{lx + 22}" y2="{ly}" '
                f'stroke="{color}" stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{lx + 28}" y="{ly + 4}" font-size="11" '
                f'font-family="sans-serif">{name}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: PathLike) -> Path:
        p = Path(path)
        p.write_text(self.to_svg(), encoding="utf-8")
        return p


def render_series(
    series: Mapping[str, TimeSeries],
    title: str,
    path: PathLike,
    y_label: str = "",
    y_max: Optional[float] = 1.0,
) -> Path:
    """Convenience: chart a dict of time series and save it."""
    chart = LineChart(title=title, y_label=y_label, y_max=y_max)
    for name in sorted(series):
        if len(series[name]) > 0:
            chart.add_timeseries(name, series[name])
    return chart.save(path)
