"""Periodic process helper.

Gossip protocols in the paper are ``do forever: wait Δ; ...`` loops
(Figs 1 and 3).  :class:`PeriodicProcess` models one such loop: it
re-schedules itself every ``interval`` seconds, with optional uniform
jitter so that a population of processes does not fire in lock-step
(real deployments desynchronise naturally).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Engine, EventHandle


class PeriodicProcess:
    """Repeatedly invoke ``action()`` every ``interval`` simulated seconds.

    Parameters
    ----------
    engine:
        The simulation engine to schedule on.
    interval:
        The paper's Δ — seconds between invocations.
    action:
        Zero-argument callable run on each tick.
    jitter:
        If > 0, each gap is ``interval + U(-jitter, +jitter)`` (clamped
        to be positive).  Requires ``rng``.
    rng:
        Generator used for jitter draws.
    phase:
        Delay before the first tick.  Defaults to one full interval
        (with jitter), matching a node that just started its loop.
    """

    def __init__(
        self,
        engine: Engine,
        interval: float,
        action: Callable[[], None],
        *,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        phase: Optional[float] = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self._engine = engine
        self._interval = float(interval)
        self._action = action
        self._jitter = float(jitter)
        self._rng = rng
        self._handle: Optional[EventHandle] = None
        self._stopped = True
        self.ticks = 0
        self._initial_phase = phase

    # ------------------------------------------------------------------
    def _next_gap(self) -> float:
        if self._jitter > 0.0:
            assert self._rng is not None
            gap = self._interval + self._rng.uniform(-self._jitter, self._jitter)
            return max(gap, 1e-9)
        return self._interval

    def _tick(self) -> None:
        if self._stopped:
            return
        self.ticks += 1
        self._action()
        if not self._stopped:  # action may have stopped us
            self._handle = self._engine.schedule(self._next_gap(), self._tick)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin ticking.  Idempotent while running."""
        if not self._stopped:
            return
        self._stopped = False
        first = self._initial_phase if self._initial_phase is not None else self._next_gap()
        self._handle = self._engine.schedule(max(first, 0.0), self._tick)

    def restore(self, at_time: float, seq: int, ticks: int) -> None:
        """Re-arm the loop at a checkpointed pending tick.

        Checkpoint-restore API: instead of :meth:`start` (which would
        claim a fresh seq and draw jitter), re-insert the saved pending
        entry with its original ``(time, priority=0, seq)`` key via
        :meth:`Engine.restore_event` and restore the tick counter.  The
        jitter RNG stream is restored separately by the caller.
        """
        if not self._stopped:
            raise ValueError("cannot restore a running process")
        self._stopped = False
        self.ticks = int(ticks)
        self._handle = self._engine.restore_event(at_time, 0, seq, self._tick)

    def pending_key(self):
        """``(time, seq)`` of the pending tick, or ``None`` — resolved
        against the engine's live queue (handles do not store seqs)."""
        if self._handle is None or self._handle.cancelled:
            return None
        for time, _prio, seq, handle in self._engine.live_entries():
            if handle is self._handle:
                return (time, seq)
        return None

    def stop(self) -> None:
        """Cancel the pending tick and stop the loop.  Idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        """``True`` between :meth:`start` and :meth:`stop`."""
        return not self._stopped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return f"PeriodicProcess(interval={self._interval}, {state}, ticks={self.ticks})"
