"""Named deterministic random streams.

Every random decision in the simulator draws from a stream obtained by
name from one :class:`RngRegistry` (e.g. ``rng.stream("pss")``,
``rng.stream("churn", peer_id)``).  Streams are derived from the root
seed and the *name only*, so adding a new consumer never perturbs the
draws of existing ones — experiments stay reproducible and comparable
across code changes.
"""

from __future__ import annotations

import zlib
from typing import Dict, Tuple, Union

import numpy as np

Key = Tuple[Union[str, int], ...]


def _key_to_entropy(key: Key) -> int:
    """Map a stream key to a stable 32-bit integer.

    Uses CRC32 of the repr, which is stable across processes and Python
    versions (unlike ``hash()`` with string randomization).
    """
    material = "\x1f".join(str(part) for part in key)
    return zlib.crc32(material.encode("utf-8"))


class RngRegistry:
    """Factory of independent, reproducible ``numpy`` Generators.

    Parameters
    ----------
    seed:
        Root seed.  Two registries with the same seed produce identical
        streams for identical names.

    Examples
    --------
    >>> r1, r2 = RngRegistry(7), RngRegistry(7)
    >>> bool((r1.stream("pss").random(4) == r2.stream("pss").random(4)).all())
    True
    """

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._streams: Dict[Key, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was built from."""
        return self._seed

    def stream(self, *key: Union[str, int]) -> np.random.Generator:
        """Return the Generator for ``key``, creating it on first use.

        The same key always returns the same Generator *object*, so
        state advances as consumers draw — call sites share a stream by
        sharing a key.
        """
        if not key:
            raise ValueError("stream key must be non-empty")
        k: Key = tuple(key)
        gen = self._streams.get(k)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(_key_to_entropy(k),)
            )
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[k] = gen
        return gen

    def fork(self, label: Union[str, int]) -> "RngRegistry":
        """Derive a child registry (e.g. one per trace replication).

        Children with different labels are independent; the same label
        always yields the same child.
        """
        child_seed = (self._seed * 1_000_003 + _key_to_entropy((label,))) % (2**63)
        return RngRegistry(child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={len(self._streams)})"
