"""Time and size units used across the simulator.

Simulated time is a float number of **seconds**; data sizes are floats
in **bytes**.  The paper quotes thresholds in MB (decimal megabytes,
e.g. the experience threshold ``T = 5 MB``) and BitTorrent piece sizes
in KiB/MiB (binary), so both families are provided.
"""

#: One simulated second (the base time unit).
SECOND = 1.0
#: Sixty seconds.
MINUTE = 60.0 * SECOND
#: Sixty minutes.
HOUR = 60.0 * MINUTE
#: Twenty-four hours.
DAY = 24.0 * HOUR

#: Binary kilobyte (1024 bytes) — BitTorrent piece sizes.
KIB = 1024.0
#: Binary megabyte.
MIB = 1024.0 * KIB
#: Binary gigabyte.
GIB = 1024.0 * MIB
#: Decimal megabyte (1e6 bytes) — the unit of the paper's ``T`` threshold.
MB = 1_000_000.0

__all__ = ["SECOND", "MINUTE", "HOUR", "DAY", "KIB", "MIB", "GIB", "MB"]
