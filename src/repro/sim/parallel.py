"""Parallel replica engine.

The paper's figures are averages over independent simulation replicas
(e.g. "average of 10 trace runs" for Fig 6).  Replicas share no state —
each builds its own trace, engine, RNG registry and protocol runtime
from ``seed + 1000·replica`` — so they are embarrassingly parallel.
:class:`ReplicaPool` farms them over a :mod:`multiprocessing` pool and
returns results in replica order, making ``run_many(jobs=N)``
**bit-identical** to the sequential path: the per-replica computation
is untouched, only *where* it runs changes.

Spawn-safety
------------
The pool uses the ``spawn`` start method by default (fork can silently
copy a half-initialised interpreter under threads, and spawn is the
only portable choice).  That imposes two constraints honoured here:

* the worker entrypoint (:func:`_run_task`) is a module-level function,
  so children resolve it by import rather than by pickling code;
* everything crossing the process boundary is picklable: experiments
  are shipped after :func:`_strip` clears unpicklable run artefacts
  (e.g. a cached :class:`~repro.experiments.common.SimulationStack`),
  and results come back as :class:`PackedResult` — plain ``(n, 2)``
  numpy arrays plus a metadata dict — rather than live objects.

``jobs=1`` (or a single task) short-circuits to plain in-process calls:
no pool, no pickling, byte-for-byte today's sequential behaviour.

Shared-memory spool
-------------------
Two hot paths used to push bulk float data through pickle: replica
results (each worker returned its ``(n, 2)`` series arrays inside a
pickled :class:`PackedResult`) and — had it been built on processes —
the flow-matrix changed-row recompute, where every worker would need an
observer's full adjacency.  Both now ride one mechanism: numpy arrays
are packed into ``multiprocessing.shared_memory`` segments (a pickled
:class:`SegmentSpec` carries only the segment name and a header of
per-array offsets/dtypes/shapes) and the consumer maps them directly.

* :class:`ShmSpool` owns parent-created segments and guarantees
  unlink-on-exit even when a worker crashes mid-batch;
* :class:`FlowRowPool` shards :class:`~repro.metrics.cev.FlowMatrixCache`
  changed-row recomputes over worker *processes*: each observer's
  adjacency snapshot (dense weight block, or sparse CSR arrays) is
  published via the spool, workers rebuild a zero-copy
  :class:`~repro.bartercast.graph.SharedGraphView` and run the pure
  :func:`~repro.bartercast.maxflow.two_hop_flows_to_sink`, and rows
  come back through a single parent-owned result block — nothing but
  task headers crosses the process boundary by pickle;
* :class:`ReplicaPool` workers publish their series arrays the same
  way (``result_transport="shm"``), replacing the pickled arrays with
  a memory-mapped result buffer; the parent copies them out and
  unlinks.  Bytes are copied verbatim either way, so results stay
  bit-identical to the pickle transport (and to sequential runs).
"""

from __future__ import annotations

import concurrent.futures
import copy
import multiprocessing
import os
import secrets
import sys
import warnings
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def resolve_worker_count(n_tasks: int, jobs: Optional[int]) -> int:
    """Effective worker count for ``n_tasks`` under a ``jobs`` cap.

    ``jobs=None`` auto-sizes to the machine's CPU count; the result is
    always in ``[1, n_tasks]``.  Shared by :class:`ReplicaPool`
    (processes) and :class:`~repro.metrics.cev.FlowMatrixCache`
    (threads) so every parallel knob in the repo resolves the same way.
    """
    if n_tasks <= 0:
        return 1
    cap = jobs if jobs is not None else (os.cpu_count() or 1)
    return max(1, min(n_tasks, cap))


# ----------------------------------------------------------------------
# Shared-memory segment packing
# ----------------------------------------------------------------------

#: Every segment this module creates is named with this prefix, so
#: leak checks (tests, ops) can enumerate ``/dev/shm/reproshm_*``.
SHM_PREFIX = "reproshm"

#: Array offsets inside a segment are aligned to this many bytes so
#: mapped views are always well-aligned for float64/int64 access.
_SHM_ALIGN = 64


def _unique_segment_name() -> str:
    return f"{SHM_PREFIX}_{os.getpid()}_{secrets.token_hex(8)}"


@dataclass(frozen=True)
class SegmentSpec:
    """Picklable header describing arrays packed into one segment.

    ``entries`` holds ``(key, offset, dtype, shape)`` per array — the
    only thing that travels by pickle; the floats themselves stay in
    the named shared-memory block.
    """

    name: str
    entries: Tuple[Tuple[str, int, str, Tuple[int, ...]], ...]


def _pack_layout(
    arrays: Sequence[Tuple[str, np.ndarray]]
) -> Tuple[Tuple[Tuple[str, int, str, Tuple[int, ...]], ...], int]:
    """Assign an aligned offset to each array; returns (entries, total)."""
    entries = []
    offset = 0
    for key, arr in arrays:
        offset = (offset + _SHM_ALIGN - 1) & ~(_SHM_ALIGN - 1)
        entries.append((key, offset, arr.dtype.str, tuple(arr.shape)))
        offset += arr.nbytes
    # Trailing pad so zero-size arrays at the end still map cleanly.
    return tuple(entries), offset + _SHM_ALIGN


def create_segment(
    arrays: Dict[str, np.ndarray]
) -> Tuple[shared_memory.SharedMemory, SegmentSpec]:
    """Create one segment holding copies of ``arrays``.

    The caller owns the returned handle (close it when done writing;
    whoever *consumes* the data unlinks).  Array bytes are copied
    verbatim, so rehydrated views are bit-identical."""
    items = [(k, np.ascontiguousarray(v)) for k, v in arrays.items()]
    entries, total = _pack_layout(items)
    shm = shared_memory.SharedMemory(
        create=True, size=total, name=_unique_segment_name()
    )
    for (key, off, dtype, shape), (_k, arr) in zip(entries, items):
        if arr.size:
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
            view[...] = arr
            del view
    return shm, SegmentSpec(name=shm.name, entries=entries)


class AttachedSegment:
    """A consumer-side mapping of a :class:`SegmentSpec`.

    ``arrays`` maps each key to a read-only numpy view into the shared
    block — zero copies.  Call :meth:`close` (after dropping any views
    you still hold) to release the mapping; ``unlink=True`` also
    removes the segment from the system."""

    def __init__(self, spec: SegmentSpec, writable: bool = False):
        self._shm = shared_memory.SharedMemory(name=spec.name)
        self.arrays: Dict[str, np.ndarray] = {}
        for key, off, dtype, shape in spec.entries:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=off
            )
            if not writable:
                view.setflags(write=False)
            self.arrays[key] = view

    def close(self, unlink: bool = False) -> None:
        self.arrays = {}
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a view outlived us
            # A still-referenced view pins the mapping; the segment is
            # already unlinked above, so nothing leaks system-wide.
            pass


class ShmSpool:
    """Registry of parent-created segments with guaranteed cleanup.

    Use as a context manager around a fan-out batch: every segment
    created through the spool is unlinked on exit — including the
    exceptional exits a crashed worker causes — so no ``/dev/shm``
    entry can outlive the batch."""

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self.created = 0

    def publish(self, arrays: Dict[str, np.ndarray]) -> SegmentSpec:
        """Copy ``arrays`` into a fresh spool-owned segment."""
        shm, spec = create_segment(arrays)
        self._segments.append(shm)
        self.created += 1
        return spec

    def allocate(
        self, shapes: Dict[str, Tuple[Tuple[int, ...], str]]
    ) -> Tuple[SegmentSpec, Dict[str, np.ndarray]]:
        """Create a zero-filled segment and return writable parent
        views — the result-collection buffer workers write into."""
        entries, total = _pack_layout(
            [
                (key, np.empty(shape, dtype=np.dtype(dtype)))
                for key, (shape, dtype) in shapes.items()
            ]
        )
        shm = shared_memory.SharedMemory(
            create=True, size=total, name=_unique_segment_name()
        )
        shm.buf[:] = b"\x00" * len(shm.buf)
        self._segments.append(shm)
        self.created += 1
        views = {
            key: np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=off)
            for key, off, dtype, shape in entries
        }
        return SegmentSpec(name=shm.name, entries=entries), views

    def close(self) -> None:
        """Unlink (always) and close (best effort) every segment."""
        segments, self._segments = self._segments, []
        for shm in segments:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            try:
                shm.close()
            except BufferError:  # pragma: no cover - a view outlived us
                pass

    def __enter__(self) -> "ShmSpool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class PackedResult:
    """A picklable snapshot of an :class:`ExperimentResult`.

    ``series`` maps each series name to its ``(n, 2)`` ``[t, value]``
    array — the exact floats the live :class:`TimeSeries` held, so
    packing/unpacking round-trips bit-identically.
    """

    name: str
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)


def pack_result(result) -> PackedResult:
    """Flatten an :class:`ExperimentResult` into picklable arrays."""
    return PackedResult(
        name=result.name,
        series={k: s.as_array() for k, s in result.series.items()},
        metadata=dict(result.metadata),
    )


def unpack_result(packed: PackedResult):
    """Rebuild a live :class:`ExperimentResult` from a pack."""
    from repro.experiments.common import ExperimentResult
    from repro.metrics.timeseries import TimeSeries

    result = ExperimentResult(name=packed.name)
    for key, arr in packed.series.items():
        s = TimeSeries(key)
        for t, v in arr:
            s.append(float(t), float(v))
        result.series[key] = s
    result.metadata = dict(packed.metadata)
    return result


def _strip(experiment):
    """A shallow copy of ``experiment`` safe to ship to a worker.

    Experiments may cache live run artefacts (``last_stack`` holds the
    fully wired engine/runtime of the previous run) that are neither
    picklable nor meaningful in a child; clear them on the copy.
    """
    clone = copy.copy(experiment)
    if hasattr(clone, "last_stack"):
        clone.last_stack = None
    return clone


def _run_task(task) -> PackedResult:
    """Worker entrypoint: run one ``(experiment, replica)`` task.

    Module-level so spawn children can import it; returns a
    :class:`PackedResult` so nothing unpicklable travels back.
    """
    experiment, replica = task
    result = experiment.run(replica=replica)
    return pack_result(result)


def _ensure_child_importable() -> None:
    """Make sure spawn children can ``import repro``.

    Spawn starts a fresh interpreter that only inherits environment
    variables — a parent whose ``sys.path`` was extended
    programmatically (pytest, an IDE) would otherwise produce children
    that cannot import this package.  Prepend the package root to
    ``PYTHONPATH`` before the pool forks off.
    """
    root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if root not in parts:
        os.environ["PYTHONPATH"] = (
            os.pathsep.join([root] + parts) if parts else root
        )


#: Public aliases: the long-lived service mode (``repro.sim.service``)
#: reuses this module's spawn-safety plumbing for its shard workers.
ensure_child_importable = _ensure_child_importable


def _spawn_main_is_reimportable() -> bool:
    """Whether spawn children can safely re-prepare ``__main__``.

    Spawn re-executes the parent's main module in every child (that is
    what makes the ``__main__`` guard mandatory).  When the parent was
    fed a script on stdin or an equally unreal path, that re-execution
    raises in the child and the pool respawns workers forever; detect
    the case up front so callers degrade to sequential instead of
    hanging.  A REPL (no ``__file__``) and ``python -m pkg`` (spec
    name) are both fine — multiprocessing handles them explicitly.
    """
    main = sys.modules.get("__main__")
    if main is None:
        return True
    if getattr(getattr(main, "__spec__", None), "name", None):
        return True
    path = getattr(main, "__file__", None)
    if path is None:
        return True
    return os.path.exists(path)


#: Public alias for the service supervisor's spawn-capability probe.
spawn_main_is_reimportable = _spawn_main_is_reimportable


# ----------------------------------------------------------------------
# Process-sharded flow rows
# ----------------------------------------------------------------------

#: Peer list installed once per worker process (pool initializer), so
#: per-task pickles carry only a row index and a segment header.
_FLOW_WORKER_PEERS: Optional[List[str]] = None

#: Test-only hook: when this environment variable is set, flow workers
#: die abruptly instead of computing — used to verify that the parent
#: still unlinks every segment after a worker crash.
_FLOW_CRASH_ENV = "REPRO_TEST_CRASH_FLOW_WORKER"


def _flow_worker_init(peers: List[str]) -> None:
    """Pool initializer: pin the (fixed) peer list in the worker."""
    global _FLOW_WORKER_PEERS
    _FLOW_WORKER_PEERS = list(peers)


def _flow_row_task(task) -> int:
    """Worker entrypoint: one observer's flow row.

    Maps the observer's adjacency snapshot from shared memory, runs the
    pure :func:`two_hop_flows_to_sink` over a zero-copy
    :class:`~repro.bartercast.graph.SharedGraphView`, and writes the
    row into the parent-owned result block.  Nothing but this small
    task tuple and the returned index crosses by pickle."""
    from repro.bartercast.graph import SharedGraphView
    from repro.bartercast.maxflow import two_hop_flows_to_sink

    index, sink, kind, graph_spec, result_spec, sparse_kernel = task
    if os.environ.get(_FLOW_CRASH_ENV):
        os._exit(2)
    assert _FLOW_WORKER_PEERS is not None, "worker initializer did not run"
    seg = AttachedSegment(graph_spec)
    view = None
    try:
        ids_blob = bytes(seg.arrays.pop("ids"))
        ids = ids_blob.decode("utf-8").split("\n") if ids_blob else []
        view = SharedGraphView(ids, kind, seg.arrays)
        flows = two_hop_flows_to_sink(
            view, _FLOW_WORKER_PEERS, sink, sparse_kernel=sparse_kernel
        )
    finally:
        if view is not None:
            view.release()
        seg.close()
    out = AttachedSegment(result_spec, writable=True)
    try:
        out.arrays["rows"][index, :] = flows
    finally:
        out.close()
    return index


class FlowRowPool:
    """Shards flow-matrix changed-row recomputes over worker processes.

    The executor is **persistent** across batches (spawn start-up is
    far too slow to pay per metric sample) and is initialised once with
    the fixed peer list.  Per batch, each stale observer's adjacency is
    published to shared memory via an :class:`ShmSpool` (dense: one
    float64 weight block; sparse: CSR arrays) together with one result
    block all workers write rows into; the spool's context manager
    unlinks every segment afterwards — also on worker crash, where the
    executor is additionally discarded so the next batch starts from a
    clean pool.

    ``jobs=1`` callers should not construct a pool at all (the caller's
    serial path is the short circuit); :meth:`run_rows` nevertheless
    degrades gracefully for single-task batches.
    """

    def __init__(
        self,
        peers: Sequence[str],
        jobs: Optional[int] = None,
        start_method: str = "spawn",
        sparse_kernel: str = "auto",
    ):
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1 (or None for auto)")
        if sparse_kernel not in ("chunked", "csr", "auto"):
            raise ValueError(
                f"sparse_kernel must be 'chunked', 'csr' or 'auto', "
                f"got {sparse_kernel!r}"
            )
        self.peers: List[str] = list(peers)
        self._peer_set = set(self.peers)
        self.jobs = jobs
        self.start_method = start_method
        self.sparse_kernel = sparse_kernel
        self._executor: Optional[concurrent.futures.ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def _ensure_executor(self, workers: int) -> concurrent.futures.ProcessPoolExecutor:
        if self._executor is None:
            _ensure_child_importable()
            ctx = multiprocessing.get_context(self.start_method)
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=_flow_worker_init,
                initargs=(self.peers,),
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "FlowRowPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run_rows(
        self, stale: Sequence[Tuple[int, str, object]]
    ) -> List[Tuple[int, np.ndarray]]:
        """Compute ``two_hop_flows_to_sink(graph, peers, observer)``
        for each ``(row, observer, graph)`` item, in item order.

        Rows come back through the shared result block, copied out
        before the spool unlinks it, so the returned arrays are the
        caller's to keep."""
        stale = list(stale)
        if not stale:
            return []
        n = len(self.peers)
        workers = resolve_worker_count(len(stale), self.jobs)
        with ShmSpool() as spool:
            result_spec, views = spool.allocate(
                {"rows": ((len(stale), n), "<f8")}
            )
            tasks = []
            for i, (row, sink, graph) in enumerate(stale):
                ids = sorted(graph.nodes() | {sink} | self._peer_set)
                kind, arrays = graph.mirror_payload(ids)
                arrays["ids"] = np.frombuffer(
                    "\n".join(ids).encode("utf-8"), dtype=np.uint8
                )
                spec = spool.publish(arrays)
                tasks.append(
                    (i, sink, kind, spec, result_spec, self.sparse_kernel)
                )
            executor = self._ensure_executor(workers)
            chunksize = max(1, -(-len(tasks) // workers))
            try:
                list(executor.map(_flow_row_task, tasks, chunksize=chunksize))
            except concurrent.futures.process.BrokenProcessPool:
                # A worker died mid-batch: discard the broken executor
                # so the next batch gets a fresh pool; the spool's
                # context manager still unlinks every segment.
                self._executor = None
                raise
            out = [
                (row, views["rows"][i].copy())
                for i, (row, _sink, _graph) in enumerate(stale)
            ]
            views = None
        return out


@dataclass
class _SpooledResult:
    """A :class:`PackedResult` whose series arrays live in a shared
    segment instead of the pickle stream.

    Only this small header (segment name + per-array layout + the
    metadata dict) crosses the process boundary by pickle; the parent
    maps the segment, copies the arrays out, and unlinks it."""

    name: str
    spec: SegmentSpec
    metadata: Dict[str, object] = field(default_factory=dict)


def _run_task_spooled(task) -> _SpooledResult:
    """Worker entrypoint: like :func:`_run_task`, but publish the
    series arrays through shared memory.

    The worker closes its own handle after writing; the parent (the
    consumer) unlinks.  Should the parent die first, the shared
    resource tracker reclaims the registered segment at exit."""
    packed = _run_task(task)
    shm, spec = create_segment(packed.series)
    shm.close()
    return _SpooledResult(name=packed.name, spec=spec, metadata=packed.metadata)


def _collect_spooled(spooled: _SpooledResult) -> PackedResult:
    """Map a worker-published segment, copy the series out, unlink."""
    seg = AttachedSegment(spooled.spec)
    try:
        series = {k: v.copy() for k, v in seg.arrays.items()}
    finally:
        seg.close(unlink=True)
    return PackedResult(
        name=spooled.name, series=series, metadata=spooled.metadata
    )


class ReplicaPool:
    """Farms independent replica runs over worker processes.

    ``jobs=None`` resolves per call to ``min(n_tasks, cpu_count)``;
    ``jobs=1`` runs sequentially in-process (no pool is created), which
    keeps single-job behaviour byte-identical to the pre-parallel code
    and keeps the pool usable on single-core machines.

    ``result_transport`` picks how series arrays travel back from the
    workers: ``"shm"`` (default) publishes them through shared-memory
    segments the parent maps and unlinks — the pickle stream then
    carries only tiny headers — while ``"pickle"`` ships the arrays
    inline, the pre-shm behaviour.  Bytes are copied verbatim either
    way, so both transports are bit-identical.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        start_method: str = "spawn",
        result_transport: str = "shm",
    ):
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1 (or None for auto)")
        if result_transport not in ("shm", "pickle"):
            raise ValueError(
                f"result_transport must be 'shm' or 'pickle', "
                f"got {result_transport!r}"
            )
        self.jobs = jobs
        self.start_method = start_method
        self.result_transport = result_transport

    def resolve_jobs(self, n_tasks: int) -> int:
        """Worker count for ``n_tasks`` tasks under this pool's cap."""
        return resolve_worker_count(n_tasks, self.jobs)

    # ------------------------------------------------------------------
    def run_replicas(self, experiment, replicas: Sequence[int]) -> List:
        """Run ``experiment.run(replica=r)`` for each replica, in replica
        order, returning live :class:`ExperimentResult` objects."""
        return self.run_tasks([(experiment, r) for r in replicas])

    def run_tasks(self, tasks: Sequence[Tuple[object, Optional[int]]]) -> List:
        """Run arbitrary ``(experiment, replica)`` tasks.

        Results come back in task order regardless of completion order
        (``Pool.map`` preserves ordering), so parallel output is
        positionally identical to sequential output.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        jobs = self.resolve_jobs(len(tasks))
        if jobs > 1 and self.start_method == "spawn":
            if not _spawn_main_is_reimportable():
                warnings.warn(
                    "spawn workers cannot re-import this __main__ "
                    "(script fed via stdin?); running replicas "
                    "sequentially instead",
                    RuntimeWarning,
                    stacklevel=2,
                )
                jobs = 1
        if jobs <= 1:
            # In-process: run the caller's own experiment objects (no
            # pack/unpack round-trip) so side artefacts such as
            # ``last_stack`` stay observable and single-job behaviour
            # is byte-identical to the pre-parallel code path.
            return [
                experiment.run(replica=replica)
                for experiment, replica in tasks
            ]
        _ensure_child_importable()
        shipped = [(_strip(experiment), replica) for experiment, replica in tasks]
        ctx = multiprocessing.get_context(self.start_method)
        with ctx.Pool(processes=jobs) as pool:
            if self.result_transport == "shm":
                spooled = pool.map(_run_task_spooled, shipped)
                packed = [_collect_spooled(s) for s in spooled]
            else:
                packed = pool.map(_run_task, shipped)
        return [unpack_result(p) for p in packed]
