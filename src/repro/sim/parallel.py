"""Parallel replica engine.

The paper's figures are averages over independent simulation replicas
(e.g. "average of 10 trace runs" for Fig 6).  Replicas share no state —
each builds its own trace, engine, RNG registry and protocol runtime
from ``seed + 1000·replica`` — so they are embarrassingly parallel.
:class:`ReplicaPool` farms them over a :mod:`multiprocessing` pool and
returns results in replica order, making ``run_many(jobs=N)``
**bit-identical** to the sequential path: the per-replica computation
is untouched, only *where* it runs changes.

Spawn-safety
------------
The pool uses the ``spawn`` start method by default (fork can silently
copy a half-initialised interpreter under threads, and spawn is the
only portable choice).  That imposes two constraints honoured here:

* the worker entrypoint (:func:`_run_task`) is a module-level function,
  so children resolve it by import rather than by pickling code;
* everything crossing the process boundary is picklable: experiments
  are shipped after :func:`_strip` clears unpicklable run artefacts
  (e.g. a cached :class:`~repro.experiments.common.SimulationStack`),
  and results come back as :class:`PackedResult` — plain ``(n, 2)``
  numpy arrays plus a metadata dict — rather than live objects.

``jobs=1`` (or a single task) short-circuits to plain in-process calls:
no pool, no pickling, byte-for-byte today's sequential behaviour.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import sys
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def resolve_worker_count(n_tasks: int, jobs: Optional[int]) -> int:
    """Effective worker count for ``n_tasks`` under a ``jobs`` cap.

    ``jobs=None`` auto-sizes to the machine's CPU count; the result is
    always in ``[1, n_tasks]``.  Shared by :class:`ReplicaPool`
    (processes) and :class:`~repro.metrics.cev.FlowMatrixCache`
    (threads) so every parallel knob in the repo resolves the same way.
    """
    if n_tasks <= 0:
        return 1
    cap = jobs if jobs is not None else (os.cpu_count() or 1)
    return max(1, min(n_tasks, cap))


@dataclass
class PackedResult:
    """A picklable snapshot of an :class:`ExperimentResult`.

    ``series`` maps each series name to its ``(n, 2)`` ``[t, value]``
    array — the exact floats the live :class:`TimeSeries` held, so
    packing/unpacking round-trips bit-identically.
    """

    name: str
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)


def pack_result(result) -> PackedResult:
    """Flatten an :class:`ExperimentResult` into picklable arrays."""
    return PackedResult(
        name=result.name,
        series={k: s.as_array() for k, s in result.series.items()},
        metadata=dict(result.metadata),
    )


def unpack_result(packed: PackedResult):
    """Rebuild a live :class:`ExperimentResult` from a pack."""
    from repro.experiments.common import ExperimentResult
    from repro.metrics.timeseries import TimeSeries

    result = ExperimentResult(name=packed.name)
    for key, arr in packed.series.items():
        s = TimeSeries(key)
        for t, v in arr:
            s.append(float(t), float(v))
        result.series[key] = s
    result.metadata = dict(packed.metadata)
    return result


def _strip(experiment):
    """A shallow copy of ``experiment`` safe to ship to a worker.

    Experiments may cache live run artefacts (``last_stack`` holds the
    fully wired engine/runtime of the previous run) that are neither
    picklable nor meaningful in a child; clear them on the copy.
    """
    clone = copy.copy(experiment)
    if hasattr(clone, "last_stack"):
        clone.last_stack = None
    return clone


def _run_task(task) -> PackedResult:
    """Worker entrypoint: run one ``(experiment, replica)`` task.

    Module-level so spawn children can import it; returns a
    :class:`PackedResult` so nothing unpicklable travels back.
    """
    experiment, replica = task
    result = experiment.run(replica=replica)
    return pack_result(result)


def _ensure_child_importable() -> None:
    """Make sure spawn children can ``import repro``.

    Spawn starts a fresh interpreter that only inherits environment
    variables — a parent whose ``sys.path`` was extended
    programmatically (pytest, an IDE) would otherwise produce children
    that cannot import this package.  Prepend the package root to
    ``PYTHONPATH`` before the pool forks off.
    """
    root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if root not in parts:
        os.environ["PYTHONPATH"] = (
            os.pathsep.join([root] + parts) if parts else root
        )


def _spawn_main_is_reimportable() -> bool:
    """Whether spawn children can safely re-prepare ``__main__``.

    Spawn re-executes the parent's main module in every child (that is
    what makes the ``__main__`` guard mandatory).  When the parent was
    fed a script on stdin or an equally unreal path, that re-execution
    raises in the child and the pool respawns workers forever; detect
    the case up front so callers degrade to sequential instead of
    hanging.  A REPL (no ``__file__``) and ``python -m pkg`` (spec
    name) are both fine — multiprocessing handles them explicitly.
    """
    main = sys.modules.get("__main__")
    if main is None:
        return True
    if getattr(getattr(main, "__spec__", None), "name", None):
        return True
    path = getattr(main, "__file__", None)
    if path is None:
        return True
    return os.path.exists(path)


class ReplicaPool:
    """Farms independent replica runs over worker processes.

    ``jobs=None`` resolves per call to ``min(n_tasks, cpu_count)``;
    ``jobs=1`` runs sequentially in-process (no pool is created), which
    keeps single-job behaviour byte-identical to the pre-parallel code
    and keeps the pool usable on single-core machines.
    """

    def __init__(self, jobs: Optional[int] = None, start_method: str = "spawn"):
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be >= 1 (or None for auto)")
        self.jobs = jobs
        self.start_method = start_method

    def resolve_jobs(self, n_tasks: int) -> int:
        """Worker count for ``n_tasks`` tasks under this pool's cap."""
        return resolve_worker_count(n_tasks, self.jobs)

    # ------------------------------------------------------------------
    def run_replicas(self, experiment, replicas: Sequence[int]) -> List:
        """Run ``experiment.run(replica=r)`` for each replica, in replica
        order, returning live :class:`ExperimentResult` objects."""
        return self.run_tasks([(experiment, r) for r in replicas])

    def run_tasks(self, tasks: Sequence[Tuple[object, Optional[int]]]) -> List:
        """Run arbitrary ``(experiment, replica)`` tasks.

        Results come back in task order regardless of completion order
        (``Pool.map`` preserves ordering), so parallel output is
        positionally identical to sequential output.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        jobs = self.resolve_jobs(len(tasks))
        if jobs > 1 and self.start_method == "spawn":
            if not _spawn_main_is_reimportable():
                warnings.warn(
                    "spawn workers cannot re-import this __main__ "
                    "(script fed via stdin?); running replicas "
                    "sequentially instead",
                    RuntimeWarning,
                    stacklevel=2,
                )
                jobs = 1
        if jobs <= 1:
            # In-process: run the caller's own experiment objects (no
            # pack/unpack round-trip) so side artefacts such as
            # ``last_stack`` stay observable and single-job behaviour
            # is byte-identical to the pre-parallel code path.
            return [
                experiment.run(replica=replica)
                for experiment, replica in tasks
            ]
        _ensure_child_importable()
        shipped = [(_strip(experiment), replica) for experiment, replica in tasks]
        ctx = multiprocessing.get_context(self.start_method)
        with ctx.Pool(processes=jobs) as pool:
            packed = pool.map(_run_task, shipped)
        return [unpack_result(p) for p in packed]
