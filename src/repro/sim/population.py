"""Structure-of-arrays population engine: batched protocol ticks.

``ProtocolRuntime`` classically gives every online peer one
:class:`~repro.sim.process.PeriodicProcess` heap entry per protocol
loop, so a tick costs a heap pop, a Python callback, a jitter draw and
a heap push — ~12 µs of scheduler machinery per tick before any
protocol work runs.  At a million peers that machinery alone is the
scale ceiling.

:class:`PopulationEngine` replaces the per-peer heap entries with
columnar state:

* a compact integer index per peer (``peer_id ↔ row``), online flags
  and online-since timestamps as numpy arrays;
* per-protocol ``next_tick`` (float64, ``inf`` = idle) and ``seq``
  (int64 insertion-order stamp) columns;
* a per-protocol block-minimum index (2048-wide blocks) so "earliest
  pending tick" and "all ticks due before H" are resolved by scanning
  block summaries instead of the full population.

Due ticks are selected in bulk (``np.nonzero(next_tick < horizon)``
over candidate blocks), ordered by ``(time, seq)`` with one lexsort,
and dispatched as a batch while the engine clock advances per tick.

**Bit-identity contract.**  The tick schedule — every (time, protocol,
peer) triple, in execution order — is bit-identical to the object
engine's, because each ingredient is replicated exactly:

* *jitter*: all of a peer's loops share one ``rng.stream("jitter",
  peer_id)`` generator.  The engine pre-draws raw doubles in chunks
  (``Generator.random(n)`` produces the same doubles as n scalar
  ``uniform`` calls) and computes each gap as ``interval + (-j + (j+j)
  * u)`` — the exact FP operations inside ``Generator.uniform(-j,
  +j)`` — consuming one double per (re)schedule in the same order the
  object engine draws them;
* *ordering*: each scheduled tick is stamped with a sequence number
  from :meth:`Engine.claim_seq` — the same counter heap insertions
  use, claimed at the same moments the object engine would call
  ``engine.schedule`` — so ties against heap events (equal time and
  priority 0) resolve identically;
* *batching*: a batch never crosses the next heap event's ``(time,
  priority, seq)`` key, and is capped at ``t0 + G`` where ``G`` is the
  smallest possible reschedule gap, so a tick rescheduled mid-batch
  can never land inside the running batch out of order;
* *mutation safety*: actions that flip peers on/offline mid-batch bump
  a churn epoch which switches the dispatch loop to per-entry
  revalidation, and an action that schedules a heap event truncates
  the batch so the engine can re-merge.

A protocol may additionally register a **batch handler** (a fourth
``ProtocolSpec`` element): a maximal same-protocol run of due entries
is then handed over in one call instead of one action call per tick.
The handler owns the per-entry clock (``engine._now``) but must not
schedule events, claim sequence numbers or flip peers on/offline —
the dispatcher verifies this after every handler call — so the
reschedule draws and sequence claims the dispatcher performs afterwards
land in the same stream positions the scalar loop would have used.

The gates in ``scripts/bench_population.py`` (run by ``make
bench-smoke``) enforce the contract end-to-end.
"""

from __future__ import annotations

import sys
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.columnar import RowTable

_INF = float("inf")
#: Block width of the per-protocol minimum index (power of two).
_BLOCK_SHIFT = 11
_BLOCK = 1 << _BLOCK_SHIFT
#: Raw jitter doubles pre-drawn per peer per refill.  Over-drawing is
#: invisible: nothing but this scheduler reads a peer's jitter stream.
_JITTER_CHUNK = 16
_EMPTY_SET: frozenset = frozenset()

#: Batched protocol handler: ``batch_action(times, peer_ids, rows)``
#: for one ordered same-protocol run of due ticks.  Contract: set
#: ``engine._now`` per entry, and never schedule events, claim
#: sequence numbers or flip peers on/offline (verified at dispatch).
BatchAction = Callable[[List[float], List[str], List[int]], None]
#: One protocol loop: ``(name, interval_seconds, action(peer_id))``,
#: optionally extended with a batch handler as a fourth element.
ProtocolSpec = Union[
    Tuple[str, float, Callable[[str], None]],
    Tuple[str, float, Callable[[str], None], BatchAction],
]


class PopulationEngine:
    """Columnar peer state plus the batch tick scheduler.

    Attach to an :class:`~repro.sim.engine.Engine` via
    ``engine.attach_source(pop)``; the engine merges the population's
    ticks with its heap in exact ``(time, priority, seq)`` order.
    Protocol ticks run at priority 0, like the object engine's
    ``PeriodicProcess`` callbacks.
    """

    def __init__(
        self,
        engine: Engine,
        rng: RngRegistry,
        protocols: Sequence[ProtocolSpec],
        jitter_fraction: float = 0.0,
        rows: Optional["RowTable"] = None,
    ):
        if not protocols:
            raise ValueError("need at least one protocol loop")
        if not (0.0 <= jitter_fraction < 1.0):
            raise ValueError("jitter_fraction must be in [0, 1)")
        self._engine = engine
        self._registry = rng
        self._names = [spec[0] for spec in protocols]
        self._intervals = [float(spec[1]) for spec in protocols]
        self._actions = [spec[2] for spec in protocols]
        self._batch_actions: List[Optional[BatchAction]] = [
            spec[3] if len(spec) > 3 else None for spec in protocols
        ]
        self._any_batch = any(a is not None for a in self._batch_actions)
        if min(self._intervals) <= 0:
            raise ValueError("intervals must be positive")
        self._jf = float(jitter_fraction)
        #: per-protocol half-width j and full span (j + j == 2j exactly)
        self._jit_half = [ival * self._jf for ival in self._intervals]
        self._jit_span = [j + j for j in self._jit_half]
        #: hot-loop view: (interval, -j, 2j) per protocol, one fetch
        self._params = [
            (ival, -j, span)
            for ival, j, span in zip(
                self._intervals, self._jit_half, self._jit_span
            )
        ]
        #: the same three constants as float64 arrays, for the
        #: vectorised per-batch gap computation (bit-identical ops)
        self._iv_arr = np.array(self._intervals, dtype=np.float64)
        self._neg_half_arr = -np.array(self._jit_half, dtype=np.float64)
        self._span_arr = np.array(self._jit_span, dtype=np.float64)
        #: smallest possible reschedule gap — the batch-horizon bound
        self._min_gap = min(
            ival - j for ival, j in zip(self._intervals, self._jit_half)
        )
        assert self._min_gap > 0.0

        n_protocols = len(protocols)
        self._capacity = 0
        if rows is not None:
            # Shared row table (the columnar state store keys its
            # columns by the same rows).  The lists are aliased, not
            # copied: other components may append rows, which
            # ``_sync_rows`` adopts lazily.
            self._ids = rows.ids
            self._index = rows.index
        else:
            self._ids = []
            self._index = {}
        #: Python list, not numpy: the hot loop reads one flag per tick
        #: and scalar list reads are several times cheaper.
        self._online: List[bool] = []
        self._online_since = np.zeros(0, dtype=np.float64)
        self._next: List[np.ndarray] = [
            np.zeros(0, dtype=np.float64) for _ in range(n_protocols)
        ]
        self._seq: List[np.ndarray] = [
            np.zeros(0, dtype=np.int64) for _ in range(n_protocols)
        ]
        self._bmin: List[np.ndarray] = [
            np.zeros(0, dtype=np.float64) for _ in range(n_protocols)
        ]
        #: per-peer pre-drawn jitter doubles (one chunk buffer per
        #: row), cursors (== _JITTER_CHUNK ⇒ buffer empty), and lazy
        #: per-peer streams
        self._jit_buf = np.zeros((0, _JITTER_CHUNK), dtype=np.float64)
        self._jit_pos = np.zeros(0, dtype=np.int64)
        self._streams: List[Optional[np.random.Generator]] = []

        #: telemetry
        self.ticks_by_protocol = [0] * n_protocols
        self.batches = 0
        self.max_batch_size = 0
        self.completed_session_seconds = 0.0

        #: epochs: any write invalidates the peek cache; online/offline
        #: flips additionally switch running batches to revalidation
        self._write_epoch = 0
        self._churn_epoch = 0
        self._peek_cache: Optional[Tuple[float, int, int]] = None
        self._peek_epoch = -1
        #: in-flight batch state so an action that (re)starts a peer
        #: mid-batch can reconcile its jitter cursor (the flush is the
        #: normal cursor-advance point; see :meth:`_reconcile_cursor`)
        self._inflight: Optional[Tuple[List[int], List[int], frozenset]] = None
        self._inflight_reconciled: set = set()

    # ------------------------------------------------------------------
    # Peer lifecycle
    # ------------------------------------------------------------------
    def _grow(self, needed: int) -> None:
        new_cap = max(self._capacity * 2, 1024)
        while new_cap < needed:
            new_cap *= 2
        n_blocks = (new_cap + _BLOCK - 1) >> _BLOCK_SHIFT

        def _resize(arr: np.ndarray, fill: object, dtype) -> np.ndarray:
            out = np.full(new_cap, fill, dtype=dtype)
            out[: arr.size] = arr
            return out

        self._online_since = _resize(self._online_since, np.nan, np.float64)
        self._jit_pos = _resize(self._jit_pos, _JITTER_CHUNK, np.int64)
        buf = np.zeros((new_cap, _JITTER_CHUNK), dtype=np.float64)
        buf[: self._jit_buf.shape[0]] = self._jit_buf
        self._jit_buf = buf
        for p in range(len(self._next)):
            self._next[p] = _resize(self._next[p], _INF, np.float64)
            self._seq[p] = _resize(self._seq[p], 0, np.int64)
            bmin = np.full(n_blocks, _INF, dtype=np.float64)
            bmin[: self._bmin[p].size] = self._bmin[p]
            self._bmin[p] = bmin
        self._capacity = new_cap

    def _sync_rows(self) -> None:
        """Adopt rows appended to a shared row table by other
        components (the columnar state store assigns rows to peers the
        scheduler has not seen yet): pad the per-peer lists and grow
        the columns to cover every assigned row."""
        n = len(self._ids)
        if n > self._capacity:
            self._grow(n)
        online = self._online
        streams = self._streams
        while len(online) < n:
            online.append(False)
            streams.append(None)

    def _add_peer(self, peer_id: str) -> int:
        if len(self._online) != len(self._ids):
            self._sync_rows()
        row = len(self._ids)
        if row >= self._capacity:
            self._grow(row + 1)
        self._ids.append(peer_id)
        self._index[peer_id] = row
        self._online.append(False)
        self._streams.append(None)
        return row

    def peer_online(self, peer_id: str, now: float) -> None:
        """Start the peer's protocol loops (idempotent while online).

        Draw order matches the object engine's ``proc.start()`` loop:
        per protocol, one jitter draw then one sequence claim.
        """
        if len(self._online) != len(self._ids):
            self._sync_rows()
        row = self._index.get(peer_id)
        if row is None:
            row = self._add_peer(peer_id)
        if self._online[row]:
            return
        self._online[row] = True
        self._online_since[row] = now
        if self._inflight is not None:
            self._reconcile_cursor(row)
        for p in range(len(self._actions)):
            self._schedule(p, row, now)
        self._churn_epoch += 1
        self._write_epoch += 1

    def peer_offline(self, peer_id: str, now: float) -> None:
        """Stop the peer's loops (idempotent while offline)."""
        row = self._index.get(peer_id)
        if row is None or row >= len(self._online) or not self._online[row]:
            return
        self._online[row] = False
        since = float(self._online_since[row])
        self._online_since[row] = np.nan
        self.completed_session_seconds += max(0.0, now - since)
        for col in self._next:
            # Raising an entry leaves its block minimum stale-low; the
            # peek path self-corrects by refreshing empty blocks.
            col[row] = _INF
        self._churn_epoch += 1
        self._write_epoch += 1

    def is_online(self, peer_id: str) -> bool:
        row = self._index.get(peer_id)
        return bool(
            row is not None and row < len(self._online) and self._online[row]
        )

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _draw(self, row: int) -> float:
        """Next raw jitter double for the peer (chunked pre-draw)."""
        pos = int(self._jit_pos[row])
        if pos >= _JITTER_CHUNK:
            stream = self._streams[row]
            if stream is None:
                stream = self._registry.stream("jitter", self._ids[row])
                self._streams[row] = stream
            self._jit_buf[row] = stream.random(_JITTER_CHUNK)
            pos = 0
        self._jit_pos[row] = pos + 1
        return float(self._jit_buf[row, pos])

    def _reconcile_cursor(self, row: int) -> None:
        """A peer is (re)starting mid-batch.  Fast-path draws the
        running batch consumed for this row have not advanced its
        jitter cursor yet (the flush does that), so advance it now —
        the fresh ``_schedule`` draw must continue the stream — and
        mark the row so the flush does not advance it twice."""
        if self._jf == 0.0 or row in self._inflight_reconciled:
            return
        row_list, seq_list, slow_set = self._inflight
        consumed = 0
        for k, r in enumerate(row_list):
            if r == row and seq_list[k] > 0 and k not in slow_set:
                consumed += 1
        if consumed:
            self._jit_pos[row] += consumed
        self._inflight_reconciled.add(row)

    def _schedule(self, p: int, row: int, base: float) -> None:
        """Schedule protocol ``p``'s next tick for ``row`` after
        ``base`` — one jitter draw (if jittered) then one seq claim,
        the object engine's exact operation order."""
        interval = self._intervals[p]
        if self._jf > 0.0:
            u = self._draw(row)
            gap = interval + ((-self._jit_half[p]) + self._jit_span[p] * u)
            gap = max(gap, 1e-9)
        else:
            gap = interval
        seq = self._engine.claim_seq()
        when = base + gap
        self._next[p][row] = when
        self._seq[p][row] = seq
        bmin = self._bmin[p]
        block = row >> _BLOCK_SHIFT
        if when < bmin[block]:
            bmin[block] = when

    # ------------------------------------------------------------------
    # Event-source interface (engine merge loop)
    # ------------------------------------------------------------------
    def _true_min(self) -> Optional[float]:
        """Exact earliest pending tick time, refreshing stale block
        minima (raised entries) along the way."""
        while True:
            t0 = _INF
            for bmin in self._bmin:
                if bmin.size:
                    m = bmin.min()
                    if m < t0:
                        t0 = m
            if t0 == _INF:
                return None
            found = False
            for p, bmin in enumerate(self._bmin):
                col = self._next[p]
                for block in np.nonzero(bmin == t0)[0]:
                    lo = int(block) << _BLOCK_SHIFT
                    actual = col[lo : lo + _BLOCK].min()
                    if actual > bmin[block]:
                        bmin[block] = actual
                    if actual == t0:
                        found = True
            if found:
                return float(t0)

    def peek_key(self) -> Optional[Tuple[float, int, int]]:
        """``(time, priority, seq)`` of the earliest pending tick."""
        if self._peek_epoch == self._write_epoch:
            return self._peek_cache
        t0 = self._true_min()
        if t0 is None:
            key = None
        else:
            best = None
            for p, bmin in enumerate(self._bmin):
                col = self._next[p]
                seqs = self._seq[p]
                for block in np.nonzero(bmin == t0)[0]:
                    lo = int(block) << _BLOCK_SHIFT
                    for off in np.nonzero(col[lo : lo + _BLOCK] == t0)[0]:
                        seq = int(seqs[lo + int(off)])
                        if best is None or seq < best:
                            best = seq
            assert best is not None
            key = (t0, 0, best)
        self._peek_cache = key
        self._peek_epoch = self._write_epoch
        return key

    def run_due(self, limit_key: Optional[Tuple[float, int, int]]) -> int:
        """Execute every pending tick with key ``< limit_key``.

        ``limit_key=None`` (empty engine queue) runs one horizon batch.
        Returns the number of ticks executed.
        """
        fired = 0
        while True:
            if self._peek_epoch == self._write_epoch:
                # The engine peeked just before calling us; reuse its
                # block-scan instead of repeating it.
                key = self._peek_cache
                t0 = None if key is None else key[0]
            else:
                t0 = self._true_min()
            if t0 is None:
                break
            if limit_key is not None:
                limit_time, limit_prio, limit_seq = limit_key
                if t0 > limit_time:
                    break
                if t0 == limit_time:
                    ran = self._run_boundary(t0, limit_prio, limit_seq)
                    fired += ran
                    if ran == 0:
                        break
                    continue
                horizon = min(t0 + self._min_gap, limit_time)
            else:
                horizon = t0 + self._min_gap
            fired += self._run_span(horizon)
            if limit_key is None:
                break
        return fired

    def _run_span(self, horizon: float) -> int:
        """Extract and execute all ticks with ``time < horizon``."""
        times_parts: List[np.ndarray] = []
        seq_parts: List[np.ndarray] = []
        proto_parts: List[np.ndarray] = []
        row_parts: List[np.ndarray] = []
        for p, bmin in enumerate(self._bmin):
            col = self._next[p]
            seqs = self._seq[p]
            for block in np.nonzero(bmin < horizon)[0]:
                lo = int(block) << _BLOCK_SHIFT
                window = col[lo : lo + _BLOCK]
                offs = np.nonzero(window < horizon)[0]
                if offs.size:
                    rows = lo + offs
                    times_parts.append(window[offs])
                    seq_parts.append(seqs[rows])
                    row_parts.append(rows)
                    proto_parts.append(np.full(offs.size, p, dtype=np.int64))
        if not times_parts:
            return 0
        if len(times_parts) == 1 and times_parts[0].size == 1:
            return self._execute_single(
                float(times_parts[0][0]),
                int(proto_parts[0][0]),
                int(row_parts[0][0]),
            )
        times = np.concatenate(times_parts)
        seqs = np.concatenate(seq_parts)
        rows = np.concatenate(row_parts)
        protos = np.concatenate(proto_parts)
        order = np.lexsort((seqs, times))
        times = times[order]
        seqs = seqs[order]
        protos = protos[order]
        rows = rows[order]
        when_list, fast_uniq, fast_counts, slow_set = self._prepare_batch(
            times, protos, rows
        )
        return self._execute(
            times.tolist(),
            seqs,
            protos,
            rows,
            when_list,
            fast_uniq,
            fast_counts,
            slow_set,
        )

    def _prepare_batch(
        self,
        times: np.ndarray,
        protos: np.ndarray,
        rows: np.ndarray,
    ) -> Tuple[
        List[Optional[float]],
        Optional[np.ndarray],
        Optional[np.ndarray],
        frozenset,
    ]:
        """Vectorised pre-computation of each entry's reschedule time.

        The gap arithmetic runs elementwise in float64 — the exact
        operations of the scalar path, so the times are bit-identical
        — and each entry's jitter double is gathered from its peer's
        chunk buffer at ``cursor + occurrence-within-batch`` without
        advancing any cursor (the flush advances cursors only for
        draws the batch actually consumed).  Entries of a peer whose
        buffer would run dry mid-batch take the scalar slow path
        (``None`` marker); a peer's entries are all-fast or all-slow,
        so the two paths never interleave on one cursor.
        """
        m = rows.size
        if self._jf == 0.0:
            when = times + self._iv_arr[protos]
            return when.tolist(), None, None, _EMPTY_SET
        order = np.argsort(rows, kind="stable")
        rs = rows[order]
        newgrp = np.empty(m, dtype=bool)
        newgrp[0] = True
        newgrp[1:] = rs[1:] != rs[:-1]
        idx = np.arange(m)
        occ_sorted = idx - np.maximum.accumulate(np.where(newgrp, idx, 0))
        starts = np.nonzero(newgrp)[0]
        uniq = rs[starts]
        counts = np.diff(np.append(starts, m))
        # a row is slow if its last draw this batch would cross the
        # chunk boundary (or its buffer was never filled: cursor ==
        # _JITTER_CHUNK)
        row_slow = self._jit_pos[uniq] + counts > _JITTER_CHUNK
        entry_slow = np.empty(m, dtype=bool)
        entry_slow[order] = np.repeat(row_slow, counts)
        end_pos = np.empty(m, dtype=np.int64)
        end_pos[order] = self._jit_pos[rs] + occ_sorted
        u = np.zeros(m, dtype=np.float64)
        fast = np.nonzero(~entry_slow)[0]
        u[fast] = self._jit_buf[rows[fast], end_pos[fast]]
        gap = self._iv_arr[protos] + (
            self._neg_half_arr[protos] + self._span_arr[protos] * u
        )
        when = times + np.maximum(gap, 1e-9)
        when_list: List[Optional[float]] = when.tolist()
        slow_ks = np.nonzero(entry_slow)[0].tolist()
        for k in slow_ks:
            when_list[k] = None
        return (
            when_list,
            uniq[~row_slow],
            counts[~row_slow],
            frozenset(slow_ks),
        )

    def _run_boundary(self, t0: float, limit_prio: int, limit_seq: int) -> int:
        """Execute ticks at exactly ``t0`` whose ``(0, seq)`` precedes
        the heap event's ``(limit_prio, limit_seq)``."""
        entries: List[Tuple[int, int, int]] = []  # (seq, proto, row)
        for p, bmin in enumerate(self._bmin):
            col = self._next[p]
            seqs = self._seq[p]
            for block in np.nonzero(bmin == t0)[0]:
                lo = int(block) << _BLOCK_SHIFT
                for off in np.nonzero(col[lo : lo + _BLOCK] == t0)[0]:
                    row = lo + int(off)
                    seq = int(seqs[row])
                    if limit_prio > 0 or seq < limit_seq:
                        entries.append((seq, p, row))
        if not entries:
            return 0
        entries.sort()
        m = len(entries)
        if m == 1:
            return self._execute_single(t0, entries[0][1], entries[0][2])
        return self._execute(
            [t0] * m,
            np.array([seq for seq, _p, _row in entries], dtype=np.int64),
            np.array([p for _seq, p, _row in entries], dtype=np.int64),
            np.array([row for _seq, _p, row in entries], dtype=np.int64),
            [None] * m,
            None,
            None,
            frozenset(range(m)),
        )

    def _execute_single(self, t: float, p: int, row: int) -> int:
        """Scalar dispatch for a one-tick batch — the small-population
        common case.  Skips every piece of batch bookkeeping (the gap
        prepass, in-flight tracking, flush) while keeping the scalar
        loop's exact semantics: action, then — if still online — one
        jitter draw and one sequence claim, with the reschedule write
        revalidated against the column (churn during the action
        supersedes it, like :meth:`_flush_careful`)."""
        engine = self._engine
        engine.advance_to(t)
        self._actions[p](self._ids[row])
        self.ticks_by_protocol[p] += 1
        self.batches += 1
        if self.max_batch_size == 0:
            self.max_batch_size = 1
        self._write_epoch += 1
        if not self._online[row]:
            return 1
        if self._jf > 0.0:
            u = self._draw(row)
            interval, neg_half, span = self._params[p]
            gap = interval + (neg_half + span * u)
            if gap < 1e-9:
                gap = 1e-9
        else:
            gap = self._intervals[p]
        seq = self._engine.claim_seq()
        col = self._next[p]
        if col[row] != t:
            return 1  # superseded by churn during its own action
        when = t + gap
        col[row] = when
        self._seq[p][row] = seq
        bmin = self._bmin[p]
        block = row >> _BLOCK_SHIFT
        if when < bmin[block]:
            bmin[block] = when
        return 1

    def _execute(
        self,
        t_list: List[float],
        s_arr: np.ndarray,
        p_arr: np.ndarray,
        r_arr: np.ndarray,
        when_list: List[Optional[float]],
        fast_uniq: Optional[np.ndarray],
        fast_counts: Optional[np.ndarray],
        slow_set: frozenset,
    ) -> int:
        """Dispatch one ordered batch, advancing the clock per tick.

        This is the per-tick hot loop, and everything hoistable has
        been hoisted: reschedule times come precomputed from
        :meth:`_prepare_batch` (bit-identical float ops), and all
        column scatters — ``next_tick``, ``seq``, the block minima,
        the jitter cursors — are deferred to one flush per batch.
        Per tick the loop runs the action, claims a sequence number
        and records it; nothing touches numpy.

        Deferral is sound because an entry's columns are only read
        again after the flush: a peer cannot recur within a batch
        (the horizon bound) and the next extraction happens after
        this method returns.  A clean batch takes the vectorised
        :meth:`_flush_fast`; mid-batch churn, truncation or an
        offline-during-action entry switches to the per-entry
        :meth:`_flush_careful`, which revalidates each write against
        the columns (``peer_online``/``peer_offline`` write their
        columns directly, so a superseded entry's column no longer
        holds its extracted time).
        """
        engine = self._engine
        online = self._online
        nexts = self._next
        actions = self._actions
        batch_actions = self._batch_actions
        any_batch = self._any_batch
        ids = self._ids
        params = self._params
        jittered = self._jf > 0.0
        draw = self._draw
        epoch = self._churn_epoch
        n = len(t_list)
        p_list = p_arr.tolist()
        row_list = r_arr.tolist()
        #: per-entry claimed seq; -1 = skipped by revalidation,
        #: 0 = executed but went offline during its own action
        seq_list = [-1] * n
        self._inflight = (row_list, seq_list, slow_set)
        skipped = 0
        unresched = 0
        eseq = engine._seq
        iterated = n
        clock_checked = False
        k = 0
        while k < n:
            t = t_list[k]
            p = p_list[k]
            row = row_list[k]
            if self._churn_epoch != epoch and (
                not online[row] or nexts[p][row] != t
            ):
                # A peer flipped on/offline earlier in this batch and
                # superseded (or cancelled) this entry.
                skipped += 1
                k += 1
                continue
            if (
                any_batch
                and batch_actions[p] is not None
                and self._churn_epoch == epoch
            ):
                # Maximal same-protocol run — hand it to the protocol's
                # batch handler in one call.  No churn has happened
                # since extraction, so every entry in the run is valid,
                # and the handler's contract (no scheduling, no seq
                # claims, no churn) means the reschedule draws and seq
                # claims below land exactly where the scalar loop
                # would have put them.
                j = k + 1
                while j < n and p_list[j] == p:
                    j += 1
                if j - k >= 2:
                    if not clock_checked:
                        engine.advance_to(t)
                        clock_checked = True
                    batch_actions[p](
                        t_list[k:j],
                        [ids[r] for r in row_list[k:j]],
                        row_list[k:j],
                    )
                    if engine._seq != eseq or self._churn_epoch != epoch:
                        raise RuntimeError(
                            "batch protocol handler violated its "
                            "contract: it must not schedule events, "
                            "claim sequence numbers, or change peer "
                            "online status"
                        )
                    for kk in range(k, j):
                        if when_list[kk] is None:
                            if jittered:
                                u = draw(row_list[kk])
                                interval, neg_half, span = params[p]
                                gap = interval + (neg_half + span * u)
                                if gap < 1e-9:
                                    gap = 1e-9
                            else:
                                gap = params[p][0]
                            when_list[kk] = t_list[kk] + gap
                        eseq += 1
                        seq_list[kk] = eseq
                    engine._seq = eseq
                    k = j
                    continue
            # Inline advance_to: entries are time-sorted, so only the
            # batch's first executed tick needs the backwards check.
            if clock_checked:
                engine._now = t
            else:
                engine.advance_to(t)
                clock_checked = True
            actions[p](ids[row])
            seq_now = engine._seq
            action_claimed = seq_now != eseq
            if online[row]:
                if when_list[k] is None:
                    # Slow path: the peer's jitter chunk runs dry this
                    # batch (or a boundary batch skipped the prepass) —
                    # draw and compute the gap like the object engine.
                    if jittered:
                        u = draw(row)
                        interval, neg_half, span = params[p]
                        gap = interval + (neg_half + span * u)
                        if gap < 1e-9:
                            gap = 1e-9
                    else:
                        gap = params[p][0]
                    when_list[k] = t + gap
                eseq = seq_now + 1
                engine._seq = eseq
                seq_list[k] = eseq
            else:
                # Went offline during its own action: consumed already
                # (``peer_offline`` raised the column to inf), and the
                # object engine's stopped process draws nothing.
                eseq = seq_now
                seq_list[k] = 0
                unresched += 1
            k += 1
            if action_claimed and k < n:
                # The action scheduled (or claimed seqs for) something;
                # a new heap event may now precede the rest of the
                # batch.  Re-merge through the engine when it does.
                qkey = engine.next_event_key()
                if qkey is not None and qkey < (t_list[k], 0, s_arr[k]):
                    # Remaining entries stay scheduled in the columns
                    # and are re-extracted on the next pass.
                    iterated = k
                    break
        count = iterated - skipped
        if self._churn_epoch == epoch and iterated == n and unresched == 0:
            self._flush_fast(
                p_arr, r_arr, when_list, seq_list,
                fast_uniq, fast_counts, jittered,
            )
        else:
            self._flush_careful(
                iterated, t_list, p_list, row_list,
                when_list, seq_list, slow_set, jittered,
            )
        self._inflight = None
        self._inflight_reconciled.clear()
        self.batches += 1
        if count > self.max_batch_size:
            self.max_batch_size = count
        self._write_epoch += 1
        return count

    def _flush_fast(
        self,
        p_arr: np.ndarray,
        r_arr: np.ndarray,
        when_list: List[float],
        seq_list: List[int],
        fast_uniq: Optional[np.ndarray],
        fast_counts: Optional[np.ndarray],
        jittered: bool,
    ) -> None:
        """Vectorised flush for the common batch: no churn, no
        truncation, every entry executed and rescheduled."""
        when_np = np.array(when_list, dtype=np.float64)
        seq_np = np.array(seq_list, dtype=np.int64)
        ticks_by_protocol = self.ticks_by_protocol
        for p in range(len(self._next)):
            sel = np.nonzero(p_arr == p)[0]
            if not sel.size:
                continue
            ticks_by_protocol[p] += sel.size
            r = r_arr[sel]
            w = when_np[sel]
            self._next[p][r] = w
            self._seq[p][r] = seq_np[sel]
            # block minima: per-block group-min via one sort + reduceat
            blocks = r >> _BLOCK_SHIFT
            o = np.argsort(blocks, kind="stable")
            b = blocks[o]
            newb = np.empty(b.size, dtype=bool)
            newb[0] = True
            newb[1:] = b[1:] != b[:-1]
            starts = np.nonzero(newb)[0]
            mins = np.minimum.reduceat(w[o], starts)
            bmin = self._bmin[p]
            ub = b[starts]
            bmin[ub] = np.minimum(bmin[ub], mins)
        if jittered and fast_uniq is not None and fast_uniq.size:
            self._jit_pos[fast_uniq] += fast_counts

    def _flush_careful(
        self,
        iterated: int,
        t_list: List[float],
        p_list: List[int],
        row_list: List[int],
        when_list: List[Optional[float]],
        seq_list: List[int],
        slow_set: frozenset,
        jittered: bool,
    ) -> None:
        """Per-entry flush for batches with churn, truncation or
        offline-during-action entries.  Each write is revalidated
        against the column (a superseded entry's column no longer
        holds its extracted time), and jitter cursors advance only
        for draws the batch actually consumed from the fast buffers
        (slow-path draws advanced theirs inline; cursors reconciled
        mid-batch by ``peer_online`` are skipped)."""
        ticks_by_protocol = self.ticks_by_protocol
        reconciled = self._inflight_reconciled
        consumed: Dict[int, int] = {}
        for k in range(iterated):
            s = seq_list[k]
            if s < 0:
                continue  # skipped by churn revalidation
            p = p_list[k]
            ticks_by_protocol[p] += 1
            if s == 0:
                continue  # executed, went offline during its action
            row = row_list[k]
            if jittered and k not in slow_set and row not in reconciled:
                # The draw was consumed when the entry executed, even
                # if churn later superseded the reschedule itself.
                consumed[row] = consumed.get(row, 0) + 1
            col = self._next[p]
            if col[row] != t_list[k]:
                continue  # superseded after execution (churn)
            when = when_list[k]
            col[row] = when
            self._seq[p][row] = s
            bmin = self._bmin[p]
            block = row >> _BLOCK_SHIFT
            if when < bmin[block]:
                bmin[block] = when
        for row, c in consumed.items():
            self._jit_pos[row] += c

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def schedule_state(self) -> Dict[str, object]:
        """The scheduler's full pending state as JSON-clean types.

        Pairs with :meth:`restore_schedule_state`: restoring this dict
        (plus the registry's stream states, saved separately) replays
        the remaining run bit-identically — per-row next-tick times and
        seqs, the pre-drawn jitter buffers with their cursors, online
        flags/since-stamps, and the telemetry counters.  Must not be
        called from inside a running batch.
        """
        if self._inflight is not None:
            raise RuntimeError("cannot checkpoint mid-batch")
        if len(self._online) != len(self._ids):
            self._sync_rows()
        n = len(self._ids)
        return {
            "names": list(self._names),
            "ids": list(self._ids),
            "online": [bool(flag) for flag in self._online],
            "online_since": self._online_since[:n].tolist(),
            "next": [col[:n].tolist() for col in self._next],
            "seq": [col[:n].tolist() for col in self._seq],
            "jit_pos": self._jit_pos[:n].tolist(),
            "jit_buf": self._jit_buf[:n].tolist(),
            "ticks_by_protocol": list(self.ticks_by_protocol),
            "batches": self.batches,
            "max_batch_size": self.max_batch_size,
            "completed_session_seconds": self.completed_session_seconds,
        }

    def restore_schedule_state(self, state: Dict[str, object]) -> None:
        """Adopt a :meth:`schedule_state` snapshot.

        Rows are matched (or created) in saved order, so restored row
        numbers equal saved ones; block minima are rebuilt from the
        restored columns.  Jitter streams stay lazy — they re-resolve
        against the registry, whose stream states the caller restores
        before ticking resumes.
        """
        names = list(state["names"])  # type: ignore[arg-type]
        if names != self._names:
            raise ValueError(
                f"protocol mismatch: checkpoint has {names}, engine has "
                f"{self._names}"
            )
        ids = list(state["ids"])  # type: ignore[arg-type]
        if len(self._online) != len(self._ids):
            self._sync_rows()
        for i, peer_id in enumerate(ids):
            row = self._index.get(peer_id)
            if row is None:
                row = self._add_peer(peer_id)
            if row != i:
                raise ValueError(
                    f"row mismatch on restore: {peer_id!r} is row {row}, "
                    f"checkpoint expects {i}"
                )
        n = len(ids)
        online = state["online"]
        for i in range(n):
            self._online[i] = bool(online[i])  # type: ignore[index]
        self._online_since[:n] = np.asarray(
            state["online_since"], dtype=np.float64
        )
        for p in range(len(self._next)):
            self._next[p][:n] = np.asarray(state["next"][p], dtype=np.float64)  # type: ignore[index]
            self._seq[p][:n] = np.asarray(state["seq"][p], dtype=np.int64)  # type: ignore[index]
            # Rebuild the block minima from the restored column (the
            # tail beyond n is _INF from _grow).
            col = self._next[p]
            starts = np.arange(0, col.size, _BLOCK)
            mins = np.minimum.reduceat(col, starts) if col.size else col
            self._bmin[p][: mins.size] = mins
        self._jit_pos[:n] = np.asarray(state["jit_pos"], dtype=np.int64)
        self._jit_buf[:n] = np.asarray(state["jit_buf"], dtype=np.float64)
        self.ticks_by_protocol = [int(t) for t in state["ticks_by_protocol"]]  # type: ignore[union-attr]
        self.batches = int(state["batches"])  # type: ignore[arg-type]
        self.max_batch_size = int(state["max_batch_size"])  # type: ignore[arg-type]
        self.completed_session_seconds = float(
            state["completed_session_seconds"]  # type: ignore[arg-type]
        )
        self._inflight = None
        self._inflight_reconciled = set()
        self._churn_epoch += 1
        self._write_epoch += 1
        self._peek_epoch = -1

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Measured retained footprint of the scheduler's columns: the
        per-protocol next/seq/block-min arrays, the jitter buffers and
        cursors, the online flags and since-stamps, and the container
        overhead of the Python-side bookkeeping (peer id strings are
        shared with the row table and excluded, matching the accounting
        line the state store draws)."""
        total = self._online_since.nbytes + self._jit_buf.nbytes
        total += self._jit_pos.nbytes
        for cols in (self._next, self._seq, self._bmin):
            total += sys.getsizeof(cols)
            for arr in cols:
                total += arr.nbytes
        for container in (self._online, self._streams):
            total += sys.getsizeof(container)
        return total

    def telemetry(self) -> Dict[str, object]:
        """Counters for ``run_summary()``: population size, online
        count, ticks dispatched per protocol, batch shape, and the
        scheduler columns' measured footprint."""
        ticks = sum(self.ticks_by_protocol)
        peers_online = sum(self._online)
        return {
            "engine": "soa",
            "peers_total": len(self._ids),
            "peers_online": peers_online,
            "ticks": ticks,
            "batches": self.batches,
            "mean_batch_size": (ticks / self.batches) if self.batches else 0.0,
            "max_batch_size": self.max_batch_size,
            "ticks_by_protocol": dict(zip(self._names, self.ticks_by_protocol)),
            "completed_session_seconds": self.completed_session_seconds,
            "scheduler_memory_bytes": self.memory_bytes(),
        }
