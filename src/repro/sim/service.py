"""Long-lived service mode: sharded runs with crash-safe checkpoints.

The paper's host system "provides local database services allowing
state to be maintained over sessions" (§I) — a deployment is a
long-running process that restarts, not a batch run.  This module
operates the simulator that way:

* a :class:`ServiceShard` is one full protocol stack (engine, session,
  :class:`~repro.core.runtime.ProtocolRuntime`) over an always-online
  synthetic population, checkpointing its **complete** state — node
  databases with per-node RNG streams (persistence v3), registry
  stream states, the engine clock/seq counters, every pending schedule
  entry (heap events and the SoA scheduler's columns) and the
  run-level counters — on a configurable simulated-time interval;
* a :class:`ServiceSupervisor` runs N shards in spawn-safe worker
  processes (reusing ``repro.sim.parallel``'s plumbing), publishes
  live operational counters through a shared-memory block, restarts
  crashed shards from their last checkpoint, and snapshots everything
  as a :class:`ServiceStatus`.

Crash contract: ``kill -9`` on a shard worker, followed by a restore
from its last checkpoint, replays **bit-identically** to the same
shard never having been interrupted — same node states (including RNG
positions), same summaries, same schedule.  Two things make that hold:

* checkpoints are written atomically (same-directory temp +
  ``os.replace``), so a kill mid-write leaves the previous checkpoint
  readable instead of a torn JSON;
* both the interrupted and the uninterrupted run advance the clock in
  the same checkpoint-boundary slices, so the engine sees the same
  ``run_until`` call pattern and the SoA scheduler forms the same
  batches.

Cache warmth (BarterCast record/contribution caches) is performance
state, not protocol state: a restarted process starts cold, exactly
like a rebooted client.  :meth:`ServiceShard.identity_state` is the
comparison surface that excludes it (and measured memory telemetry,
which is layout- not protocol-determined).
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional

import multiprocessing as mp

import numpy as np

from repro.bittorrent.session import BitTorrentSession, SessionConfig
from repro.core.experience import AlwaysExperienced
from repro.core.node import NodeConfig
from repro.core.persistence import (
    atomic_write_text,
    node_from_dict,
    node_to_dict,
)
from repro.core.runtime import ProtocolRuntime, RuntimeConfig
from repro.core.votes import Vote
from repro.sim.aggregation import (
    AggregationConfig,
    DirectoryDigestBoard,
    ShardAggregator,
)
from repro.sim.engine import Engine
from repro.sim.parallel import (
    AttachedSegment,
    SegmentSpec,
    create_segment,
    ensure_child_importable,
    spawn_main_is_reimportable,
)
from repro.sim.rng import RngRegistry
from repro.traces.model import EventKind, PeerProfile, Trace, TraceEvent

#: On-disk checkpoint format of :meth:`ServiceShard.checkpoint_state`.
#: Format 2 adds the inter-shard aggregation section (cursors, pending
#: digests, backoff, ops) and the columnar row-table interning order
#: (remote merges intern foreign ids in arrival order); format-1
#: checkpoints still restore for shards that have aggregation disabled.
CHECKPOINT_FORMAT = 2
_READABLE_FORMATS = (1, CHECKPOINT_FORMAT)

#: A round interval so large the session's recurring transfer round is
#: a single far-future heap entry (service traces have no swarms, so
#: rounds would be no-ops anyway — but the entry must survive
#: checkpoints with its exact (time, seq) key either way).
_IDLE_ROUND_INTERVAL = 1.0e15

#: Nominal service horizon; shards run in checkpoint slices, so the
#: trace duration only has to exceed any realistic target time.
_SERVICE_TRACE_DURATION = 1.0e18

#: Node counters that must survive a restore for ``run_summary()``
#: bit-identity (they are volatile in the node-level persistence
#: format by design — a rebooted *client* resets them; a restored
#: *shard* must not).
_NODE_COUNTERS = (
    "moderations_received",
    "votes_merged",
    "votes_rejected_inexperienced",
    "votes_truncated",
    "vp_requests_answered",
    "vp_requests_declined",
)

# Live-counter block layout: one float64 row per shard.
_COUNTER_COLS = (
    "sim_now",
    "target",
    "events_fired",
    "votes_merged",
    "moderations_received",
    "exchanges",
    "checkpoints",
    "checkpoint_bytes_total",
    "checkpoint_wall_total",
    "checkpoint_wall_last",
    "digests_published",
    "digests_pulled",
    "dht_messages",
    "remote_votes_merged",
    "agg_pending_votes",
    "heartbeat",
    "pid",
)
_COL = {name: i for i, name in enumerate(_COUNTER_COLS)}


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardConfig:
    """One shard's deterministic build recipe (picklable; travels to
    the spawn worker verbatim, so a restart rebuilds the same stack)."""

    shard_id: int = 0
    peers: int = 64
    seed: int = 0
    #: first ``moderators`` peers author ``moderations_per_moderator``
    #: moderations each at t=0
    moderators: int = 4
    moderations_per_moderator: int = 3
    #: per (peer, moderator) pair: probability of declaring a vote
    #: intention, and the negative share of declared votes
    vote_probability: float = 0.6
    negative_fraction: float = 0.2
    moderation_interval: float = 300.0
    vote_interval: float = 300.0
    bartercast_interval: float = 900.0
    jitter_fraction: float = 0.1
    message_loss: float = 0.0
    population_engine: str = "auto"
    columnar_state: str = "auto"
    node: NodeConfig = field(default_factory=NodeConfig)
    #: inter-shard vote aggregation over the Chord ring; ``None``
    #: (default) keeps shards fully isolated as in PR 9
    aggregation: Optional[AggregationConfig] = None

    def peer_ids(self) -> List[str]:
        """Zero-padded ids: sorted order == creation order == row order."""
        return [f"s{self.shard_id:02d}p{i:05d}" for i in range(self.peers)]

    def registry_seed(self) -> int:
        """Per-shard root seed (distinct streams across shards)."""
        return (self.seed * 1_000_003 + 7919 * self.shard_id) % (2**63)


@dataclass(frozen=True)
class ServiceConfig:
    """Supervisor-level parameters."""

    shards: int = 2
    until: float = 4 * 3600.0
    checkpoint_interval: float = 3600.0
    shard: ShardConfig = field(default_factory=ShardConfig)
    #: how many times a crashed shard is restarted from its checkpoint
    #: before the supervisor gives up on it
    max_restarts: int = 3

    def shard_config(self, shard_id: int) -> ShardConfig:
        return replace(self.shard, shard_id=shard_id)


def _checkpoint_boundaries(start: float, until: float, interval: float) -> List[float]:
    """Checkpoint times in ``(start, until]``: integer multiples of
    ``interval`` plus the horizon itself.  Both the uninterrupted and
    the resumed run derive slices from this, which is what keeps their
    ``run_until`` call patterns — and therefore their SoA batch shapes
    — identical."""
    if interval <= 0:
        raise ValueError("checkpoint interval must be positive")
    out: List[float] = []
    k = int(start / interval) + 1
    t = k * interval
    while t < until:
        if t > start:
            out.append(t)
        k += 1
        t = k * interval
    if until > start:
        out.append(until)
    return out


# ----------------------------------------------------------------------
# One shard
# ----------------------------------------------------------------------
class ServiceShard:
    """One full protocol stack run as a checkpointable service shard.

    Build path::

        shard = ServiceShard(config)
        shard.start()                  # trace + deterministic workload
        shard.run_until(t)             # in checkpoint-boundary slices

    Restore path::

        shard = ServiceShard.restore(config, state_dict)

    after which the shard continues bit-identically to one that was
    never interrupted (see the module docstring's crash contract).
    """

    def __init__(self, config: ShardConfig):
        self.config = config
        self.engine = Engine()
        self.rng = RngRegistry(config.registry_seed())
        peer_ids = config.peer_ids()
        trace = Trace(
            duration=_SERVICE_TRACE_DURATION,
            peers={pid: PeerProfile(peer_id=pid) for pid in peer_ids},
            swarms={},
            events=[
                TraceEvent(time=0.0, peer_id=pid, kind=EventKind.SESSION_START)
                for pid in peer_ids
            ],
            name=f"service-shard-{config.shard_id}",
        )
        self.session = BitTorrentSession(
            self.engine,
            trace,
            self.rng,
            SessionConfig(round_interval=_IDLE_ROUND_INTERVAL),
        )
        self.runtime = ProtocolRuntime(
            self.session,
            self.rng,
            RuntimeConfig(
                node=config.node,
                moderation_interval=config.moderation_interval,
                vote_interval=config.vote_interval,
                bartercast_interval=config.bartercast_interval,
                jitter_fraction=config.jitter_fraction,
                message_loss=config.message_loss,
                population_engine=config.population_engine,
                columnar_state=config.columnar_state,
            ),
            experience=AlwaysExperienced(),
        )
        #: inter-shard aggregation state (None when disabled).  Built
        #: before any checkpoint so its RNG stream is registered — the
        #: generic ``rng_streams`` persistence then carries it.
        self.aggregator: Optional[ShardAggregator] = (
            ShardAggregator(config.aggregation, config.shard_id, self.rng)
            if config.aggregation is not None
            else None
        )
        self._started = False
        #: operational (non-identity) counters
        self.ops: Dict[str, float] = {
            "checkpoints": 0,
            "checkpoint_bytes_last": 0,
            "checkpoint_bytes_total": 0,
            "checkpoint_wall_last": 0.0,
            "checkpoint_wall_total": 0.0,
            "restores": 0,
        }

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bring every peer online and seed the deterministic workload
        (moderations authored at t=0, vote intentions that fire as
        ModerationCast spreads the metadata)."""
        if self._started:
            raise RuntimeError("shard already started")
        self._started = True
        self.session.start()
        self.engine.run_until(0.0)
        cfg = self.config
        peer_ids = cfg.peer_ids()
        moderator_ids = peer_ids[: cfg.moderators]
        for pid in moderator_ids:
            node = self.runtime.nodes[pid]
            for j in range(cfg.moderations_per_moderator):
                node.create_moderation(
                    torrent_id=f"t-{pid}-{j}",
                    title=f"release {j} by {pid}",
                    now=0.0,
                )
        workload = self.rng.stream("service-workload")
        for pid in peer_ids:
            node = self.runtime.nodes[pid]
            for mod_id in moderator_ids:
                if mod_id == pid:
                    continue
                if workload.random() < cfg.vote_probability:
                    vote = (
                        Vote.NEGATIVE
                        if workload.random() < cfg.negative_fraction
                        else Vote.POSITIVE
                    )
                    node.set_vote_intention(mod_id, vote)

    def run_until(self, end_time: float) -> int:
        return self.engine.run_until(end_time)

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------
    def _session_round_entry(self) -> Optional[Dict[str, float]]:
        """The pending transfer-round heap entry's exact key."""
        for entry_time, prio, seq, handle in self.engine.live_entries():
            if handle.callback == self.session._run_rounds:
                return {"time": entry_time, "priority": prio, "seq": seq}
        return None

    def _population_state(self) -> Dict[str, Any]:
        if self.runtime.population_engine == "soa":
            population = self.runtime.materialize_population()
            return {"engine": "soa", "schedule": population.schedule_state()}
        # Object engine: map each peer's pending PeriodicProcess ticks
        # back to their exact heap keys by handle identity.
        by_handle = {
            id(handle): (entry_time, seq)
            for entry_time, _prio, seq, handle in self.engine.live_entries()
        }
        procs_state: Dict[str, List[Optional[Dict[str, float]]]] = {}
        for pid, procs in self.runtime._processes.items():
            rows: List[Optional[Dict[str, float]]] = []
            for proc in procs:
                handle = proc._handle
                if proc.running and handle is not None and handle.active:
                    entry_time, seq = by_handle[id(handle)]
                    rows.append({"time": entry_time, "seq": seq, "ticks": proc.ticks})
                else:
                    rows.append(None)
            procs_state[pid] = rows
        return {"engine": "object", "procs": procs_state}

    def checkpoint_state(self) -> Dict[str, Any]:
        """The shard's complete state as one JSON-clean dict."""
        if not self._started:
            raise RuntimeError("cannot checkpoint before start()")
        engine = self.engine
        rng_streams = [
            [list(key), gen.bit_generator.state]
            for key, gen in self.rng._streams.items()
        ]
        nodes = [
            {
                "state": node_to_dict(node),
                "online": bool(node.online),
                "counters": {name: getattr(node, name) for name in _NODE_COUNTERS},
            }
            for node in self.runtime.nodes.values()
        ]
        state = {
            "format": CHECKPOINT_FORMAT,
            "shard_id": self.config.shard_id,
            "sim": {
                "now": engine.now,
                "seq": engine._seq,
                "events_fired": engine.events_fired,
            },
            "session": {
                "last_round_at": self.session._last_round_at,
                "round": self._session_round_entry(),
            },
            "registry_order": self.session.registry.online_peers(),
            "rng_streams": rng_streams,
            "population": self._population_state(),
            "counters": self.runtime.counters_state(),
            "nodes": nodes,
            "ops": dict(self.ops),
        }
        if self.runtime._col_store is not None:
            # Shared row-table interning order.  Remote digest merges
            # intern *foreign* voter and moderator ids in arrival
            # order, which node-by-node restore cannot reproduce — and
            # the SoA schedule restore asserts exact row numbers.
            store = self.runtime._col_store
            state["columnar_rows"] = {
                "rows": list(store.rows.ids),
                "mods": list(store.mods.ids),
            }
        if self.aggregator is not None:
            state["aggregation"] = self.aggregator.state_dict()
        return state

    def write_checkpoint(self, directory: Path) -> int:
        """Atomically persist :meth:`checkpoint_state`; returns bytes
        written (ops counters pick up latency and size)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        t0 = time.perf_counter()
        payload = json.dumps(self.checkpoint_state(), separators=(",", ":"))
        atomic_write_text(directory / "checkpoint.json", payload)
        wall = time.perf_counter() - t0
        size = len(payload.encode("utf-8"))
        self.ops["checkpoints"] += 1
        self.ops["checkpoint_bytes_last"] = size
        self.ops["checkpoint_bytes_total"] += size
        self.ops["checkpoint_wall_last"] = wall
        self.ops["checkpoint_wall_total"] += wall
        return size

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    @classmethod
    def restore(cls, config: ShardConfig, state: Dict[str, Any]) -> "ServiceShard":
        """Rebuild a shard positioned exactly at a checkpoint."""
        fmt = state.get("format")
        if fmt not in _READABLE_FORMATS:
            raise ValueError(f"unsupported shard checkpoint format {fmt!r}")
        if state.get("shard_id") != config.shard_id:
            raise ValueError(
                f"checkpoint is for shard {state.get('shard_id')!r}, "
                f"config says {config.shard_id!r}"
            )
        shard = cls(config)
        shard._started = True
        engine = shard.engine
        sim = state["sim"]
        engine.restore_clock(
            sim["now"], seq=sim["seq"], events_fired=sim["events_fired"]
        )
        # Session: trace events all fired at t=0; only the recurring
        # round entry (and its cadence anchor) survives checkpoints.
        session = shard.session
        session._started = True
        session._last_round_at = state["session"]["last_round_at"]
        round_entry = state["session"]["round"]
        if round_entry is not None:
            engine.restore_event(
                round_entry["time"],
                int(round_entry["priority"]),
                int(round_entry["seq"]),
                session._run_rounds,
            )
        # Online order drives OraclePSS's index->peer mapping; replay
        # it exactly (no listeners are registered at this point).
        for pid in state["registry_order"]:
            session.registry.set_online(pid)
        # Stream states: the registry memoises by key, so components
        # that already grabbed a generator in __init__ (pss,
        # message-loss) observe the restored state through the same
        # object.
        for key, gen_state in state["rng_streams"]:
            shard.rng.stream(*key).bit_generator.state = gen_state
        # Nodes, in saved (== creation == columnar row) order.  The
        # node's RNG comes from the v3 payload; per-run counters are
        # volatile in the node format but durable at the shard level.
        # Rows are pre-assigned first: restoring a ballot box interns
        # its *voters* into the shared row table, so without this the
        # first node's voters would grab rows ahead of later nodes.
        # Format 2 saves the whole interning order (aggregation merges
        # remote voters/moderators in arrival order, which node order
        # cannot reproduce); format 1 falls back to node order, which
        # is exact when every voter is a local peer.
        runtime = shard.runtime
        if runtime._col_store is not None:
            saved_rows = state.get("columnar_rows")
            if saved_rows is not None:
                for pid in saved_rows["rows"]:
                    runtime._col_store.ensure_row(pid)
                for mid in saved_rows["mods"]:
                    runtime._col_store.mods.row(mid)
            else:
                for rec in state["nodes"]:
                    runtime._col_store.ensure_row(rec["state"]["peer_id"])
        for rec in state["nodes"]:
            node = node_from_dict(rec["state"], col_store=runtime._col_store)
            node.online = bool(rec["online"])
            for name, value in rec["counters"].items():
                setattr(node, name, int(value))
            runtime.nodes[node.peer_id] = node
        runtime.restore_counters(state["counters"])
        population = state["population"]
        if population["engine"] == "soa":
            if runtime.population_engine != "soa":
                raise ValueError("checkpoint used the soa engine, config does not")
            runtime.materialize_population().restore_schedule_state(
                population["schedule"]
            )
        else:
            if runtime.population_engine == "soa":
                raise ValueError("checkpoint used the object engine, config does not")
            for pid, rows in population["procs"].items():
                procs = runtime._processes_for(pid)
                for proc, row in zip(procs, rows):
                    if row is not None:
                        proc.restore(row["time"], int(row["seq"]), int(row["ticks"]))
        aggregation_state = state.get("aggregation")
        if shard.aggregator is not None:
            if aggregation_state is None:
                raise ValueError(
                    "config enables aggregation but the checkpoint has no "
                    "aggregation state"
                )
            shard.aggregator.restore_state(aggregation_state)
        elif aggregation_state is not None:
            raise ValueError(
                "checkpoint carries aggregation state but the config "
                "disables aggregation"
            )
        shard.ops.update(state.get("ops", {}))
        shard.ops["restores"] = shard.ops.get("restores", 0) + 1
        return shard

    @classmethod
    def restore_from(cls, config: ShardConfig, directory: Path) -> "ServiceShard":
        path = Path(directory) / "checkpoint.json"
        return cls.restore(config, json.loads(path.read_text(encoding="utf-8")))

    # ------------------------------------------------------------------
    # Service loop & reporting
    # ------------------------------------------------------------------
    def run_service(
        self,
        until: float,
        checkpoint_interval: float,
        directory: Optional[Path] = None,
        should_stop=None,
        on_slice=None,
        board=None,
    ) -> None:
        """Advance to ``until`` in checkpoint-boundary slices, writing
        a checkpoint (when ``directory`` is set) at every boundary.

        With aggregation enabled and a ``board``, each slice runs the
        aggregation cycle: pending remote digests merge at the *start*
        of the slice (so a restore at a boundary replays the staged
        merge before re-running the slice), and publish/pull happen at
        the boundary, *before* the checkpoint captures their cursors
        and staged digests.

        ``should_stop()`` is polled between slices (graceful SIGTERM);
        ``on_slice(shard)`` runs after every slice (live counters)."""
        aggregator = self.aggregator if board is not None else None
        for boundary in _checkpoint_boundaries(
            self.engine.now, until, checkpoint_interval
        ):
            if aggregator is not None:
                aggregator.merge_pending(self)
            self.run_until(boundary)
            if aggregator is not None:
                aggregator.publish(self, board)
                aggregator.pull(self, board)
            if directory is not None:
                self.write_checkpoint(directory)
            if on_slice is not None:
                on_slice(self)
            if should_stop is not None and should_stop():
                return

    def eviction_pressure(self) -> float:
        """Share of nodes whose ballot box sits at ``B_max`` (every
        further merge of a new voter evicts) — the live saturation
        signal for the vote-sample stores."""
        nodes = self.runtime.nodes
        if not nodes:
            return 0.0
        full = sum(
            1
            for node in nodes.values()
            if node.ballot_box.num_unique_users() >= node.config.b_max
        )
        return full / len(nodes)

    def run_summary(self) -> Dict[str, Any]:
        """The runtime's summary plus a ``service`` section (shard id,
        clock, checkpoint ops, eviction pressure)."""
        summary = self.runtime.run_summary()
        summary["service"] = {
            "shard_id": self.config.shard_id,
            "sim_now": self.engine.now,
            "events_fired": self.engine.events_fired,
            "eviction_pressure": self.eviction_pressure(),
            "ops": dict(self.ops),
        }
        if self.aggregator is not None:
            summary["service"]["aggregation"] = dict(self.aggregator.ops)
        return summary

    def identity_state(self) -> Dict[str, Any]:
        """The bit-identity comparison surface: everything protocol-
        determined, nothing process-local.

        Excluded (see module docstring): BarterCast cache telemetry
        (cold after a restart by design), measured memory footprints
        (layout-determined), and checkpoint ops."""
        summary = self.runtime.run_summary()
        summary["bartercast"] = {
            "exchanges": summary["bartercast"]["exchanges"]
        }
        population = dict(summary["population"])
        population.pop("ballot_memory_bytes", None)
        population.pop("scheduler_memory_bytes", None)
        summary["population"] = population
        state = {
            "sim_now": self.engine.now,
            "events_fired": self.engine.events_fired,
            "summary": summary,
            "nodes": [node_to_dict(node) for node in self.runtime.nodes.values()],
        }
        if self.aggregator is not None:
            # Deterministic under lockstep driving (ShardCluster /
            # single-shard run_service): epoch, cursors, staged
            # digests, and message ledgers all replay bit-identically.
            state["aggregation"] = self.aggregator.state_dict()
        return state


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
_WORKER_STOP = False


def _worker_sigterm(_signum, _frame) -> None:  # pragma: no cover - signal path
    global _WORKER_STOP
    _WORKER_STOP = True


def _shard_worker_main(
    config: ShardConfig,
    shard_dir: str,
    until: float,
    checkpoint_interval: float,
    resume: bool,
    counters_spec: Optional[SegmentSpec],
    counters_row: int,
) -> None:
    """Spawn entry point for one shard worker.

    Builds (or restores) the shard, runs it to ``until`` in checkpoint
    slices, and mirrors live counters into the supervisor's shared
    block after every slice.  SIGTERM checkpoints and exits cleanly;
    SIGKILL is the crash case the checkpoint format is built for.
    """
    global _WORKER_STOP
    _WORKER_STOP = False
    signal.signal(signal.SIGTERM, _worker_sigterm)
    directory = Path(shard_dir)
    checkpoint_path = directory / "checkpoint.json"
    if resume and checkpoint_path.exists():
        shard = ServiceShard.restore_from(config, directory)
    else:
        shard = ServiceShard(config)
        shard.start()
    # Aggregating workers share one digest directory next to the shard
    # directories — the storage half of the DHT, which (unlike the
    # worker process) survives a SIGKILL.
    board = (
        DirectoryDigestBoard(directory.parent / "dht")
        if shard.aggregator is not None
        else None
    )

    segment = (
        AttachedSegment(counters_spec, writable=True)
        if counters_spec is not None
        else None
    )
    counters = segment.arrays["counters"] if segment is not None else None
    wall_start = time.perf_counter()

    def publish(s: ServiceShard) -> None:
        if counters is None:
            return
        row = counters[counters_row]
        node_counters = s.runtime.node_counters()
        row[_COL["sim_now"]] = s.engine.now
        row[_COL["target"]] = until
        row[_COL["events_fired"]] = s.engine.events_fired
        row[_COL["votes_merged"]] = node_counters["votes_merged"]
        row[_COL["moderations_received"]] = node_counters["moderations_received"]
        row[_COL["exchanges"]] = s.runtime.traffic.total_exchanges()
        row[_COL["checkpoints"]] = s.ops["checkpoints"]
        row[_COL["checkpoint_bytes_total"]] = s.ops["checkpoint_bytes_total"]
        row[_COL["checkpoint_wall_total"]] = s.ops["checkpoint_wall_total"]
        row[_COL["checkpoint_wall_last"]] = s.ops["checkpoint_wall_last"]
        if s.aggregator is not None:
            agg = s.aggregator.ops
            row[_COL["digests_published"]] = agg["digests_published"]
            row[_COL["digests_pulled"]] = agg["digests_pulled"]
            row[_COL["dht_messages"]] = agg["dht_messages"]
            row[_COL["remote_votes_merged"]] = agg["remote_votes_merged"]
            row[_COL["agg_pending_votes"]] = agg["pending_votes"]
        row[_COL["heartbeat"]] = time.time()
        row[_COL["pid"]] = os.getpid()

    publish(shard)
    try:
        shard.run_service(
            until,
            checkpoint_interval,
            directory=directory,
            should_stop=lambda: _WORKER_STOP,
            on_slice=publish,
            board=board,
        )
        summary = shard.run_summary()
        summary["service"]["worker_wall_seconds"] = time.perf_counter() - wall_start
        atomic_write_text(directory / "status.json", json.dumps(summary))
    finally:
        if segment is not None:
            segment.close()


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
@dataclass
class ServiceStatus:
    """One snapshot of the whole service's operational counters.

    Rates are differenced between consecutive supervisor snapshots
    (wall-clock), so they reflect live throughput, not lifetime means.
    """

    wall_time: float
    shards: List[Dict[str, Any]]
    totals: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


class ServiceSupervisor:
    """Runs N shard workers, publishes status, survives crashes.

    Usage::

        with ServiceSupervisor(config, directory) as sup:
            sup.start()
            while not sup.done():
                time.sleep(5)
                sup.poll()
                print(sup.status().totals)
    """

    def __init__(self, config: ServiceConfig, directory: Path, resume: bool = False):
        if config.shards < 1:
            raise ValueError("need at least one shard")
        self.config = config
        self.directory = Path(directory)
        self.resume = resume
        self._ctx = mp.get_context("spawn")
        self._procs: List[Optional[mp.process.BaseProcess]] = [None] * config.shards
        self._restarts = [0] * config.shards
        self._gave_up = [False] * config.shards
        self._shm = None
        self._spec: Optional[SegmentSpec] = None
        self._view: Optional[np.ndarray] = None
        self._prev_snapshot: Optional[List[Dict[str, float]]] = None
        self._prev_wall: Optional[float] = None

    # ------------------------------------------------------------------
    def shard_dir(self, shard_id: int) -> Path:
        return self.directory / f"shard-{shard_id:02d}"

    def start(self) -> None:
        if not spawn_main_is_reimportable():
            raise RuntimeError(
                "spawn workers cannot re-import __main__ here; run the "
                "service from a real script or module"
            )
        ensure_child_importable()
        self.directory.mkdir(parents=True, exist_ok=True)
        zeros = np.zeros((self.config.shards, len(_COUNTER_COLS)), dtype=np.float64)
        self._shm, self._spec = create_segment({"counters": zeros})
        self._view = np.ndarray(
            zeros.shape, dtype=np.float64, buffer=self._shm.buf,
            offset=self._spec.entries[0][1],
        )
        for shard_id in range(self.config.shards):
            self._spawn(shard_id, resume=self.resume)

    def _spawn(self, shard_id: int, resume: bool) -> None:
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                self.config.shard_config(shard_id),
                str(self.shard_dir(shard_id)),
                self.config.until,
                self.config.checkpoint_interval,
                resume,
                self._spec,
                shard_id,
            ),
            daemon=True,
        )
        proc.start()
        self._procs[shard_id] = proc

    # ------------------------------------------------------------------
    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL a shard worker (crash-injection hook; the next
        :meth:`poll` restarts it from its last checkpoint)."""
        proc = self._procs[shard_id]
        if proc is not None and proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)
            proc.join()

    def poll(self) -> None:
        """Reap exited workers; restart crashed ones from checkpoints."""
        for shard_id, proc in enumerate(self._procs):
            if proc is None or proc.is_alive():
                continue
            proc.join()
            if proc.exitcode == 0:
                self._procs[shard_id] = None
                continue
            if self._restarts[shard_id] >= self.config.max_restarts:
                self._procs[shard_id] = None
                self._gave_up[shard_id] = True
                continue
            self._restarts[shard_id] += 1
            self._spawn(shard_id, resume=True)

    def done(self) -> bool:
        return all(proc is None for proc in self._procs)

    # ------------------------------------------------------------------
    def status(self) -> ServiceStatus:
        """Snapshot the live counters block into a :class:`ServiceStatus`
        (rates differenced against the previous snapshot)."""
        now_wall = time.time()
        view = self._view
        rows: List[Dict[str, float]] = []
        if view is not None:
            for shard_id in range(self.config.shards):
                rows.append(
                    {name: float(view[shard_id, i]) for name, i in _COL.items()}
                )
        shards: List[Dict[str, Any]] = []
        max_sim = max((row["sim_now"] for row in rows), default=0.0)
        dt = (
            now_wall - self._prev_wall
            if self._prev_wall is not None and now_wall > self._prev_wall
            else None
        )
        for shard_id, row in enumerate(rows):
            prev = (
                self._prev_snapshot[shard_id]
                if self._prev_snapshot is not None
                else None
            )

            def rate(key: str) -> float:
                if prev is None or dt is None:
                    return 0.0
                return max(0.0, row[key] - prev[key]) / dt

            proc = self._procs[shard_id]
            ckpts = row["checkpoints"]
            shards.append(
                {
                    "shard_id": shard_id,
                    "alive": bool(proc is not None and proc.is_alive()),
                    "gave_up": self._gave_up[shard_id],
                    "restarts": self._restarts[shard_id],
                    "pid": int(row["pid"]),
                    "sim_now": row["sim_now"],
                    "target": row["target"],
                    "lag_behind_leader": max_sim - row["sim_now"],
                    "events_fired": int(row["events_fired"]),
                    "votes_merged": int(row["votes_merged"]),
                    "merges_per_sec": rate("votes_merged"),
                    "votes_per_sec": rate("votes_merged"),
                    "moderations_per_sec": rate("moderations_received"),
                    "exchanges_per_sec": rate("exchanges"),
                    "events_per_sec": rate("events_fired"),
                    "checkpoints": int(ckpts),
                    "checkpoint_bytes_mean": (
                        row["checkpoint_bytes_total"] / ckpts if ckpts else 0.0
                    ),
                    "checkpoint_wall_last": row["checkpoint_wall_last"],
                    "checkpoint_wall_total": row["checkpoint_wall_total"],
                    "digests_published_per_sec": rate("digests_published"),
                    "digests_pulled_per_sec": rate("digests_pulled"),
                    "dht_messages_per_sec": rate("dht_messages"),
                    "remote_votes_merged": int(row["remote_votes_merged"]),
                    "merge_lag_votes": int(row["agg_pending_votes"]),
                    "heartbeat_age": (
                        now_wall - row["heartbeat"] if row["heartbeat"] else None
                    ),
                }
            )
        totals: Dict[str, Any] = {
            "shards": self.config.shards,
            "alive": sum(1 for s in shards if s["alive"]),
            "sim_now_min": min((s["sim_now"] for s in shards), default=0.0),
            "sim_now_max": max_sim,
            "max_lag": max((s["lag_behind_leader"] for s in shards), default=0.0),
            "votes_merged": sum(s["votes_merged"] for s in shards),
            "merges_per_sec": sum(s["merges_per_sec"] for s in shards),
            "exchanges_per_sec": sum(s["exchanges_per_sec"] for s in shards),
            "checkpoints": sum(s["checkpoints"] for s in shards),
            "restarts": sum(self._restarts),
            "dht_messages_per_sec": sum(s["dht_messages_per_sec"] for s in shards),
            "merge_lag_votes": sum(s["merge_lag_votes"] for s in shards),
        }
        self._prev_snapshot = rows
        self._prev_wall = now_wall
        return ServiceStatus(wall_time=now_wall, shards=shards, totals=totals)

    def shard_summary(self, shard_id: int) -> Optional[Dict[str, Any]]:
        """The shard's last written ``status.json`` (full run_summary
        including cache hit rates), or ``None`` before the first one."""
        path = self.shard_dir(shard_id) / "status.json"
        if not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 30.0) -> None:
        """SIGTERM every worker (each writes a final checkpoint)."""
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        deadline = time.time() + timeout
        for proc in self._procs:
            if proc is not None:
                proc.join(max(0.0, deadline - time.time()))

    def close(self) -> None:
        self.stop(timeout=5.0)
        for shard_id, proc in enumerate(self._procs):
            if proc is not None and proc.is_alive():  # pragma: no cover
                os.kill(proc.pid, signal.SIGKILL)
                proc.join()
            self._procs[shard_id] = None
        self._view = None
        if self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm.close()
            self._shm = None

    def __enter__(self) -> "ServiceSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
