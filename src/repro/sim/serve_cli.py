"""``python -m repro serve`` — run the long-lived service mode.

Spawns N shard workers (see :mod:`repro.sim.service`), each advancing
an always-online population in checkpoint-interval slices and writing
crash-safe checkpoints to ``--dir``.  The supervisor prints a status
line per ``--status-interval`` wall seconds (live merges/sec, lag,
checkpoint ops), restarts crashed shards from their last checkpoint,
and writes a final ``service_status.json``.

::

    python -m repro serve --shards 4 --peers 200 --until 86400 \\
        --checkpoint-interval 3600 --dir runs/service
    python -m repro serve --resume runs/service    # pick up after a kill
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core.persistence import atomic_write_text
from repro.sim.aggregation import AggregationConfig
from repro.sim.service import ServiceConfig, ServiceSupervisor, ShardConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="long-lived sharded service mode with crash-safe checkpoints",
    )
    parser.add_argument("--shards", type=int, default=2, help="worker shard count")
    parser.add_argument("--peers", type=int, default=64, help="peers per shard")
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--until", type=float, default=24 * 3600.0,
        help="simulated horizon per shard (seconds)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=float, default=3600.0,
        help="simulated seconds between shard checkpoints",
    )
    parser.add_argument(
        "--dir", type=Path, default=None,
        help="service directory (checkpoints, status files)",
    )
    parser.add_argument(
        "--resume", type=Path, default=None, metavar="DIR",
        help="resume every shard from its checkpoint under DIR",
    )
    parser.add_argument(
        "--population-engine", choices=("auto", "object", "soa"), default="auto"
    )
    parser.add_argument(
        "--columnar-state", choices=("auto", "on", "off"), default="auto"
    )
    parser.add_argument(
        "--status-interval", type=float, default=5.0,
        help="wall seconds between status lines",
    )
    parser.add_argument(
        "--aggregation", action="store_true",
        help="exchange ballot digests between shards over the Chord "
        "ring (publishes/pulls every checkpoint interval)",
    )
    parser.add_argument(
        "--aggregation-rate", type=int, default=200, metavar="VOTES",
        help="remote votes admitted per shard per interval (rate limit)",
    )
    parser.add_argument(
        "--aggregation-fanout", type=int, default=2, metavar="NODES",
        help="local nodes each pulled digest is merged into",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    directory = args.resume if args.resume is not None else args.dir
    if directory is None:
        build_parser().error("--dir (or --resume DIR) is required")
    aggregation = (
        AggregationConfig(
            shards=args.shards,
            max_votes_per_interval=args.aggregation_rate,
            merge_fanout=args.aggregation_fanout,
        )
        if args.aggregation
        else None
    )
    config = ServiceConfig(
        shards=args.shards,
        until=args.until,
        checkpoint_interval=args.checkpoint_interval,
        shard=ShardConfig(
            peers=args.peers,
            seed=args.seed,
            population_engine=args.population_engine,
            columnar_state=args.columnar_state,
            aggregation=aggregation,
        ),
    )
    with ServiceSupervisor(
        config, directory, resume=args.resume is not None
    ) as supervisor:
        supervisor.start()
        while not supervisor.done():
            time.sleep(args.status_interval)
            supervisor.poll()
            status = supervisor.status()
            totals = status.totals
            line = (
                f"[serve] alive={totals['alive']}/{totals['shards']} "
                f"sim={totals['sim_now_min']:.0f}..{totals['sim_now_max']:.0f}s "
                f"lag={totals['max_lag']:.0f}s "
                f"merges/s={totals['merges_per_sec']:.1f} "
                f"ckpts={totals['checkpoints']} restarts={totals['restarts']}"
            )
            if aggregation is not None:
                line += (
                    f" dht/s={totals['dht_messages_per_sec']:.1f}"
                    f" merge_lag={totals['merge_lag_votes']}"
                )
            print(line, flush=True)
        final = supervisor.status()
        summaries = [
            supervisor.shard_summary(i) for i in range(config.shards)
        ]
        atomic_write_text(
            Path(directory) / "service_status.json",
            json.dumps(
                {"status": final.to_dict(), "shards": summaries}, indent=2
            ),
        )
        merged = sum(
            s["nodes"]["votes_merged"] for s in summaries if s is not None
        )
        print(
            f"[serve] done: {config.shards} shards to t={config.until:.0f}s, "
            f"{merged} votes merged, status in {directory}/service_status.json",
            flush=True,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
