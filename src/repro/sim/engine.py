"""Heap-based discrete-event simulation engine.

The engine is intentionally minimal: a priority queue of ``(time,
priority, seq, callback)`` entries and a clock.  Protocol objects
schedule plain callables; there is no process/coroutine machinery to
keep the hot loop cheap (hundreds of thousands of events per run).

Determinism guarantees:

* events at equal times fire in ``(priority, insertion order)`` order;
* cancellation is O(1) (lazy tombstones, skipped on pop);
* tombstones auto-compact once they exceed half the queue (bounded
  memory under churn-heavy cancellation, no manual ``compact()``);
* the engine itself consumes no randomness.

Besides the heap, the engine can merge events from one attached
**event source** (see :meth:`Engine.attach_source`) — an object that
maintains its own schedule outside the heap (the structure-of-arrays
population engine in ``repro.sim.population``).  The merged execution
order is the exact ``(time, priority, seq)`` total order both would
produce if every source event were a heap entry: sources obtain their
``seq`` values from :meth:`claim_seq`, the same counter heap insertions
consume.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Protocol, Tuple

#: Queue entries below this size never trigger auto-compaction — tiny
#: queues (unit tests, setup phases) keep tombstones visible for
#: explicit :meth:`Engine.compact` calls.
_AUTO_COMPACT_FLOOR = 64


class SimulationError(RuntimeError):
    """Raised on invalid scheduling (e.g. events in the past)."""


class EventSource(Protocol):
    """An external schedule the engine merges with its heap.

    Implementations keep their own pending-event structure and expose
    it through two methods; the engine interleaves them with heap
    entries in exact ``(time, priority, seq)`` order.
    """

    def peek_key(self) -> Optional[Tuple[float, int, int]]:
        """``(time, priority, seq)`` of the earliest pending event, or
        ``None`` when the source is idle."""

    def run_due(self, limit_key: Optional[Tuple[float, int, int]]) -> int:
        """Execute every pending event with key ``< limit_key`` (one
        batch when ``limit_key`` is ``None``), advancing the engine
        clock via :meth:`Engine.advance_to` per event.  Returns the
        number of events executed."""


class EventHandle:
    """Cancellable reference to a scheduled event.

    Handles are returned by :meth:`Engine.schedule` /
    :meth:`Engine.schedule_at`.  Calling :meth:`cancel` marks the event
    as a tombstone; the engine drops it when popped (or earlier, when
    auto-compaction rebuilds the queue).
    """

    __slots__ = ("time", "cancelled", "callback", "args", "_engine")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        engine: "Optional[Engine]" = None,
    ):
        self.time = time
        self.callback: Optional[Callable[..., None]] = callback
        self.args = args
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled events do not pin objects alive
        # while waiting to be popped (guide: be easy on the memory).
        self.callback = None
        self.args = ()
        engine = self._engine
        self._engine = None
        if engine is not None:
            engine._note_tombstone()

    def _consume(self) -> None:
        """Engine-side teardown on pop: frees references like
        :meth:`cancel` but does **not** count a tombstone — the entry
        is already off the queue."""
        self.cancelled = True
        self.callback = None
        self.args = ()
        self._engine = None

    @property
    def active(self) -> bool:
        """``True`` while the event is still pending."""
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, {state})"


class Engine:
    """Discrete-event simulation engine with a float-seconds clock.

    Parameters
    ----------
    start_time:
        Initial value of :attr:`now` (seconds).

    Examples
    --------
    >>> eng = Engine()
    >>> hits = []
    >>> _ = eng.schedule(5.0, hits.append, 1)
    >>> _ = eng.schedule(2.0, hits.append, 2)
    >>> eng.run()
    >>> hits
    [2, 1]
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, int, EventHandle]] = []
        self._seq = 0
        self._events_fired = 0
        self._running = False
        self._tombstones = 0
        self._auto_compactions = 0
        self._source: Optional[EventSource] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (for profiling)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of queue entries, including cancelled tombstones
        (events held by an attached source are not counted)."""
        return len(self._queue)

    @property
    def tombstones(self) -> int:
        """Cancelled entries still sitting in the queue."""
        return self._tombstones

    @property
    def auto_compactions(self) -> int:
        """Times the queue self-compacted (tombstones > live/2)."""
        return self._auto_compactions

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` without firing anything.

        Event-source API: batch dispatchers advance the clock to each
        event's timestamp before invoking its action, exactly as the
        pop loop does for heap entries.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot advance clock backwards to t={time:.6f} "
                f"from now={self._now:.6f}"
            )
        self._now = time

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``priority`` breaks ties among events at the same time (lower
        fires first); insertion order breaks remaining ties.
        """
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before now={self._now:.6f}"
            )
        handle = EventHandle(time, callback, tuple(args), self)
        self._seq += 1
        heapq.heappush(self._queue, (time, priority, self._seq, handle))
        if (
            self._tombstones * 2 > len(self._queue)
            and len(self._queue) >= _AUTO_COMPACT_FLOOR
        ):
            self.compact()
            self._auto_compactions += 1
        return handle

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def restore_clock(
        self,
        now: float,
        seq: Optional[int] = None,
        events_fired: Optional[int] = None,
    ) -> None:
        """Reposition the clock (and optionally the seq/event counters)
        at a checkpointed state.

        Checkpoint-restore API: only valid on an engine whose queue is
        still empty — restore the clock first, then replay pending
        entries with :meth:`restore_event`.
        """
        if self._queue:
            raise SimulationError("restore_clock requires an empty queue")
        self._now = float(now)
        if seq is not None:
            self._seq = int(seq)
        if events_fired is not None:
            self._events_fired = int(events_fired)

    def restore_event(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        *args: Any,
    ) -> EventHandle:
        """Re-insert a checkpointed pending entry with its **original**
        ``(time, priority, seq)`` key.

        Unlike :meth:`schedule_at` this does not consume a fresh seq —
        the caller restored the counter via :meth:`restore_clock`, and
        every replayed entry must sort exactly where it did in the
        saved run.  ``seq`` must have been claimed before the
        checkpoint (i.e. be ``<=`` the restored counter).
        """
        if seq > self._seq:
            raise SimulationError(
                f"restore_event seq {seq} is ahead of the engine counter "
                f"{self._seq}; restore_clock first"
            )
        handle = EventHandle(time, callback, tuple(args), self)
        heapq.heappush(self._queue, (time, priority, seq, handle))
        return handle

    def live_entries(self) -> List[Tuple[float, int, int, EventHandle]]:
        """Snapshot of non-cancelled queue entries in heap-key order.

        Checkpoint API: callers map each handle back to the object that
        owns it (periodic process, session round) and persist the
        ``(time, priority, seq)`` key so :meth:`restore_event` can
        replay it bit-identically.  Source-held events are not included
        — the source checkpoints its own schedule.
        """
        return sorted(
            (entry for entry in self._queue if not entry[3].cancelled),
            key=lambda entry: entry[:3],
        )

    def claim_seq(self) -> int:
        """Reserve the next insertion-order slot without a heap entry.

        Event-source API: a source stamps its events with claimed seqs
        so they interleave with heap entries exactly as if each had
        been scheduled individually at the same moment.
        """
        self._seq += 1
        return self._seq

    def attach_source(self, source: EventSource) -> None:
        """Merge ``source``'s events into the execution order.

        Only one source is supported (the population engine); a second
        attach raises.
        """
        if self._source is not None:
            raise SimulationError("an event source is already attached")
        self._source = source

    def next_event_key(self) -> Optional[Tuple[float, int, int]]:
        """``(time, priority, seq)`` of the queue head, or ``None``.

        Leading tombstones are dropped on the way (amortised O(1)).
        Source events are not considered.
        """
        queue = self._queue
        while queue and queue[0][3].cancelled:
            heapq.heappop(queue)
            self._tombstones -= 1
        if not queue:
            return None
        time, prio, seq, _handle = queue[0]
        return (time, prio, seq)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pop_and_fire(self) -> None:
        """Execute the (known-live) queue head."""
        time, _prio, _seq, handle = heapq.heappop(self._queue)
        self._now = time
        callback, args = handle.callback, handle.args
        handle._consume()
        self._events_fired += 1
        assert callback is not None
        callback(*args)

    def step(self) -> bool:
        """Execute the next pending event (or, with an attached source
        whose head precedes the queue's, one source batch).

        Returns ``False`` when nothing is pending, ``True`` otherwise.
        """
        qkey = self.next_event_key()
        source = self._source
        if source is not None:
            skey = source.peek_key()
            if skey is not None and (qkey is None or skey < qkey):
                fired = source.run_due(qkey)
                self._events_fired += fired
                return fired > 0
        if qkey is None:
            return False
        self._pop_and_fire()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns the number of events executed by this call.  With an
        attached source, a batch may overshoot ``max_events`` by the
        batch size minus one.
        """
        fired = 0
        while max_events is None or fired < max_events:
            before = self._events_fired
            if not self.step():
                break
            fired += self._events_fired - before
        return fired

    def run_until(self, end_time: float) -> int:
        """Run all events with ``time <= end_time`` and advance the clock.

        The clock is left at exactly ``end_time`` even if the last event
        fired earlier (or no event fired at all).  Returns the number of
        events executed.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time:.6f}) is before now={self._now:.6f}"
            )
        fired = 0
        boundary = (end_time, float("inf"), 0)
        while True:
            qkey = self.next_event_key()
            # Re-read per iteration: the population source attaches
            # lazily, mid-run, at the first peer-online event.
            source = self._source
            if source is not None:
                skey = source.peek_key()
                if (
                    skey is not None
                    and skey[0] <= end_time
                    and (qkey is None or skey < qkey)
                ):
                    limit = qkey if (qkey is not None and qkey < boundary) else boundary
                    batch = source.run_due(limit)
                    self._events_fired += batch
                    fired += batch
                    continue
            if qkey is None or qkey[0] > end_time:
                break
            self._pop_and_fire()
            fired += 1
        self._now = end_time
        return fired

    def compact(self) -> int:
        """Drop cancelled tombstones from the queue.

        Runs automatically once tombstones outnumber live entries (see
        :data:`_AUTO_COMPACT_FLOOR`); callable manually for tests and
        eager cleanup.  Returns the number of tombstones removed.
        """
        before = len(self._queue)
        live = [entry for entry in self._queue if not entry[3].cancelled]
        heapq.heapify(live)
        self._queue = live
        self._tombstones = 0
        return before - len(live)

    def _note_tombstone(self) -> None:
        self._tombstones += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Engine(now={self._now:.3f}, pending={len(self._queue)})"
