"""Heap-based discrete-event simulation engine.

The engine is intentionally minimal: a priority queue of ``(time,
priority, seq, callback)`` entries and a clock.  Protocol objects
schedule plain callables; there is no process/coroutine machinery to
keep the hot loop cheap (hundreds of thousands of events per run).

Determinism guarantees:

* events at equal times fire in ``(priority, insertion order)`` order;
* cancellation is O(1) (lazy tombstones, skipped on pop);
* the engine itself consumes no randomness.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised on invalid scheduling (e.g. events in the past)."""


class EventHandle:
    """Cancellable reference to a scheduled event.

    Handles are returned by :meth:`Engine.schedule` /
    :meth:`Engine.schedule_at`.  Calling :meth:`cancel` marks the event
    as a tombstone; the engine drops it when popped.
    """

    __slots__ = ("time", "cancelled", "callback", "args")

    def __init__(self, time: float, callback: Callable[..., None], args: Tuple[Any, ...]):
        self.time = time
        self.callback: Optional[Callable[..., None]] = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        # Drop references so cancelled events do not pin objects alive
        # while waiting to be popped (guide: be easy on the memory).
        self.callback = None
        self.args = ()

    @property
    def active(self) -> bool:
        """``True`` while the event is still pending."""
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, {state})"


class Engine:
    """Discrete-event simulation engine with a float-seconds clock.

    Parameters
    ----------
    start_time:
        Initial value of :attr:`now` (seconds).

    Examples
    --------
    >>> eng = Engine()
    >>> hits = []
    >>> _ = eng.schedule(5.0, hits.append, 1)
    >>> _ = eng.schedule(2.0, hits.append, 2)
    >>> eng.run()
    >>> hits
    [2, 1]
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, int, EventHandle]] = []
        self._seq = 0
        self._events_fired = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (for profiling)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of queue entries, including cancelled tombstones."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``priority`` breaks ties among events at the same time (lower
        fires first); insertion order breaks remaining ties.
        """
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f} before now={self._now:.6f}"
            )
        handle = EventHandle(time, callback, tuple(args))
        self._seq += 1
        heapq.heappush(self._queue, (time, priority, self._seq, handle))
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``False`` when the queue is empty, ``True`` otherwise.
        """
        while self._queue:
            time, _prio, _seq, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            callback, args = handle.callback, handle.args
            handle.cancel()  # consumed; free references
            self._events_fired += 1
            assert callback is not None
            callback(*args)
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns the number of events executed by this call.
        """
        fired = 0
        while max_events is None or fired < max_events:
            if not self.step():
                break
            fired += 1
        return fired

    def run_until(self, end_time: float) -> int:
        """Run all events with ``time <= end_time`` and advance the clock.

        The clock is left at exactly ``end_time`` even if the last event
        fired earlier (or no event fired at all).  Returns the number of
        events executed.
        """
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time:.6f}) is before now={self._now:.6f}"
            )
        fired = 0
        while self._queue:
            time, _prio, _seq, handle = self._queue[0]
            if time > end_time:
                break
            heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time
            callback, args = handle.callback, handle.args
            handle.cancel()
            self._events_fired += 1
            assert callback is not None
            callback(*args)
            fired += 1
        self._now = end_time
        return fired

    def compact(self) -> int:
        """Drop cancelled tombstones from the queue.

        Useful in long runs with heavy cancellation.  Returns the number
        of tombstones removed.
        """
        before = len(self._queue)
        live = [entry for entry in self._queue if not entry[3].cancelled]
        heapq.heapify(live)
        self._queue = live
        return before - len(live)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Engine(now={self._now:.3f}, pending={len(self._queue)})"
