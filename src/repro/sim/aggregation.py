"""DHT-routed vote aggregation between service shards.

Service mode (PR 9) runs N checkpointed shards as independent
populations, so each shard systematically under-samples: the paper's
deployment is **one** overlay where sampled ballots gossip between all
peers.  This module closes that gap with the first cross-shard data
path in the codebase, following the Kademlia-aggregation line of work
(PAPERS.md) for DHT-keyed digests and LOCKSS for rate-limiting the
merge path so aggregation cannot become a vote-stuffing amplifier:

* every checkpoint interval each shard serializes a **ballot digest**
  — per-moderator distinct-voter vote lists, exported from its ballot
  boxes (dict or columnar backing, byte-identical either way) — and
  publishes it onto a shared :class:`DigestBoard`, paying real
  :class:`~repro.dht.chord.ChordRing` lookup costs per moderator key
  (``chord_id("ballot:" + moderator_id)``) plus a store message;
* each shard **pulls** digests published by the other shards (cursor
  per publisher, epoch index key per publish), again paying per-key
  lookup costs, fetch messages, and timeout/retry-with-backoff costs
  when an owner is dead or a fetch fails;
* pulled digests are staged as **pending** work and merged through the
  existing dedup-correct ``BallotBox.merge``/``bb_merge`` path at the
  *start* of the next interval, under ``max_votes_per_interval`` — the
  LOCKSS-style rate limit.  Each merge offers a voter exactly one
  entry, so remote mass can never exceed ``votes_per_exchange``
  semantics, and the backlog it cannot yet merge is the **merge lag**.

Crash contract: the aggregation cursor, pending digests, backoff
state, and operational counters join the shard checkpoint (format 2),
and the per-shard private ring is rebuilt deterministically on
restore, so kill -9 + restore replays bit-identically when shards are
driven in lockstep (:class:`ShardCluster`, the in-process N-shard
driver the bench-smoke gates use).

RNG: merge-target sampling draws from the registry's ``aggregation``
stream, which the shard checkpoint already persists — no extra
plumbing, restored shards continue the same draw sequence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.persistence import atomic_write_text
from repro.core.votes import Vote, VoteEntry
from repro.dht.chord import ChordConfig, ChordRing
from repro.sim.rng import RngRegistry


# ----------------------------------------------------------------------
# Configuration & keys
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AggregationConfig:
    """Knobs for the inter-shard aggregation path."""

    #: number of shards on the ring (every shard knows the roster)
    shards: int = 2
    chord_bits: int = 16
    #: LOCKSS-style rate limit: remote votes *offered* to local ballot
    #: boxes per shard per interval; the rest stays pending (merge lag)
    max_votes_per_interval: int = 200
    #: how many local nodes each pulled digest is merged into
    merge_fanout: int = 2
    #: fetch attempts per epoch before the publisher goes into backoff
    max_retries: int = 3
    #: backoff ceiling, in intervals skipped after repeated failures
    max_backoff_intervals: int = 8

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.max_votes_per_interval < 1:
            raise ValueError("max_votes_per_interval must be >= 1")
        if self.merge_fanout < 1:
            raise ValueError("merge_fanout must be >= 1")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.max_backoff_intervals < 1:
            raise ValueError("max_backoff_intervals must be >= 1")
        # chord_bits is validated by ChordConfig at ring build time.


def shard_ring_name(shard_id: int) -> str:
    """The shard's stable name on the aggregation ring."""
    return f"shard-{shard_id:02d}"


def ballot_key(moderator_id: str) -> str:
    """DHT key owning a moderator's digest entries."""
    return f"ballot:{moderator_id}"


def epoch_key(publisher: str, epoch: int) -> str:
    """DHT key announcing one publisher's epoch index entry."""
    return f"digest:{publisher}:{epoch}"


# ----------------------------------------------------------------------
# Digest construction
# ----------------------------------------------------------------------
def build_shard_digest(nodes: Dict[str, Any]) -> Dict[str, List[List[Any]]]:
    """Union of every node's ballot-box sample as one compact digest:
    ``{moderator_id: [[voter, vote], ...]}``, voters distinct and
    sorted per moderator.

    When two boxes disagree on a ``(moderator, voter)`` pair the entry
    with the latest ``received_at`` wins (vote value breaks exact
    ties), so the result is independent of node iteration order and of
    the dict/columnar slot order — equal box contents produce
    byte-identical digests on both backings."""
    best: Dict[Tuple[str, str], Tuple[float, int]] = {}
    for node in nodes.values():
        for voter, moderator, vote, received_at in node.ballot_box.export_digest():
            key = (moderator, voter)
            candidate = (received_at, vote)
            prev = best.get(key)
            if prev is None or candidate > prev:
                best[key] = candidate
    digest: Dict[str, List[List[Any]]] = {}
    for (moderator, voter), (_at, vote) in sorted(best.items()):
        digest.setdefault(moderator, []).append([voter, vote])
    return digest


def digest_vote_count(digest: Dict[str, List[List[Any]]]) -> int:
    return sum(len(votes) for votes in digest.values())


# ----------------------------------------------------------------------
# Digest boards (the storage side of the DHT)
# ----------------------------------------------------------------------
class InMemoryDigestBoard:
    """Shared digest storage for in-process shard clusters.

    The board plays the *storage* role of the DHT; routing costs are
    paid against each shard's :class:`~repro.dht.chord.ChordRing`.  It
    survives any single shard's crash, exactly like the overlay would.
    """

    def __init__(self) -> None:
        self._digests: Dict[Tuple[str, int], Dict[str, List[List[Any]]]] = {}
        self._epochs: Dict[str, List[int]] = {}

    def publish(
        self, publisher: str, epoch: int, digest: Dict[str, List[List[Any]]]
    ) -> None:
        key = (publisher, epoch)
        if key not in self._digests:
            self._epochs.setdefault(publisher, []).append(epoch)
        self._digests[key] = digest

    def epochs(self, publisher: str) -> List[int]:
        return sorted(self._epochs.get(publisher, []))

    def fetch(
        self, publisher: str, epoch: int
    ) -> Optional[Dict[str, List[List[Any]]]]:
        return self._digests.get((publisher, epoch))


class DirectoryDigestBoard:
    """Digest storage backed by a shared directory (supervisor mode).

    One atomically-written JSON file per ``(publisher, epoch)`` —
    concurrent shard workers never observe torn digests, and a
    restarted worker finds everything it had published still there.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, publisher: str, epoch: int) -> Path:
        return self.directory / f"{publisher}-e{epoch:06d}.json"

    def publish(
        self, publisher: str, epoch: int, digest: Dict[str, List[List[Any]]]
    ) -> None:
        payload = json.dumps(digest, separators=(",", ":"))
        atomic_write_text(self._path(publisher, epoch), payload)

    def epochs(self, publisher: str) -> List[int]:
        prefix = f"{publisher}-e"
        out = []
        for path in self.directory.glob(f"{prefix}*.json"):
            tail = path.name[len(prefix) : -len(".json")]
            if tail.isdigit():
                out.append(int(tail))
        return sorted(out)

    def fetch(
        self, publisher: str, epoch: int
    ) -> Optional[Dict[str, List[List[Any]]]]:
        path = self._path(publisher, epoch)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None


# ----------------------------------------------------------------------
# Per-shard aggregator
# ----------------------------------------------------------------------
class ShardAggregator:
    """One shard's view of the aggregation overlay.

    Owns a private :class:`ChordRing` over the shard roster (rebuilt
    deterministically on restore — same joins, same stabilisation, so
    lookup costs replay exactly), the publish epoch counter, per-
    publisher pull cursors and backoff state, and the FIFO of pending
    digests the rate limit has not yet admitted.
    """

    def __init__(
        self, config: AggregationConfig, shard_id: int, rng: RngRegistry
    ) -> None:
        if not (0 <= shard_id < config.shards):
            raise ValueError(
                f"shard_id {shard_id} outside the ring roster "
                f"(shards={config.shards})"
            )
        self.config = config
        self.name = shard_ring_name(shard_id)
        self.peers = [shard_ring_name(i) for i in range(config.shards)]
        self.ring = ChordRing(ChordConfig(bits=config.chord_bits))
        for peer in self.peers:
            self.ring.join(peer, 0.0)
        self.ring.stabilize_all(0.0)
        self._rng = rng.stream("aggregation")
        self.epoch = 0
        self.cursors: Dict[str, int] = {
            peer: 0 for peer in self.peers if peer != self.name
        }
        self.backoff: Dict[str, int] = {peer: 0 for peer in self.cursors}
        self.fail_streak: Dict[str, int] = {peer: 0 for peer in self.cursors}
        #: publishers currently considered dead (left the private ring)
        self.dead: List[str] = []
        #: staged remote digests: {"publisher","epoch","moderator","votes"}
        self.pending: List[Dict[str, Any]] = []
        self.ops: Dict[str, float] = {
            "digests_published": 0,
            "digests_pulled": 0,
            "dht_messages": 0,
            "remote_votes_offered": 0,
            "remote_votes_merged": 0,
            "fetch_retries": 0,
            "pull_failures": 0,
            "timeouts": 0,
            "pending_votes": 0,
        }

    # -- ring cost accounting ------------------------------------------
    def _ring_messages(self) -> int:
        """Everything the private ring has charged so far (lookup hops
        including timeout penalties, plus membership maintenance)."""
        return self.ring.total_maintenance_messages() + self.ring.lookup_messages

    def _mark_dead(self, publisher: str, now: float) -> None:
        if publisher not in self.dead:
            self.ring.leave(publisher, now, graceful=False)
            self.dead.append(publisher)

    def _mark_alive(self, publisher: str, now: float) -> None:
        if publisher in self.dead:
            self.ring.join(publisher, now)
            self.ring.stabilize_all(now)
            self.dead.remove(publisher)

    # -- publish --------------------------------------------------------
    def publish(self, shard: Any, board: Any) -> int:
        """Serialize the shard's ballot sample and publish it as the
        next epoch.  Returns the DHT messages paid: one routed lookup
        plus a store per moderator key, plus the epoch index entry."""
        now = shard.engine.now
        digest = build_shard_digest(shard.runtime.nodes)
        self.epoch += 1
        base_timeouts = self.ring.timeouts
        messages = 0
        for moderator in digest:
            hops, _ok = self.ring.lookup(self.name, ballot_key(moderator), now)
            messages += hops + 1  # + store at the owner
        hops, _ok = self.ring.lookup(self.name, epoch_key(self.name, self.epoch), now)
        messages += hops + 1  # + index store
        board.publish(self.name, self.epoch, digest)
        exchanges = len(digest) + 1
        self.ops["digests_published"] += len(digest)
        self.ops["dht_messages"] += messages
        self.ops["timeouts"] += self.ring.timeouts - base_timeouts
        shard.runtime.traffic.dht_exchange_many(exchanges, messages)
        return messages

    # -- pull -----------------------------------------------------------
    def pull(self, shard: Any, board: Any) -> int:
        """Fetch digests published by the other shards since each pull
        cursor, staging them as pending merges.  Pays lookup + fetch
        per key, timeout retries on failed fetches, and failure
        detection/repair when an owner is declared dead.  Returns the
        DHT messages paid."""
        now = shard.engine.now
        base_ring = self._ring_messages()
        base_timeouts = self.ring.timeouts
        extra = 0  # store/fetch/retry messages the ring does not count
        exchanges = 0
        for publisher in self.cursors:
            if self.backoff[publisher] > 0:
                self.backoff[publisher] -= 1
                continue
            for epoch in board.epochs(publisher):
                if epoch <= self.cursors[publisher]:
                    continue
                _hops, _ok = self.ring.lookup(
                    self.name, epoch_key(publisher, epoch), now
                )
                extra += 1  # the index fetch itself
                exchanges += 1
                digest = None
                for attempt in range(self.config.max_retries):
                    digest = board.fetch(publisher, epoch)
                    if digest is not None:
                        break
                    extra += 1  # timed-out fetch, retried
                    self.ops["fetch_retries"] += 1
                if digest is None:
                    self.ops["pull_failures"] += 1
                    self.fail_streak[publisher] += 1
                    self.backoff[publisher] = min(
                        2 ** (self.fail_streak[publisher] - 1),
                        self.config.max_backoff_intervals,
                    )
                    self._mark_dead(publisher, now)
                    break
                self.fail_streak[publisher] = 0
                self._mark_alive(publisher, now)
                for moderator in sorted(digest):
                    _hops, _ok = self.ring.lookup(
                        self.name, ballot_key(moderator), now
                    )
                    extra += 1  # the digest-entry fetch
                    exchanges += 1
                    self._stage(publisher, epoch, moderator, digest[moderator])
                    self.ops["digests_pulled"] += 1
                self.cursors[publisher] = epoch
        messages = (self._ring_messages() - base_ring) + extra
        self.ops["dht_messages"] += messages
        self.ops["timeouts"] += self.ring.timeouts - base_timeouts
        self.ops["pending_votes"] = self._pending_votes()
        if exchanges:
            shard.runtime.traffic.dht_exchange_many(exchanges, messages)
        return messages

    def _stage(
        self,
        publisher: str,
        epoch: int,
        moderator: str,
        votes: List[List[Any]],
    ) -> None:
        """Queue one pulled digest entry, superseding any older pending
        entry for the same (publisher, moderator): digests are whole-
        sample exports, so the newest epoch subsumes older ones — that
        bounds the backlog at publishers × moderators entries."""
        self.pending = [
            item
            for item in self.pending
            if not (
                item["publisher"] == publisher and item["moderator"] == moderator
            )
        ]
        self.pending.append(
            {
                "publisher": publisher,
                "epoch": epoch,
                "moderator": moderator,
                "votes": [[str(voter), int(vote)] for voter, vote in votes],
            }
        )

    # -- merge ----------------------------------------------------------
    def _pending_votes(self) -> int:
        return sum(len(item["votes"]) for item in self.pending)

    def merge_lag(self) -> int:
        """Votes pulled but not yet admitted by the rate limit."""
        return self._pending_votes()

    def merge_pending(self, shard: Any) -> int:
        """Admit up to ``max_votes_per_interval`` staged remote votes
        into local ballot boxes, oldest digest first.

        Each admitted ``(voter, vote)`` is offered to ``merge_fanout``
        RNG-sampled local nodes as a single-entry vote list through
        ``BallotBox.merge`` — the same dedup/eviction/self-vote rules
        as native exchanges, and never more than one entry per voter
        per merge, so ``votes_per_exchange`` semantics hold by
        construction.  Returns distinct-moderator stores credited."""
        merged = 0
        offered = 0
        budget = self.config.max_votes_per_interval
        now = shard.engine.now
        peer_ids = shard.config.peer_ids()
        fanout = min(self.config.merge_fanout, len(peer_ids))
        while self.pending and budget > 0:
            item = self.pending[0]
            votes = item["votes"]
            take = votes[:budget]
            moderator = item["moderator"]
            picks = self._rng.choice(len(peer_ids), size=fanout, replace=False)
            for row in sorted(int(p) for p in picks):
                node = shard.runtime.nodes[peer_ids[row]]
                for voter, vote in take:
                    entry = VoteEntry(
                        moderator_id=moderator, vote=Vote(int(vote)), cast_at=now
                    )
                    merged += node.ballot_box.merge(voter, [entry], now)
            budget -= len(take)
            offered += len(take)
            if len(take) < len(votes):
                item["votes"] = votes[len(take) :]
                break
            self.pending.pop(0)
        self.ops["remote_votes_offered"] += offered
        self.ops["remote_votes_merged"] += merged
        self.ops["pending_votes"] = self._pending_votes()
        if offered:
            shard.runtime.traffic.aggregation_exchange_many(1, offered)
        return merged

    # -- checkpoint state -----------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-clean aggregation state for the shard checkpoint."""
        return {
            "epoch": self.epoch,
            "cursors": dict(self.cursors),
            "backoff": dict(self.backoff),
            "fail_streak": dict(self.fail_streak),
            "dead": list(self.dead),
            "pending": [
                {
                    "publisher": item["publisher"],
                    "epoch": item["epoch"],
                    "moderator": item["moderator"],
                    "votes": [list(v) for v in item["votes"]],
                }
                for item in self.pending
            ],
            "ops": dict(self.ops),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self.epoch = int(state["epoch"])
        for peer in self.cursors:
            self.cursors[peer] = int(state["cursors"][peer])
            self.backoff[peer] = int(state["backoff"][peer])
            self.fail_streak[peer] = int(state["fail_streak"][peer])
        # Replay deaths so the rebuilt ring's structure (and therefore
        # every future lookup's cost) matches the checkpointed one.
        self.dead = []
        for publisher in state["dead"]:
            self._mark_dead(publisher, 0.0)
        self.pending = [
            {
                "publisher": item["publisher"],
                "epoch": int(item["epoch"]),
                "moderator": item["moderator"],
                "votes": [[str(v), int(x)] for v, x in item["votes"]],
            }
            for item in state["pending"]
        ]
        self.ops.update(state["ops"])


# ----------------------------------------------------------------------
# Convergence metrics
# ----------------------------------------------------------------------
def shard_top_k(shard: Any, k: int) -> List[str]:
    """The shard's population-wide moderator ranking: summation score
    (positives − negatives) accumulated over every node's ballot box,
    ties broken by id."""
    totals: Dict[str, int] = {}
    for node in shard.runtime.nodes.values():
        for moderator, (pos, neg) in node.ballot_box.all_counts().items():
            totals[moderator] = totals.get(moderator, 0) + pos - neg
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    return [moderator for moderator, _score in ranked[:k]]


def rank_distance(a: List[str], b: List[str]) -> float:
    """Symmetric-difference distance between two top-K lists in
    ``[0, 1]``: 0 = identical membership, 1 = disjoint."""
    sa, sb = set(a), set(b)
    denom = len(sa) + len(sb)
    if denom == 0:
        return 0.0
    return len(sa ^ sb) / denom


def max_cross_shard_rank_distance(shards: List[Any], k: int) -> float:
    """Worst pairwise top-K rank distance across the cluster — the
    convergence metric the bench-smoke aggregation gate tracks."""
    rankings = [shard_top_k(shard, k) for shard in shards]
    worst = 0.0
    for i in range(len(rankings)):
        for j in range(i + 1, len(rankings)):
            worst = max(worst, rank_distance(rankings[i], rankings[j]))
    return worst


# ----------------------------------------------------------------------
# In-process lockstep cluster
# ----------------------------------------------------------------------
class ShardCluster:
    """N aggregating shards advanced in lockstep checkpoint slices.

    Per boundary, every shard runs ``merge_pending → run_until →
    publish → pull`` (all publishes land before any pull, so each pull
    sees every peer's epoch for that boundary) and then checkpoints —
    the same primitive sequence ``ServiceShard.run_service`` uses, so
    discarding a shard object and restoring it from its checkpoint
    (:meth:`restore_shard`, the in-process kill -9 analogue) replays
    bit-identically against a never-interrupted cluster."""

    def __init__(
        self,
        config: Any,
        directory: Optional[Path] = None,
        board: Optional[Any] = None,
    ) -> None:
        from repro.sim.service import ServiceShard

        aggregation = config.shard.aggregation
        if aggregation is None:
            raise ValueError("ShardCluster needs ShardConfig.aggregation set")
        if aggregation.shards != config.shards:
            raise ValueError(
                f"aggregation roster has {aggregation.shards} shards, "
                f"service config has {config.shards}"
            )
        self.config = config
        self.directory = Path(directory) if directory is not None else None
        self.board = board if board is not None else InMemoryDigestBoard()
        self.shards: List[Any] = []
        for shard_id in range(config.shards):
            shard = ServiceShard(config.shard_config(shard_id))
            shard.start()
            self.shards.append(shard)

    def shard_dir(self, shard_id: int) -> Path:
        if self.directory is None:
            raise ValueError("cluster was built without a checkpoint directory")
        return self.directory / f"shard-{shard_id:02d}"

    def restore_shard(self, shard_id: int) -> None:
        """Discard one shard object and rebuild it from its last
        checkpoint — the crash the supervisor's SIGKILL path inflicts,
        inflicted in-process.  The board (the overlay's storage)
        survives, exactly like the DHT would."""
        from repro.sim.service import ServiceShard

        self.shards[shard_id] = ServiceShard.restore_from(
            self.config.shard_config(shard_id), self.shard_dir(shard_id)
        )

    def run(self, until: Optional[float] = None, on_boundary=None) -> None:
        from repro.sim.service import _checkpoint_boundaries

        horizon = self.config.until if until is None else until
        clocks = {shard.engine.now for shard in self.shards}
        if len(clocks) != 1:
            raise ValueError(f"shards out of lockstep: clocks {sorted(clocks)}")
        start = clocks.pop()
        for boundary in _checkpoint_boundaries(
            start, horizon, self.config.checkpoint_interval
        ):
            for shard in self.shards:
                shard.aggregator.merge_pending(shard)
            for shard in self.shards:
                shard.run_until(boundary)
            for shard in self.shards:
                shard.aggregator.publish(shard, self.board)
            for shard in self.shards:
                shard.aggregator.pull(shard, self.board)
            if self.directory is not None:
                for shard_id, shard in enumerate(self.shards):
                    shard.write_checkpoint(self.shard_dir(shard_id))
            if on_boundary is not None:
                on_boundary(self)
