"""Discrete-event simulation kernel.

A single :class:`~repro.sim.engine.Engine` owns simulated time and a
heap-ordered event queue.  All protocol layers in this repository are
plain state machines scheduled onto one engine, which keeps them unit
testable in isolation and makes every run deterministic: randomness is
only available through :class:`~repro.sim.rng.RngRegistry` named
streams derived from a single root seed.
"""

from repro.sim.engine import Engine, EventHandle, SimulationError
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RngRegistry
from repro.sim.service import (
    ServiceConfig,
    ServiceShard,
    ServiceStatus,
    ServiceSupervisor,
    ShardConfig,
)
from repro.sim.units import DAY, GIB, HOUR, KIB, MB, MIB, MINUTE, SECOND

__all__ = [
    "Engine",
    "EventHandle",
    "SimulationError",
    "PeriodicProcess",
    "RngRegistry",
    "ServiceConfig",
    "ServiceShard",
    "ServiceStatus",
    "ServiceSupervisor",
    "ShardConfig",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "KIB",
    "MIB",
    "GIB",
    "MB",
]
