"""Baseline systems the paper compares against (§VIII).

* :mod:`repro.baselines.credence` — a faithful simplification of
  Credence [Walsh & Sirer, NSDI'06]: object (file) voting with
  correlation-weighted evaluation.  The paper's central contrast:
  Credence leaves non-voting clients *isolated* (they can weight
  nobody), "nearly fifty percent of clients" in the original study,
  whereas vote sampling on moderators "works for all peers, regardless
  of their voting habits".  The bench
  ``benchmarks/test_baseline_credence.py`` reproduces that contrast.
"""

from repro.baselines.aggregation import PushSumAggregation, PushSumNode
from repro.baselines.credence import (
    CredenceConfig,
    CredenceNode,
    CredenceSimulation,
)

__all__ = [
    "CredenceConfig",
    "CredenceNode",
    "CredenceSimulation",
    "PushSumAggregation",
    "PushSumNode",
]
