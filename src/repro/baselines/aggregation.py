"""Epidemic (push-sum) vote aggregation — the §V-A road not taken.

The paper: "Faster and more accurate epidemic-style aggregation
protocols have been proposed but they are highly vulnerable to lying
behaviour [Jelasity et al. 2005]."  BallotBox trades speed for the
one-node-one-vote guarantee.  This module implements the rejected
alternative so the trade-off can be measured:

**Push-sum** estimates the population average of a per-node value: each
node holds ``(sum, weight)``, initialised to ``(value, 1)``; every
round it keeps half of each and sends the other half to a random peer;
``sum/weight`` converges to the true average exponentially fast.

Honest runs confirm the "faster and more accurate" half of the claim.
A single liar, however, can *re-inject* fabricated mass every round —
resetting its state to ``(lie_value, 1)`` before emitting — and drag
every node's estimate toward an arbitrary value.  Mass conservation,
the invariant push-sum's correctness rests on, is unverifiable by the
receivers; that is the vulnerability that motivated direct sampling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class PushSumNode:
    """One node's push-sum state for a single aggregate."""

    node_id: str
    value: float
    sum: float = 0.0
    weight: float = 1.0
    #: liars reset their state to (lie_value, 1) before every emit,
    #: re-injecting fabricated mass each round.  ``None`` = honest.
    lie_value: Optional[float] = None

    def __post_init__(self) -> None:
        self.sum = self.value

    @property
    def estimate(self) -> float:
        return self.sum / self.weight if self.weight > 0 else 0.0

    def emit(self) -> tuple:
        """Split state in half and return the outgoing share.

        Honest nodes conserve mass exactly; a liar re-seeds fabricated
        mass first (receivers cannot audit conservation)."""
        if self.lie_value is not None:
            self.sum = self.lie_value
            self.weight = 1.0
        self.sum /= 2.0
        self.weight /= 2.0
        return (self.sum, self.weight)

    def absorb(self, s: float, w: float) -> None:
        self.sum += s
        self.weight += w


class PushSumAggregation:
    """Round-based push-sum over a population.

    ``values[node] = ±1`` votes (or any number); liars (if any) always
    report inflated sums.
    """

    def __init__(
        self,
        values: Dict[str, float],
        rng: np.random.Generator,
        liars: Sequence[str] = (),
        lie_value: float = 100.0,
        include_liars: bool = False,
    ):
        if not values:
            raise ValueError("population must be non-empty")
        liar_set = set(liars)
        unknown = liar_set - set(values)
        if unknown:
            raise ValueError(f"liars not in population: {unknown}")
        self.rng = rng
        self.nodes: Dict[str, PushSumNode] = {
            nid: PushSumNode(
                nid, v, lie_value=lie_value if nid in liar_set else None
            )
            for nid, v in values.items()
        }
        # Ground truth is the *honest* average — mean_absolute_error /
        # max_estimate_shift promise liars' fabrications are excluded.
        # ``include_liars=True`` keeps the old all-values average for
        # experiments that depend on it.
        if include_liars:
            truth_pool = list(values.values())
        else:
            truth_pool = [v for nid, v in values.items() if nid not in liar_set]
            if not truth_pool:
                raise ValueError(
                    "every node lies: no honest ground truth "
                    "(pass include_liars=True for the all-values average)"
                )
        self.true_average = float(np.mean(truth_pool))
        self.rounds_run = 0

    def run_round(self) -> None:
        """One synchronous push-sum round (random partner each)."""
        ids = list(self.nodes)
        order = self.rng.permutation(len(ids))
        outgoing: List[tuple] = []
        for i in order:
            sender = self.nodes[ids[int(i)]]
            target = ids[int(self.rng.integers(0, len(ids)))]
            outgoing.append((target, *sender.emit()))
        for target, s, w in outgoing:
            self.nodes[target].absorb(s, w)
        self.rounds_run += 1

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.run_round()

    # ------------------------------------------------------------------
    def estimates(self) -> Dict[str, float]:
        return {nid: n.estimate for nid, n in self.nodes.items()}

    def mean_absolute_error(self) -> float:
        """Population-mean error of per-node estimates vs ground truth
        (the *honest* average, liars' fabrications excluded)."""
        errs = [abs(n.estimate - self.true_average) for n in self.nodes.values()]
        return float(np.mean(errs))

    def max_estimate_shift(self) -> float:
        """How far the worst-affected node was pushed from the truth."""
        return float(
            max(abs(n.estimate - self.true_average) for n in self.nodes.values())
        )
