"""Simplified Credence object-reputation baseline.

Mechanics kept from the original system:

* peers cast ±1 votes on **objects** (files), not on people;
* vote records gossip through the network; every client accumulates
  other peers' voting histories;
* client X weights peer Y's votes by the **correlation** of their
  voting histories over commonly-voted objects (θ ∈ [−1, 1], requiring
  a minimum overlap); an object's estimated reputation is the
  θ-weighted average of received votes;
* a client with no sufficiently-correlated peer is **isolated** — it
  cannot tell honest from malicious votes.

Simplifications (documented, none favour the baseline's competitor):
direct pairwise correlation only (no transitive flow extension), a
synchronous round-based gossip instead of Gnutella's pull search, and
complete vote-record propagation (which *helps* Credence — isolation
measured here is purely the correlation requirement, not missing
data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class CredenceConfig:
    """Baseline parameters."""

    #: minimum commonly-voted objects before θ is defined.
    min_overlap: int = 2
    #: minimum |θ| for a peer's votes to be used at all.
    theta_min: float = 0.1

    def __post_init__(self) -> None:
        if self.min_overlap < 1:
            raise ValueError("min_overlap must be >= 1")
        if not (0.0 <= self.theta_min <= 1.0):
            raise ValueError("theta_min must be in [0, 1]")


class CredenceNode:
    """One Credence client: own votes plus gossiped histories."""

    def __init__(self, peer_id: str, config: Optional[CredenceConfig] = None):
        self.peer_id = peer_id
        self.config = config or CredenceConfig()
        #: object -> ±1
        self.own_votes: Dict[str, int] = {}
        #: voter -> {object -> ±1}
        self.received: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    def vote(self, obj: str, value: int) -> None:
        if value not in (-1, 1):
            raise ValueError("votes are ±1")
        self.own_votes[obj] = value

    def receive_history(self, voter: str, history: Dict[str, int]) -> None:
        if voter == self.peer_id:
            return
        self.received.setdefault(voter, {}).update(history)

    # ------------------------------------------------------------------
    def correlation(self, voter: str) -> Optional[float]:
        """θ(self, voter) over commonly-voted objects, or ``None`` when
        the overlap is too small or degenerate (zero variance)."""
        theirs = self.received.get(voter)
        if not theirs or not self.own_votes:
            return None
        common = [o for o in self.own_votes if o in theirs]
        if len(common) < self.config.min_overlap:
            return None
        a = np.array([self.own_votes[o] for o in common], dtype=float)
        b = np.array([theirs[o] for o in common], dtype=float)
        if a.std() == 0.0 or b.std() == 0.0:
            # Degenerate but still informative: unanimous agreement or
            # disagreement on the overlap.
            agreement = float((a == b).mean())
            return 2.0 * agreement - 1.0
        return float(np.corrcoef(a, b)[0, 1])

    def usable_peers(self) -> List[str]:
        """Voters whose histories this client can weight."""
        out = []
        for voter in self.received:
            theta = self.correlation(voter)
            if theta is not None and abs(theta) >= self.config.theta_min:
                out.append(voter)
        return out

    def is_isolated(self) -> bool:
        """The paper's criticism: no correlations ⇒ no way to evaluate
        anything beyond one's own few votes."""
        return not self.usable_peers()

    # ------------------------------------------------------------------
    def object_reputation(self, obj: str) -> Optional[float]:
        """θ-weighted estimate in [−1, 1]; ``None`` if no usable vote.

        The client's own vote, when present, counts with weight 1.
        """
        num = 0.0
        den = 0.0
        if obj in self.own_votes:
            num += self.own_votes[obj]
            den += 1.0
        for voter in self.usable_peers():
            v = self.received[voter].get(obj)
            if v is None:
                continue
            theta = self.correlation(voter)
            assert theta is not None
            num += theta * v
            den += abs(theta)
        if den == 0.0:
            return None
        return num / den


class CredenceSimulation:
    """Round-based population simulation of the baseline.

    Workload mirrors the Fig 6 regime: a minority of peers vote (the
    paper's "users rarely vote"), honest voters vote +good / −spam,
    malicious voters vote +spam (and −good, maximising damage).
    """

    def __init__(
        self,
        n_peers: int,
        voter_fraction: float,
        rng: np.random.Generator,
        config: Optional[CredenceConfig] = None,
        malicious_fraction: float = 0.0,
        objects: Sequence[str] = ("good-1", "good-2", "spam-1"),
        spam_objects: Sequence[str] = ("spam-1",),
    ):
        if not (0.0 <= voter_fraction <= 1.0):
            raise ValueError("voter_fraction must be in [0, 1]")
        if not (0.0 <= malicious_fraction <= 1.0):
            raise ValueError("malicious_fraction must be in [0, 1]")
        self.rng = rng
        self.objects = list(objects)
        self.spam = set(spam_objects)
        self.nodes: Dict[str, CredenceNode] = {
            f"c{i:03d}": CredenceNode(f"c{i:03d}", config) for i in range(n_peers)
        }
        ids = list(self.nodes)
        rng.shuffle(ids)
        n_voters = int(round(voter_fraction * n_peers))
        self.voters = ids[:n_voters]
        n_bad = int(round(malicious_fraction * len(self.voters)))
        self.malicious = set(self.voters[:n_bad])
        self._cast_votes()

    def _cast_votes(self) -> None:
        for pid in self.voters:
            node = self.nodes[pid]
            evil = pid in self.malicious
            for obj in self.objects:
                is_spam = obj in self.spam
                if evil:
                    node.vote(obj, 1 if is_spam else -1)
                else:
                    node.vote(obj, -1 if is_spam else 1)

    # ------------------------------------------------------------------
    def gossip_all(self) -> None:
        """Complete propagation: every client learns every voter's
        history (the most generous setting for Credence)."""
        for vid in self.voters:
            history = dict(self.nodes[vid].own_votes)
            for node in self.nodes.values():
                node.receive_history(vid, history)

    # ------------------------------------------------------------------
    def isolated_fraction(self) -> float:
        """Fraction of clients with no usable correlations — the number
        the paper quotes as ≈50 % for deployed Credence."""
        isolated = sum(1 for n in self.nodes.values() if n.is_isolated())
        return isolated / len(self.nodes)

    def correct_classification_fraction(self) -> float:
        """Fraction of clients that rank every spam object strictly
        below every good object (the Credence analogue of Fig 6's
        correct-ordering metric)."""
        good = [o for o in self.objects if o not in self.spam]
        correct = 0
        for node in self.nodes.values():
            reps = {o: node.object_reputation(o) for o in self.objects}
            if any(r is None for r in reps.values()):
                continue
            if all(reps[g] > reps[s] for g in good for s in self.spam):
                correct += 1
        return correct / len(self.nodes)
