"""Reproduction of *Robust vote sampling in a P2P media distribution system*
(Rahman, Hales, Meulpolder, Heinink, Pouwelse, Sips — IPPS 2009).

The package is organised as a set of substrates (``sim``, ``traces``,
``identity``, ``pss``, ``bittorrent``, ``bartercast``) underneath the
paper's core contribution (``core``: ModerationCast, BallotBox,
VoxPopuli, the experience function and ranking), with ``attacks``,
``metrics`` and ``experiments`` on top to regenerate every results
figure of the paper.

Quick start::

    from repro.experiments import VoteSamplingConfig, VoteSamplingExperiment

    result = VoteSamplingExperiment(VoteSamplingConfig(seed=1)).run()
    print(result.correct_fraction_series())

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md``
for paper-vs-measured results.
"""

from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import DAY, HOUR, KIB, MB, MINUTE, SECOND

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "RngRegistry",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "KIB",
    "MB",
    "__version__",
]
