"""Tests for the experiment drivers (scaled-down workloads).

The full-scale shape assertions live in ``benchmarks/``; here we check
the drivers are wired correctly, deterministic, and show the right
*qualitative* behaviour on small fast configurations.
"""

import pytest

from repro.experiments.common import (
    ExperimentResult,
    SimulationStack,
    ascii_chart,
    average_series,
)
from repro.experiments.experience_formation import (
    ExperienceFormationConfig,
    ExperienceFormationExperiment,
)
from repro.experiments.spam_attack import SpamAttackConfig, SpamAttackExperiment
from repro.experiments.vote_sampling import VoteSamplingConfig, VoteSamplingExperiment
from repro.metrics.timeseries import TimeSeries
from repro.sim.units import DAY, HOUR, MB
from repro.traces.generator import TraceGeneratorConfig


def small_trace(duration, n_peers=30, n_swarms=4):
    return TraceGeneratorConfig(n_peers=n_peers, n_swarms=n_swarms, duration=duration)


@pytest.fixture(scope="module")
def fig5_result():
    cfg = ExperienceFormationConfig(
        seed=7,
        duration=12 * HOUR,
        sample_interval=2 * 3600.0,
        thresholds=(2 * MB, 5 * MB, 20 * MB),
        trace=small_trace(12 * HOUR),
    )
    return ExperienceFormationExperiment(cfg).run()


class TestFig5:
    def test_produces_one_series_per_threshold(self, fig5_result):
        assert set(fig5_result.keys()) == {
            "cev:T=2MB",
            "cev:T=5MB",
            "cev:T=20MB",
        }

    def test_cev_monotone_in_threshold(self, fig5_result):
        final = {k: fig5_result.get(k).final() for k in fig5_result.keys()}
        assert final["cev:T=2MB"] >= final["cev:T=5MB"] >= final["cev:T=20MB"]

    def test_cev_grows_over_time(self, fig5_result):
        s = fig5_result.get("cev:T=2MB")
        assert s.values[0] == 0.0
        assert s.final() > 0.05

    def test_cev_stays_below_one(self, fig5_result):
        for k in fig5_result.keys():
            assert fig5_result.get(k).values.max() < 1.0

    def test_determinism(self):
        cfg = ExperienceFormationConfig(
            seed=3,
            duration=6 * HOUR,
            thresholds=(5 * MB,),
            trace=small_trace(6 * HOUR, n_peers=20),
        )
        r1 = ExperienceFormationExperiment(cfg).run()
        r2 = ExperienceFormationExperiment(cfg).run()
        assert list(r1.get("cev:T=5MB").values) == list(r2.get("cev:T=5MB").values)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExperienceFormationConfig(thresholds=())
        with pytest.raises(ValueError):
            ExperienceFormationConfig(duration=-1.0)


@pytest.fixture(scope="module")
def fig6_result():
    cfg = VoteSamplingConfig(
        seed=11,
        duration=1.5 * DAY,
        sample_interval=2 * 3600.0,
        trace=small_trace(1.5 * DAY, n_peers=40),
    )
    return VoteSamplingExperiment(cfg).run()


class TestFig6:
    def test_correct_fraction_rises(self, fig6_result):
        s = fig6_result.get("correct_fraction")
        assert s.values[0] == 0.0
        assert s.final() > 0.3

    def test_votes_were_cast(self, fig6_result):
        assert fig6_result.metadata["votes_cast"] >= 4

    def test_moderators_are_first_arrivals(self, fig6_result):
        assert len(fig6_result.metadata["moderators"]) == 3

    def test_fraction_bounded(self, fig6_result):
        s = fig6_result.get("correct_fraction")
        assert 0.0 <= s.values.min() and s.values.max() <= 1.0

    def test_run_many_averages(self):
        cfg = VoteSamplingConfig(
            seed=5,
            duration=12 * HOUR,
            sample_interval=3 * 3600.0,
            trace=small_trace(12 * HOUR, n_peers=20),
        )
        result = VoteSamplingExperiment(cfg).run_many(2)
        assert "average" in result.series
        assert "run0" in result.series and "run1" in result.series
        avg = result.get("average")
        r0, r1 = result.get("run0"), result.get("run1")
        n = len(avg)
        for i in range(n):
            assert avg.values[i] == pytest.approx(
                (r0.values[i] + r1.values[i]) / 2
            )

    def test_voter_fraction_validation(self):
        with pytest.raises(ValueError):
            VoteSamplingConfig(positive_fraction=0.6, negative_fraction=0.6)


class TestFig8:
    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for crowd in (8, 24):
            cfg = SpamAttackConfig(
                seed=13,
                duration=18 * HOUR,
                sample_interval=2 * 3600.0,
                core_size=8,
                crowd_size=crowd,
                trace=small_trace(18 * HOUR, n_peers=30),
            )
            out[crowd] = SpamAttackExperiment(cfg).run()
        return out

    def test_larger_crowd_pollutes_more(self, results):
        # Compare time-integrated pollution: peaks can both saturate on
        # a small population, but the larger crowd holds nodes polluted
        # for longer.
        mean_small = results[8].get("polluted_fraction").values.mean()
        mean_large = results[24].get("polluted_fraction").values.mean()
        assert mean_large > mean_small

    def test_pollution_recovers(self, results):
        s = results[24].get("polluted_fraction")
        assert s.final() < s.values.max()

    def test_core_is_never_polluted_metric_excludes_it(self, results):
        core = results[24].metadata["core"]
        assert len(core) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            SpamAttackConfig(core_size=0)
        with pytest.raises(ValueError):
            SpamAttackConfig(crowd_duty_cycle=0.0)


class TestCommon:
    def test_average_series_requires_input(self):
        with pytest.raises(ValueError):
            average_series([])

    def test_ascii_chart_renders(self):
        s = TimeSeries("x")
        for i in range(10):
            s.append(i * 3600.0, i / 10)
        chart = ascii_chart({"x": s})
        assert "hours" in chart
        assert "o=x" in chart

    def test_ascii_chart_empty(self):
        assert ascii_chart({}) == "(no data)"

    def test_result_summary_rows(self):
        r = ExperimentResult(name="t")
        s = TimeSeries("a")
        s.append(0.0, 0.5)
        r.series["a"] = s
        rows = r.summary_rows()
        assert len(rows) == 1 and "final=0.500" in rows[0]

    def test_stack_build_and_run(self):
        from repro.traces.generator import TraceGenerator

        trace = TraceGenerator(small_trace(6 * HOUR, n_peers=10), seed=1).generate()
        stack = SimulationStack.build(trace, seed=1)
        stack.recorder.add_probe(
            "online", lambda: float(stack.session.registry.online_count())
        )
        stack.run()
        assert stack.engine.now == trace.duration
        assert len(stack.recorder.get("online")) > 0


class TestCLI:
    def test_main_quick_fig5(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["fig5", "--quick", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "cev" in out
