"""Tests for the media-client layer (search index + facade)."""

import numpy as np
import pytest

from repro.client.client import MediaClient
from repro.client.search import InvertedIndex, tokenize
from repro.core.moderation import Moderation, ModerationStore
from repro.core.node import NodeConfig, VoteSamplingNode
from repro.core.votes import Vote, VoteEntry


def mod(moderator, torrent, title, desc=""):
    return Moderation(
        moderator_id=moderator, torrent_id=torrent, title=title, description=desc
    )


class TestTokenize:
    def test_lowercase_alnum(self):
        assert tokenize("Ubuntu 9.04 ISO!") == ["ubuntu", "9", "04", "iso"]

    def test_empty(self):
        assert tokenize("---") == []


class TestInvertedIndex:
    def test_query_matches_title_description_torrent(self):
        store = ModerationStore()
        store.insert(mod("m1", "linux-iso", "Ubuntu release", "jaunty desktop"), 0.0)
        idx = InvertedIndex(store)
        assert len(idx.query("ubuntu")) == 1
        assert len(idx.query("jaunty")) == 1
        assert len(idx.query("linux")) == 1
        assert idx.query("windows") == []

    def test_multi_term_scores_higher(self):
        store = ModerationStore()
        store.insert(mod("m1", "t1", "ubuntu desktop"), 0.0)
        store.insert(mod("m2", "t2", "ubuntu server edition"), 0.0)
        idx = InvertedIndex(store)
        results = idx.query("ubuntu server")
        assert results[0][0].moderator_id == "m2"
        assert results[0][1] == 2

    def test_index_refreshes_on_insert(self):
        store = ModerationStore()
        idx = InvertedIndex(store)
        assert idx.query("fedora") == []
        store.insert(mod("m1", "t1", "Fedora spin"), 1.0)
        assert len(idx.query("fedora")) == 1

    def test_index_refreshes_on_purge(self):
        store = ModerationStore()
        store.insert(mod("bad", "t1", "malware pack"), 0.0)
        idx = InvertedIndex(store)
        assert len(idx.query("malware")) == 1
        store.purge_moderator("bad")
        assert idx.query("malware") == []

    def test_empty_query(self):
        store = ModerationStore()
        store.insert(mod("m1", "t1", "something"), 0.0)
        assert InvertedIndex(store).query("!!!") == []

    def test_term_count(self):
        store = ModerationStore()
        store.insert(mod("m1", "t1", "alpha beta"), 0.0)
        idx = InvertedIndex(store)
        assert idx.term_count() >= 3  # alpha, beta, t1


@pytest.fixture()
def client():
    node = VoteSamplingNode("me", NodeConfig(b_min=2), np.random.default_rng(0))
    return MediaClient(node)


def vote_in(node, voter, moderator, vote=Vote.POSITIVE):
    node.receive_votes(voter, [VoteEntry(moderator, vote, 0.0)], 1.0, True)


class TestMediaClient:
    def test_publish_and_search(self, client):
        client.publish("dist-iso", "My Distro ISO", now=0.0, description="fast mirror")
        hits = client.search("distro")
        assert len(hits) == 1
        assert hits[0].torrent_id == "dist-iso"

    def test_search_orders_by_moderator_reputation(self, client):
        node = client.node
        node.receive_moderations(
            [mod("good", "t-good", "ubuntu iso"), mod("spam", "t-spam", "ubuntu iso")],
            now=0.0,
        )
        vote_in(node, "v1", "good")
        vote_in(node, "v2", "good")
        vote_in(node, "v1", "spam", Vote.NEGATIVE)
        hits = client.search("ubuntu")
        assert [h.moderator_id for h in hits] == ["good", "spam"]
        assert hits[0].moderator_score > hits[1].moderator_score

    def test_extra_matching_term_beats_reputation(self, client):
        node = client.node
        node.receive_moderations(
            [
                mod("good", "t1", "ubuntu"),
                mod("nobody", "t2", "ubuntu jaunty"),
            ],
            now=0.0,
        )
        vote_in(node, "v1", "good")
        vote_in(node, "v2", "good")
        hits = client.search("ubuntu jaunty")
        assert hits[0].moderator_id == "nobody"  # 2 terms beat reputation

    def test_search_limit(self, client):
        for i in range(30):
            client.node.receive_moderations([mod(f"m{i}", f"t{i}", "linux")], 0.0)
        assert len(client.search("linux", limit=10)) == 10

    def test_disapprove_removes_from_search(self, client):
        client.node.receive_moderations([mod("spam", "t", "casino pills")], 0.0)
        assert client.search("casino")
        client.disapprove("spam", now=1.0)
        assert client.search("casino") == []

    def test_approve_enables_forwarding(self, client):
        client.node.receive_moderations([mod("friend", "t", "music")], 0.0)
        client.approve("friend", now=1.0)
        forwarded = {m.moderator_id for m in client.node.moderations_to_send()}
        assert "friend" in forwarded

    def test_top_moderators_screen(self, client):
        for v, m in (("v1", "a"), ("v2", "a"), ("v1", "b")):
            vote_in(client.node, v, m)
        screen = client.top_moderators(k=2)
        assert screen[0] == "a"
        assert len(screen) <= 2

    def test_top_moderators_detailed(self, client):
        for v, m in (("v1", "a"), ("v2", "a"), ("v3", "a")):
            vote_in(client.node, v, m)
        vote_in(client.node, "v1", "b", Vote.NEGATIVE)
        rows = client.top_moderators_detailed(k=2)
        assert rows[0]["moderator"] == "a"
        assert rows[0]["positive_votes"] == 3
        assert rows[0]["popular_vote_pct"] == 100.0
        assert rows[1]["moderator"] == "b"
        assert rows[1]["popular_vote_pct"] == 0.0

    def test_top_moderators_detailed_unvoted_pct_none(self, client):
        client.node.receive_top_k(["ghost"])
        rows = client.top_moderators_detailed(k=1)
        assert rows[0]["popular_vote_pct"] is None

    def test_browse_moderator(self, client):
        client.node.receive_moderations(
            [mod("m1", "t1", "x"), mod("m1", "t2", "y"), mod("m2", "t3", "z")], 0.0
        )
        assert len(client.browse_moderator("m1")) == 2

    def test_status(self, client):
        client.publish("t", "hello world", now=0.0)
        s = client.status()
        assert s["peer_id"] == "me"
        assert s["moderations"] == 1
        assert s["bootstrapping"] is True

    def test_squash_bounded(self):
        assert MediaClient._squash(float("inf")) == 1.0
        assert MediaClient._squash(float("-inf")) == -1.0
        assert -1.0 < MediaClient._squash(-1000.0) < MediaClient._squash(1000.0) < 1.0
