"""The incremental :class:`FlowMatrixCache`.

Row ``i`` of the flow matrix depends only on observer ``i``'s
subjective graph, so the cache must (a) recompute **exactly** the rows
whose observer graph changed — the counter assertions pin this — and
(b) remain bit-identical to a full fresh recompute at every step.
"""

import numpy as np
import pytest

from repro.bartercast.protocol import BarterCastConfig, BarterCastService
from repro.bartercast.records import TransferRecord
from repro.metrics.cev import (
    FlowMatrixCache,
    collective_experience_value,
    flow_matrix,
)
from repro.pss.base import OnlineRegistry
from repro.pss.ideal import OraclePSS

PEERS = ["a", "b", "c", "d"]


def make_service(peers=PEERS, seed=0, **cfg):
    reg = OnlineRegistry()
    for p in peers:
        reg.set_online(p)
    pss = OraclePSS(reg, np.random.default_rng(seed))
    return BarterCastService(pss, BarterCastConfig(**cfg))


def seeded_service():
    svc = make_service()
    svc.local_transfer("a", "b", 8.0, now=0.0)
    svc.local_transfer("b", "c", 4.0, now=1.0)
    svc.local_transfer("c", "d", 2.0, now=2.0)
    return svc


class TestIncrementalRows:
    def test_first_call_computes_all_rows(self):
        svc = seeded_service()
        cache = FlowMatrixCache(svc, PEERS)
        F = cache.matrix()
        assert cache.rows_recomputed == len(PEERS)
        assert cache.rows_reused == 0
        np.testing.assert_array_equal(F, flow_matrix(svc, PEERS))

    def test_idle_resample_reuses_every_row(self):
        svc = seeded_service()
        cache = FlowMatrixCache(svc, PEERS)
        cache.matrix()
        cache.matrix()
        assert cache.rows_recomputed == len(PEERS)
        assert cache.rows_reused == len(PEERS)

    def test_single_observer_change_recomputes_one_row(self):
        svc = seeded_service()
        cache = FlowMatrixCache(svc, PEERS)
        cache.matrix()
        # inject_record touches exactly one holder's graph — the only
        # mutation primitive that changes a single observer.
        svc.inject_record(
            "c", TransferRecord("a", "d", up=3.0, down=1.0, timestamp=5.0)
        )
        F = cache.matrix()
        assert cache.rows_recomputed == len(PEERS) + 1
        assert cache.rows_reused == len(PEERS) - 1
        np.testing.assert_array_equal(F, flow_matrix(svc, PEERS))

    def test_local_transfer_recomputes_both_endpoint_rows(self):
        svc = seeded_service()
        cache = FlowMatrixCache(svc, PEERS)
        cache.matrix()
        svc.local_transfer("a", "d", 6.0, now=3.0)  # touches a and d
        cache.matrix()
        assert cache.rows_recomputed == len(PEERS) + 2

    def test_stays_equal_to_full_recompute_under_churn(self):
        svc = seeded_service()
        cache = FlowMatrixCache(svc, PEERS)
        rng = np.random.default_rng(3)
        for step in range(30):
            u, v = rng.choice(PEERS, size=2, replace=False)
            svc.local_transfer(str(u), str(v), float(rng.uniform(1, 9)), now=float(step))
            np.testing.assert_array_equal(
                cache.matrix(), flow_matrix(svc, PEERS)
            )
        assert cache.rows_reused > 0  # incrementality actually engaged


class TestFlowMatrixFrontend:
    def test_flow_matrix_with_cache_returns_copy(self):
        svc = seeded_service()
        cache = FlowMatrixCache(svc, PEERS)
        F = flow_matrix(svc, PEERS, cache=cache)
        F[0, 0] = 123.0  # caller's copy — must not poison the cache
        np.testing.assert_array_equal(cache.matrix()[0, 0], 0.0)

    def test_peer_list_mismatch_rejected(self):
        svc = seeded_service()
        cache = FlowMatrixCache(svc, PEERS)
        with pytest.raises(ValueError):
            flow_matrix(svc, ["a", "b"], cache=cache)
        with pytest.raises(ValueError):
            collective_experience_value(svc, ["a", "b"], [1.0], cache=cache)

    def test_cev_with_cache_matches_without(self):
        svc = seeded_service()
        cache = FlowMatrixCache(svc, PEERS)
        thresholds = [1.0, 4.0, 8.0]
        for step in range(5):
            svc.local_transfer("a", "c", 3.0 * (step + 1), now=float(step))
            with_cache = collective_experience_value(
                svc, PEERS, thresholds, cache=cache
            )
            without = collective_experience_value(svc, PEERS, thresholds)
            assert with_cache == without


class TestParallelRows:
    """``jobs`` must change *where* rows are computed, never *what*:
    matrices and counters stay bit-identical for every jobs value."""

    def test_invalid_jobs_rejected(self):
        svc = seeded_service()
        with pytest.raises(ValueError):
            FlowMatrixCache(svc, PEERS, jobs=0)
        with pytest.raises(ValueError):
            FlowMatrixCache(svc, PEERS, jobs=-2)

    @pytest.mark.parametrize("jobs", [2, 4, None])
    def test_parallel_bitwise_identical_under_churn(self, jobs):
        serial_svc = seeded_service()
        parallel_svc = seeded_service()
        serial = FlowMatrixCache(serial_svc, PEERS, jobs=1)
        parallel = FlowMatrixCache(parallel_svc, PEERS, jobs=jobs)
        rng = np.random.default_rng(7)
        for step in range(20):
            u, v = rng.choice(PEERS, size=2, replace=False)
            w = float(rng.uniform(1, 9))
            serial_svc.local_transfer(str(u), str(v), w, now=float(step))
            parallel_svc.local_transfer(str(u), str(v), w, now=float(step))
            np.testing.assert_array_equal(serial.matrix(), parallel.matrix())
        assert serial.rows_recomputed == parallel.rows_recomputed
        assert serial.rows_reused == parallel.rows_reused

    def test_parallel_skips_unchanged_rows(self):
        svc = seeded_service()
        cache = FlowMatrixCache(svc, PEERS, jobs=4)
        cache.matrix()
        cache.matrix()
        assert cache.rows_recomputed == len(PEERS)
        assert cache.rows_reused == len(PEERS)

    def test_non_two_hop_config_falls_back_to_serial(self):
        # max_hops != 2 has no vectorised closed form; the cache must
        # silently take the serial per-pair path and stay correct.
        svc = make_service(max_hops=3)
        svc.local_transfer("a", "b", 8.0, now=0.0)
        svc.local_transfer("b", "c", 4.0, now=1.0)
        cache = FlowMatrixCache(svc, PEERS, jobs=4)
        np.testing.assert_array_equal(cache.matrix(), flow_matrix(svc, PEERS))

    def test_sparse_backend_parallel_identical(self):
        dense_svc = make_service(graph_backend="dense")
        sparse_svc = make_service(graph_backend="sparse")
        for svc in (dense_svc, sparse_svc):
            svc.local_transfer("a", "b", 8.0, now=0.0)
            svc.local_transfer("b", "c", 4.0, now=1.0)
            svc.local_transfer("c", "d", 2.0, now=2.0)
        dense_cache = FlowMatrixCache(dense_svc, PEERS, jobs=1)
        sparse_cache = FlowMatrixCache(sparse_svc, PEERS, jobs=3)
        np.testing.assert_array_equal(dense_cache.matrix(), sparse_cache.matrix())
