"""Tests for maxflow: Edmonds-Karp, hop bounds, 2-hop closed form.

Cross-checked against networkx's maximum_flow on random graphs.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bartercast.graph import SubjectiveGraph
from repro.bartercast.maxflow import edmonds_karp, two_hop_flow


def graph_from_edges(edges):
    g = SubjectiveGraph("owner")
    for u, v, w in edges:
        g.observe_direct(u, v, w)
    return g


class TestEdmondsKarp:
    def test_single_edge(self):
        g = graph_from_edges([("a", "b", 5.0)])
        assert edmonds_karp(g, "a", "b") == 5.0

    def test_series_bottleneck(self):
        g = graph_from_edges([("a", "b", 5.0), ("b", "c", 3.0)])
        assert edmonds_karp(g, "a", "c") == 3.0

    def test_parallel_paths_sum(self):
        g = graph_from_edges(
            [("a", "x", 2.0), ("x", "c", 2.0), ("a", "y", 3.0), ("y", "c", 3.0)]
        )
        assert edmonds_karp(g, "a", "c") == 5.0

    def test_classic_rerouting_case(self):
        """Flow must reroute through the cross edge (CLRS-style)."""
        g = graph_from_edges(
            [
                ("s", "a", 10.0),
                ("s", "b", 10.0),
                ("a", "b", 1.0),
                ("a", "t", 8.0),
                ("b", "t", 10.0),
            ]
        )
        assert edmonds_karp(g, "s", "t") == 18.0

    def test_disconnected_is_zero(self):
        g = graph_from_edges([("a", "b", 5.0), ("c", "d", 5.0)])
        assert edmonds_karp(g, "a", "d") == 0.0

    def test_source_equals_sink(self):
        g = graph_from_edges([("a", "b", 5.0)])
        assert edmonds_karp(g, "a", "a") == 0.0

    def test_missing_nodes(self):
        g = graph_from_edges([("a", "b", 5.0)])
        assert edmonds_karp(g, "ghost", "b") == 0.0
        assert edmonds_karp(g, "a", "ghost") == 0.0

    def test_reverse_direction_independent(self):
        g = graph_from_edges([("a", "b", 5.0)])
        assert edmonds_karp(g, "b", "a") == 0.0


class TestHopBound:
    def test_three_hop_path_excluded_at_two(self):
        g = graph_from_edges([("a", "x", 5.0), ("x", "y", 5.0), ("y", "b", 5.0)])
        assert edmonds_karp(g, "a", "b") == 5.0
        assert edmonds_karp(g, "a", "b", max_hops=2) == 0.0
        assert edmonds_karp(g, "a", "b", max_hops=3) == 5.0

    def test_direct_edge_passes_one_hop(self):
        g = graph_from_edges([("a", "b", 4.0), ("a", "k", 9.0), ("k", "b", 9.0)])
        assert edmonds_karp(g, "a", "b", max_hops=1) == 4.0
        assert edmonds_karp(g, "a", "b", max_hops=2) == 13.0


class TestTwoHopClosedForm:
    def test_direct_plus_intermediates(self):
        g = graph_from_edges(
            [
                ("j", "i", 2.0),
                ("j", "k1", 5.0),
                ("k1", "i", 3.0),
                ("j", "k2", 1.0),
                ("k2", "i", 10.0),
            ]
        )
        # 2 + min(5,3) + min(1,10) = 6
        assert two_hop_flow(g, "j", "i") == 6.0

    def test_ignores_longer_paths(self):
        g = graph_from_edges([("j", "a", 9.0), ("a", "b", 9.0), ("b", "i", 9.0)])
        assert two_hop_flow(g, "j", "i") == 0.0

    def test_self_flow_zero(self):
        g = graph_from_edges([("j", "i", 2.0)])
        assert two_hop_flow(g, "j", "j") == 0.0

    def test_matches_edmonds_karp_on_random_graphs(self):
        rng = np.random.default_rng(7)
        for trial in range(30):
            n = int(rng.integers(3, 9))
            nodes = [f"n{i}" for i in range(n)]
            g = SubjectiveGraph("owner")
            for u in nodes:
                for v in nodes:
                    if u != v and rng.random() < 0.4:
                        g.observe_direct(u, v, float(rng.integers(1, 20)))
            s, t = nodes[0], nodes[1]
            assert two_hop_flow(g, s, t) == pytest.approx(
                edmonds_karp(g, s, t, max_hops=2)
            ), f"trial {trial}"


class TestAgainstNetworkx:
    def _to_nx(self, g: SubjectiveGraph) -> nx.DiGraph:
        dg = nx.DiGraph()
        for u, v, w in g.edges():
            dg.add_edge(u, v, capacity=w)
        return dg

    def test_unbounded_matches_networkx_random(self):
        rng = np.random.default_rng(11)
        for trial in range(25):
            n = int(rng.integers(4, 10))
            nodes = [f"n{i}" for i in range(n)]
            g = SubjectiveGraph("owner")
            for u in nodes:
                for v in nodes:
                    if u != v and rng.random() < 0.35:
                        g.observe_direct(u, v, float(rng.integers(1, 50)))
            s, t = nodes[0], nodes[-1]
            dg = self._to_nx(g)
            if s not in dg or t not in dg:
                expected = 0.0
            else:
                expected = nx.maximum_flow_value(dg, s, t)
            assert edmonds_karp(g, s, t) == pytest.approx(expected), f"trial {trial}"


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.floats(0.5, 20.0)),
        max_size=20,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_hop_bound_monotone_and_below_unbounded(edge_list):
    g = SubjectiveGraph("owner")
    for u, v, w in edge_list:
        if u != v:
            g.observe_direct(f"n{u}", f"n{v}", w)
    full = edmonds_karp(g, "n0", "n5")
    f1 = edmonds_karp(g, "n0", "n5", max_hops=1)
    f2 = edmonds_karp(g, "n0", "n5", max_hops=2)
    assert f1 <= f2 + 1e-9
    assert f2 <= full + 1e-9
    assert f1 == pytest.approx(g.weight("n0", "n5"))


class TestFlowQueriesAreReadOnly:
    """Regression: ``two_hop_flow`` used to ``pop`` the sink out of the
    successors dict — safe only because ``successors()`` returns a
    copy.  Both layers now guarantee it: flow queries never mutate the
    graph, and the successors view is caller-owned."""

    def _snapshot(self, g):
        return sorted(g.edges()), g.version

    def test_two_hop_flow_leaves_graph_unchanged(self):
        g = graph_from_edges(
            [("j", "i", 2.0), ("j", "k", 5.0), ("k", "i", 3.0), ("i", "j", 1.0)]
        )
        before = self._snapshot(g)
        assert two_hop_flow(g, "j", "i") == 5.0
        assert two_hop_flow(g, "i", "j") == 1.0
        assert self._snapshot(g) == before
        # repeat queries still see the direct edge (the old .pop() bug
        # would have been masked by the copy; assert the value anyway)
        assert two_hop_flow(g, "j", "i") == 5.0

    def test_edmonds_karp_leaves_graph_unchanged(self):
        g = graph_from_edges([("a", "b", 5.0), ("b", "c", 3.0)])
        before = self._snapshot(g)
        edmonds_karp(g, "a", "c")
        assert self._snapshot(g) == before

    def test_successors_returns_caller_owned_copy(self):
        g = graph_from_edges([("a", "b", 5.0)])
        view = g.successors("a")
        view.pop("b")
        view["z"] = 99.0
        assert g.weight("a", "b") == 5.0
        assert g.weight("a", "z") == 0.0
