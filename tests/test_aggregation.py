"""Inter-shard DHT-routed vote aggregation.

Covers the digest round-trip contract (export → merge on an empty box
≡ direct merge, identical across dict and columnar backings), the
rate-limit/pending semantics, Chord cost accounting with dead-owner
retry/backoff, and the lockstep cluster's crash contract: a shard
discarded and restored from its checkpoint replays bit-identically.
"""

import json
from dataclasses import replace

import pytest

from repro.core.ballotbox import BallotBox
from repro.core.columnar import ColumnarBallotBox, ColumnarStateStore
from repro.core.node import NodeConfig
from repro.core.votes import Vote, VoteEntry
from repro.sim.aggregation import (
    AggregationConfig,
    DirectoryDigestBoard,
    InMemoryDigestBoard,
    ShardAggregator,
    ShardCluster,
    build_shard_digest,
    digest_vote_count,
    max_cross_shard_rank_distance,
    rank_distance,
    shard_ring_name,
    shard_top_k,
)
from repro.sim.rng import RngRegistry
from repro.sim.service import ServiceConfig, ServiceShard, ShardConfig


def _agg_config(**overrides):
    defaults = dict(shards=3, max_votes_per_interval=150)
    defaults.update(overrides)
    return AggregationConfig(**defaults)


def _cluster_config(**overrides):
    agg = overrides.pop("aggregation", _agg_config())
    shard_defaults = dict(
        peers=16,
        seed=9,
        moderators=3,
        moderations_per_moderator=2,
        node=NodeConfig(b_max=30),
        aggregation=agg,
    )
    shard_defaults.update(overrides.pop("shard", {}))
    defaults = dict(
        shards=3,
        until=3 * 3600.0,
        checkpoint_interval=3600.0,
        shard=ShardConfig(**shard_defaults),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        AggregationConfig(shards=0)
    with pytest.raises(ValueError):
        AggregationConfig(max_votes_per_interval=0)
    with pytest.raises(ValueError):
        AggregationConfig(merge_fanout=0)
    with pytest.raises(ValueError):
        ShardAggregator(_agg_config(shards=2), 2, RngRegistry(0))


# ----------------------------------------------------------------------
# Digest export round-trips, dict and columnar backings
# ----------------------------------------------------------------------
def _both_backings(b_max=10):
    store = ColumnarStateStore()
    return [
        BallotBox(b_max),
        ColumnarBallotBox(store, store.ensure_row("owner"), b_max),
    ]


def _fill(box):
    box.merge("v1", [VoteEntry("m1", Vote.POSITIVE, 0.0)], 10.0)
    box.merge(
        "v2",
        [VoteEntry("m1", Vote.NEGATIVE, 1.0), VoteEntry("m2", Vote.POSITIVE, 1.0)],
        20.0,
    )
    box.merge("v1", [VoteEntry("m2", Vote.NEGATIVE, 2.0)], 30.0)
    box.merge("v3", [VoteEntry("v3", Vote.POSITIVE, 3.0)], 40.0)  # self-vote only


def test_export_digest_identical_across_backings():
    dict_box, col_box = _both_backings()
    _fill(dict_box)
    _fill(col_box)
    exported = dict_box.export_digest()
    assert exported == col_box.export_digest()
    assert exported == [
        ("v1", "m1", 1, 10.0),
        ("v1", "m2", -1, 30.0),
        ("v2", "m1", -1, 20.0),
        ("v2", "m2", 1, 20.0),
    ]


@pytest.mark.parametrize("backing", ["dict", "columnar"])
def test_digest_round_trip_equals_direct_merge(backing):
    """Replaying an exported digest into an empty box stores exactly
    what direct merges stored — same voters, votes, timestamps."""
    source, col_source = _both_backings()
    boxes = {"dict": source, "columnar": col_source}
    _fill(boxes[backing])
    exported = boxes[backing].export_digest()

    replayed = BallotBox(10)
    stored = sum(
        replayed.merge(
            voter, [VoteEntry(moderator, Vote(vote), received_at)], received_at
        )
        for voter, moderator, vote, received_at in sorted(
            exported, key=lambda r: r[3]
        )
    )
    assert stored == len(exported)
    assert replayed.voters() == boxes[backing].voters()
    assert replayed.all_counts() == boxes[backing].all_counts()
    assert replayed.export_digest() == exported
    for voter in replayed.voters():
        assert sorted(replayed.votes_of(voter)) == sorted(
            boxes[backing].votes_of(voter)
        )


def test_build_shard_digest_latest_received_wins():
    class _Node:
        def __init__(self, box):
            self.ballot_box = box

    early, late = BallotBox(10), BallotBox(10)
    early.merge("v1", [VoteEntry("m1", Vote.POSITIVE, 0.0)], 10.0)
    late.merge("v1", [VoteEntry("m1", Vote.NEGATIVE, 5.0)], 20.0)
    forward = build_shard_digest({"a": _Node(early), "b": _Node(late)})
    backward = build_shard_digest({"b": _Node(late), "a": _Node(early)})
    assert forward == backward == {"m1": [["v1", -1]]}
    assert digest_vote_count(forward) == 1


# ----------------------------------------------------------------------
# Rate limit & pending semantics
# ----------------------------------------------------------------------
def _one_shard(agg=None, **overrides):
    config = ShardConfig(
        shard_id=0,
        peers=12,
        seed=5,
        moderators=2,
        node=NodeConfig(b_max=30),
        aggregation=agg or _agg_config(shards=2, max_votes_per_interval=5),
    )
    shard = ServiceShard(config)
    shard.start()
    shard.run_until(600.0)
    return shard


def test_rate_limit_leaves_excess_pending():
    shard = _one_shard()
    agg = shard.aggregator
    votes = [[f"x{i:02d}", 1] for i in range(12)]
    agg._stage("shard-01", 1, "remote-mod", votes)
    assert agg.merge_lag() == 12

    merged = agg.merge_pending(shard)
    # budget 5, fanout 2 targets: 5 offered, 10 stored
    assert agg.ops["remote_votes_offered"] == 5
    assert merged == 10
    assert agg.merge_lag() == 7
    merged_again = agg.merge_pending(shard)
    assert merged_again == 10
    assert agg.merge_lag() == 2
    agg.merge_pending(shard)
    assert agg.merge_lag() == 0
    assert shard.runtime.traffic.counters["aggregation"].items == 12


def test_newer_epoch_supersedes_pending_entry():
    shard = _one_shard()
    agg = shard.aggregator
    agg._stage("shard-01", 1, "remote-mod", [["x00", 1], ["x01", 1]])
    agg._stage("shard-01", 2, "remote-mod", [["x00", -1]])
    assert len(agg.pending) == 1
    assert agg.pending[0]["epoch"] == 2
    assert agg.merge_lag() == 1


def test_remote_merges_respect_ballot_box_rules():
    """Remote votes go through BallotBox.merge: fanout-sampled targets,
    self-votes dropped, one-node-one-vote structural."""
    shard = _one_shard()
    agg = shard.aggregator
    target_ids = shard.config.peer_ids()
    agg._stage("shard-01", 1, "remote-mod", [["xv", 1]])
    agg.merge_pending(shard)
    stored = [
        pid
        for pid in target_ids
        if shard.runtime.nodes[pid].ballot_box.vote_of("xv", "remote-mod")
        is not None
    ]
    assert len(stored) == 2  # merge_fanout distinct targets
    for pid in target_ids:
        votes = shard.runtime.nodes[pid].ballot_box.votes_of("xv")
        assert len(votes) <= 1  # never duplicated

    # A self-vote (voter == moderator) is information-free and the
    # merge path drops it — remote digests cannot smuggle one in.
    agg._stage("shard-01", 2, "self-lover", [["self-lover", 1]])
    merged = agg.merge_pending(shard)
    assert merged == 0
    assert agg.merge_lag() == 0
    for pid in target_ids:
        assert shard.runtime.nodes[pid].ballot_box.votes_of("self-lover") == []


# ----------------------------------------------------------------------
# Chord costs, dead owners, retry/backoff
# ----------------------------------------------------------------------
class _FlakyBoard(InMemoryDigestBoard):
    """Fails every fetch until ``heal()`` is called."""

    def __init__(self):
        super().__init__()
        self.failing = True
        self.fetches = 0

    def heal(self):
        self.failing = False

    def fetch(self, publisher, epoch):
        self.fetches += 1
        if self.failing:
            return None
        return super().fetch(publisher, epoch)


def test_publish_and_pull_pay_dht_messages():
    shard = _one_shard()
    board = InMemoryDigestBoard()
    agg = shard.aggregator
    paid = agg.publish(shard, board)
    assert paid > 0
    assert agg.epoch == 1
    assert agg.ops["dht_messages"] == paid
    assert board.epochs(shard_ring_name(0)) == [1]
    assert shard.runtime.traffic.counters["dht"].items == paid


def test_dead_owner_retries_backoff_and_recovery():
    shard = _one_shard(agg=_agg_config(shards=2, max_retries=3))
    agg = shard.aggregator
    board = _FlakyBoard()
    publisher = shard_ring_name(1)
    board.publish(publisher, 1, {"remote-mod": [["xv", 1]]})

    paid = agg.pull(shard, board)
    assert board.fetches == 3  # max_retries attempts
    assert agg.ops["fetch_retries"] == 3
    assert agg.ops["pull_failures"] == 1
    assert agg.cursors[publisher] == 0  # not advanced
    assert agg.backoff[publisher] == 1
    assert publisher in agg.dead  # failure detected on the ring
    assert paid > 0

    # Backed off: the next interval does not even try.
    fetches_before = board.fetches
    agg.pull(shard, board)
    assert board.fetches == fetches_before
    assert agg.backoff[publisher] == 0

    # Healed: fetch succeeds, cursor advances, owner rejoins the ring.
    board.heal()
    agg.pull(shard, board)
    assert agg.cursors[publisher] == 1
    assert agg.fail_streak[publisher] == 0
    assert publisher not in agg.dead
    assert agg.ops["digests_pulled"] == 1
    assert agg.merge_lag() == 1


def test_directory_board_round_trip(tmp_path):
    board = DirectoryDigestBoard(tmp_path / "dht")
    digest = {"m1": [["v1", 1], ["v2", -1]]}
    board.publish("shard-00", 3, digest)
    board.publish("shard-00", 1, {"m1": [["v1", 1]]})
    assert board.epochs("shard-00") == [1, 3]
    assert board.epochs("shard-01") == []
    assert board.fetch("shard-00", 3) == digest
    assert board.fetch("shard-00", 9) is None
    (tmp_path / "dht" / "shard-00-e000001.json").write_text("{torn", "utf-8")
    assert board.fetch("shard-00", 1) is None


# ----------------------------------------------------------------------
# Rank-distance metric
# ----------------------------------------------------------------------
def test_rank_distance_bounds():
    assert rank_distance([], []) == 0.0
    assert rank_distance(["a", "b"], ["a", "b"]) == 0.0
    assert rank_distance(["a", "b"], ["c", "d"]) == 1.0
    assert rank_distance(["a", "b"], ["b", "c"]) == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Lockstep cluster: convergence + crash contract
# ----------------------------------------------------------------------
def test_cluster_converges_vs_isolated_shards(tmp_path):
    config = _cluster_config()
    cluster = ShardCluster(config, directory=tmp_path)
    cluster.run()

    isolated_cfg = _cluster_config(aggregation=None)
    isolated = []
    for shard_id in range(isolated_cfg.shards):
        shard = ServiceShard(isolated_cfg.shard_config(shard_id))
        shard.start()
        shard.run_service(isolated_cfg.until, isolated_cfg.checkpoint_interval)
        isolated.append(shard)

    k = 6
    aggregated_distance = max_cross_shard_rank_distance(cluster.shards, k)
    isolated_distance = max_cross_shard_rank_distance(isolated, k)
    assert isolated_distance == 1.0  # disjoint moderator sets
    assert aggregated_distance < isolated_distance
    # each shard's ranking now contains foreign moderators
    for shard in cluster.shards:
        own = f"s{shard.config.shard_id:02d}"
        assert any(not m.startswith(own) for m in shard_top_k(shard, k))
    for shard in cluster.shards:
        ops = shard.aggregator.ops
        assert ops["digests_published"] > 0
        assert ops["digests_pulled"] > 0
        assert ops["dht_messages"] > 0
        assert ops["remote_votes_merged"] > 0


def test_cluster_restore_replays_bit_identically(tmp_path):
    config = _cluster_config()
    reference = ShardCluster(config, directory=tmp_path / "ref")
    reference.run()

    crashed = ShardCluster(config, directory=tmp_path / "crashed")
    crashed.run(until=config.checkpoint_interval)
    crashed.restore_shard(1)  # in-process kill -9 at the boundary
    crashed.run()

    for shard_id in range(config.shards):
        assert (
            crashed.shards[shard_id].identity_state()
            == reference.shards[shard_id].identity_state()
        )
    assert crashed.shards[1].ops["restores"] == 1
    # the comparison must cover real aggregation traffic
    ref_state = reference.shards[1].identity_state()
    assert ref_state["aggregation"]["ops"]["remote_votes_merged"] > 0


def test_cluster_restore_replays_bit_identically_columnar(tmp_path):
    """Same crash contract under the SoA engine + columnar store —
    remote digest merges intern *foreign* voter ids into the shared
    row table in arrival order, and a restore must reproduce that
    order exactly (format 2 checkpoints carry it)."""
    config = _cluster_config(
        shard={"population_engine": "soa", "columnar_state": "on"}
    )
    reference = ShardCluster(config, directory=tmp_path / "ref")
    reference.run()

    crashed = ShardCluster(config, directory=tmp_path / "crashed")
    crashed.run(until=2 * config.checkpoint_interval)
    crashed.restore_shard(0)
    crashed.run()

    for shard_id in range(config.shards):
        assert (
            crashed.shards[shard_id].identity_state()
            == reference.shards[shard_id].identity_state()
        )
    # the restored shard really interned foreign voters
    store = crashed.shards[0].runtime._col_store
    own = set(crashed.shards[0].config.peer_ids())
    assert any(pid not in own for pid in store.rows.ids)


def test_cluster_rejects_mismatched_roster():
    config = _cluster_config(shards=2)  # aggregation roster says 3
    with pytest.raises(ValueError, match="roster"):
        ShardCluster(config)
    with pytest.raises(ValueError, match="aggregation"):
        ShardCluster(_cluster_config(aggregation=None))


# ----------------------------------------------------------------------
# Checkpoint format 2
# ----------------------------------------------------------------------
def test_aggregation_state_round_trips_through_json(tmp_path):
    config = _cluster_config()
    cluster = ShardCluster(config, directory=tmp_path)
    cluster.run(until=2 * config.checkpoint_interval)
    shard = cluster.shards[0]
    state = shard.checkpoint_state()
    assert state["format"] == 2
    assert state["aggregation"]["epoch"] == 2
    rebuilt = ServiceShard.restore(
        config.shard_config(0), json.loads(json.dumps(state))
    )
    rebuilt_state = rebuilt.checkpoint_state()
    rebuilt_state.pop("ops")
    expected = json.loads(json.dumps(state))
    expected.pop("ops")
    assert rebuilt_state == expected


def test_restore_rejects_aggregation_mismatch(tmp_path):
    config = _cluster_config()
    cluster = ShardCluster(config, directory=tmp_path)
    cluster.run(until=config.checkpoint_interval)
    state = cluster.shards[0].checkpoint_state()

    plain_config = replace(config.shard_config(0), aggregation=None)
    with pytest.raises(ValueError, match="disables aggregation"):
        ServiceShard.restore(plain_config, state)

    stripped = dict(state)
    stripped.pop("aggregation")
    with pytest.raises(ValueError, match="no aggregation state"):
        ServiceShard.restore(config.shard_config(0), stripped)


def test_format_1_checkpoint_still_restores_without_aggregation():
    config = ShardConfig(shard_id=0, peers=12, seed=11, node=NodeConfig(b_max=20))
    shard = ServiceShard(config)
    shard.start()
    shard.run_until(300.0)
    state = shard.checkpoint_state()
    state["format"] = 1  # what a PR 9 checkpoint looks like
    restored = ServiceShard.restore(config, json.loads(json.dumps(state)))
    assert restored.engine.now == 300.0
