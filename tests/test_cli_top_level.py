"""Tests for the top-level CLI dispatcher."""

from repro.__main__ import main


def test_help(capsys):
    assert main([]) == 0
    assert "experiments" in capsys.readouterr().out


def test_version(capsys):
    assert main(["version"]) == 0
    out = capsys.readouterr().out.strip()
    assert out.count(".") == 2


def test_unknown_command(capsys):
    assert main(["frobnicate"]) == 2
    assert "unknown command" in capsys.readouterr().err


def test_traces_dispatch(tmp_path, capsys):
    rc = main(
        [
            "traces", "generate", "--out", str(tmp_path), "--n", "1",
            "--peers", "8", "--swarms", "2", "--days", "0.2",
        ]
    )
    assert rc == 0
    assert list(tmp_path.glob("*.jsonl"))
