"""Tests for PiecePicker (rarest-first + random-first)."""

import numpy as np
import pytest

from repro.bittorrent.bitfield import Bitfield
from repro.bittorrent.picker import PiecePicker


def make_picker(n=10, seed=0, threshold=0):
    return PiecePicker(n, np.random.default_rng(seed), random_first_threshold=threshold)


def test_rejects_zero_pieces():
    with pytest.raises(ValueError):
        make_picker(0)


def test_pick_none_when_uploader_has_nothing_interesting():
    picker = make_picker(4)
    down = Bitfield.from_indices(4, [0, 1])
    up = Bitfield.from_indices(4, [0, 1])
    assert picker.pick(down, up) is None


def test_picks_rarest_available_piece():
    picker = make_picker(4, threshold=0)
    # availability: piece0 common, piece3 rare
    picker.availability[:] = [5, 4, 3, 1]
    down = Bitfield(4)
    up = Bitfield(4, full=True)
    assert picker.pick(down, up) == 3


def test_rarest_restricted_to_uploader_pieces():
    picker = make_picker(4, threshold=0)
    picker.availability[:] = [5, 4, 3, 1]
    down = Bitfield(4)
    up = Bitfield.from_indices(4, [0, 1])  # rare pieces not held
    assert picker.pick(down, up) in (0, 1)
    assert picker.pick(down, up) == 1  # rarer of the two


def test_random_first_mode_ignores_rarity():
    picker = make_picker(50, seed=1, threshold=4)
    picker.availability[:] = np.arange(50)
    down = Bitfield(50)  # holds 0 pieces < threshold
    up = Bitfield(50, full=True)
    picks = {picker.pick(down, up) for _ in range(100)}
    # uniform picks should not all be the globally rarest piece
    assert len(picks) > 5


def test_exclude_mask_respected():
    picker = make_picker(3, threshold=0)
    down = Bitfield(3)
    up = Bitfield(3, full=True)
    exclude = np.array([True, True, False])
    assert picker.pick(down, up, exclude=exclude) == 2


def test_tie_break_is_random_but_valid():
    picker = make_picker(6, seed=3, threshold=0)
    down = Bitfield(6)
    up = Bitfield(6, full=True)
    picks = {picker.pick(down, up) for _ in range(60)}
    assert picks <= set(range(6))
    assert len(picks) > 1


def test_availability_maintenance():
    picker = make_picker(4)
    a = Bitfield.from_indices(4, [0, 1])
    b = Bitfield.from_indices(4, [1, 2])
    picker.peer_joined(a)
    picker.peer_joined(b)
    assert list(picker.availability) == [1, 2, 1, 0]
    picker.piece_completed(3)
    assert picker.availability[3] == 1
    picker.peer_left(a)
    assert list(picker.availability) == [0, 1, 1, 1]


def test_pick_many_distinct():
    picker = make_picker(10, threshold=0)
    down = Bitfield(10)
    up = Bitfield(10, full=True)
    picks = picker.pick_many(down, up, 5)
    assert len(picks) == 5
    assert len(set(picks)) == 5


def test_pick_many_stops_when_exhausted():
    picker = make_picker(3, threshold=0)
    down = Bitfield(3)
    up = Bitfield.from_indices(3, [0])
    assert picker.pick_many(down, up, 5) == [0]
