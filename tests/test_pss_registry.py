"""Tests for OnlineRegistry."""

from hypothesis import given
from hypothesis import strategies as st

from repro.pss.base import OnlineRegistry


def test_online_offline_flips_membership():
    reg = OnlineRegistry()
    reg.set_online("a")
    assert reg.is_online("a")
    assert "a" in reg
    reg.set_offline("a")
    assert not reg.is_online("a")
    assert len(reg) == 0


def test_idempotent_transitions():
    reg = OnlineRegistry()
    reg.set_online("a")
    reg.set_online("a")
    assert reg.online_count() == 1
    reg.set_offline("a")
    reg.set_offline("a")
    assert reg.online_count() == 0


def test_swap_remove_keeps_all_members_addressable():
    reg = OnlineRegistry()
    for p in ["a", "b", "c", "d"]:
        reg.set_online(p)
    reg.set_offline("b")  # middle removal triggers swap
    remaining = {reg.peer_at(i) for i in range(reg.online_count())}
    assert remaining == {"a", "c", "d"}


def test_online_peers_returns_copy():
    reg = OnlineRegistry()
    reg.set_online("a")
    snapshot = reg.online_peers()
    snapshot.append("zz")
    assert reg.online_peers() == ["a"]


def test_listeners_fire_on_real_transitions_only():
    reg = OnlineRegistry()
    calls = []
    reg.add_listener(lambda pid, on: calls.append((pid, on)))
    reg.set_online("a")
    reg.set_online("a")  # no-op
    reg.set_offline("a")
    reg.set_offline("a")  # no-op
    assert calls == [("a", True), ("a", False)]


@given(
    st.lists(
        st.tuples(st.sampled_from(["on", "off"]), st.integers(0, 9)),
        max_size=60,
    )
)
def test_property_registry_matches_reference_set(ops):
    """The swap-remove list always agrees with a plain set model."""
    reg = OnlineRegistry()
    model = set()
    for op, pid_num in ops:
        pid = f"p{pid_num}"
        if op == "on":
            reg.set_online(pid)
            model.add(pid)
        else:
            reg.set_offline(pid)
            model.discard(pid)
        assert set(reg.online_peers()) == model
        assert reg.online_count() == len(model)
        assert {reg.peer_at(i) for i in range(len(model))} == model
