"""Tests for ranking and rank merging."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ballotbox import BallotBox
from repro.core.ranking import (
    merge_rank_lists,
    rank_by_sum,
    rank_proportional,
    strictly_ordered,
    top_k,
)
from repro.core.votes import Vote, VoteEntry


def box_with(votes):
    """votes: list of (voter, moderator, vote)"""
    bb = BallotBox(b_max=100)
    for t, (voter, mod, vote) in enumerate(votes):
        bb.merge(voter, [VoteEntry(mod, vote, float(t))], now=float(t))
    return bb


class TestRankBySum:
    def test_orders_by_net_score(self):
        bb = box_with(
            [
                ("v1", "m1", Vote.POSITIVE),
                ("v2", "m1", Vote.POSITIVE),
                ("v3", "m3", Vote.NEGATIVE),
            ]
        )
        ranking = rank_by_sum(bb, universe=["m1", "m2", "m3"])
        assert [m for m, _ in ranking] == ["m1", "m2", "m3"]
        assert dict(ranking) == {"m1": 2.0, "m2": 0.0, "m3": -1.0}

    def test_universe_moderators_score_zero(self):
        bb = box_with([])
        ranking = rank_by_sum(bb, universe=["x"])
        assert ranking == [("x", 0.0)]

    def test_tie_break_on_id(self):
        bb = box_with([("v1", "b", Vote.POSITIVE), ("v2", "a", Vote.POSITIVE)])
        assert [m for m, _ in rank_by_sum(bb)] == ["a", "b"]


class TestRankProportional:
    def test_damped_by_prior(self):
        bb = box_with([("v1", "m1", Vote.POSITIVE)])
        ranking = dict(rank_proportional(bb, prior=1.0))
        assert ranking["m1"] == pytest.approx(0.5)

    def test_many_votes_dominate_prior(self):
        votes = [(f"v{i}", "m1", Vote.POSITIVE) for i in range(99)]
        bb = box_with(votes)
        ranking = dict(rank_proportional(bb, prior=1.0))
        assert ranking["m1"] == pytest.approx(0.99)

    def test_negative_prior_rejected(self):
        with pytest.raises(ValueError):
            rank_proportional(box_with([]), prior=-1.0)


class TestTopK:
    def test_truncates(self):
        ranking = [("a", 3.0), ("b", 2.0), ("c", 1.0)]
        assert top_k(ranking, 2) == ["a", "b"]
        assert top_k(ranking, 10) == ["a", "b", "c"]
        assert top_k(ranking, 0) == []


class TestMergeRankLists:
    def test_single_list_preserved(self):
        merged = merge_rank_lists([["a", "b", "c"]], k=3)
        assert [m for m, _ in merged] == ["a", "b", "c"]

    def test_missing_moderator_gets_k_plus_one(self):
        # list1 ranks a first; list2 doesn't know a at all
        merged = merge_rank_lists([["a"], ["b"]], k=3)
        scores = dict(merged)
        # a: (1 + 4)/2 = 2.5 ; b: (4 + 1)/2 = 2.5 — tie
        assert scores["a"] == pytest.approx(-2.5)
        assert scores["b"] == pytest.approx(-2.5)

    def test_majority_agreement_wins(self):
        lists = [["a", "b"], ["a", "b"], ["b", "a"]]
        merged = merge_rank_lists(lists, k=3)
        assert merged[0][0] == "a"

    def test_empty_input(self):
        assert merge_rank_lists([], k=3) == []

    def test_lists_truncated_to_k(self):
        merged = merge_rank_lists([["a", "b", "c", "d"]], k=2)
        assert {m for m, _ in merged} == {"a", "b"}

    def test_k_validation(self):
        with pytest.raises(ValueError):
            merge_rank_lists([["a"]], k=0)

    @given(
        st.lists(
            st.permutations(["a", "b", "c"]),
            min_size=1,
            max_size=7,
        )
    )
    def test_property_unanimous_lists_reproduce_order(self, perms):
        """If every list is the same permutation, the merge equals it."""
        lists = [list(perms[0]) for _ in perms]
        merged = merge_rank_lists(lists, k=3)
        assert [m for m, _ in merged] == list(perms[0])


class TestStrictlyOrdered:
    def test_strict_order_detected(self):
        ranking = [("m1", 2.0), ("m2", 0.0), ("m3", -1.0)]
        assert strictly_ordered(ranking, ["m1", "m2", "m3"])
        assert not strictly_ordered(ranking, ["m3", "m2", "m1"])

    def test_ties_are_not_correct(self):
        ranking = [("m1", 0.0), ("m2", 0.0), ("m3", 0.0)]
        assert not strictly_ordered(ranking, ["m1", "m2", "m3"])

    def test_unknown_moderator_not_correct(self):
        ranking = [("m1", 2.0), ("m3", -1.0)]
        assert not strictly_ordered(ranking, ["m1", "m2", "m3"])


class TestMergeDuplicateRobustness:
    """Regression: duplicate ids inside one received list used to sum
    every occurrence's rank while counting one appearance."""

    def test_duplicates_count_once_at_first_rank(self):
        merged = merge_rank_lists([["m", "m", "x"]], k=3)
        assert merged == [("m", -1.0), ("x", -2.0)]

    def test_duplicates_do_not_crowd_out_later_ids(self):
        # With k=2, the repeated "a" must not push "b" off the list.
        merged = dict(merge_rank_lists([["a", "a", "b"]], k=2))
        assert merged["a"] == -1.0
        assert merged["b"] == -2.0

    def test_duplicate_list_matches_clean_list(self):
        clean = merge_rank_lists([["m", "x"], ["x", "m"]], k=3)
        dirty = merge_rank_lists([["m", "m", "x"], ["x", "x", "m"]], k=3)
        assert dirty == clean
