"""Tests for the traces CLI."""

from repro.traces.__main__ import main
from repro.traces.loader import load_trace


def test_generate_writes_dataset(tmp_path, capsys):
    rc = main(
        [
            "generate",
            "--out",
            str(tmp_path),
            "--n",
            "2",
            "--peers",
            "12",
            "--swarms",
            "2",
            "--days",
            "0.25",
            "--seed",
            "5",
        ]
    )
    assert rc == 0
    files = sorted(tmp_path.glob("*.jsonl"))
    assert len(files) == 2
    trace = load_trace(files[0])
    assert len(trace.peers) == 12


def test_stats_reads_back(tmp_path, capsys):
    main(
        [
            "generate", "--out", str(tmp_path), "--n", "1",
            "--peers", "10", "--swarms", "2", "--days", "0.25",
        ]
    )
    capsys.readouterr()
    path = next(tmp_path.glob("*.jsonl"))
    rc = main(["stats", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "TraceStats" in out and "peers=10" in out
