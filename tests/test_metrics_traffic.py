"""Unit tests for the protocol traffic meter."""

import pytest

from repro.metrics.traffic import (
    EXCHANGE_OVERHEAD_BYTES,
    MODERATION_BYTES,
    RECORD_BYTES,
    TOPK_ENTRY_BYTES,
    VOTE_BYTES,
    TrafficMeter,
)


def test_counters_start_empty():
    meter = TrafficMeter()
    assert meter.total_bytes() == 0.0
    assert meter.total_exchanges() == 0
    assert meter.summary() == {}


def test_moderation_exchange_accounting():
    meter = TrafficMeter()
    meter.moderation_exchange(n_sent=3, n_received=2)
    c = meter.counters["moderationcast"]
    assert c.exchanges == 1
    assert c.items == 5
    assert c.bytes == EXCHANGE_OVERHEAD_BYTES + 5 * MODERATION_BYTES


def test_vote_and_voxpopuli_and_bartercast():
    meter = TrafficMeter()
    meter.vote_exchange(10, 20)
    meter.voxpopuli_exchange(3)
    meter.bartercast_exchange(7)
    assert meter.counters["ballotbox"].bytes == (
        EXCHANGE_OVERHEAD_BYTES + 30 * VOTE_BYTES
    )
    assert meter.counters["voxpopuli"].bytes == (
        EXCHANGE_OVERHEAD_BYTES + 3 * TOPK_ENTRY_BYTES
    )
    assert meter.counters["bartercast"].bytes == (
        EXCHANGE_OVERHEAD_BYTES + 7 * RECORD_BYTES
    )
    assert meter.total_exchanges() == 3


def test_per_node_hour_normalisation():
    meter = TrafficMeter()
    meter.vote_exchange(1, 1)
    per_nh = meter.per_node_hour(2.0)
    assert per_nh["ballotbox"] == pytest.approx(
        (EXCHANGE_OVERHEAD_BYTES + 2 * VOTE_BYTES) / 2.0
    )


def test_per_node_hour_validation():
    with pytest.raises(ValueError):
        TrafficMeter().per_node_hour(0.0)


def test_summary_is_sorted_and_complete():
    meter = TrafficMeter()
    meter.vote_exchange(1, 1)
    meter.moderation_exchange(1, 1)
    assert list(meter.summary()) == ["ballotbox", "moderationcast"]
