"""Model-based property tests for ModerationStore.

A plain dict model shadows every operation; after any operation
sequence the store must agree with the model and respect its capacity
bound and eviction preferences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.moderation import Moderation, ModerationStore


def mk(moderator, torrent, version=1):
    return Moderation(
        moderator_id=f"m{moderator}",
        torrent_id=f"t{torrent}",
        title="x",
        version=version,
    )


ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(0, 4),
            st.integers(0, 4),
            st.integers(1, 3),
        ),
        st.tuples(st.just("purge"), st.integers(0, 4)),
    ),
    max_size=50,
)


@given(ops=ops)
@settings(max_examples=80, deadline=None)
def test_property_store_agrees_with_dict_model(ops):
    store = ModerationStore(capacity=100)  # capacity never binds here
    model = {}
    now = 0.0
    for op in ops:
        now += 1.0
        if op[0] == "insert":
            _, moderator, torrent, version = op
            mod = mk(moderator, torrent, version)
            inserted_new = store.insert(mod, now)
            key = mod.key()
            if key not in model:
                assert inserted_new
                model[key] = mod
            else:
                assert not inserted_new
                if version > model[key].version:
                    model[key] = mod
        else:
            _, moderator = op
            removed = store.purge_moderator(f"m{moderator}")
            expected = [k for k in model if k[0] == f"m{moderator}"]
            assert removed == len(expected)
            for k in expected:
                del model[k]
        assert len(store) == len(model)
        for key, mod in model.items():
            got = store.get(*key)
            assert got is not None and got.version == mod.version


@given(
    inserts=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=40
    ),
    capacity=st.integers(1, 8),
)
@settings(max_examples=60, deadline=None)
def test_property_capacity_bound_holds_after_enforcement(inserts, capacity):
    store = ModerationStore(capacity=capacity)
    now = 0.0
    for moderator, torrent in inserts:
        now += 1.0
        store.insert(mk(moderator, torrent), now)
        store.enforce_capacity()
        assert len(store) <= capacity


@given(
    approved_mods=st.sets(st.integers(0, 3), max_size=2),
    inserts=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 9)), min_size=5, max_size=30
    ),
)
@settings(max_examples=60, deadline=None)
def test_property_approved_moderators_survive_eviction_preferentially(
    approved_mods, inserts
):
    """If any non-approved item exists, eviction never removes an
    approved moderator's item."""
    capacity = 3
    store = ModerationStore(capacity=capacity)
    approved = frozenset(f"m{i}" for i in approved_mods)
    now = 0.0
    for moderator, torrent in inserts:
        now += 1.0
        store.insert(mk(moderator, torrent), now)
        before_approved = {
            k for k in (m.key() for m in store.all_items()) if k[0] in approved
        }
        store.enforce_capacity(approved)
        after_keys = {m.key() for m in store.all_items()}
        after_unapproved = [k for k in after_keys if k[0] not in approved]
        lost_approved = before_approved - after_keys
        if lost_approved:
            # approved items may only be evicted when nothing
            # unapproved was available to evict instead
            assert not after_unapproved
