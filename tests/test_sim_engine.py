"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError


def test_events_fire_in_time_order():
    eng = Engine()
    order = []
    eng.schedule(5.0, order.append, "c")
    eng.schedule(1.0, order.append, "a")
    eng.schedule(3.0, order.append, "b")
    eng.run()
    assert order == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    eng = Engine()
    seen = []
    eng.schedule(2.5, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [2.5]
    assert eng.now == 2.5


def test_equal_time_ties_broken_by_priority_then_insertion():
    eng = Engine()
    order = []
    eng.schedule(1.0, order.append, "second", priority=1)
    eng.schedule(1.0, order.append, "first", priority=0)
    eng.schedule(1.0, order.append, "third", priority=1)
    eng.run()
    assert order == ["first", "second", "third"]


def test_schedule_in_past_raises():
    eng = Engine(start_time=10.0)
    with pytest.raises(SimulationError):
        eng.schedule_at(5.0, lambda: None)


def test_negative_delay_raises():
    eng = Engine(start_time=10.0)
    with pytest.raises(SimulationError):
        eng.schedule(-1.0, lambda: None)


def test_cancel_prevents_execution():
    eng = Engine()
    fired = []
    handle = eng.schedule(1.0, fired.append, 1)
    eng.schedule(2.0, fired.append, 2)
    handle.cancel()
    eng.run()
    assert fired == [2]
    assert not handle.active


def test_cancel_is_idempotent():
    eng = Engine()
    handle = eng.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert eng.run() == 0


def test_run_until_executes_only_due_events_and_sets_clock():
    eng = Engine()
    fired = []
    eng.schedule(1.0, fired.append, 1)
    eng.schedule(5.0, fired.append, 5)
    assert eng.run_until(3.0) == 1
    assert fired == [1]
    assert eng.now == 3.0
    assert eng.run_until(10.0) == 1
    assert fired == [1, 5]
    assert eng.now == 10.0


def test_run_until_boundary_event_is_included():
    eng = Engine()
    fired = []
    eng.schedule(3.0, fired.append, "x")
    eng.run_until(3.0)
    assert fired == ["x"]


def test_run_until_backwards_raises():
    eng = Engine(start_time=4.0)
    with pytest.raises(SimulationError):
        eng.run_until(2.0)


def test_events_scheduled_during_run_are_executed():
    eng = Engine()
    order = []

    def chain(n):
        order.append(n)
        if n < 3:
            eng.schedule(1.0, chain, n + 1)

    eng.schedule(1.0, chain, 1)
    eng.run()
    assert order == [1, 2, 3]
    assert eng.now == 3.0


def test_max_events_limits_run():
    eng = Engine()
    for i in range(5):
        eng.schedule(float(i + 1), lambda: None)
    assert eng.run(max_events=2) == 2
    assert eng.now == 2.0


def test_events_fired_counter():
    eng = Engine()
    for i in range(4):
        eng.schedule(float(i), lambda: None)
    eng.run()
    assert eng.events_fired == 4


def test_compact_removes_tombstones():
    eng = Engine()
    handles = [eng.schedule(float(i + 1), lambda: None) for i in range(10)]
    for h in handles[:7]:
        h.cancel()
    assert eng.compact() == 7
    assert eng.pending == 3


def test_step_returns_false_on_empty_queue():
    assert Engine().step() is False


def test_zero_delay_event_fires_at_now():
    eng = Engine(start_time=7.0)
    times = []
    eng.schedule(0.0, lambda: times.append(eng.now))
    eng.run()
    assert times == [7.0]


def test_auto_compaction_bounds_queue_under_churn():
    """Churn-heavy schedule/cancel loops must not accumulate tombstones:
    once cancellations outnumber live entries the queue self-compacts."""
    eng = Engine()
    live = [eng.schedule(1e9 + i, lambda: None) for i in range(100)]
    for round_no in range(200):
        doomed = [eng.schedule(1e6 + round_no, lambda: None) for _ in range(50)]
        for h in doomed:
            h.cancel()
    assert eng.auto_compactions >= 1
    # Bounded: never more tombstones than live entries plus one insert.
    assert eng.pending <= 2 * len(live) + 1
    assert eng.tombstones <= eng.pending
    eng.run()
    assert eng.events_fired == len(live)


def test_auto_compaction_preserves_event_order():
    eng = Engine()
    fired = []
    keep = [eng.schedule(float(i), fired.append, i) for i in range(0, 200, 2)]
    for i in range(1, 401, 2):
        eng.schedule(float(i), lambda: None).cancel()
    assert eng.auto_compactions >= 1
    eng.run()
    assert fired == list(range(0, 200, 2))
    assert all(not h.active for h in keep)


def test_small_queues_never_auto_compact():
    """Tiny queues stay below the compaction floor so explicit
    ``compact()`` calls observe their tombstones (as the compact test
    above relies on)."""
    eng = Engine()
    for _ in range(20):
        eng.schedule(1.0, lambda: None).cancel()
    assert eng.auto_compactions == 0
    assert eng.tombstones == 20


def test_cancel_releases_callback_references():
    eng = Engine()
    h = eng.schedule(5.0, lambda: None, "payload")
    h.cancel()
    assert h.callback is None
    assert h.args == ()


def test_advance_to_moves_clock_forward_only():
    eng = Engine(start_time=10.0)
    eng.advance_to(15.0)
    assert eng.now == 15.0
    with pytest.raises(SimulationError):
        eng.advance_to(14.0)


def test_claim_seq_interleaves_with_heap_insertions():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    s1 = eng.claim_seq()
    eng.schedule(1.0, lambda: None)
    s2 = eng.claim_seq()
    assert s1 == 2 and s2 == 4


def test_next_event_key_skips_tombstones():
    eng = Engine()
    first = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    first.cancel()
    assert eng.next_event_key() == (2.0, 0, 2)
    assert eng.tombstones == 0
