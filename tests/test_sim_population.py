"""The structure-of-arrays population engine vs the object engine.

The SoA scheduler's contract is *bit-identity*: same tick schedule,
same RNG stream consumption, same results — only faster.  These tests
pin the contract at every level: raw jitter arithmetic, the engine
merge order, full-stack runs with churn on and off, and the Fig 5 /
Fig 6 series.
"""

import numpy as np
import pytest

from repro.bittorrent.session import BitTorrentSession, SessionConfig
from repro.core.experience import AdaptiveThresholdExperience
from repro.core.runtime import ProtocolRuntime, RuntimeConfig
from repro.core.votes import Vote
from repro.sim.engine import Engine
from repro.sim.population import PopulationEngine
from repro.sim.rng import RngRegistry
from repro.sim.units import HOUR, MB
from repro.traces.generator import TraceGenerator, TraceGeneratorConfig
from repro.traces.model import (
    EventKind,
    PeerProfile,
    SwarmSpec,
    Trace,
    TraceEvent,
)


# ----------------------------------------------------------------------
# Jitter arithmetic guard
# ----------------------------------------------------------------------
def test_vectorised_jitter_matches_scalar_uniform():
    """The SoA gap formula consumes ``Generator.random()`` doubles and
    must reproduce ``Generator.uniform(-j, +j)`` bit-for-bit, including
    chunked pre-draws — the foundation of schedule bit-identity."""
    jitters = [30.0, 12.0, 90.0, 6.0, 90.0]
    scalar_gen = RngRegistry(7).stream("jitter", "p1")
    scalar = [
        300.0 + scalar_gen.uniform(-j, j) for j in jitters for _ in range(4)
    ]
    chunked_gen = RngRegistry(7).stream("jitter", "p1")
    raw = np.concatenate([chunked_gen.random(4) for _ in range(5)]).tolist()
    vectorised = [
        300.0 + ((-j) + (j + j) * raw[k * 4 + i])
        for k, j in enumerate(jitters)
        for i in range(4)
    ]
    assert scalar == vectorised


# ----------------------------------------------------------------------
# PopulationEngine unit behaviour
# ----------------------------------------------------------------------
def test_population_engine_basic_ticking():
    eng = Engine()
    hits = []
    pop = PopulationEngine(
        eng,
        RngRegistry(0),
        [("loop", 10.0, lambda pid: hits.append((eng.now, pid)))],
        jitter_fraction=0.1,
    )
    eng.attach_source(pop)
    pop.peer_online("x", 0.0)
    pop.peer_online("y", 0.0)
    eng.run_until(100.0)
    assert len(hits) == 19  # ~10 ticks per peer within 100 s, jittered
    times = [t for t, _pid in hits]
    assert times == sorted(times)
    assert eng.events_fired == 19


def test_population_engine_offline_stops_ticks():
    eng = Engine()
    hits = []
    pop = PopulationEngine(
        eng, RngRegistry(0), [("loop", 10.0, lambda pid: hits.append(pid))]
    )
    eng.attach_source(pop)
    pop.peer_online("x", 0.0)
    eng.run_until(35.0)
    assert hits == ["x", "x", "x"]
    pop.peer_offline("x", eng.now)
    eng.run_until(100.0)
    assert hits == ["x", "x", "x"]
    assert not pop.is_online("x")


def test_population_engine_growth_past_one_block():
    """More peers than one 2048-wide index block and one growth step."""
    eng = Engine()
    count = [0]
    pop = PopulationEngine(
        eng, RngRegistry(1), [("loop", 50.0, lambda pid: count.__setitem__(0, count[0] + 1))]
    )
    eng.attach_source(pop)
    n = 3000
    for i in range(n):
        pop.peer_online(f"p{i}", 0.0)
    assert len(pop) == n
    eng.run_until(60.0)
    assert count[0] == n  # each peer ticked exactly once within 50±0 s
    telemetry = pop.telemetry()
    assert telemetry["peers_online"] == n
    assert telemetry["ticks"] == n
    assert telemetry["max_batch_size"] >= 1


def test_population_engine_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        PopulationEngine(eng, RngRegistry(0), [])
    with pytest.raises(ValueError):
        PopulationEngine(eng, RngRegistry(0), [("a", 0.0, lambda pid: None)])
    with pytest.raises(ValueError):
        PopulationEngine(
            eng, RngRegistry(0), [("a", 1.0, lambda pid: None)], jitter_fraction=1.0
        )


def test_attach_source_twice_raises():
    from repro.sim.engine import SimulationError

    eng = Engine()
    pop = PopulationEngine(eng, RngRegistry(0), [("a", 1.0, lambda pid: None)])
    eng.attach_source(pop)
    with pytest.raises(SimulationError):
        eng.attach_source(pop)


def test_ticks_interleave_with_heap_events_in_time_order():
    eng = Engine()
    order = []
    pop = PopulationEngine(
        eng, RngRegistry(0), [("loop", 10.0, lambda pid: order.append(("tick", eng.now)))]
    )
    eng.attach_source(pop)
    pop.peer_online("x", 0.0)
    for t in (5.0, 15.0, 25.0):
        eng.schedule(t, lambda: order.append(("heap", eng.now)))
    eng.run_until(30.0)
    times = [t for _kind, t in order]
    assert times == sorted(times)
    assert [k for k, _t in order].count("heap") == 3


# ----------------------------------------------------------------------
# Full-stack equivalence
# ----------------------------------------------------------------------
def always_online_trace(n=8, duration=6 * HOUR):
    peers = {}
    events = []
    for i in range(n):
        pid = f"p{i}"
        peers[pid] = PeerProfile(pid, upload_capacity=200_000.0)
        t0 = float(i)
        events.append(TraceEvent(t0, pid, EventKind.SESSION_START))
        events.append(TraceEvent(t0, pid, EventKind.SWARM_JOIN, "s0"))
    swarms = {
        "s0": SwarmSpec("s0", file_size=100 * 256 * 1024, initial_seeder="p0")
    }
    trace = Trace(
        duration=duration,
        peers=peers,
        swarms=swarms,
        events=Trace.sorted_events(events),
    )
    trace.validate()
    return trace


def churn_trace(n=30, duration=6 * HOUR, seed=5):
    return TraceGenerator(
        TraceGeneratorConfig(n_peers=n, duration=duration, n_swarms=4),
        seed=seed,
    ).generate()


def run_stack(engine_kind, trace, seed=11, hours=6, config_kwargs=None, adaptive=False):
    """One full protocol run; returns (tick log, run_summary minus
    population, per-node fingerprint, population telemetry)."""
    engine = Engine()
    rng = RngRegistry(seed)
    session = BitTorrentSession(
        engine, trace, rng, config=SessionConfig(round_interval=60.0)
    )
    kwargs = dict(
        moderation_interval=120.0,
        vote_interval=120.0,
        bartercast_interval=300.0,
        experience_threshold=1 * MB,
        population_engine=engine_kind,
    )
    kwargs.update(config_kwargs or {})
    runtime = ProtocolRuntime(session, rng, config=RuntimeConfig(**kwargs))
    if adaptive:
        runtime.experience = AdaptiveThresholdExperience(
            runtime.bartercast, d_max=0.5, step=1 * MB
        )
    log = []
    for name in (
        "_moderation_tick",
        "_vote_tick",
        "_bartercast_tick",
        "_newscast_tick",
        "_adaptive_tick",
    ):
        orig = getattr(runtime, name)

        def wrap(orig=orig, name=name):
            def tick(pid):
                log.append((engine.now, name, pid))
                return orig(pid)

            return tick

        setattr(runtime, name, wrap())
    pids = sorted(trace.peers)
    moderator = runtime.ensure_node(pids[0])
    moderator.create_moderation("t-file", "x", now=0.0)
    runtime.ensure_node(pids[1]).set_vote_intention(pids[0], Vote.POSITIVE)
    session.start()
    engine.run_until(hours * HOUR)
    summary = runtime.run_summary()
    population = summary.pop("population")
    states = {
        pid: (
            len(node.store),
            node.ballot_box.num_unique_users(),
            node.ballot_box.score(pids[0]),
            node.online,
        )
        for pid, node in sorted(runtime.nodes.items())
    }
    return log, summary, states, population


def assert_engines_equivalent(trace, **kwargs):
    log_o, summary_o, states_o, pop_o = run_stack("object", trace, **kwargs)
    log_s, summary_s, states_s, pop_s = run_stack("soa", trace, **kwargs)
    assert log_o == log_s  # bit-identical tick schedule
    assert summary_o == summary_s
    assert states_o == states_s
    assert pop_o["ticks"] == pop_s["ticks"]
    assert pop_o["peers_online"] == pop_s["peers_online"]
    assert pop_s["engine"] == "soa" and pop_o["engine"] == "object"
    return pop_s


def test_engines_identical_under_churn():
    pop = assert_engines_equivalent(churn_trace())
    # Batching actually happened (the point of the SoA engine).
    assert pop["batches"] < pop["ticks"]
    assert pop["mean_batch_size"] > 1.0


def test_engines_identical_always_online():
    assert_engines_equivalent(always_online_trace())


def test_engines_identical_with_newscast_and_message_loss():
    assert_engines_equivalent(
        churn_trace(n=20),
        config_kwargs={"use_newscast": True, "message_loss": 0.1},
    )


def test_engines_identical_with_adaptive_experience_and_fanout():
    assert_engines_equivalent(
        churn_trace(n=20), config_kwargs={"vote_fanout": 3}, adaptive=True
    )


def test_bring_online_external_peer_under_soa():
    trace = always_online_trace(n=4)
    engine = Engine()
    rng = RngRegistry(0)
    session = BitTorrentSession(
        engine, trace, rng, config=SessionConfig(round_interval=60.0)
    )
    runtime = ProtocolRuntime(
        session,
        rng,
        config=RuntimeConfig(
            moderation_interval=120.0,
            vote_interval=120.0,
            bartercast_interval=120.0,
            population_engine="soa",
        ),
    )
    session.start()
    engine.run_until(1 * HOUR)
    runtime.bring_online("attacker", engine.now)
    assert runtime.nodes["attacker"].online
    assert runtime._population.is_online("attacker")
    engine.run_until(2 * HOUR)
    runtime.take_offline("attacker", engine.now)
    assert not runtime.nodes["attacker"].online
    assert not runtime._population.is_online("attacker")


def test_auto_selects_engine_by_population():
    trace = always_online_trace(n=6)

    def build(threshold):
        engine = Engine()
        rng = RngRegistry(0)
        session = BitTorrentSession(engine, trace, rng)
        return ProtocolRuntime(
            session,
            rng,
            config=RuntimeConfig(population_engine_threshold=threshold),
        )

    assert build(threshold=100).population_engine == "object"
    assert build(threshold=5).population_engine == "soa"


def test_population_telemetry_in_run_summary():
    trace = churn_trace(n=10, duration=2 * HOUR)
    for kind in ("object", "soa"):
        _log, _summary, _states, pop = run_stack(kind, trace, hours=2)
        assert pop["engine"] == kind
        assert pop["ticks"] > 0
        assert pop["batches"] > 0
        assert pop["mean_batch_size"] >= 1.0
        assert pop["max_batch_size"] >= 1
        assert set(pop["ticks_by_protocol"]) == {
            "moderation",
            "vote",
            "bartercast",
        }
        assert sum(pop["ticks_by_protocol"].values()) == pop["ticks"]


def test_runtime_config_validates_population_engine():
    with pytest.raises(ValueError):
        RuntimeConfig(population_engine="threads")
    with pytest.raises(ValueError):
        RuntimeConfig(population_engine_threshold=-1)


# ----------------------------------------------------------------------
# Figure-level equivalence (satellite: Fig 5 / Fig 6 series)
# ----------------------------------------------------------------------
def _series_arrays(result):
    return {
        key: series.values.copy() for key, series in sorted(result.series.items())
    }


def test_fig6_series_identical_across_engines():
    from repro.core.node import NodeConfig
    from repro.experiments.vote_sampling import (
        VoteSamplingConfig,
        VoteSamplingExperiment,
    )

    def run(kind):
        node = NodeConfig(b_min=5, b_max=100, v_max=10, k=3)
        cfg = VoteSamplingConfig(
            seed=3,
            duration=6 * HOUR,
            trace=TraceGeneratorConfig(n_peers=30, n_swarms=4, duration=6 * HOUR),
            node=node,
            runtime=RuntimeConfig(
                node=node,
                experience_threshold=5 * MB,
                population_engine=kind,
            ),
        )
        return VoteSamplingExperiment(cfg).run()

    result_object = run("object")
    result_soa = run("soa")
    series_object = _series_arrays(result_object)
    series_soa = _series_arrays(result_soa)
    assert list(series_object) == list(series_soa)
    for key in series_object:
        assert np.array_equal(series_object[key], series_soa[key]), key
    meta_o = result_object.metadata["run_summary"]
    meta_s = result_soa.metadata["run_summary"]
    meta_o.pop("population")
    meta_s.pop("population")
    assert meta_o == meta_s


def test_fig5_series_identical_across_engines():
    from repro.experiments.experience_formation import (
        ExperienceFormationConfig,
        ExperienceFormationExperiment,
    )

    def run(kind):
        cfg = ExperienceFormationConfig(
            seed=3,
            duration=6 * HOUR,
            thresholds=(2 * MB, 5 * MB),
            trace=TraceGeneratorConfig(n_peers=25, n_swarms=3, duration=6 * HOUR),
            runtime=RuntimeConfig(population_engine=kind),
        )
        return ExperienceFormationExperiment(cfg).run()

    series_object = _series_arrays(run("object"))
    series_soa = _series_arrays(run("soa"))
    assert list(series_object) == list(series_soa)
    for key in series_object:
        assert np.array_equal(series_object[key], series_soa[key]), key


# ----------------------------------------------------------------------
# Batched vote tick (columnar state store)
# ----------------------------------------------------------------------
def run_stack_batched(engine_kind, trace, seed=11, hours=6, config_kwargs=None,
                      adaptive=False):
    """Like :func:`run_stack`, but without the per-tick wrappers — an
    instance-level ``_vote_tick`` override disables the batched vote
    path by design, and this helper exists to exercise that path.
    Counts batch-handler invocations instead; compares on the summary
    plus *full* per-node serialised state."""
    from repro.core.persistence import node_to_dict

    engine = Engine()
    rng = RngRegistry(seed)
    session = BitTorrentSession(
        engine, trace, rng, config=SessionConfig(round_interval=60.0)
    )
    kwargs = dict(
        moderation_interval=120.0,
        vote_interval=120.0,
        bartercast_interval=300.0,
        experience_threshold=1 * MB,
        population_engine=engine_kind,
    )
    kwargs.update(config_kwargs or {})
    runtime = ProtocolRuntime(session, rng, config=RuntimeConfig(**kwargs))
    if adaptive:
        runtime.experience = AdaptiveThresholdExperience(
            runtime.bartercast, d_max=0.5, step=1 * MB
        )
    calls = []
    orig_batch = runtime._vote_tick_batch

    def counting_batch(times, pids, rows):
        calls.append(len(pids))
        return orig_batch(times, pids, rows)

    # Shadowing the *batch* handler keeps the eligibility gate intact
    # (it only checks for a scalar ``_vote_tick`` override).
    runtime._vote_tick_batch = counting_batch
    pids = sorted(trace.peers)
    runtime.ensure_node(pids[0]).create_moderation("t-file", "x", now=0.0)
    runtime.ensure_node(pids[1]).set_vote_intention(pids[0], Vote.POSITIVE)
    session.start()
    engine.run_until(hours * HOUR)
    summary = runtime.run_summary()
    summary.pop("population")
    states = {
        pid: node_to_dict(node) for pid, node in sorted(runtime.nodes.items())
    }
    return summary, states, calls


@pytest.mark.parametrize(
    "config_kwargs,adaptive",
    [
        (None, False),
        ({"message_loss": 0.1}, False),
        ({"experience_threshold": 0.0}, False),
        (None, True),
    ],
    ids=["base", "message_loss", "fast_experience", "adaptive"],
)
def test_batched_vote_tick_identical_to_object_engine(config_kwargs, adaptive):
    trace = churn_trace(n=25)
    summary_o, states_o, calls_o = run_stack_batched(
        "object", trace, config_kwargs=config_kwargs, adaptive=adaptive
    )
    summary_s, states_s, calls_s = run_stack_batched(
        "soa", trace, config_kwargs=config_kwargs, adaptive=adaptive
    )
    assert summary_o == summary_s
    assert states_o == states_s
    # The object engine never batches; the SoA engine's columnar vote
    # path must actually have carried multi-peer batches.
    assert calls_o == []
    assert calls_s and max(calls_s) >= 2


def test_instance_vote_tick_override_disables_batching():
    """The eligibility gate must fall back to scalar dispatch when an
    instrumentation wrapper shadows ``_vote_tick`` — and still produce
    identical results (this is what ``run_stack`` relies on)."""
    trace = churn_trace(n=15)
    summary_plain, states_plain, calls = run_stack_batched("soa", trace)
    assert calls  # batching active without the override

    engine = Engine()
    rng = RngRegistry(11)
    session = BitTorrentSession(
        engine, trace, rng, config=SessionConfig(round_interval=60.0)
    )
    runtime = ProtocolRuntime(
        session,
        rng,
        config=RuntimeConfig(
            moderation_interval=120.0,
            vote_interval=120.0,
            bartercast_interval=300.0,
            experience_threshold=1 * MB,
            population_engine="soa",
        ),
    )
    scalar_ticks = []
    orig = runtime._vote_tick

    def wrapped(pid):
        scalar_ticks.append(pid)
        return orig(pid)

    runtime._vote_tick = wrapped
    pids = sorted(trace.peers)
    runtime.ensure_node(pids[0]).create_moderation("t-file", "x", now=0.0)
    runtime.ensure_node(pids[1]).set_vote_intention(pids[0], Vote.POSITIVE)
    session.start()
    engine.run_until(6 * HOUR)
    summary = runtime.run_summary()
    summary.pop("population")
    assert scalar_ticks  # every vote tick went through the wrapper
    assert summary == summary_plain


def test_batch_handler_contract_violation_raises():
    """A batch handler that schedules an event breaks the dispatch
    bookkeeping; the engine must fail loudly, not corrupt the run."""
    trace = churn_trace(n=15)
    engine = Engine()
    rng = RngRegistry(11)
    session = BitTorrentSession(
        engine, trace, rng, config=SessionConfig(round_interval=60.0)
    )
    runtime = ProtocolRuntime(
        session,
        rng,
        config=RuntimeConfig(
            moderation_interval=120.0,
            vote_interval=120.0,
            bartercast_interval=300.0,
            population_engine="soa",
        ),
    )

    def rogue_batch(times, pids, rows):
        engine.schedule_at(engine.now + 1.0, lambda: None)

    runtime._vote_tick_batch = rogue_batch
    session.start()
    with pytest.raises(RuntimeError, match="batch protocol handler"):
        engine.run_until(6 * HOUR)
