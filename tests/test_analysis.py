"""Tests for the analysis package (sampling accuracy, convergence)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.convergence import recovery_time, time_to_fraction
from repro.analysis.sampling import (
    ballot_share_estimate,
    binomial_error_bound,
    mean_estimation_error,
    true_vote_shares,
)
from repro.core.ballotbox import BallotBox
from repro.core.votes import LocalVoteList, Vote, VoteEntry
from repro.metrics.timeseries import TimeSeries


def population(votes):
    """votes: {peer: [(moderator, vote), ...]}"""
    out = {}
    for pid, vs in votes.items():
        vl = LocalVoteList()
        for t, (m, v) in enumerate(vs):
            vl.cast(m, v, float(t))
        out[pid] = vl
    return out


class TestTruth:
    def test_shares(self):
        pop = population(
            {
                "a": [("m1", Vote.POSITIVE)],
                "b": [("m1", Vote.POSITIVE)],
                "c": [("m1", Vote.NEGATIVE), ("m2", Vote.NEGATIVE)],
            }
        )
        truth = true_vote_shares(pop)
        assert truth["m1"] == pytest.approx(2 / 3)
        assert truth["m2"] == 0.0

    def test_empty_population(self):
        assert true_vote_shares({}) == {}


class TestEstimate:
    def test_estimate_matches_counts(self):
        bb = BallotBox(b_max=10)
        bb.merge("v1", [VoteEntry("m", Vote.POSITIVE, 0.0)], 0.0)
        bb.merge("v2", [VoteEntry("m", Vote.NEGATIVE, 0.0)], 0.0)
        assert ballot_share_estimate(bb, "m") == 0.5

    def test_no_sample_is_none(self):
        assert ballot_share_estimate(BallotBox(b_max=10), "m") is None

    def test_mean_error_perfect_sample(self):
        bb = BallotBox(b_max=10)
        bb.merge("v1", [VoteEntry("m", Vote.POSITIVE, 0.0)], 0.0)
        bb.merge("v2", [VoteEntry("m", Vote.NEGATIVE, 0.0)], 0.0)
        assert mean_estimation_error([bb], {"m": 0.5}) == 0.0

    def test_mean_error_skips_unsampled(self):
        bb = BallotBox(b_max=10)
        assert mean_estimation_error([bb], {"m": 0.5}) == 0.0


class TestBound:
    def test_bound_formula(self):
        assert binomial_error_bound(100) == pytest.approx(0.05)
        assert binomial_error_bound(25) == pytest.approx(0.1)

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            binomial_error_bound(0)

    def test_monte_carlo_error_shrinks_with_sample_size(self):
        """Random sampling into ballot boxes: error ~ 1/sqrt(B_max)."""
        rng = np.random.default_rng(0)
        p_true = 0.7
        n_pop = 2000
        votes = [
            Vote.POSITIVE if rng.random() < p_true else Vote.NEGATIVE
            for _ in range(n_pop)
        ]

        def run(b_max, n_nodes=30):
            boxes = []
            for _ in range(n_nodes):
                bb = BallotBox(b_max=b_max)
                picks = rng.choice(n_pop, size=b_max, replace=False)
                for i in picks:
                    bb.merge(f"v{i}", [VoteEntry("m", votes[i], 0.0)], 0.0)
                boxes.append(bb)
            return mean_estimation_error(boxes, {"m": p_true})

        err_small = run(b_max=10)
        err_large = run(b_max=250)
        assert err_large < err_small
        # within ~3x of the binomial prediction
        assert err_large < 3 * binomial_error_bound(250)


def series(points):
    s = TimeSeries("x")
    for t, v in points:
        s.append(t, v)
    return s


class TestConvergence:
    def test_time_to_fraction(self):
        s = series([(0, 0.0), (10, 0.4), (20, 0.9)])
        assert time_to_fraction(s, 0.5) == 20.0
        assert time_to_fraction(s, 0.3) == 10.0
        assert time_to_fraction(s, 0.95) is None

    def test_recovery_time(self):
        s = series([(0, 0.0), (10, 0.8), (20, 0.6), (30, 0.3), (40, 0.1)])
        # peak 0.8 at t=10; half-peak 0.4 first reached at t=30
        assert recovery_time(s) == 20.0

    def test_recovery_never(self):
        s = series([(0, 0.5), (10, 0.6), (20, 0.7)])
        assert recovery_time(s) is None

    def test_recovery_empty_or_flat_zero(self):
        assert recovery_time(series([])) is None
        assert recovery_time(series([(0, 0.0), (10, 0.0)])) is None

    def test_recovery_validation(self):
        with pytest.raises(ValueError):
            recovery_time(series([(0, 1.0)]), fraction_of_peak=1.5)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=1),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(deadline=None)
    def test_property_time_to_fraction_is_a_sample_time(self, raw):
        # Deduplicate timestamps (recorders sample at distinct times;
        # value_at is only well-defined then), keeping the last value.
        dedup = {t: v for t, v in sorted(raw, key=lambda tv: tv[0])}
        s = series(sorted(dedup.items()))
        t = time_to_fraction(s, 0.5)
        if t is not None:
            assert t in set(s.times)
            assert s.value_at(t) >= 0.5
