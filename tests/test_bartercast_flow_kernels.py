"""Cross-backend/kernels property tests for the batch 2-hop flow.

The load-bearing contract (see ``two_hop_flows_to_sink``): the dense
path, the chunked sparse path and the sparse-to-sparse CSR kernel all
reduce the min terms over the sink's in-column support in the same
fixed order, so their flows are **bit-identical** — on live graphs, on
shared-memory views, and across the thread/process execution tiers.
"""

import random

import numpy as np
import pytest

from repro.bartercast.graph import SubjectiveGraph
from repro.bartercast.maxflow import (
    edmonds_karp,
    two_hop_flow,
    two_hop_flows_to_sink,
)
from repro.bartercast.protocol import BarterCastConfig
from repro.core.runtime import RuntimeConfig
from repro.sim.parallel import FlowRowPool

PEERS = [f"p{i:02d}" for i in range(24)]


def random_graph(owner, backend, seed, max_nodes=0):
    """Random subjective graph over PEERS plus strangers; a nonzero
    ``max_nodes`` forces B_max-style evictions along the way."""
    rng = random.Random(seed)
    ids = PEERS + [f"x{i}" for i in range(8)]
    g = SubjectiveGraph(owner, backend=backend, max_nodes=max_nodes)
    for _ in range(150):
        u, v = rng.sample(ids, 2)
        g.observe_direct(u, v, float(rng.randint(1, 900)))
    return g


class TestKernelBitIdentity:
    @pytest.mark.parametrize("max_nodes", [0, 18])
    def test_dense_chunked_csr_bit_identical(self, max_nodes):
        """Randomized property (with and without evictions): all three
        kernels produce byte-for-byte equal flows."""
        for seed in range(6):
            sink = PEERS[seed % len(PEERS)]
            gd = random_graph(sink, "dense", seed, max_nodes)
            gs = random_graph(sink, "sparse", seed, max_nodes)
            dense = two_hop_flows_to_sink(gd, PEERS, sink)
            chunked = two_hop_flows_to_sink(gs, PEERS, sink, sparse_kernel="chunked")
            csr = two_hop_flows_to_sink(gs, PEERS, sink, sparse_kernel="csr")
            auto = two_hop_flows_to_sink(gs, PEERS, sink, sparse_kernel="auto")
            np.testing.assert_array_equal(dense, chunked)
            np.testing.assert_array_equal(dense, csr)
            np.testing.assert_array_equal(dense, auto)

    def test_flows_match_bounded_maxflow(self):
        """Spot-check every kernel against edmonds_karp(max_hops=2) and
        the scalar closed form (float tolerance: summation order of the
        scalar path differs by design)."""
        g = random_graph("p00", "sparse", 3)
        for kernel in ("chunked", "csr"):
            flows = two_hop_flows_to_sink(g, PEERS, "p00", sparse_kernel=kernel)
            for s in PEERS[:8]:
                want = edmonds_karp(g, s, "p00", max_hops=2)
                assert flows[PEERS.index(s)] == pytest.approx(want)
                assert flows[PEERS.index(s)] == pytest.approx(
                    two_hop_flow(g, s, "p00")
                )

    def test_kernel_ignored_on_dense_backend(self):
        g = random_graph("p01", "dense", 4)
        base = two_hop_flows_to_sink(g, PEERS, "p01")
        for kernel in ("chunked", "csr"):
            np.testing.assert_array_equal(
                base, two_hop_flows_to_sink(g, PEERS, "p01", sparse_kernel=kernel)
            )

    def test_unknown_sink_and_unknown_sources(self):
        g = SubjectiveGraph("obs", backend="sparse")
        g.observe_direct("a", "b", 10.0)
        for kernel in ("chunked", "csr"):
            flows = two_hop_flows_to_sink(
                g, ["a", "ghost", "nowhere"], "nowhere", sparse_kernel=kernel
            )
            np.testing.assert_array_equal(flows, np.zeros(3))

    def test_invalid_kernel_rejected(self):
        g = SubjectiveGraph("obs", backend="sparse")
        with pytest.raises(ValueError, match="sparse_kernel"):
            two_hop_flows_to_sink(g, ["a"], "b", sparse_kernel="dense")


class TestProcessTierKernels:
    @pytest.mark.parametrize("kernel", ["chunked", "csr"])
    def test_process_rows_bit_identical_over_sparse_kernel(self, kernel):
        """executor="process" rows (shm workers) run the selected kernel
        over already-shipped CSR segments, bit-identical to serial."""
        stale = [
            (i, PEERS[i], random_graph(PEERS[i], "sparse", 31 + i, max_nodes=20))
            for i in range(3)
        ]
        with FlowRowPool(PEERS, jobs=2, sparse_kernel=kernel) as pool:
            rows = pool.run_rows(stale)
        for (row, values), (_, sink, g) in zip(rows, stale):
            np.testing.assert_array_equal(
                values, two_hop_flows_to_sink(g, PEERS, sink, sparse_kernel=kernel)
            )
            np.testing.assert_array_equal(
                values, two_hop_flows_to_sink(g, PEERS, sink, sparse_kernel="chunked")
            )

    def test_invalid_pool_kernel_rejected(self):
        with pytest.raises(ValueError, match="sparse_kernel"):
            FlowRowPool(PEERS, sparse_kernel="nope")


class TestKernelConfigPlumbing:
    def test_bartercast_config_validates_kernel(self):
        assert BarterCastConfig().sparse_flow_kernel == "auto"
        assert BarterCastConfig(sparse_flow_kernel="csr").sparse_flow_kernel == "csr"
        with pytest.raises(ValueError, match="sparse_flow_kernel"):
            BarterCastConfig(sparse_flow_kernel="bogus")

    def test_runtime_config_mirror_validates_kernel(self):
        assert RuntimeConfig().sparse_flow_kernel is None
        assert RuntimeConfig(sparse_flow_kernel="chunked").sparse_flow_kernel == "chunked"
        with pytest.raises(ValueError, match="sparse_flow_kernel"):
            RuntimeConfig(sparse_flow_kernel="bogus")
