"""Repository consistency checks.

Documentation must not drift from the code: every file the docs
reference exists, every bench DESIGN.md's experiment index names is on
disk, and the public package imports cleanly.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def referenced_paths(markdown: str):
    """Backtick-quoted repo-relative paths in a markdown document."""
    for match in re.findall(r"`([\w./-]+\.(?:py|md|json|svg))`", markdown):
        yield match


@pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
def test_documented_files_exist(doc):
    text = (REPO / doc).read_text(encoding="utf-8")
    missing = []
    for rel in referenced_paths(text):
        if rel.startswith("results/"):
            continue  # regenerated artifacts
        candidates = [
            REPO / rel,
            REPO / "src" / rel,  # docs reference modules as repro/...
            REPO / "benchmarks" / rel,
            REPO / "tests" / rel,
        ]
        if not any(c.exists() for c in candidates):
            missing.append(rel)
    assert not missing, f"{doc} references missing files: {missing}"


def test_design_experiment_index_benches_exist():
    text = (REPO / "DESIGN.md").read_text(encoding="utf-8")
    for name in re.findall(r"benchmarks/(test_\w+\.py)", text):
        assert (REPO / "benchmarks" / name).exists(), name


def test_examples_are_runnable_scripts():
    examples = sorted((REPO / "examples").glob("*.py"))
    assert len(examples) >= 3
    for path in examples:
        text = path.read_text(encoding="utf-8")
        assert '__name__ == "__main__"' in text, path.name
        assert "def main(" in text, path.name


def test_public_packages_import():
    import repro
    import repro.analysis
    import repro.attacks
    import repro.baselines
    import repro.bartercast
    import repro.bittorrent
    import repro.client
    import repro.core
    import repro.dht
    import repro.experiments
    import repro.identity
    import repro.metrics
    import repro.pss
    import repro.sim
    import repro.traces
    import repro.viz

    assert repro.__version__


def test_every_public_module_has_docstring():
    src = REPO / "src" / "repro"
    undocumented = []
    for path in src.rglob("*.py"):
        text = path.read_text(encoding="utf-8")
        stripped = text.lstrip()
        if not stripped:
            continue
        if not stripped.startswith(('"""', "'''", '#')):
            undocumented.append(str(path.relative_to(REPO)))
    assert not undocumented, undocumented
