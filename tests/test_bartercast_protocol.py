"""Tests for records, the subjective graph, and the gossip service."""

import numpy as np
import pytest

from repro.bartercast.graph import SubjectiveGraph
from repro.bartercast.protocol import BarterCastConfig, BarterCastService
from repro.bartercast.records import TransferRecord
from repro.pss.base import OnlineRegistry
from repro.pss.ideal import OraclePSS
from repro.sim.units import MB


def make_service(peers=("a", "b", "c"), seed=0, **cfg):
    reg = OnlineRegistry()
    for p in peers:
        reg.set_online(p)
    pss = OraclePSS(reg, np.random.default_rng(seed))
    return BarterCastService(pss, BarterCastConfig(**cfg)), reg


class TestRecords:
    def test_rejects_self_record(self):
        with pytest.raises(ValueError):
            TransferRecord("a", "a", 1.0, 1.0, 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TransferRecord("a", "b", -1.0, 0.0, 0.0)

    def test_involves(self):
        r = TransferRecord("a", "b", 1.0, 0.0, 0.0)
        assert r.involves("a") and r.involves("b") and not r.involves("c")


class TestSubjectiveGraph:
    def test_record_creates_both_edges(self):
        g = SubjectiveGraph("me")
        g.add_record(TransferRecord("a", "b", up=10.0, down=4.0, timestamp=0.0))
        assert g.weight("a", "b") == 10.0
        assert g.weight("b", "a") == 4.0

    def test_max_wins_on_conflict(self):
        g = SubjectiveGraph("me")
        g.observe_direct("a", "b", 10.0)
        g.observe_direct("a", "b", 5.0)  # stale smaller total
        assert g.weight("a", "b") == 10.0
        g.observe_direct("a", "b", 12.0)
        assert g.weight("a", "b") == 12.0

    def test_zero_weight_ignored(self):
        g = SubjectiveGraph("me")
        g.observe_direct("a", "b", 0.0)
        assert g.num_edges() == 0

    def test_nodes_and_edges_enumeration(self):
        g = SubjectiveGraph("me")
        g.observe_direct("a", "b", 1.0)
        g.observe_direct("b", "c", 2.0)
        assert g.nodes() == {"a", "b", "c"}
        assert sorted(g.edges()) == [("a", "b", 1.0), ("b", "c", 2.0)]

    def test_to_matrix(self):
        g = SubjectiveGraph("me")
        g.observe_direct("a", "b", 3.0)
        mat = g.to_matrix(["a", "b"])
        assert mat[0, 1] == 3.0
        assert mat[1, 0] == 0.0


class TestLocalTransfer:
    def test_both_endpoints_record(self):
        svc, _ = make_service()
        svc.local_transfer("a", "b", 5 * MB, now=10.0)
        assert svc.graph_of("a").weight("a", "b") == 5 * MB
        assert svc.graph_of("b").weight("a", "b") == 5 * MB
        # third party knows nothing yet
        assert svc.graph_of("c").weight("a", "b") == 0.0

    def test_transfers_accumulate(self):
        svc, _ = make_service()
        svc.local_transfer("a", "b", 2 * MB, now=1.0)
        svc.local_transfer("a", "b", 3 * MB, now=2.0)
        assert svc.graph_of("b").weight("a", "b") == 5 * MB

    def test_zero_ignored(self):
        svc, _ = make_service()
        svc.local_transfer("a", "b", 0.0, now=1.0)
        assert svc.graph_of("a").num_edges() == 0

    def test_records_of_reports_own_totals(self):
        svc, _ = make_service()
        svc.local_transfer("a", "b", 5 * MB, now=1.0)
        svc.local_transfer("b", "a", 2 * MB, now=2.0)
        recs = {r.partner: r for r in svc.records_of("a")}
        assert recs["b"].up == 5 * MB
        assert recs["b"].down == 2 * MB

    def test_records_truncated_to_most_significant(self):
        svc, _ = make_service(max_records_per_exchange=2)
        svc.local_transfer("a", "b", 1 * MB, now=0.0)
        svc.local_transfer("a", "c", 9 * MB, now=0.0)
        svc.local_transfer("a", "d", 5 * MB, now=0.0)
        partners = {r.partner for r in svc.records_of("a")}
        assert partners == {"c", "d"}


class TestGossip:
    def test_gossip_spreads_records(self):
        svc, reg = make_service(peers=("a", "b", "c"), seed=1)
        svc.local_transfer("a", "b", 5 * MB, now=0.0)
        # force many ticks so c eventually meets a or b
        for t in range(40):
            for p in ("a", "b", "c"):
                svc.gossip_tick(p, float(t))
        assert svc.graph_of("c").weight("a", "b") == 5 * MB

    def test_gossip_with_no_peers_fails_gracefully(self):
        svc, reg = make_service(peers=("a",))
        assert svc.gossip_tick("a", 0.0) is False

    def test_contribution_direct(self):
        svc, _ = make_service()
        svc.local_transfer("b", "a", 7 * MB, now=0.0)
        assert svc.contribution("a", "b") == 7 * MB
        assert svc.contribution("b", "a") == 0.0  # a gave b nothing

    def test_contribution_two_hop_via_gossip(self):
        """b uploads to c; c uploads to a; after gossip a credits b
        min(b→c, c→a)."""
        svc, _ = make_service(seed=3)
        svc.local_transfer("b", "c", 10 * MB, now=0.0)
        svc.local_transfer("c", "a", 4 * MB, now=1.0)
        for t in range(40):
            for p in ("a", "b", "c"):
                svc.gossip_tick(p, float(t))
        assert svc.contribution("a", "b") == pytest.approx(min(10, 4) * MB)

    def test_contribution_self_zero(self):
        svc, _ = make_service()
        assert svc.contribution("a", "a") == 0.0

    def test_three_hop_contribution_invisible_at_two_hop_bound(self):
        svc, _ = make_service(peers=("a", "b", "c", "d"), seed=5)
        svc.local_transfer("b", "c", 9 * MB, now=0.0)
        svc.local_transfer("c", "d", 9 * MB, now=0.0)
        svc.local_transfer("d", "a", 9 * MB, now=0.0)
        for t in range(60):
            for p in ("a", "b", "c", "d"):
                svc.gossip_tick(p, float(t))
        assert svc.contribution("a", "b") == 0.0  # path b→c→d→a is 3 hops
        assert svc.contribution("a", "c") == 9 * MB

    def test_hearsay_records_rejected(self):
        """A peer cannot push records reported by somebody else."""
        svc, _ = make_service(peers=("honest", "liar"), seed=2)
        # The liar crafts a record claiming huge upload by "accomplice".
        fake = TransferRecord("accomplice", "liar", up=100 * MB, down=0.0, timestamp=0.0)
        svc._state("liar").direct  # liar has no real transfers
        # Simulate the exchange path directly: receiver folds only
        # records whose reporter equals the sender.
        svc._state("liar").graph.add_record(fake)  # liar's own graph may lie
        for t in range(20):
            svc.gossip_tick("honest", float(t))
        assert svc.graph_of("honest").weight("accomplice", "liar") == 0.0

    def test_inject_record_for_attack_models(self):
        svc, _ = make_service()
        svc.inject_record(
            "victim", TransferRecord("x", "y", up=5 * MB, down=0.0, timestamp=0.0)
        )
        assert svc.graph_of("victim").weight("x", "y") == 5 * MB


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BarterCastConfig(max_records_per_exchange=0)
        with pytest.raises(ValueError):
            BarterCastConfig(max_hops=0)

    def test_contribution_uses_generic_maxflow_for_other_bounds(self):
        svc, _ = make_service(peers=("a", "b", "c", "d"), seed=5, max_hops=3)
        svc.local_transfer("b", "c", 9 * MB, now=0.0)
        svc.local_transfer("c", "d", 9 * MB, now=0.0)
        svc.local_transfer("d", "a", 9 * MB, now=0.0)
        for t in range(60):
            for p in ("a", "b", "c", "d"):
                svc.gossip_tick(p, float(t))
        assert svc.contribution("a", "b") == 9 * MB  # 3-hop path now visible
