"""Tests for the tit-for-tat choker."""

import numpy as np
import pytest

from repro.bittorrent.choker import Choker, ChokerConfig


def make(seed=0, **cfg):
    return Choker(ChokerConfig(**cfg), np.random.default_rng(seed))


def test_config_validation():
    with pytest.raises(ValueError):
        ChokerConfig(regular_slots=-1)
    with pytest.raises(ValueError):
        ChokerConfig(regular_slots=0, optimistic_slots=0)
    with pytest.raises(ValueError):
        ChokerConfig(optimistic_rounds=0)


def test_no_interested_no_unchoke():
    choker = make()
    assert choker.select([], {}, seeding=False) == []


def test_few_interested_all_unchoked():
    choker = make(regular_slots=3, optimistic_slots=1)
    assert choker.select(["a", "b"], {}, seeding=False) == ["a", "b"]


def test_tit_for_tat_prefers_fast_uploaders():
    choker = make(regular_slots=2, optimistic_slots=0)
    interested = ["a", "b", "c", "d"]
    received = {"a": 100.0, "b": 500.0, "c": 50.0, "d": 400.0}
    assert set(choker.select(interested, received, seeding=False)) == {"b", "d"}


def test_optimistic_slot_gives_slow_peer_a_chance():
    """Over many rotations every non-regular peer gets optimistically
    unchoked at some point."""
    choker = make(seed=2, regular_slots=1, optimistic_slots=1, optimistic_rounds=1)
    interested = ["fast", "slow1", "slow2", "slow3"]
    received = {"fast": 1000.0}
    seen = set()
    for _ in range(60):
        picked = choker.select(interested, received, seeding=False)
        assert picked[0] == "fast"
        seen.update(picked[1:])
    assert seen == {"slow1", "slow2", "slow3"}


def test_optimistic_pick_stable_between_rotations():
    choker = make(seed=3, regular_slots=1, optimistic_slots=1, optimistic_rounds=5)
    interested = ["fast", "s1", "s2", "s3", "s4"]
    received = {"fast": 1000.0}
    picks = [choker.select(interested, received, seeding=False)[1] for _ in range(5)]
    assert len(set(picks)) == 1  # held for optimistic_rounds rounds


def test_seed_round_robin_covers_everyone():
    choker = make(regular_slots=2, optimistic_slots=0)
    interested = ["a", "b", "c", "d", "e"]
    seen = []
    for _ in range(5):
        seen.extend(choker.select(interested, {}, seeding=True))
    assert set(seen) == set(interested)


def test_seed_ignores_reciprocity():
    choker = make(regular_slots=1, optimistic_slots=0)
    interested = ["a", "b", "c"]
    received = {"c": 9999.0}
    picks = set()
    for _ in range(3):
        picks.update(choker.select(interested, received, seeding=True))
    assert picks == {"a", "b", "c"}  # round-robin, not rate-ranked


def test_deterministic_tie_break_on_peer_id():
    choker = make(regular_slots=2, optimistic_slots=0)
    interested = ["z", "a", "m", "b"]
    picked = choker.select(interested, {}, seeding=False)
    assert picked == ["a", "b"]
