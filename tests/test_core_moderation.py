"""Tests for Moderation / ModerationStore and the extract policy."""

import numpy as np
import pytest

from repro.core.moderation import Moderation, ModerationStore
from repro.core.moderationcast import extract_moderations
from repro.core.votes import LocalVoteList, Vote


def mod(moderator="m1", torrent="t1", version=1, valid=True, created=0.0):
    return Moderation(
        moderator_id=moderator,
        torrent_id=torrent,
        title=f"{moderator}:{torrent}",
        created_at=created,
        version=version,
        signature_valid=valid,
    )


class TestStore:
    def test_insert_and_get(self):
        st = ModerationStore()
        assert st.insert(mod(), now=1.0)
        assert st.get("m1", "t1").title == "m1:t1"
        assert len(st) == 1

    def test_duplicate_insert_not_new(self):
        st = ModerationStore()
        st.insert(mod(), now=1.0)
        assert not st.insert(mod(), now=2.0)

    def test_newer_version_replaces(self):
        st = ModerationStore()
        st.insert(mod(version=1), now=1.0)
        assert not st.insert(mod(version=2), now=2.0)  # update, not new
        assert st.get("m1", "t1").version == 2
        # stale version rejected
        st.insert(mod(version=1), now=3.0)
        assert st.get("m1", "t1").version == 2

    def test_invalid_signature_rejected(self):
        st = ModerationStore()
        assert not st.insert(mod(valid=False), now=1.0)
        assert len(st) == 0

    def test_purge_moderator(self):
        st = ModerationStore()
        st.insert(mod("bad", "t1"), now=1.0)
        st.insert(mod("bad", "t2"), now=1.0)
        st.insert(mod("good", "t1"), now=1.0)
        assert st.purge_moderator("bad") == 2
        assert not st.has_moderator("bad")
        assert st.has_moderator("good")

    def test_capacity_evicts_unapproved_first(self):
        st = ModerationStore(capacity=2)
        st.insert(mod("approved", "t1"), now=1.0)
        st.insert(mod("stranger", "t1"), now=2.0)
        st.insert(mod("stranger2", "t1"), now=3.0)
        st.enforce_capacity(approved=frozenset({"approved"}))
        assert len(st) == 2
        assert st.has_moderator("approved")
        assert not st.has_moderator("stranger")  # oldest unapproved out

    def test_capacity_falls_back_to_oldest_overall(self):
        st = ModerationStore(capacity=1)
        st.insert(mod("a", "t1"), now=1.0)
        st.insert(mod("b", "t1"), now=2.0)
        st.enforce_capacity(approved=frozenset({"a", "b"}))
        assert len(st) == 1
        assert st.has_moderator("b")

    def test_recency_order(self):
        st = ModerationStore()
        st.insert(mod("a", "t1"), now=1.0)
        st.insert(mod("b", "t1"), now=2.0)
        order = [m.moderator_id for m in st.recency_order()]
        assert order == ["b", "a"]

    def test_moderators_sorted(self):
        st = ModerationStore()
        st.insert(mod("z", "t1"), now=1.0)
        st.insert(mod("a", "t1"), now=1.0)
        assert st.moderators() == ["a", "z"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ModerationStore(capacity=0)


class TestExtractPolicy:
    def test_forwards_only_own_and_approved(self):
        st = ModerationStore()
        vl = LocalVoteList()
        st.insert(mod("me", "t1"), now=1.0)
        st.insert(mod("friend", "t1"), now=2.0)
        st.insert(mod("stranger", "t1"), now=3.0)
        vl.cast("friend", Vote.POSITIVE, 0.0)
        out = extract_moderations(st, vl, "me", 10, np.random.default_rng(0))
        senders = {m.moderator_id for m in out}
        assert senders == {"me", "friend"}

    def test_disapproved_never_forwarded(self):
        st = ModerationStore()
        vl = LocalVoteList()
        st.insert(mod("bad", "t1"), now=1.0)
        vl.cast("bad", Vote.NEGATIVE, 0.0)
        out = extract_moderations(st, vl, "me", 10, np.random.default_rng(0))
        assert out == []

    def test_budget_respected_with_recency_half(self):
        st = ModerationStore()
        vl = LocalVoteList()
        vl.cast("friend", Vote.POSITIVE, 0.0)
        for i in range(20):
            st.insert(mod("friend", f"t{i:02d}"), now=float(i))
        out = extract_moderations(st, vl, "me", 6, np.random.default_rng(0))
        assert len(out) == 6
        # recency half = 3 most recent torrents
        recent = {m.torrent_id for m in out[:3]}
        assert recent == {"t19", "t18", "t17"}

    def test_zero_budget(self):
        st = ModerationStore()
        vl = LocalVoteList()
        st.insert(mod("me", "t1"), now=1.0)
        assert extract_moderations(st, vl, "me", 0, np.random.default_rng(0)) == []
