"""Service mode: crash-safe shard checkpoints and the supervisor.

The crash contract under test: a shard restored from its last
checkpoint replays **bit-identically** to the same shard never having
been interrupted — same node states (including RNG positions), same
summaries, same schedule — for every engine/state-backing combination,
and through a real ``SIGKILL`` + supervisor restart.
"""

import json
import time

import pytest

from repro.core.node import NodeConfig
from repro.sim.service import (
    CHECKPOINT_FORMAT,
    ServiceConfig,
    ServiceShard,
    ServiceSupervisor,
    ShardConfig,
    _checkpoint_boundaries,
)


def _small_config(**overrides):
    defaults = dict(
        shard_id=0,
        peers=12,
        seed=11,
        moderation_interval=150.0,
        vote_interval=150.0,
        bartercast_interval=600.0,
        node=NodeConfig(b_max=20),
    )
    defaults.update(overrides)
    return ShardConfig(**defaults)


# ----------------------------------------------------------------------
# Checkpoint boundaries
# ----------------------------------------------------------------------
def test_checkpoint_boundaries_from_zero():
    assert _checkpoint_boundaries(0.0, 10.0, 3.0) == [3.0, 6.0, 9.0, 10.0]
    assert _checkpoint_boundaries(0.0, 9.0, 3.0) == [3.0, 6.0, 9.0]


def test_checkpoint_boundaries_resume_mid_run():
    # A shard restored at t=3 must see the same remaining boundaries
    # the uninterrupted run had left.
    assert _checkpoint_boundaries(3.0, 10.0, 3.0) == [6.0, 9.0, 10.0]
    assert _checkpoint_boundaries(4.5, 10.0, 3.0) == [6.0, 9.0, 10.0]


def test_checkpoint_boundaries_degenerate():
    assert _checkpoint_boundaries(10.0, 10.0, 3.0) == []
    with pytest.raises(ValueError, match="interval"):
        _checkpoint_boundaries(0.0, 10.0, 0.0)


# ----------------------------------------------------------------------
# Shard build determinism
# ----------------------------------------------------------------------
def test_peer_ids_sorted_order_is_creation_order():
    config = _small_config(peers=100)
    ids = config.peer_ids()
    assert ids == sorted(ids)
    assert len(set(ids)) == 100


def test_registry_seeds_differ_per_shard():
    seeds = {ShardConfig(shard_id=i, seed=7).registry_seed() for i in range(8)}
    assert len(seeds) == 8


# ----------------------------------------------------------------------
# Checkpoint → restore bit-identity, all engine/backing combinations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("columnar", ["off", "on"])
@pytest.mark.parametrize("engine_kind", ["object", "soa"])
def test_restore_replays_bit_identically(engine_kind, columnar, tmp_path):
    config = _small_config(
        population_engine=engine_kind, columnar_state=columnar
    )
    until, interval = 1800.0, 900.0

    reference = ServiceShard(config)
    reference.start()
    reference.run_service(until, interval)  # uninterrupted, same slices

    shard = ServiceShard(config)
    shard.start()
    shard.run_service(interval, interval, directory=tmp_path)
    resumed = ServiceShard.restore_from(config, tmp_path)
    resumed.run_service(until, interval)

    ref_state = reference.identity_state()
    res_state = resumed.identity_state()
    assert res_state == ref_state
    # The run must be non-trivial for the comparison to mean anything.
    assert ref_state["summary"]["nodes"]["votes_merged"] > 0
    assert ref_state["events_fired"] > 100
    assert resumed.ops["restores"] == 1


def test_checkpoint_state_round_trips_through_json(tmp_path):
    config = _small_config(population_engine="soa", columnar_state="on")
    shard = ServiceShard(config)
    shard.start()
    shard.run_until(600.0)
    state = shard.checkpoint_state()
    assert state["format"] == CHECKPOINT_FORMAT
    rebuilt = ServiceShard.restore(config, json.loads(json.dumps(state)))
    rebuilt_state = rebuilt.checkpoint_state()
    # ops is operational (not identity) state: the restore itself bumps
    # the restore counter.
    assert rebuilt_state.pop("ops")["restores"] == 1
    expected = json.loads(json.dumps(state))
    expected.pop("ops")
    assert rebuilt_state == expected


# ----------------------------------------------------------------------
# Restore error cases
# ----------------------------------------------------------------------
def _checkpointed_state(config):
    shard = ServiceShard(config)
    shard.start()
    shard.run_until(300.0)
    return shard.checkpoint_state()


def test_restore_rejects_unknown_format():
    config = _small_config()
    state = _checkpointed_state(config)
    state["format"] = 99
    with pytest.raises(ValueError, match="checkpoint format"):
        ServiceShard.restore(config, state)


def test_restore_rejects_wrong_shard():
    config = _small_config()
    state = _checkpointed_state(config)
    with pytest.raises(ValueError, match="shard"):
        ServiceShard.restore(ShardConfig(shard_id=3, peers=12), state)


def test_restore_rejects_engine_mismatch():
    soa = _small_config(population_engine="soa")
    state = _checkpointed_state(soa)
    with pytest.raises(ValueError, match="soa engine"):
        ServiceShard.restore(_small_config(population_engine="object"), state)
    obj_state = _checkpointed_state(_small_config(population_engine="object"))
    with pytest.raises(ValueError, match="object engine"):
        ServiceShard.restore(soa, obj_state)


def test_checkpoint_requires_started_shard():
    shard = ServiceShard(_small_config())
    with pytest.raises(RuntimeError, match="start"):
        shard.checkpoint_state()


# ----------------------------------------------------------------------
# Operational counters
# ----------------------------------------------------------------------
def test_run_summary_has_service_section(tmp_path):
    shard = ServiceShard(_small_config())
    shard.start()
    shard.run_service(900.0, 450.0, directory=tmp_path)
    summary = shard.run_summary()
    service = summary["service"]
    assert service["shard_id"] == 0
    assert service["sim_now"] == 900.0
    assert 0.0 <= service["eviction_pressure"] <= 1.0
    ops = service["ops"]
    assert ops["checkpoints"] == 2
    # Two checkpoints were written; state grows, so total exceeds the
    # last one but not necessarily twice it.
    assert ops["checkpoint_bytes_total"] > ops["checkpoint_bytes_last"] > 0
    assert ops["checkpoint_wall_total"] >= ops["checkpoint_wall_last"] > 0.0


def test_supervisor_rejects_empty_service(tmp_path):
    with pytest.raises(ValueError, match="shard"):
        ServiceSupervisor(ServiceConfig(shards=0), tmp_path)


# ----------------------------------------------------------------------
# Real SIGKILL through the supervisor
# ----------------------------------------------------------------------
def _wait(predicate, timeout, supervisor=None):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if supervisor is not None:
            supervisor.poll()
        if predicate():
            return True
        time.sleep(0.05)
    return False


def test_sigkilled_shard_restores_bit_identically(tmp_path):
    """kill -9 on a shard worker, supervisor restart from the last
    checkpoint, and the finished run is indistinguishable from one that
    was never interrupted."""
    shard_cfg = _small_config(peers=16, seed=23)
    interval = 900.0
    until = 5400.0

    # Phase 1: run one checkpoint slice to completion so a restartable
    # checkpoint exists on disk.
    phase1 = ServiceConfig(
        shards=1, until=interval, checkpoint_interval=interval, shard=shard_cfg
    )
    with ServiceSupervisor(phase1, tmp_path) as supervisor:
        supervisor.start()
        assert _wait(supervisor.done, timeout=120.0, supervisor=supervisor)
        assert supervisor._restarts == [0]
    checkpoint_path = tmp_path / "shard-00" / "checkpoint.json"
    assert checkpoint_path.exists()

    # Phase 2: resume toward the horizon and SIGKILL the worker
    # mid-run; the supervisor must restart it from the checkpoint and
    # the restarted worker must finish the run.
    phase2 = ServiceConfig(
        shards=1, until=until, checkpoint_interval=interval, shard=shard_cfg
    )
    with ServiceSupervisor(phase2, tmp_path, resume=True) as supervisor:
        supervisor.start()
        time.sleep(0.2)
        supervisor.kill_shard(0)
        supervisor.poll()
        assert supervisor._restarts == [1]
        assert _wait(supervisor.done, timeout=120.0, supervisor=supervisor)
        status = supervisor.status()
        assert status.totals["restarts"] == 1
        assert status.totals["alive"] == 0
        assert status.totals["sim_now_max"] == until
        assert status.shards[0]["checkpoints"] >= 1
        summary = supervisor.shard_summary(0)
    assert summary is not None
    assert summary["service"]["sim_now"] == until

    # Reference: the same shard run in-process, never interrupted, in
    # the same checkpoint-boundary slices.
    reference = ServiceShard(shard_cfg)
    reference.start()
    reference.run_service(until, interval)

    survivor = ServiceShard.restore_from(shard_cfg, tmp_path / "shard-00")
    assert survivor.identity_state() == reference.identity_state()
    assert reference.identity_state()["summary"]["nodes"]["votes_merged"] > 0
