"""The parallel replica engine.

The load-bearing property is **bit-identical determinism**: farming
replicas over worker processes must produce exactly the floats the
sequential loop produces, because each replica derives all randomness
from ``seed + 1000·replica`` and shares no state.
"""

import os

import numpy as np
import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.vote_sampling import (
    VoteSamplingConfig,
    VoteSamplingExperiment,
)
from repro.metrics.timeseries import TimeSeries
from repro.sim.parallel import (
    PackedResult,
    ReplicaPool,
    _run_task,
    _strip,
    pack_result,
    unpack_result,
)
from repro.sim.units import HOUR
from repro.traces.generator import TraceGeneratorConfig


def tiny_config(seed: int = 7) -> VoteSamplingConfig:
    duration = 6 * HOUR
    return VoteSamplingConfig(
        seed=seed,
        duration=duration,
        sample_interval=1800.0,
        trace=TraceGeneratorConfig(n_peers=20, n_swarms=3, duration=duration),
    )


class TestResolveJobs:
    def test_auto_caps_at_cpu_count_and_tasks(self):
        pool = ReplicaPool()
        cpus = os.cpu_count() or 1
        assert pool.resolve_jobs(1) == 1
        assert pool.resolve_jobs(1000) == cpus
        assert pool.resolve_jobs(0) == 1

    def test_explicit_jobs_cap(self):
        assert ReplicaPool(jobs=3).resolve_jobs(10) == 3
        assert ReplicaPool(jobs=3).resolve_jobs(2) == 2
        assert ReplicaPool(jobs=1).resolve_jobs(10) == 1

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            ReplicaPool(jobs=0)


class TestPackRoundTrip:
    def test_roundtrip_is_exact(self):
        result = ExperimentResult(name="x")
        s = TimeSeries("a")
        for i in range(5):
            s.append(i * 0.1, np.float64(i) / 3.0)
        result.series["a"] = s
        result.metadata = {"k": [1, 2], "nested": {"deep": 3}}
        back = unpack_result(pack_result(result))
        assert back.name == "x"
        np.testing.assert_array_equal(
            back.get("a").as_array(), s.as_array()
        )
        assert back.metadata == result.metadata

    def test_packed_result_is_plain_data(self):
        import pickle

        packed = PackedResult(name="y", series={"s": np.zeros((2, 2))})
        clone = pickle.loads(pickle.dumps(packed))
        assert clone.name == "y"
        np.testing.assert_array_equal(clone.series["s"], packed.series["s"])

    def test_strip_clears_last_stack(self):
        exp = VoteSamplingExperiment(tiny_config())
        exp.last_stack = object()  # stand-in for an unpicklable stack
        clone = _strip(exp)
        assert clone.last_stack is None
        assert exp.last_stack is not None  # original untouched
        assert clone.config is exp.config


class TestWorkerEntrypoint:
    def test_run_task_packs(self):
        packed = _run_task((VoteSamplingExperiment(tiny_config()), 0))
        assert isinstance(packed, PackedResult)
        assert "correct_fraction" in packed.series
        assert packed.series["correct_fraction"].shape[1] == 2


class TestBitIdenticalParallelism:
    def test_run_many_parallel_matches_sequential(self):
        """run_many(jobs=4) == run_many(jobs=1), float for float."""
        seq = VoteSamplingExperiment(tiny_config()).run_many(4, jobs=1)
        par = VoteSamplingExperiment(tiny_config()).run_many(4, jobs=4)
        assert seq.keys() == par.keys()
        for key in seq.keys():
            np.testing.assert_array_equal(
                seq.get(key).as_array(),
                par.get(key).as_array(),
                err_msg=f"series {key!r} diverged between jobs=1 and jobs=4",
            )
        assert seq.metadata["n_runs"] == par.metadata["n_runs"] == 4
        assert par.metadata["jobs"] == 4
        assert seq.metadata["jobs"] == 1

    def test_run_many_emits_std_series(self):
        result = VoteSamplingExperiment(tiny_config()).run_many(2, jobs=1)
        assert "std" in result.series
        run0 = result.get("run0").values
        run1 = result.get("run1").values
        n = min(len(run0), len(run1))
        expect = np.stack([run0[:n], run1[:n]]).std(axis=0)
        np.testing.assert_allclose(result.get("std").values[:n], expect)

    def test_run_tasks_preserves_order(self):
        exp = VoteSamplingExperiment(tiny_config())
        results = ReplicaPool(jobs=2).run_tasks([(exp, 1), (exp, 0)])
        assert [r.name for r in results] == [
            "fig6-vote-sampling-r1",
            "fig6-vote-sampling-r0",
        ]

    def test_run_tasks_empty(self):
        assert ReplicaPool().run_tasks([]) == []

    def test_unreimportable_main_falls_back_to_sequential(self, monkeypatch):
        """A parent whose __main__ spawn children cannot re-execute
        (e.g. a stdin-fed script) must degrade to sequential, not hang
        in a worker respawn loop."""
        import sys

        main = sys.modules["__main__"]
        monkeypatch.setattr(main, "__spec__", None, raising=False)
        monkeypatch.setattr(main, "__file__", "<stdin>", raising=False)
        exp = VoteSamplingExperiment(tiny_config())
        with pytest.warns(RuntimeWarning, match="sequentially"):
            results = ReplicaPool(jobs=2).run_tasks([(exp, 0), (exp, 1)])
        assert [r.name for r in results] == [
            "fig6-vote-sampling-r0",
            "fig6-vote-sampling-r1",
        ]
