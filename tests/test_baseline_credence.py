"""Unit tests for the Credence baseline."""

import numpy as np
import pytest

from repro.baselines.credence import CredenceConfig, CredenceNode, CredenceSimulation


class TestNode:
    def test_vote_validation(self):
        node = CredenceNode("a")
        with pytest.raises(ValueError):
            node.vote("obj", 0)

    def test_self_history_ignored(self):
        node = CredenceNode("a")
        node.receive_history("a", {"o": 1})
        assert node.received == {}

    def test_correlation_requires_overlap(self):
        node = CredenceNode("a", CredenceConfig(min_overlap=2))
        node.vote("o1", 1)
        node.receive_history("b", {"o1": 1})
        assert node.correlation("b") is None  # only 1 common object
        node.vote("o2", 1)
        node.receive_history("b", {"o2": 1})
        assert node.correlation("b") == pytest.approx(1.0)

    def test_correlation_detects_disagreement(self):
        node = CredenceNode("a")
        node.vote("o1", 1)
        node.vote("o2", -1)
        node.receive_history("b", {"o1": -1, "o2": 1})
        assert node.correlation("b") == pytest.approx(-1.0)

    def test_mixed_correlation(self):
        node = CredenceNode("a")
        node.vote("o1", 1)
        node.vote("o2", 1)
        node.vote("o3", -1)
        node.vote("o4", -1)
        node.receive_history("b", {"o1": 1, "o2": -1, "o3": -1, "o4": 1})
        theta = node.correlation("b")
        assert theta is not None and -0.5 < theta < 0.5

    def test_non_voter_is_isolated(self):
        node = CredenceNode("a")
        node.receive_history("b", {"o1": 1, "o2": 1})
        assert node.is_isolated()
        assert node.object_reputation("o1") is None

    def test_voter_with_correlated_peer_not_isolated(self):
        node = CredenceNode("a")
        node.vote("o1", 1)
        node.vote("o2", -1)
        node.receive_history("b", {"o1": 1, "o2": -1, "o3": 1})
        assert not node.is_isolated()
        # b's vote on o3 now counts with weight θ=1
        assert node.object_reputation("o3") == pytest.approx(1.0)

    def test_anticorrelated_peer_votes_inverted(self):
        """Negative θ flips the meaning of the peer's votes — the
        Credence trick of learning from consistent liars."""
        node = CredenceNode("a")
        node.vote("o1", 1)
        node.vote("o2", -1)
        node.receive_history("liar", {"o1": -1, "o2": 1, "o3": 1})
        rep = node.object_reputation("o3")
        assert rep is not None and rep < 0  # liar's +1 reads as bad

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CredenceConfig(min_overlap=0)
        with pytest.raises(ValueError):
            CredenceConfig(theta_min=2.0)


class TestSimulation:
    def test_voters_and_votes_assigned(self):
        sim = CredenceSimulation(
            n_peers=50, voter_fraction=0.2, rng=np.random.default_rng(0)
        )
        assert len(sim.voters) == 10
        for pid in sim.voters:
            assert sim.nodes[pid].own_votes

    def test_non_voters_isolated_even_with_full_gossip(self):
        sim = CredenceSimulation(
            n_peers=40, voter_fraction=0.25, rng=np.random.default_rng(1)
        )
        sim.gossip_all()
        non_voters = [p for p in sim.nodes if p not in sim.voters]
        assert all(sim.nodes[p].is_isolated() for p in non_voters)

    def test_isolated_fraction_tracks_voter_fraction(self):
        rng = np.random.default_rng(2)
        sim_low = CredenceSimulation(n_peers=60, voter_fraction=0.1, rng=rng)
        sim_low.gossip_all()
        sim_high = CredenceSimulation(n_peers=60, voter_fraction=0.8, rng=rng)
        sim_high.gossip_all()
        assert sim_low.isolated_fraction() > sim_high.isolated_fraction()

    def test_honest_voters_classify_correctly(self):
        sim = CredenceSimulation(
            n_peers=30, voter_fraction=0.5, rng=np.random.default_rng(3)
        )
        sim.gossip_all()
        assert sim.correct_classification_fraction() >= 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            CredenceSimulation(10, 1.5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            CredenceSimulation(10, 0.5, np.random.default_rng(0), malicious_fraction=-1)
