"""Property-based tests for the Newscast PSS."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pss.base import OnlineRegistry
from repro.pss.newscast import NewscastConfig, NewscastService


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["online", "offline", "tick"]),
            st.integers(0, 9),
        ),
        max_size=60,
    ),
    view_size=st.integers(1, 8),
)
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_views_bounded_and_never_self(ops, view_size):
    """Whatever the interleaving of churn and gossip: views never
    exceed capacity, never contain the owner, and ticks never crash."""
    reg = OnlineRegistry()
    svc = NewscastService(
        reg, np.random.default_rng(0), NewscastConfig(view_size=view_size)
    )
    t = 0.0
    for op, n in ops:
        pid = f"p{n}"
        t += 1.0
        if op == "online":
            reg.set_online(pid)
            svc.node_online(pid, t)
        elif op == "offline":
            reg.set_offline(pid)
            svc.node_offline(pid)
        else:
            svc.gossip_tick(pid, t)
        for owner, view in ((p, svc.view_of(p)) for p in reg.online_peers()):
            assert len(view) <= view_size
            assert owner not in view


@given(seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_property_descriptor_timestamps_monotone_with_gossip(seed):
    """Fresh self-descriptors dominate: after an exchange, each party's
    entry for the other carries the exchange time."""
    reg = OnlineRegistry()
    svc = NewscastService(reg, np.random.default_rng(seed), NewscastConfig())
    for pid in ("a", "b"):
        reg.set_online(pid)
        svc.node_online(pid, 0.0)
    svc._exchange("a", "b", now=42.0)
    assert svc.view_of("a").get("b") == 42.0
    assert svc.view_of("b").get("a") == 42.0
