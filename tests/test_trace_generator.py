"""Tests for the synthetic trace generator (structure + determinism).

Calibration against the paper's reported statistics lives in
``tests/test_trace_calibration.py``.
"""

import pytest

from repro.sim.units import DAY, HOUR
from repro.traces.generator import TraceGenerator, TraceGeneratorConfig, generate_dataset
from repro.traces.model import EventKind


def small_config(**kw):
    base = dict(
        n_peers=20,
        duration=1 * DAY,
        n_swarms=4,
        arrival_window=2 * HOUR,
    )
    base.update(kw)
    return TraceGeneratorConfig(**base)


def test_generated_trace_validates():
    trace = TraceGenerator(small_config(), seed=1).generate()
    trace.validate()  # raises on violation


def test_determinism_same_seed_same_trace():
    t1 = TraceGenerator(small_config(), seed=5).generate(replica=2)
    t2 = TraceGenerator(small_config(), seed=5).generate(replica=2)
    assert t1.events == t2.events
    assert t1.peers == t2.peers
    assert t1.swarms == t2.swarms


def test_different_replicas_differ():
    gen = TraceGenerator(small_config(), seed=5)
    t1, t2 = gen.generate(0), gen.generate(1)
    assert t1.events != t2.events


def test_peer_and_swarm_counts():
    cfg = small_config()
    trace = TraceGenerator(cfg, seed=0).generate()
    assert len(trace.peers) == cfg.n_peers
    assert len(trace.swarms) == cfg.n_swarms


def test_free_rider_fraction_respected():
    cfg = small_config(free_rider_fraction=0.25)
    trace = TraceGenerator(cfg, seed=0).generate()
    n_fr = sum(1 for p in trace.peers.values() if p.free_rider)
    assert n_fr == round(cfg.n_peers * 0.25)


def test_free_riders_have_reduced_upload_capacity():
    cfg = small_config()
    trace = TraceGenerator(cfg, seed=0).generate()
    for p in trace.peers.values():
        expected = (
            cfg.free_rider_upload_capacity if p.free_rider else cfg.upload_capacity
        )
        assert p.upload_capacity == expected


def test_initial_seeders_are_not_free_riders():
    trace = TraceGenerator(small_config(), seed=3).generate()
    for sw in trace.swarms.values():
        assert sw.initial_seeder is not None
        assert not trace.peers[sw.initial_seeder].free_rider


def test_initial_seeders_arrive_at_t0():
    trace = TraceGenerator(small_config(), seed=3).generate()
    first_start = {}
    for ev in trace.events:
        if ev.kind is EventKind.SESSION_START and ev.peer_id not in first_start:
            first_start[ev.peer_id] = ev.time
    for sw in trace.swarms.values():
        assert first_start[sw.initial_seeder] == 0.0


def test_seeder_joins_its_swarm_every_session():
    trace = TraceGenerator(small_config(), seed=3).generate()
    sw = next(iter(trace.swarms.values()))
    seeder = sw.initial_seeder
    starts = sum(
        1
        for ev in trace.events
        if ev.peer_id == seeder and ev.kind is EventKind.SESSION_START
    )
    joins = sum(
        1
        for ev in trace.events
        if ev.peer_id == seeder
        and ev.kind is EventKind.SWARM_JOIN
        and ev.swarm_id == sw.swarm_id
    )
    assert joins == starts


def test_file_sizes_within_configured_range():
    cfg = small_config()
    trace = TraceGenerator(cfg, seed=0).generate()
    for sw in trace.swarms.values():
        assert cfg.file_size_min <= sw.file_size <= cfg.file_size_max


def test_generate_dataset_yields_distinct_traces():
    traces = generate_dataset(n_traces=3, config=small_config(), seed=7)
    assert len(traces) == 3
    names = {t.name for t in traces}
    assert len(names) == 3
    assert traces[0].events != traces[1].events


def test_config_validation():
    with pytest.raises(ValueError):
        TraceGeneratorConfig(n_peers=1)
    with pytest.raises(ValueError):
        TraceGeneratorConfig(duration=-1.0)
    with pytest.raises(ValueError):
        TraceGeneratorConfig(free_rider_fraction=1.5)
    with pytest.raises(ValueError):
        TraceGeneratorConfig(n_swarms=0)


def test_all_events_within_horizon():
    trace = TraceGenerator(small_config(), seed=2).generate()
    assert all(0.0 <= ev.time <= trace.duration for ev in trace.events)
