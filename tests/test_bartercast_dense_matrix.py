"""The incrementally maintained dense adjacency in
:class:`SubjectiveGraph`.

`to_matrix` must stay equal — bit-identical, since it is placement
only — to a reference edge-by-edge rebuild under any interleaving of
edge raises, stale refolds and node evictions, and the internal dense
block must mirror the dict adjacency exactly after compaction.
"""

import numpy as np
import pytest

from repro.bartercast.graph import SubjectiveGraph
from repro.bartercast.records import TransferRecord


def reference_matrix(graph: SubjectiveGraph, order) -> np.ndarray:
    """The pre-incremental O(E) rebuild, kept here as the oracle."""
    ids = list(order)
    index = {pid: i for i, pid in enumerate(ids)}
    mat = np.zeros((len(ids), len(ids)))
    for u, v, w in graph.edges():
        ui, vi = index.get(u), index.get(v)
        if ui is not None and vi is not None:
            mat[ui, vi] = w
    return mat


def assert_matrix_consistent(graph: SubjectiveGraph, extra=()):
    order = sorted(graph.nodes() | set(extra))
    got = graph.to_matrix(order)
    want = reference_matrix(graph, order)
    np.testing.assert_array_equal(got, want)


class TestIncrementalMatrix:
    def test_simple_add_and_raise(self):
        g = SubjectiveGraph("me")
        g.observe_direct("a", "b", 5.0)
        g.observe_direct("b", "c", 2.0)
        g.observe_direct("a", "b", 9.0)  # raise in place
        g.observe_direct("a", "b", 4.0)  # stale — ignored
        assert_matrix_consistent(g)
        assert g.to_matrix(["a", "b"])[0, 1] == 9.0

    def test_unknown_ids_get_zero_rows(self):
        g = SubjectiveGraph("me")
        g.observe_direct("a", "b", 5.0)
        mat = g.to_matrix(["ghost", "a", "b"])
        assert mat[0].sum() == 0.0 and mat[:, 0].sum() == 0.0
        assert mat[1, 2] == 5.0

    def test_empty_graph_and_empty_order(self):
        g = SubjectiveGraph("me")
        assert g.to_matrix([]).shape == (0, 0)
        assert g.to_matrix(["x", "y"]).sum() == 0.0
        g.observe_direct("a", "b", 1.0)
        assert g.to_matrix([]).shape == (0, 0)

    def test_eviction_compacts_and_stays_consistent(self):
        g = SubjectiveGraph("me", max_nodes=3)
        g.observe_direct("me", "a", 10.0)
        g.observe_direct("a", "me", 10.0)
        g.observe_direct("x", "y", 1.0)  # overflows — weakest evicted
        assert_matrix_consistent(g, extra=("x", "y"))
        ids, dense = g.dense()
        np.testing.assert_array_equal(dense, reference_matrix(g, ids))

    def test_dense_view_is_read_only(self):
        g = SubjectiveGraph("me")
        g.observe_direct("a", "b", 5.0)
        _ids, dense = g.dense()
        with pytest.raises(ValueError):
            dense[0, 0] = 1.0

    def test_matrix_grows_past_initial_capacity(self):
        g = SubjectiveGraph("me")
        for i in range(40):
            g.observe_direct(f"u{i}", f"v{i}", float(i + 1))
        assert_matrix_consistent(g)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_add_evict_property(self, seed):
        """Random raises/refolds/records over a bounded graph: the
        incremental matrix equals a fresh rebuild after every step."""
        rng = np.random.default_rng(seed)
        g = SubjectiveGraph("me", max_nodes=6)
        # Hearsay-only population: nothing touches the owner, so no
        # node is protected and the bound is enforced exactly.
        population = [f"p{i}" for i in range(10)]
        for step in range(150):
            u, v = rng.choice(population, size=2, replace=False)
            w = float(rng.uniform(0.0, 10.0))
            if rng.random() < 0.3:
                g.add_record(
                    TransferRecord(
                        str(u), str(v), up=w, down=w / 2, timestamp=float(step)
                    )
                )
            else:
                g.observe_direct(str(u), str(v), w)
            if step % 10 == 0:
                assert_matrix_consistent(g, extra=("ghost",))
        assert_matrix_consistent(g)
        assert len(g.nodes()) <= 6
        assert g.evicted > 0

    def test_randomized_unbounded_property(self):
        rng = np.random.default_rng(99)
        g = SubjectiveGraph("me")
        population = [f"p{i}" for i in range(14)]
        for step in range(200):
            u, v = rng.choice(population, size=2, replace=False)
            g.observe_direct(str(u), str(v), float(rng.uniform(0.1, 5.0)))
        assert_matrix_consistent(g)
        ids, dense = g.dense()
        np.testing.assert_array_equal(dense, reference_matrix(g, ids))
