"""Fast unit tests for the ablation drivers (tiny workloads).

The shape assertions live in benchmarks/; here we check wiring:
results exist, labels are right, variants actually differ in
configuration.
"""

import pytest

from repro.experiments.ablations import (
    ablation_churn,
    ablation_exchange_policy,
    ablation_experience_threshold,
    ablation_vote_fanout,
    ablation_voxpopuli,
)
from repro.experiments.vote_sampling import VoteSamplingConfig
from repro.sim.units import HOUR, MB
from repro.traces.generator import TraceGeneratorConfig


@pytest.fixture(scope="module")
def tiny_config():
    duration = 10 * HOUR
    return VoteSamplingConfig(
        seed=19,
        duration=duration,
        sample_interval=5 * 3600.0,
        trace=TraceGeneratorConfig(n_peers=20, n_swarms=2, duration=duration),
    )


def test_exchange_policy_labels(tiny_config):
    out = ablation_exchange_policy(tiny_config)
    assert set(out) == {"recency_random", "recency", "random"}
    for label, result in out.items():
        assert label in result.name
        assert "correct_fraction" in result.series


def test_voxpopuli_toggle(tiny_config):
    out = ablation_voxpopuli(tiny_config)
    assert set(out) == {"with_voxpopuli", "without_voxpopuli"}


def test_vote_fanout_sweep(tiny_config):
    out = ablation_vote_fanout(tiny_config, fanouts=(1, 3))
    assert set(out) == {"fanout=1", "fanout=3"}
    for label, result in out.items():
        assert label.replace("=", "") in result.name
        assert result.metadata["ballotbox_bytes"] >= 0
    # Triple the partners per tick => strictly more ballot traffic.
    assert (
        out["fanout=3"].metadata["ballotbox_bytes"]
        > out["fanout=1"].metadata["ballotbox_bytes"]
    )


def test_threshold_sweep_labels(tiny_config):
    out = ablation_experience_threshold(tiny_config, thresholds=(1 * MB, 3 * MB))
    assert set(out) == {"T=1MB", "T=3MB"}


def test_churn_sweep_runs(tiny_config):
    out = ablation_churn(tiny_config, availabilities=(0.4, 0.6))
    assert set(out) == {"availability=40%", "availability=60%"}
    for result in out.values():
        series = result.get("correct_fraction")
        assert len(series) > 0
        assert 0.0 <= series.values.max() <= 1.0
