"""Integration tests for the adaptive-T runtime behaviour (§VII).

Covers the dispersion → threshold → ballot-re-screening loop that the
A1 ablation exercises at scale, on a deterministic micro-setup.
"""

import numpy as np

from repro.bartercast.protocol import BarterCastService
from repro.core.experience import AdaptiveThresholdExperience
from repro.core.node import NodeConfig, VoteSamplingNode
from repro.core.votes import Vote, VoteEntry
from repro.pss.base import OnlineRegistry
from repro.pss.ideal import OraclePSS
from repro.sim.units import MB


def make_world(peers=("honest", "core", "colluder")):
    reg = OnlineRegistry()
    for p in peers:
        reg.set_online(p)
    bc = BarterCastService(OraclePSS(reg, np.random.default_rng(0)))
    exp = AdaptiveThresholdExperience(bc, d_max=0.5, step=5 * MB)
    return bc, exp


def rescreen(node, exp):
    """What ProtocolRuntime._adaptive_tick does after an update."""
    before = exp.threshold_for(node.peer_id)
    after = exp.update(node.peer_id, node.ballot_box)
    if after > before:
        for voter in node.ballot_box.voters():
            if not exp.is_experienced(node.peer_id, voter):
                node.ballot_box.remove_voter(voter)
    return after


def test_unanimous_spam_is_invisible_to_dispersion():
    """A purely positive spam wave creates no per-moderator
    disagreement, so the adaptive controller (correctly, per its
    design) does not fire — a limitation the A1 bench documents."""
    bc, exp = make_world()
    node = VoteSamplingNode("honest", NodeConfig(), np.random.default_rng(0))
    for i in range(6):
        node.receive_votes(
            f"c{i}", [VoteEntry("M0", Vote.POSITIVE, 0.0)], 1.0, experienced=True
        )
    assert rescreen(node, exp) == 0.0
    assert node.ballot_box.num_unique_users() == 6


def test_contested_moderator_triggers_rescreen():
    """Slander (colluders −M1, core +M1) creates dispersion; the
    threshold rises and voters without real contribution are purged."""
    bc, exp = make_world()
    # core really uploaded to honest; colluder did not
    bc.local_transfer("core", "honest", 10 * MB, now=0.0)
    node = VoteSamplingNode("honest", NodeConfig(), np.random.default_rng(0))
    node.receive_votes("core", [VoteEntry("M1", Vote.POSITIVE, 0.0)], 1.0, True)
    node.receive_votes("colluder", [VoteEntry("M1", Vote.NEGATIVE, 0.0)], 1.0, True)
    assert node.ballot_box.num_unique_users() == 2

    t = rescreen(node, exp)
    assert t == 5 * MB
    # colluder (no contribution) purged; core (10 MB ≥ T) kept
    assert node.ballot_box.voters() == ["core"]


def test_threshold_relaxes_after_calm_returns():
    bc, exp = make_world()
    bc.local_transfer("core", "honest", 10 * MB, now=0.0)
    node = VoteSamplingNode("honest", NodeConfig(), np.random.default_rng(0))
    node.receive_votes("core", [VoteEntry("M1", Vote.POSITIVE, 0.0)], 1.0, True)
    node.receive_votes("colluder", [VoteEntry("M1", Vote.NEGATIVE, 0.0)], 1.0, True)
    rescreen(node, exp)
    assert exp.threshold_for("honest") == 5 * MB
    # after the purge the remaining box is unanimous → T decays
    rescreen(node, exp)
    assert exp.threshold_for("honest") == 0.0


def test_rescreen_only_on_increase():
    """A decaying threshold must not purge anybody."""
    bc, exp = make_world()
    node = VoteSamplingNode("honest", NodeConfig(), np.random.default_rng(0))
    node.receive_votes("v", [VoteEntry("M1", Vote.POSITIVE, 0.0)], 1.0, True)
    exp._thresholds["honest"] = 5 * MB  # as if previously raised
    t = rescreen(node, exp)  # calm box → decay to 0
    assert t == 0.0
    assert node.ballot_box.voters() == ["v"]
