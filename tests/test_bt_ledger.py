"""Tests for TransferLedger."""

import pytest

from repro.bittorrent.ledger import TransferLedger


def test_record_and_query():
    led = TransferLedger()
    led.record("u", "d", 100.0, now=1.0)
    led.record("u", "d", 50.0, now=2.0)
    assert led.sent("u", "d") == 150.0
    assert led.uploaded_by("u") == 150.0
    assert led.downloaded_by("d") == 150.0
    assert led.total_bytes == 150.0


def test_directionality():
    led = TransferLedger()
    led.record("a", "b", 10.0, now=0.0)
    assert led.sent("b", "a") == 0.0
    assert led.uploaded_by("b") == 0.0
    assert led.downloaded_by("a") == 0.0


def test_zero_and_negative_ignored():
    led = TransferLedger()
    led.record("a", "b", 0.0, now=0.0)
    led.record("a", "b", -5.0, now=0.0)
    assert led.total_bytes == 0.0


def test_self_transfer_rejected():
    led = TransferLedger()
    with pytest.raises(ValueError):
        led.record("a", "a", 10.0, now=0.0)


def test_partner_views_are_copies():
    led = TransferLedger()
    led.record("a", "b", 10.0, now=0.0)
    view = led.upload_partners("a")
    view["b"] = 999.0
    assert led.sent("a", "b") == 10.0


def test_listeners_receive_transfers():
    led = TransferLedger()
    events = []
    led.add_listener(lambda u, d, b, t: events.append((u, d, b, t)))
    led.record("a", "b", 10.0, now=3.0)
    assert events == [("a", "b", 10.0, 3.0)]


def test_edges_enumeration():
    led = TransferLedger()
    led.record("a", "b", 10.0, now=0.0)
    led.record("b", "a", 4.0, now=0.0)
    led.record("a", "c", 1.0, now=0.0)
    assert sorted(led.edges()) == [("a", "b", 10.0), ("a", "c", 1.0), ("b", "a", 4.0)]


def test_sharing_ratio():
    led = TransferLedger()
    led.record("a", "b", 100.0, now=0.0)
    led.record("b", "a", 50.0, now=0.0)
    assert led.sharing_ratio("a") == pytest.approx(2.0)
    assert led.sharing_ratio("b") == pytest.approx(0.5)


def test_sharing_ratio_with_zero_download():
    led = TransferLedger()
    led.record("a", "b", 100.0, now=0.0)
    assert led.sharing_ratio("a") == 100.0
