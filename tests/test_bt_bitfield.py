"""Tests for Bitfield."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bittorrent.bitfield import Bitfield


def test_starts_empty():
    bf = Bitfield(10)
    assert bf.count == 0
    assert bf.empty
    assert not bf.complete


def test_full_constructor():
    bf = Bitfield(5, full=True)
    assert bf.count == 5
    assert bf.complete


def test_set_returns_newness():
    bf = Bitfield(4)
    assert bf.set(2) is True
    assert bf.set(2) is False
    assert bf.count == 1
    assert bf.has(2)


def test_fill():
    bf = Bitfield(4)
    bf.fill()
    assert bf.complete


def test_rejects_zero_pieces():
    with pytest.raises(ValueError):
        Bitfield(0)


def test_interesting_mask():
    a = Bitfield.from_indices(5, [0, 1])
    b = Bitfield.from_indices(5, [1, 2, 3])
    mask = a.interesting_mask(b)  # pieces b has that a misses
    assert list(np.flatnonzero(mask)) == [2, 3]


def test_is_interested_in():
    a = Bitfield.from_indices(4, [0])
    b = Bitfield.from_indices(4, [0, 1])
    assert a.is_interested_in(b)
    assert not b.is_interested_in(a)


def test_seed_not_interested_in_anyone():
    seed = Bitfield(4, full=True)
    other = Bitfield.from_indices(4, [1, 2])
    assert not seed.is_interested_in(other)


def test_as_array_readonly():
    bf = Bitfield(4)
    arr = bf.as_array()
    with pytest.raises(ValueError):
        arr[0] = True


def test_held_indices_round_trip():
    bf = Bitfield.from_indices(8, [1, 5, 7])
    assert bf.held_indices() == [1, 5, 7]


@given(st.sets(st.integers(0, 31), max_size=32))
def test_property_count_matches_indices(indices):
    bf = Bitfield.from_indices(32, indices)
    assert bf.count == len(indices)
    assert bf.complete == (len(indices) == 32)
    assert set(bf.held_indices()) == indices


@given(st.sets(st.integers(0, 15)), st.sets(st.integers(0, 15)))
def test_property_interest_is_set_difference(a_idx, b_idx):
    a = Bitfield.from_indices(16, a_idx)
    b = Bitfield.from_indices(16, b_idx)
    expected = b_idx - a_idx
    got = set(np.flatnonzero(a.interesting_mask(b)))
    assert {int(i) for i in got} == expected
    assert a.is_interested_in(b) == bool(expected)
