"""Tests for the bounded subjective graph (deployed-BarterCast memory cap)."""

import numpy as np
import pytest

from repro.bartercast.graph import SubjectiveGraph
from repro.bartercast.protocol import BarterCastConfig, BarterCastService
from repro.pss.base import OnlineRegistry
from repro.pss.ideal import OraclePSS
from repro.sim.units import MB


def test_unbounded_by_default():
    g = SubjectiveGraph("me")
    for i in range(100):
        g.observe_direct(f"a{i}", f"b{i}", 1.0)
    assert len(g.nodes()) == 200
    assert g.evicted == 0


def test_negative_bound_rejected():
    with pytest.raises(ValueError):
        SubjectiveGraph("me", max_nodes=-1)


def test_bound_enforced():
    g = SubjectiveGraph("me", max_nodes=10)
    for i in range(30):
        g.observe_direct(f"u{i}", f"v{i}", float(i + 1))
    assert len(g.nodes()) <= 10
    assert g.evicted > 0


def test_owner_neighbourhood_protected():
    """Edges touching the owner (and its direct partners) survive
    eviction — they carry all the flow that reaches the owner."""
    g = SubjectiveGraph("me", max_nodes=6)
    g.observe_direct("friend", "me", 100 * MB)
    g.observe_direct("me", "friend", 10 * MB)
    for i in range(20):
        g.observe_direct(f"x{i}", f"y{i}", 1.0)  # weak strangers
    assert g.weight("friend", "me") == 100 * MB
    assert "friend" in g.nodes()
    assert "me" in g.nodes()


def test_weakest_stranger_evicted_first():
    g = SubjectiveGraph("me", max_nodes=4)
    g.observe_direct("strong1", "strong2", 100 * MB)
    g.observe_direct("weak1", "weak2", 1.0)
    g.observe_direct("mid1", "mid2", 1 * MB)
    nodes = g.nodes()
    assert "strong1" in nodes and "strong2" in nodes
    assert "weak1" not in nodes or "weak2" not in nodes


def test_bounded_service_contribution_still_works():
    reg = OnlineRegistry()
    for p in ("a", "b", "c"):
        reg.set_online(p)
    svc = BarterCastService(
        OraclePSS(reg, np.random.default_rng(0)),
        BarterCastConfig(max_graph_nodes=16),
    )
    svc.local_transfer("b", "a", 7 * MB, now=0.0)
    assert svc.contribution("a", "b") == 7 * MB


def test_config_validation():
    with pytest.raises(ValueError):
        BarterCastConfig(max_graph_nodes=-5)


class TestEnforcementTriggering:
    """Regressions for the bound-enforcement hot path: the scan must
    run only when a fold actually grew the node set."""

    @staticmethod
    def counting_graph(monkeypatch, g):
        calls = {"n": 0}
        original = SubjectiveGraph._enforce_node_bound

        def counted(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(SubjectiveGraph, "_enforce_node_bound", counted)
        return calls

    def test_noop_refolds_skip_enforcement(self, monkeypatch):
        g = SubjectiveGraph("me", max_nodes=8)
        g.observe_direct("a", "b", 5.0)
        calls = self.counting_graph(monkeypatch, g)
        # Stale and equal refolds change nothing — the pre-fix code
        # paid a full O(E) enforcement scan on every one of these.
        for _ in range(10):
            g.observe_direct("a", "b", 5.0)   # equal
            g.observe_direct("a", "b", 3.0)   # stale
        assert calls["n"] == 0

    def test_raise_on_existing_edge_skips_enforcement(self, monkeypatch):
        g = SubjectiveGraph("me", max_nodes=8)
        g.observe_direct("a", "b", 5.0)
        calls = self.counting_graph(monkeypatch, g)
        g.observe_direct("a", "b", 9.0)  # raise between known nodes
        assert calls["n"] == 0

    def test_new_node_still_triggers_enforcement(self, monkeypatch):
        g = SubjectiveGraph("me", max_nodes=8)
        g.observe_direct("a", "b", 5.0)
        calls = self.counting_graph(monkeypatch, g)
        g.observe_direct("a", "c", 1.0)  # c is new
        assert calls["n"] == 1

    def test_enforcement_scans_node_set_once(self, monkeypatch):
        """The eviction loop must not rebuild ``nodes()`` per victim
        (the pre-fix code was quadratic under bound thrash)."""
        g = SubjectiveGraph("me", max_nodes=4)
        for i in range(4):
            g.observe_direct(f"s{i}", f"t{i}", float(10 + i))
        calls = {"n": 0}
        original = SubjectiveGraph.nodes

        def counted(self):
            calls["n"] += 1
            return original(self)

        monkeypatch.setattr(SubjectiveGraph, "nodes", counted)
        # One fold introducing two new nodes: the bound is exceeded and
        # several victims fall, but the node set must be snapshotted
        # exactly once and maintained incrementally from there.
        g.observe_direct("fresh-u", "fresh-v", 0.5)
        assert calls["n"] == 1


class TestBoundThrashProperty:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_thrashed_graph_matches_fresh_rebuild(self, backend, seed):
        """Heavy add/evict churn: the surviving graph's matrix equals a
        fresh rebuild of its own edge list, and the adjacency, mirror
        and in-index all agree."""
        rng = np.random.default_rng(seed)
        g = SubjectiveGraph("me", max_nodes=5, backend=backend)
        population = [f"p{i}" for i in range(12)]
        for step in range(250):
            u, v = rng.choice(population, size=2, replace=False)
            g.observe_direct(str(u), str(v), float(rng.uniform(0.1, 9.0)))
        assert g.evicted > 0
        # Hearsay-only population: no node is protected, so the bound
        # is enforced exactly.
        assert len(g.nodes()) <= 5
        order = sorted(g.nodes() | {"ghost"})
        fresh = SubjectiveGraph("me", backend=backend)
        for u, v, w in g.edges():
            fresh.observe_direct(u, v, w)
        np.testing.assert_array_equal(g.to_matrix(order), fresh.to_matrix(order))
        # In-adjacency mirror agrees with the out-adjacency.
        for u, v, w in g.edges():
            assert g.predecessors(v)[u] == w
