"""Tests for the bounded subjective graph (deployed-BarterCast memory cap)."""

import numpy as np
import pytest

from repro.bartercast.graph import SubjectiveGraph
from repro.bartercast.protocol import BarterCastConfig, BarterCastService
from repro.pss.base import OnlineRegistry
from repro.pss.ideal import OraclePSS
from repro.sim.units import MB


def test_unbounded_by_default():
    g = SubjectiveGraph("me")
    for i in range(100):
        g.observe_direct(f"a{i}", f"b{i}", 1.0)
    assert len(g.nodes()) == 200
    assert g.evicted == 0


def test_negative_bound_rejected():
    with pytest.raises(ValueError):
        SubjectiveGraph("me", max_nodes=-1)


def test_bound_enforced():
    g = SubjectiveGraph("me", max_nodes=10)
    for i in range(30):
        g.observe_direct(f"u{i}", f"v{i}", float(i + 1))
    assert len(g.nodes()) <= 10
    assert g.evicted > 0


def test_owner_neighbourhood_protected():
    """Edges touching the owner (and its direct partners) survive
    eviction — they carry all the flow that reaches the owner."""
    g = SubjectiveGraph("me", max_nodes=6)
    g.observe_direct("friend", "me", 100 * MB)
    g.observe_direct("me", "friend", 10 * MB)
    for i in range(20):
        g.observe_direct(f"x{i}", f"y{i}", 1.0)  # weak strangers
    assert g.weight("friend", "me") == 100 * MB
    assert "friend" in g.nodes()
    assert "me" in g.nodes()


def test_weakest_stranger_evicted_first():
    g = SubjectiveGraph("me", max_nodes=4)
    g.observe_direct("strong1", "strong2", 100 * MB)
    g.observe_direct("weak1", "weak2", 1.0)
    g.observe_direct("mid1", "mid2", 1 * MB)
    nodes = g.nodes()
    assert "strong1" in nodes and "strong2" in nodes
    assert "weak1" not in nodes or "weak2" not in nodes


def test_bounded_service_contribution_still_works():
    reg = OnlineRegistry()
    for p in ("a", "b", "c"):
        reg.set_online(p)
    svc = BarterCastService(
        OraclePSS(reg, np.random.default_rng(0)),
        BarterCastConfig(max_graph_nodes=16),
    )
    svc.local_transfer("b", "a", 7 * MB, now=0.0)
    assert svc.contribution("a", "b") == 7 * MB


def test_config_validation():
    with pytest.raises(ValueError):
        BarterCastConfig(max_graph_nodes=-5)
