"""Tests for the Chord DHT substrate."""

import pytest

from repro.dht.chord import ChordConfig, ChordRing, chord_id


def ring_with(names, now=0.0, **cfg):
    ring = ChordRing(ChordConfig(**cfg))
    for n in names:
        ring.join(n, now)
    return ring


class TestBasics:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChordConfig(bits=2)
        with pytest.raises(ValueError):
            ChordConfig(stabilize_interval=0.0)

    def test_chord_id_stable_and_bounded(self):
        a = chord_id("peer1", 16)
        assert a == chord_id("peer1", 16)
        assert 0 <= a < (1 << 16)
        assert a != chord_id("peer2", 16)

    def test_join_and_leave_membership(self):
        ring = ring_with(["a", "b", "c"])
        assert ring.online_count() == 3
        ring.leave("b", 1.0)
        assert ring.online_count() == 2
        ring.leave("b", 1.0)  # idempotent
        assert ring.online_count() == 2

    def test_rejoin_after_leave(self):
        ring = ring_with(["a", "b"])
        ring.leave("a", 1.0)
        ring.join("a", 2.0)
        assert ring.online_count() == 2

    def test_join_costs_messages_on_nonempty_ring(self):
        ring = ChordRing()
        ring.join("first", 0.0)
        assert ring.join_messages == 0  # nothing to contact
        ring.join("second", 0.0)
        assert ring.join_messages > 0

    def test_failure_costs_more_than_graceful_leave_and_loses_keys(self):
        ring = ring_with(["a", "b", "c", "d"])
        ring.leave("a", 1.0, graceful=True)
        graceful = ring.leave_messages
        ring.leave("b", 2.0, graceful=False)
        assert ring.failure_messages > graceful - ring.leave_messages
        assert ring.keys_lost == 1

    def test_stabilize_costs_two_messages_per_node(self):
        ring = ring_with(["a", "b", "c"])
        before = ring.stabilize_messages
        ring.stabilize_all(10.0)
        assert ring.stabilize_messages - before == 6


class TestLookup:
    def test_lookup_succeeds_on_fresh_ring(self):
        ring = ring_with([f"p{i}" for i in range(32)])
        ring.stabilize_all(0.0)
        messages, ok = ring.lookup("p0", "some-content-key", 1.0)
        assert ok
        assert messages >= 0

    def test_lookup_hops_grow_logarithmically(self):
        small = ring_with([f"p{i}" for i in range(4)])
        small.stabilize_all(0.0)
        large = ring_with([f"p{i}" for i in range(256)])
        large.stabilize_all(0.0)

        def mean_messages(ring, n=40):
            total = 0
            for i in range(n):
                m, ok = ring.lookup("p0", f"key-{i}", 1.0)
                assert ok
                total += m
            return total / n

        m_small = mean_messages(small)
        m_large = mean_messages(large)
        assert m_large > m_small  # more nodes, more hops
        assert m_large <= 2 + 2 * 8  # ~log2(256)=8, generous bound

    def test_lookup_from_unknown_node_fails(self):
        ring = ring_with(["a", "b"])
        assert ring.lookup("ghost", "k", 0.0) == (0, False)

    def test_stale_fingers_cost_timeouts(self):
        ring = ring_with([f"p{i}" for i in range(64)])
        ring.stabilize_all(0.0)
        # Half the ring fails without re-stabilisation.
        for i in range(1, 64, 2):
            ring.leave(f"p{i}", 1.0, graceful=False)
        before = ring.timeouts
        for i in range(30):
            ring.lookup("p0", f"key-{i}", 2.0)
        assert ring.timeouts > before

    def test_single_node_owns_everything(self):
        ring = ring_with(["solo"])
        ring.stabilize_all(0.0)
        messages, ok = ring.lookup("solo", "anything", 1.0)
        assert ok
        assert messages == 0


class TestMaintenanceUnderChurn:
    def test_churn_generates_maintenance_traffic(self):
        ring = ChordRing()
        for i in range(20):
            ring.join(f"p{i}", 0.0)
        base = ring.total_maintenance_messages()
        # a churn storm: half leave ungracefully, rejoin, repeat
        t = 0.0
        for cycle in range(5):
            t += 600.0
            for i in range(0, 20, 2):
                ring.leave(f"p{i}", t, graceful=False)
            ring.stabilize_all(t)
            t += 600.0
            for i in range(0, 20, 2):
                ring.join(f"p{i}", t)
            ring.stabilize_all(t)
        assert ring.total_maintenance_messages() > base * 3
        assert ring.keys_lost == 50

# ----------------------------------------------------------------------
# Regressions: join cost accounting and recycled-ident finger liveness
# ----------------------------------------------------------------------
class TestJoinCostRegression:
    def test_join_charges_pre_join_ring_from_successor(self):
        """join() must charge the m finger-init lookups over the ring
        as it existed *before* the newcomer was inserted, routed from
        the joining node's successor.

        Pre-fix, the newcomer was inserted first and routing started
        at ``_ring[0]``: on this hand-built ring that charged 19
        messages instead of the correct 10 — the regression pins the
        reference value computed independently below.
        """
        from bisect import bisect_left

        bits = 8
        size = 1 << bits
        ring = ring_with(
            ["alpha", "bravo", "charlie", "delta", "echo"], bits=bits
        )
        idents = sorted(ring._ring)

        def succ(pool, t):
            i = bisect_left(pool, t)
            return pool[0] if i == len(pool) else pool[i]

        def greedy_hops(pool, target, start):
            current, hops = start, 0
            while succ(pool, target) != current and hops <= 2 * bits:
                dist = (target - current) % size
                step = 1 << max(0, dist.bit_length() - 1)
                nxt = succ(pool, (current + step) % size)
                hops += 1
                if nxt == current:
                    break
                current = nxt
            return hops

        jid = chord_id("foxtrot", bits)
        assert jid not in idents  # no probing in this scenario
        expected = 1  # key transfer from successor
        for i in range(bits):
            target = (jid + (1 << i)) % size
            expected += max(1, greedy_hops(idents, target, succ(idents, jid)))
        # The buggy accounting (post-join ring, routed from the lowest
        # ident) gives a different number here — keep the scenario
        # discriminating.
        post = sorted(idents + [jid])
        buggy = 1 + sum(
            max(1, greedy_hops(post, (jid + (1 << i)) % size, post[0]))
            for i in range(bits)
        )
        assert buggy != expected

        before = ring.join_messages
        ring.join("foxtrot", 0.0)
        assert ring.join_messages - before == expected

    def test_joining_a_single_node_ring_still_costs_messages(self):
        # The pre-join ring has one node: every finger init resolves
        # in 0 hops but still costs the max(1, hops) floor + transfer.
        ring = ring_with(["first"])
        before = ring.join_messages
        ring.join("second", 0.0)
        assert ring.join_messages - before == ring.config.bits + 1


class TestRecycledIdentRegression:
    def test_recycled_ident_still_counts_as_dead_finger(self):
        """join/leave/join where the later joiner linear-probes into
        the departed node's ident: fingers that still name the dead
        node must pay a timeout even though the *ident* is live again.

        Pre-fix, fingers stored bare idents and liveness was ``ident
        in _by_ident`` — structurally no timeout can fire in this
        scenario because every finger ident maps to a live node.
        """
        bits = 4
        ring = ring_with(["n6", "n5", "n29", "n4", "n2", "n1"], bits=bits)
        # n6 and n10 collide at ident 2 (blake2-derived; pinned here so
        # a hash change fails loudly rather than silently degrading).
        assert chord_id("n10", bits) == ring._nodes["n6"].ident == 2
        ring.join("n10", 0.0)
        assert ring._nodes["n10"].ident == 3  # linear-probed
        ring.stabilize_all(10.0)  # fingers now reference (3, "n10")
        ring.leave("n10", 20.0, graceful=False)
        ring.join("n14", 25.0)  # also collides at 2, probes into 3
        assert ring._nodes["n14"].ident == 3  # ident recycled
        # Every finger ident is now backed by a live node, so the old
        # bare-ident liveness check could never time out.
        live = set(ring._by_ident)
        for node in ring._nodes.values():
            assert {ident for ident, _ in node.fingers} <= live
        before = ring.timeouts
        for requester in ["n6", "n5", "n29", "n4", "n2", "n1"]:
            for k in range(40):
                _, ok = ring.lookup(requester, f"key{k}", 30.0)
                assert ok
        assert ring.timeouts > before

    def test_fresh_fingers_after_restabilize_do_not_time_out(self):
        ring = ring_with(["n6", "n5", "n29", "n4", "n2", "n1"], bits=4)
        ring.join("n10", 0.0)
        ring.stabilize_all(10.0)
        ring.leave("n10", 20.0, graceful=False)
        ring.join("n14", 25.0)
        ring.stabilize_all(30.0)  # fingers refreshed: no stale names
        before = ring.timeouts
        for requester in ["n6", "n5", "n29", "n4", "n2", "n1"]:
            for k in range(40):
                _, ok = ring.lookup(requester, f"key{k}", 31.0)
                assert ok
        assert ring.timeouts == before


# ----------------------------------------------------------------------
# Churn property test: randomized membership sequences
# ----------------------------------------------------------------------
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_CHURN_OPS = st.lists(
    st.tuples(
        st.sampled_from(["join", "leave", "fail", "stabilize"]),
        st.integers(0, 11),
    ),
    min_size=1,
    max_size=60,
)


class TestChurnProperties:
    @given(ops=_CHURN_OPS)
    @settings(max_examples=30, deadline=None)
    def test_randomized_churn_invariants(self, ops):
        """Any join/graceful-leave/failure/stabilize sequence keeps the
        counters non-negative and monotone, total_maintenance_messages
        consistent with its parts, and every lookup succeeding once the
        ring has been stabilized."""
        ring = ChordRing(ChordConfig(bits=8))
        names = [f"p{i}" for i in range(12)]
        counters = (
            "join_messages",
            "leave_messages",
            "failure_messages",
            "stabilize_messages",
            "lookup_messages",
            "timeouts",
            "keys_lost",
        )
        previous = {c: 0 for c in counters}
        t = 0.0
        for op, i in ops:
            t += 1.0
            if op == "join":
                ring.join(names[i], t)
            elif op == "leave":
                ring.leave(names[i], t, graceful=True)
            elif op == "fail":
                ring.leave(names[i], t, graceful=False)
            else:
                ring.stabilize_all(t)
            for c in counters:
                value = getattr(ring, c)
                assert value >= previous[c] >= 0
                previous[c] = value
            assert ring.total_maintenance_messages() == (
                ring.join_messages
                + ring.leave_messages
                + ring.failure_messages
                + ring.stabilize_messages
            )
            assert ring.online_count() == len(ring._by_ident) == len(ring._nodes)
        ring.stabilize_all(t + 1.0)
        for name in list(ring._nodes):
            messages, ok = ring.lookup(name, f"content-{name}", t + 2.0)
            assert ok
            assert messages >= 0
