"""Tests for the Chord DHT substrate."""

import pytest

from repro.dht.chord import ChordConfig, ChordRing, chord_id


def ring_with(names, now=0.0, **cfg):
    ring = ChordRing(ChordConfig(**cfg))
    for n in names:
        ring.join(n, now)
    return ring


class TestBasics:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChordConfig(bits=2)
        with pytest.raises(ValueError):
            ChordConfig(stabilize_interval=0.0)

    def test_chord_id_stable_and_bounded(self):
        a = chord_id("peer1", 16)
        assert a == chord_id("peer1", 16)
        assert 0 <= a < (1 << 16)
        assert a != chord_id("peer2", 16)

    def test_join_and_leave_membership(self):
        ring = ring_with(["a", "b", "c"])
        assert ring.online_count() == 3
        ring.leave("b", 1.0)
        assert ring.online_count() == 2
        ring.leave("b", 1.0)  # idempotent
        assert ring.online_count() == 2

    def test_rejoin_after_leave(self):
        ring = ring_with(["a", "b"])
        ring.leave("a", 1.0)
        ring.join("a", 2.0)
        assert ring.online_count() == 2

    def test_join_costs_messages_on_nonempty_ring(self):
        ring = ChordRing()
        ring.join("first", 0.0)
        assert ring.join_messages == 0  # nothing to contact
        ring.join("second", 0.0)
        assert ring.join_messages > 0

    def test_failure_costs_more_than_graceful_leave_and_loses_keys(self):
        ring = ring_with(["a", "b", "c", "d"])
        ring.leave("a", 1.0, graceful=True)
        graceful = ring.leave_messages
        ring.leave("b", 2.0, graceful=False)
        assert ring.failure_messages > graceful - ring.leave_messages
        assert ring.keys_lost == 1

    def test_stabilize_costs_two_messages_per_node(self):
        ring = ring_with(["a", "b", "c"])
        before = ring.stabilize_messages
        ring.stabilize_all(10.0)
        assert ring.stabilize_messages - before == 6


class TestLookup:
    def test_lookup_succeeds_on_fresh_ring(self):
        ring = ring_with([f"p{i}" for i in range(32)])
        ring.stabilize_all(0.0)
        messages, ok = ring.lookup("p0", "some-content-key", 1.0)
        assert ok
        assert messages >= 0

    def test_lookup_hops_grow_logarithmically(self):
        small = ring_with([f"p{i}" for i in range(4)])
        small.stabilize_all(0.0)
        large = ring_with([f"p{i}" for i in range(256)])
        large.stabilize_all(0.0)

        def mean_messages(ring, n=40):
            total = 0
            for i in range(n):
                m, ok = ring.lookup("p0", f"key-{i}", 1.0)
                assert ok
                total += m
            return total / n

        m_small = mean_messages(small)
        m_large = mean_messages(large)
        assert m_large > m_small  # more nodes, more hops
        assert m_large <= 2 + 2 * 8  # ~log2(256)=8, generous bound

    def test_lookup_from_unknown_node_fails(self):
        ring = ring_with(["a", "b"])
        assert ring.lookup("ghost", "k", 0.0) == (0, False)

    def test_stale_fingers_cost_timeouts(self):
        ring = ring_with([f"p{i}" for i in range(64)])
        ring.stabilize_all(0.0)
        # Half the ring fails without re-stabilisation.
        for i in range(1, 64, 2):
            ring.leave(f"p{i}", 1.0, graceful=False)
        before = ring.timeouts
        for i in range(30):
            ring.lookup("p0", f"key-{i}", 2.0)
        assert ring.timeouts > before

    def test_single_node_owns_everything(self):
        ring = ring_with(["solo"])
        ring.stabilize_all(0.0)
        messages, ok = ring.lookup("solo", "anything", 1.0)
        assert ok
        assert messages == 0


class TestMaintenanceUnderChurn:
    def test_churn_generates_maintenance_traffic(self):
        ring = ChordRing()
        for i in range(20):
            ring.join(f"p{i}", 0.0)
        base = ring.total_maintenance_messages()
        # a churn storm: half leave ungracefully, rejoin, repeat
        t = 0.0
        for cycle in range(5):
            t += 600.0
            for i in range(0, 20, 2):
                ring.leave(f"p{i}", t, graceful=False)
            ring.stabilize_all(t)
            t += 600.0
            for i in range(0, 20, 2):
                ring.join(f"p{i}", t)
            ring.stabilize_all(t)
        assert ring.total_maintenance_messages() > base * 3
        assert ring.keys_lost == 50
