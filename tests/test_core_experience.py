"""Tests for the experience functions."""

import numpy as np
import pytest

from repro.bartercast.protocol import BarterCastService
from repro.core.ballotbox import BallotBox
from repro.core.experience import (
    AdaptiveThresholdExperience,
    AlwaysExperienced,
    ThresholdExperience,
)
from repro.core.votes import Vote, VoteEntry
from repro.pss.base import OnlineRegistry
from repro.pss.ideal import OraclePSS
from repro.sim.units import MB


def make_bartercast(peers=("a", "b", "c")):
    reg = OnlineRegistry()
    for p in peers:
        reg.set_online(p)
    return BarterCastService(OraclePSS(reg, np.random.default_rng(0)))


class TestThresholdExperience:
    def test_below_threshold_inexperienced(self):
        bc = make_bartercast()
        e = ThresholdExperience(bc, threshold=5 * MB)
        bc.local_transfer("b", "a", 4 * MB, now=0.0)
        assert not e.is_experienced("a", "b")

    def test_at_threshold_experienced(self):
        bc = make_bartercast()
        e = ThresholdExperience(bc, threshold=5 * MB)
        bc.local_transfer("b", "a", 5 * MB, now=0.0)
        assert e.is_experienced("a", "b")

    def test_asymmetric(self):
        """E_a(b) can hold while E_b(a) does not — E is non-symmetric."""
        bc = make_bartercast()
        e = ThresholdExperience(bc, threshold=5 * MB)
        bc.local_transfer("b", "a", 10 * MB, now=0.0)
        assert e.is_experienced("a", "b")
        assert not e.is_experienced("b", "a")

    def test_self_never_experienced(self):
        bc = make_bartercast()
        e = ThresholdExperience(bc, threshold=0.0)
        assert not e.is_experienced("a", "a")

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ThresholdExperience(make_bartercast(), threshold=-1.0)

    def test_threshold_for(self):
        e = ThresholdExperience(make_bartercast(), threshold=7 * MB)
        assert e.threshold_for("anyone") == 7 * MB

    def test_two_hop_credit_counts(self):
        """b gains experience with a through an intermediary c."""
        bc = make_bartercast()
        e = ThresholdExperience(bc, threshold=5 * MB)
        bc.local_transfer("b", "c", 10 * MB, now=0.0)
        bc.local_transfer("c", "a", 10 * MB, now=1.0)
        # a's subjective graph must learn b→c via gossip
        for t in range(40):
            for p in ("a", "b", "c"):
                bc.gossip_tick(p, float(t))
        assert e.is_experienced("a", "b")


class TestAlwaysExperienced:
    def test_everyone_but_self(self):
        e = AlwaysExperienced()
        assert e.is_experienced("a", "b")
        assert not e.is_experienced("a", "a")


class TestAdaptive:
    def box(self, votes):
        bb = BallotBox(b_max=100)
        for t, (voter, mod, vote) in enumerate(votes):
            bb.merge(voter, [VoteEntry(mod, vote, float(t))], now=float(t))
        return bb

    def test_validation(self):
        bc = make_bartercast()
        with pytest.raises(ValueError):
            AdaptiveThresholdExperience(bc, d_max=2.0)
        with pytest.raises(ValueError):
            AdaptiveThresholdExperience(bc, step=0.0)

    def test_dispersion_zero_on_agreement(self):
        bb = self.box([("v1", "m", Vote.POSITIVE), ("v2", "m", Vote.POSITIVE)])
        assert AdaptiveThresholdExperience.dispersion(bb) == 0.0

    def test_dispersion_max_on_split(self):
        bb = self.box([("v1", "m", Vote.POSITIVE), ("v2", "m", Vote.NEGATIVE)])
        assert AdaptiveThresholdExperience.dispersion(bb) == pytest.approx(1.0)

    def test_dispersion_ignores_single_vote_moderators(self):
        bb = self.box([("v1", "m", Vote.POSITIVE)])
        assert AdaptiveThresholdExperience.dispersion(bb) == 0.0

    def test_dispersion_is_worst_case_over_moderators(self):
        """Unanimous spam on other names must not dilute the signal of
        one contested moderator."""
        bb = self.box(
            [
                ("v1", "spam", Vote.POSITIVE),
                ("v2", "spam", Vote.POSITIVE),
                ("v3", "spam", Vote.POSITIVE),
                ("v4", "contested", Vote.POSITIVE),
                ("v5", "contested", Vote.NEGATIVE),
            ]
        )
        assert AdaptiveThresholdExperience.dispersion(bb) == pytest.approx(1.0)

    def test_threshold_starts_at_zero_and_everyone_experienced(self):
        e = AdaptiveThresholdExperience(make_bartercast())
        assert e.threshold_for("a") == 0.0
        assert e.is_experienced("a", "b")

    def test_high_dispersion_raises_threshold(self):
        bc = make_bartercast()
        e = AdaptiveThresholdExperience(bc, d_max=0.5, step=1 * MB)
        split = self.box([("v1", "m", Vote.POSITIVE), ("v2", "m", Vote.NEGATIVE)])
        t1 = e.update("a", split)
        assert t1 == 1 * MB
        t2 = e.update("a", split)
        assert t2 == 2 * MB

    def test_low_dispersion_lowers_threshold_to_floor(self):
        bc = make_bartercast()
        e = AdaptiveThresholdExperience(bc, d_max=0.5, step=1 * MB)
        split = self.box([("v1", "m", Vote.POSITIVE), ("v2", "m", Vote.NEGATIVE)])
        calm = self.box([("v1", "m", Vote.POSITIVE), ("v2", "m", Vote.POSITIVE)])
        e.update("a", split)
        e.update("a", calm)
        assert e.threshold_for("a") == 0.0
        e.update("a", calm)
        assert e.threshold_for("a") == 0.0  # floored

    def test_threshold_capped_at_t_max(self):
        bc = make_bartercast()
        e = AdaptiveThresholdExperience(bc, d_max=0.1, step=10 * MB, t_max=15 * MB)
        split = self.box([("v1", "m", Vote.POSITIVE), ("v2", "m", Vote.NEGATIVE)])
        e.update("a", split)
        e.update("a", split)
        assert e.threshold_for("a") == 15 * MB

    def test_raised_threshold_gates_inexperienced(self):
        bc = make_bartercast()
        e = AdaptiveThresholdExperience(bc, d_max=0.5, step=5 * MB)
        split = self.box([("v1", "m", Vote.POSITIVE), ("v2", "m", Vote.NEGATIVE)])
        e.update("a", split)
        assert not e.is_experienced("a", "stranger")
        bc.local_transfer("contributor", "a", 6 * MB, now=0.0)
        assert e.is_experienced("a", "contributor")

    def test_per_node_thresholds_independent(self):
        bc = make_bartercast()
        e = AdaptiveThresholdExperience(bc, d_max=0.5, step=1 * MB)
        split = self.box([("v1", "m", Vote.POSITIVE), ("v2", "m", Vote.NEGATIVE)])
        e.update("a", split)
        assert e.threshold_for("a") == 1 * MB
        assert e.threshold_for("b") == 0.0
