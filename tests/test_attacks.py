"""Tests for the attack models."""

import numpy as np
import pytest

from repro.attacks.collusion import FakeExperienceColluders
from repro.attacks.spam import FlashCrowd, SpamColluderNode
from repro.attacks.sybil import SybilAttacker
from repro.bittorrent.session import BitTorrentSession, SessionConfig
from repro.core.runtime import ProtocolRuntime, RuntimeConfig
from repro.core.experience import ThresholdExperience
from repro.core.votes import Vote, VoteEntry
from repro.identity.authority import IdentityAuthority
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import HOUR, MB
from repro.traces.model import EventKind, PeerProfile, SwarmSpec, Trace, TraceEvent


def tiny_runtime(n=4, seed=0):
    peers, events = {}, []
    for i in range(n):
        pid = f"p{i}"
        peers[pid] = PeerProfile(pid)
        events.append(TraceEvent(float(i), pid, EventKind.SESSION_START))
    trace = Trace(
        duration=4 * HOUR,
        peers=peers,
        swarms={"s0": SwarmSpec("s0", file_size=256 * 1024.0, initial_seeder="p0")},
        events=Trace.sorted_events(events),
    )
    engine = Engine()
    rng = RngRegistry(seed)
    session = BitTorrentSession(engine, trace, rng, config=SessionConfig(round_interval=60.0))
    runtime = ProtocolRuntime(
        session,
        rng,
        config=RuntimeConfig(
            moderation_interval=120.0, vote_interval=120.0, bartercast_interval=120.0
        ),
    )
    return engine, session, runtime


class TestSpamColluderNode:
    def node(self):
        return SpamColluderNode("c0", "M0", rng=np.random.default_rng(0))

    def test_always_pushes_spam_vote(self):
        votes = self.node().votes_to_send()
        assert votes[0].moderator_id == "M0"
        assert votes[0].vote is Vote.POSITIVE

    def test_always_answers_voxpopuli_with_spam(self):
        node = self.node()
        assert node.respond_top_k()[0] == "M0"
        assert not node.needs_bootstrap()

    def test_carries_spam_moderation(self):
        node = self.node()
        senders = {m.moderator_id for m in node.moderations_to_send()}
        assert "M0" in senders

    def test_ignores_incoming_votes(self):
        node = self.node()
        assert node.receive_votes("v", [VoteEntry("M1", Vote.POSITIVE, 0.0)], 0.0, True) == 0
        assert node.ballot_box.num_unique_users() == 0

    def test_decoys_included(self):
        node = SpamColluderNode(
            "c0", "M0", rng=np.random.default_rng(0), decoys=["M1"]
        )
        votes = node.votes_to_send()
        assert ("M1", Vote.NEGATIVE) in [(v.moderator_id, v.vote) for v in votes]


class TestFlashCrowd:
    def test_registers_and_arrives(self):
        engine, session, runtime = tiny_runtime()
        crowd = FlashCrowd(runtime, size=5)
        session.start()
        engine.run_until(1 * HOUR)
        assert all(pid not in session.registry for pid in crowd.members)
        crowd.arrive(engine.now)
        assert all(session.registry.is_online(pid) for pid in crowd.members)
        engine.run_until(2 * HOUR)
        crowd.depart(engine.now)
        assert all(not session.registry.is_online(pid) for pid in crowd.members)

    def test_scheduled_arrival(self):
        engine, session, runtime = tiny_runtime()
        crowd = FlashCrowd(runtime, size=3)
        crowd.schedule_arrival(at=30 * 60.0)
        session.start()
        engine.run_until(29 * 60.0)
        assert not session.registry.is_online(crowd.members[0])
        engine.run_until(31 * 60.0)
        assert session.registry.is_online(crowd.members[0])

    def test_crowd_pollutes_bootstrapping_nodes(self):
        engine, session, runtime = tiny_runtime(n=4)
        crowd = FlashCrowd(runtime, size=12)
        crowd.arrive(0.0)
        session.start()
        engine.run_until(2 * HOUR)
        # honest nodes are still below B_min (nobody is experienced in
        # this transfer-free world) so their VoxPopuli caches fill with
        # the crowd's spam lists.
        polluted = [
            pid
            for pid in ("p1", "p2", "p3")
            if runtime.nodes[pid].topk_cache
            and runtime.nodes[pid].current_ranking()
            and runtime.nodes[pid].current_ranking()[0][0] == "M0"
        ]
        assert len(polluted) >= 2

    def test_crowd_votes_rejected_by_experience_gate(self):
        engine, session, runtime = tiny_runtime(n=4)
        crowd = FlashCrowd(runtime, size=8)
        crowd.arrive(0.0)
        session.start()
        engine.run_until(2 * HOUR)
        # no honest ballot box contains a colluder's vote
        for pid in ("p0", "p1", "p2", "p3"):
            voters = set(runtime.nodes[pid].ballot_box.voters())
            assert voters.isdisjoint(set(crowd.members))

    def test_size_validation(self):
        engine, session, runtime = tiny_runtime()
        with pytest.raises(ValueError):
            FlashCrowd(runtime, size=0)


class TestSybil:
    def test_minting_is_cheap_and_tracked(self):
        engine, session, runtime = tiny_runtime()
        auth = IdentityAuthority(seed=0)
        attacker = SybilAttacker(runtime, auth)
        ids = attacker.mint_identities(10)
        assert len(ids) == 10
        assert auth.known_public_keys() == 10

    def test_deploy_requires_identities(self):
        engine, session, runtime = tiny_runtime()
        attacker = SybilAttacker(runtime, IdentityAuthority())
        with pytest.raises(RuntimeError):
            attacker.deploy(0.0)

    def test_deploy_brings_crowd_online(self):
        engine, session, runtime = tiny_runtime()
        attacker = SybilAttacker(runtime, IdentityAuthority())
        attacker.mint_identities(4)
        session.start()
        engine.run_until(10.0)
        crowd = attacker.deploy(engine.now)
        assert all(session.registry.is_online(p) for p in crowd.members)
        with pytest.raises(RuntimeError):
            attacker.deploy(engine.now)

    def test_upload_cost_scales_with_core(self):
        engine, session, runtime = tiny_runtime()
        attacker = SybilAttacker(runtime, IdentityAuthority())
        attacker.mint_identities(10)
        small = attacker.upload_cost_to_influence(["a"], 5 * MB)
        large = attacker.upload_cost_to_influence(["a", "b", "c"], 5 * MB)
        assert large == 3 * small


class TestFakeExperience:
    def make_bc(self, peers):
        from repro.bartercast.protocol import BarterCastService
        from repro.pss.base import OnlineRegistry
        from repro.pss.ideal import OraclePSS

        reg = OnlineRegistry()
        for p in peers:
            reg.set_online(p)
        return BarterCastService(OraclePSS(reg, np.random.default_rng(0)))

    def test_fabricated_clique_gains_no_flow_to_honest_victim(self):
        """Flow conservation defeats the clique: no honest node ever
        uploaded to the victim on the colluders' behalf, so maxflow
        from any colluder to the victim stays zero."""
        bc = self.make_bc(["victim", "c1", "c2", "c3"])
        colluders = FakeExperienceColluders(bc, ["c1", "c2", "c3"], claimed_bytes=1e12)
        colluders.poison_node("victim", now=0.0)
        exp = ThresholdExperience(bc, threshold=5 * MB)
        for c in ("c1", "c2", "c3"):
            assert bc.contribution("victim", c) == 0.0
            assert not exp.is_experienced("victim", c)

    def test_front_peer_amplification_capped_by_real_edge(self):
        """One colluder really uploads T bytes (the 'front peer'); the
        clique's fake edges let *other* colluders ride that edge — but
        total credited flow is capped by the front peer's real upload."""
        bc = self.make_bc(["victim", "front", "c2"])
        bc.local_transfer("front", "victim", 6 * MB, now=0.0)
        colluders = FakeExperienceColluders(bc, ["front", "c2"], claimed_bytes=1e12)
        colluders.poison_node("victim", now=1.0)
        # c2's flow to victim rides c2→front→victim, capped at 6 MB.
        assert bc.contribution("victim", "c2") == pytest.approx(6 * MB)
        # It cannot exceed the real edge no matter the claimed size.
        assert bc.contribution("victim", "c2") <= 6 * MB

    def test_seed_own_tables_spreads_via_gossip(self):
        bc = self.make_bc(["victim", "c1", "c2"])
        colluders = FakeExperienceColluders(bc, ["c1", "c2"], claimed_bytes=1e9)
        colluders.seed_own_tables(now=0.0)
        for t in range(40):
            for p in ("victim", "c1", "c2"):
                bc.gossip_tick(p, float(t))
        # victim heard the lie...
        assert bc.graph_of("victim").weight("c1", "c2") == 1e9
        # ...but still credits the colluders nothing.
        assert bc.contribution("victim", "c1") == 0.0

    def test_validation(self):
        bc = self.make_bc(["a", "b"])
        with pytest.raises(ValueError):
            FakeExperienceColluders(bc, ["a"])
        with pytest.raises(ValueError):
            FakeExperienceColluders(bc, ["a", "b"], claimed_bytes=0.0)
