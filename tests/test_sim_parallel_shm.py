"""The shared-memory spool and process-sharded flow rows.

Two load-bearing properties:

* **Bit-identity** — everything that crosses the process boundary
  through shared memory (graph snapshots out, flow rows back) must be
  byte-for-byte what the in-process path produces, for both graph
  backends.
* **Lifecycle** — no ``/dev/shm/reproshm_*`` segment may outlive a
  batch: not on normal exit, not on worker crash, and ``jobs=1`` must
  never create a segment at all.  The autouse fixture asserts the first
  half of this around *every* test in the module.
"""

import glob
import random

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.bartercast.graph import SharedGraphView, SubjectiveGraph
from repro.experiments.vote_sampling import (
    VoteSamplingConfig,
    VoteSamplingExperiment,
)
from repro.sim.units import HOUR
from repro.traces.generator import TraceGeneratorConfig
from repro.bartercast.maxflow import two_hop_flows_to_sink
from repro.bartercast.protocol import BarterCastConfig, BarterCastService
from repro.metrics.cev import FlowMatrixCache, flow_matrix
from repro.pss.base import OnlineRegistry
from repro.pss.ideal import OraclePSS
from repro.sim.parallel import (
    _FLOW_CRASH_ENV,
    SHM_PREFIX,
    AttachedSegment,
    FlowRowPool,
    ReplicaPool,
    ShmSpool,
    create_segment,
)


def shm_entries():
    """Names of our segments currently visible in /dev/shm."""
    return sorted(glob.glob(f"/dev/shm/{SHM_PREFIX}_*"))


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = shm_entries()
    yield
    assert shm_entries() == before, "a shared-memory segment leaked"


PEERS = [f"p{i}" for i in range(16)]


def random_graph(owner, backend, seed, extra_nodes=4):
    """A random subjective graph over PEERS plus some strangers."""
    rng = random.Random(seed)
    ids = PEERS + [f"x{i}" for i in range(extra_nodes)]
    g = SubjectiveGraph(owner, backend=backend)
    for _ in range(60):
        u, v = rng.sample(ids, 2)
        g.observe_direct(u, v, float(rng.randint(1, 500)))
    return g


# ----------------------------------------------------------------------
# Segment packing
# ----------------------------------------------------------------------
class TestSegmentPacking:
    def test_roundtrip_is_bit_identical(self):
        arrays = {
            "f": np.arange(12, dtype=np.float64).reshape(3, 4) / 7.0,
            "i": np.arange(-5, 5, dtype=np.int64),
            "empty": np.zeros(0, dtype=np.float64),
            "bytes": np.frombuffer(b"a\nb\nc", dtype=np.uint8),
        }
        shm, spec = create_segment(arrays)
        try:
            shm.close()
            seg = AttachedSegment(spec)
            assert set(seg.arrays) == set(arrays)
            for key, arr in arrays.items():
                assert seg.arrays[key].dtype == arr.dtype
                np.testing.assert_array_equal(seg.arrays[key], arr)
        finally:
            seg.close(unlink=True)

    def test_segment_names_carry_the_prefix(self):
        shm, spec = create_segment({"a": np.ones(3)})
        assert spec.name.startswith(SHM_PREFIX)
        assert shm_entries()  # visible while alive
        shm.unlink()
        shm.close()

    def test_attached_views_are_read_only(self):
        shm, spec = create_segment({"a": np.ones(3)})
        try:
            shm.close()
            seg = AttachedSegment(spec)
            with pytest.raises(ValueError):
                seg.arrays["a"][0] = 2.0
        finally:
            seg.close(unlink=True)

    def test_writable_attachment_is_seen_across_mappings(self):
        with ShmSpool() as spool:
            spec, views = spool.allocate({"rows": ((2, 3), "<f8")})
            assert not views["rows"].any()  # zero-filled
            writer = AttachedSegment(spec, writable=True)
            writer.arrays["rows"][1, 2] = 9.25
            writer.close()
            assert views["rows"][1, 2] == 9.25
            views = None


# ----------------------------------------------------------------------
# Spool lifecycle
# ----------------------------------------------------------------------
class TestShmSpool:
    def test_unlinks_on_normal_exit(self):
        with ShmSpool() as spool:
            spool.publish({"a": np.ones(4)})
            spool.publish({"b": np.zeros((2, 2))})
            assert spool.created == 2
            assert len(shm_entries()) == 2
        assert shm_entries() == []

    def test_unlinks_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with ShmSpool() as spool:
                spool.publish({"a": np.ones(4)})
                assert shm_entries()
                raise RuntimeError("boom")
        assert shm_entries() == []

    def test_close_is_idempotent(self):
        spool = ShmSpool()
        spool.publish({"a": np.ones(2)})
        spool.close()
        spool.close()
        assert shm_entries() == []


# ----------------------------------------------------------------------
# SharedGraphView: the worker-side rebuild, tested in-process
# ----------------------------------------------------------------------
class TestSharedGraphView:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_flows_bit_identical_to_live_graph(self, backend):
        for seed in range(4):
            g = random_graph("p0", backend, seed)
            order = sorted(g.nodes() | {"p0"} | set(PEERS))
            kind, arrays = g.mirror_payload(order)
            view = SharedGraphView(order, kind, arrays)
            try:
                np.testing.assert_array_equal(
                    two_hop_flows_to_sink(view, PEERS, "p0"),
                    two_hop_flows_to_sink(g, PEERS, "p0"),
                )
            finally:
                view.release()


# ----------------------------------------------------------------------
# FlowRowPool: the process tier proper
# ----------------------------------------------------------------------
class TestFlowRowPool:
    @pytest.fixture(scope="class")
    def pool(self):
        with FlowRowPool(PEERS, jobs=2) as p:
            yield p

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            FlowRowPool(PEERS, jobs=0)

    def test_empty_batch_is_a_noop(self, pool):
        assert pool.run_rows([]) == []
        assert shm_entries() == []

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_rows_bit_identical_to_serial_randomized(self, pool, backend):
        """Randomized property: for arbitrary graphs on either backend,
        the process-sharded rows equal the serial closed form exactly."""
        for seed in (0, 11, 23):
            stale = [
                (i, PEERS[i], random_graph(PEERS[i], backend, seed * 7 + i))
                for i in range(4)
            ]
            rows = pool.run_rows(stale)
            assert [r for r, _ in rows] == [0, 1, 2, 3]
            for (row, values), (_, sink, g) in zip(rows, stale):
                np.testing.assert_array_equal(
                    values, two_hop_flows_to_sink(g, PEERS, sink)
                )
        assert shm_entries() == []  # spool already unlinked

    def test_mixed_backends_in_one_batch(self, pool):
        stale = [
            (0, "p0", random_graph("p0", "dense", 5)),
            (1, "p1", random_graph("p1", "sparse", 6)),
        ]
        rows = dict(pool.run_rows(stale))
        for row, sink, g in stale:
            np.testing.assert_array_equal(
                rows[row], two_hop_flows_to_sink(g, PEERS, sink)
            )

    def test_worker_crash_cleans_up_and_pool_recovers(self, monkeypatch):
        """A worker dying mid-batch must raise BrokenProcessPool, leave
        zero segments behind, and leave the pool usable for the next
        batch (fresh executor)."""
        g = random_graph("p0", "dense", 3)
        with FlowRowPool(PEERS, jobs=2) as pool:
            monkeypatch.setenv(_FLOW_CRASH_ENV, "1")
            with pytest.raises(BrokenProcessPool):
                pool.run_rows([(0, "p0", g)])
            assert shm_entries() == []
            monkeypatch.delenv(_FLOW_CRASH_ENV)
            rows = pool.run_rows([(0, "p0", g)])
            np.testing.assert_array_equal(
                rows[0][1], two_hop_flows_to_sink(g, PEERS, "p0")
            )


# ----------------------------------------------------------------------
# FlowMatrixCache: executor="process" end to end
# ----------------------------------------------------------------------
CACHE_PEERS = ["a", "b", "c", "d", "e", "f"]


def make_service(seed=0, **cfg):
    reg = OnlineRegistry()
    for p in CACHE_PEERS:
        reg.set_online(p)
    pss = OraclePSS(reg, np.random.default_rng(seed))
    return BarterCastService(pss, BarterCastConfig(**cfg))


def churn(svc, rng, steps, start=0.0):
    for step in range(steps):
        u, v = rng.choice(CACHE_PEERS, size=2, replace=False)
        svc.local_transfer(str(u), str(v), float(rng.uniform(1, 9)),
                           now=start + step)


class TestFlowCacheProcessExecutor:
    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            FlowMatrixCache(make_service(), CACHE_PEERS, executor="fork")

    def test_jobs1_short_circuits_no_pool_no_segments(self):
        svc = make_service()
        churn(svc, np.random.default_rng(1), 5)
        cache = FlowMatrixCache(svc, CACHE_PEERS, jobs=1, executor="process")
        np.testing.assert_array_equal(
            cache.matrix(), flow_matrix(svc, CACHE_PEERS)
        )
        assert cache._row_pool is None
        assert shm_entries() == []
        cache.close()

    def test_auto_resolves_to_threads_for_small_populations(self):
        svc = make_service()
        churn(svc, np.random.default_rng(2), 5)
        cache = FlowMatrixCache(svc, CACHE_PEERS, jobs=2, executor="auto")
        np.testing.assert_array_equal(
            cache.matrix(), flow_matrix(svc, CACHE_PEERS)
        )
        assert cache._row_pool is None  # threads, not processes
        cache.close()

    def test_unreimportable_main_degrades_to_threads(self, monkeypatch):
        import __main__ as main

        monkeypatch.setattr(main, "__spec__", None, raising=False)
        monkeypatch.setattr(main, "__file__", "<stdin>", raising=False)
        svc = make_service()
        churn(svc, np.random.default_rng(3), 5)
        cache = FlowMatrixCache(svc, CACHE_PEERS, jobs=2, executor="process")
        with pytest.warns(RuntimeWarning, match="thread executor"):
            F = cache.matrix()
        np.testing.assert_array_equal(F, flow_matrix(svc, CACHE_PEERS))
        assert cache._row_pool is None
        cache.close()

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_process_matrix_and_counters_match_serial(self, backend):
        """The full incremental loop: matrices AND the recompute/reuse
        counters must be bit-identical between executors, including the
        incremental second and third samples."""
        serial_svc = make_service(graph_backend=backend)
        process_svc = make_service(graph_backend=backend)
        serial = FlowMatrixCache(serial_svc, CACHE_PEERS, jobs=1)
        process = FlowMatrixCache(
            process_svc, CACHE_PEERS, jobs=2, executor="process"
        )
        try:
            rng_a = np.random.default_rng(17)
            rng_b = np.random.default_rng(17)
            for round_ in range(3):
                churn(serial_svc, rng_a, 4, start=round_ * 10.0)
                churn(process_svc, rng_b, 4, start=round_ * 10.0)
                np.testing.assert_array_equal(
                    serial.matrix(), process.matrix()
                )
            assert serial.rows_recomputed == process.rows_recomputed
            assert serial.rows_reused == process.rows_reused
            assert process.rows_reused > 0  # incrementality engaged
        finally:
            process.close()
            serial.close()
        assert shm_entries() == []


# ----------------------------------------------------------------------
# ReplicaPool: shm result transport
# ----------------------------------------------------------------------
class TestReplicaShmTransport:
    def test_invalid_transport_rejected(self):
        with pytest.raises(ValueError):
            ReplicaPool(result_transport="carrier-pigeon")

    def test_shm_transport_bit_identical_to_pickle(self):
        """Series arrays published through shared memory must be
        byte-for-byte what the pickle stream carried — and nothing may
        be left in /dev/shm afterwards (the autouse fixture checks)."""
        duration = 4 * HOUR
        cfg = VoteSamplingConfig(
            seed=13,
            duration=duration,
            sample_interval=1800.0,
            trace=TraceGeneratorConfig(
                n_peers=12, n_swarms=2, duration=duration
            ),
        )
        exp = VoteSamplingExperiment(cfg)
        via_shm = ReplicaPool(jobs=2, result_transport="shm").run_replicas(
            exp, [0, 1]
        )
        via_pickle = ReplicaPool(
            jobs=2, result_transport="pickle"
        ).run_replicas(exp, [0, 1])
        assert [r.name for r in via_shm] == [r.name for r in via_pickle]
        for a, b in zip(via_shm, via_pickle):
            assert a.series.keys() == b.series.keys()
            for key in a.series:
                np.testing.assert_array_equal(
                    a.get(key).as_array(),
                    b.get(key).as_array(),
                    err_msg=f"series {key!r} diverged between transports",
                )
            assert a.metadata == b.metadata
