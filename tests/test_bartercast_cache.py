"""Contribution-cache correctness: version counters, invalidation,
batch oracle, cached record lists.

The load-bearing test is the interleaved property check: a random mix
of ``local_transfer`` / ``gossip_tick`` / ``inject_record`` /
``contribution`` calls, with every cached answer cross-checked against
a fresh uncached ``two_hop_flow`` **and** ``edmonds_karp(max_hops=2)``
— the cache must be semantically invisible.
"""

import numpy as np
import pytest

from repro.bartercast.graph import SubjectiveGraph
from repro.bartercast.maxflow import edmonds_karp, two_hop_flow, two_hop_flows_to_sink
from repro.bartercast.protocol import BarterCastConfig, BarterCastService
from repro.bartercast.records import TransferRecord
from repro.core.experience import AdaptiveThresholdExperience, ThresholdExperience
from repro.pss.base import OnlineRegistry
from repro.pss.ideal import OraclePSS
from repro.sim.units import MB


def make_service(peers=("a", "b", "c"), seed=0, **cfg):
    reg = OnlineRegistry()
    for p in peers:
        reg.set_online(p)
    pss = OraclePSS(reg, np.random.default_rng(seed))
    return BarterCastService(pss, BarterCastConfig(**cfg))


class TestVersionCounters:
    def test_raise_bumps_endpoint_versions(self):
        g = SubjectiveGraph("me")
        assert g.out_version("a") == 0 and g.in_version("b") == 0
        g.observe_direct("a", "b", 5.0)
        assert g.out_version("a") == 1
        assert g.in_version("b") == 1
        assert g.out_version("b") == 0 and g.in_version("a") == 0
        assert g.version == 1

    def test_no_bump_when_weight_not_raised(self):
        g = SubjectiveGraph("me")
        g.observe_direct("a", "b", 5.0)
        g.observe_direct("a", "b", 5.0)  # equal — monotone max, no change
        g.observe_direct("a", "b", 3.0)  # smaller — stale, no change
        assert g.out_version("a") == 1 and g.version == 1
        g.observe_direct("a", "b", 6.0)
        assert g.out_version("a") == 2 and g.version == 2

    def test_zero_and_self_edges_never_bump(self):
        g = SubjectiveGraph("me")
        g.observe_direct("a", "a", 5.0)
        g.observe_direct("a", "b", 0.0)
        assert g.version == 0

    def test_eviction_bumps_touched_nodes(self):
        g = SubjectiveGraph("me", max_nodes=3)
        g.observe_direct("me", "a", 10.0)
        g.observe_direct("a", "me", 10.0)
        out_a = g.out_version("a")
        version = g.version
        # adding a weak stranger edge overflows the bound and evicts
        g.observe_direct("x", "y", 1.0)
        assert g.version > version
        assert g.nodes() <= {"me", "a", "x", "y"}
        assert len(g.nodes()) <= 3
        # counters are monotone: nothing ever decreases
        assert g.out_version("a") >= out_a

    def test_versions_survive_eviction_monotonically(self):
        """A node evicted and re-added must not reuse an old version,
        or a stale cache entry could validate again."""
        g = SubjectiveGraph("me", max_nodes=3)
        g.observe_direct("me", "a", 10.0)
        g.observe_direct("me", "b", 9.0)
        before = g.out_version("z")
        g.observe_direct("z", "q", 1.0)  # z enters, likely evicted
        g.observe_direct("z", "q", 2.0)  # and may re-enter
        assert g.out_version("z") > before


class TestContributionCache:
    def test_hit_serves_identical_value(self):
        svc = make_service()
        svc.local_transfer("b", "a", 7 * MB, now=0.0)
        first = svc.contribution("a", "b")
        assert svc.cache_misses == 1
        second = svc.contribution("a", "b")
        assert svc.cache_hits == 1
        assert first == second == 7 * MB

    def test_transfer_invalidates(self):
        svc = make_service()
        svc.local_transfer("b", "a", 7 * MB, now=0.0)
        assert svc.contribution("a", "b") == 7 * MB
        svc.local_transfer("b", "a", 3 * MB, now=1.0)
        assert svc.contribution("a", "b") == 10 * MB
        assert svc.cache_invalidations >= 1

    def test_unrelated_edge_keeps_entry_valid(self):
        """An edge change that cannot affect f(b→a) — wrong endpoints —
        must not invalidate the (a, b) entry."""
        svc = make_service(peers=("a", "b", "c", "d"))
        svc.local_transfer("b", "a", 7 * MB, now=0.0)
        svc.contribution("a", "b")
        hits = svc.cache_hits
        # c→d touches neither b's out-edges nor a's in-edges in a's graph
        svc.inject_record(
            "a", TransferRecord("c", "d", up=5 * MB, down=0.0, timestamp=0.0)
        )
        assert svc.contribution("a", "b") == 7 * MB
        assert svc.cache_hits == hits + 1

    def test_two_hop_relevant_edge_invalidates(self):
        """An edge into the observer (k→a) changes the closed form and
        must invalidate every (a, ·) entry that could route through k."""
        svc = make_service(peers=("a", "b", "k"))
        svc.inject_record(
            "a", TransferRecord("b", "k", up=9 * MB, down=0.0, timestamp=0.0)
        )
        assert svc.contribution("a", "b") == 0.0  # b→k alone: no path to a
        svc.inject_record(
            "a", TransferRecord("k", "a", up=4 * MB, down=0.0, timestamp=1.0)
        )
        assert svc.contribution("a", "b") == pytest.approx(4 * MB)

    def test_cache_disabled_is_equivalent(self):
        cached = make_service(seed=3)
        uncached = make_service(seed=3, contribution_cache=False)
        for svc in (cached, uncached):
            svc.local_transfer("b", "c", 10 * MB, now=0.0)
            svc.local_transfer("c", "a", 4 * MB, now=1.0)
            for t in range(40):
                for p in ("a", "b", "c"):
                    svc.gossip_tick(p, float(t))
        for o in ("a", "b", "c"):
            for s in ("a", "b", "c"):
                assert cached.contribution(o, s) == uncached.contribution(o, s)
        assert uncached.cache_hits == 0 and uncached.cache_bypasses > 0

    def test_non_two_hop_bypasses_cache(self):
        svc = make_service(max_hops=3)
        svc.local_transfer("b", "a", 7 * MB, now=0.0)
        svc.contribution("a", "b")
        svc.contribution("a", "b")
        assert svc.cache_hits == 0
        assert svc.cache_bypasses == 2

    def test_cache_correct_under_graph_eviction(self):
        """With a node bound, evictions rewrite the graph mid-stream;
        cached flows must still match fresh evaluation."""
        svc = make_service(
            peers=tuple(f"p{i}" for i in range(8)), seed=9, max_graph_nodes=5
        )
        rng = np.random.default_rng(17)
        peers = [f"p{i}" for i in range(8)]
        for step in range(120):
            u, v = rng.choice(peers, size=2, replace=False)
            svc.local_transfer(str(u), str(v), float(rng.integers(1, 20)) * MB, now=step)
            o, s = rng.choice(peers, size=2, replace=False)
            got = svc.contribution(str(o), str(s))
            assert got == two_hop_flow(svc.graph_of(str(o)), str(s), str(o))


class TestInterleavedPropertyCheck:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_cached_results_bit_identical_under_interleaving(self, seed):
        peers = [f"p{i}" for i in range(6)]
        svc = make_service(peers=tuple(peers), seed=seed)
        rng = np.random.default_rng(100 + seed)
        for step in range(200):
            op = rng.random()
            if op < 0.35:
                u, v = rng.choice(peers, size=2, replace=False)
                svc.local_transfer(
                    str(u), str(v), float(rng.uniform(0.1, 8.0)) * MB, now=float(step)
                )
            elif op < 0.55:
                svc.gossip_tick(str(rng.choice(peers)), float(step))
            elif op < 0.65:
                u, v = rng.choice(peers, size=2, replace=False)
                holder = str(rng.choice(peers))
                svc.inject_record(
                    holder,
                    TransferRecord(
                        str(u), str(v), up=float(rng.uniform(0.1, 4.0)) * MB,
                        down=0.0, timestamp=float(step),
                    ),
                )
            else:
                o, s = rng.choice(peers, size=2, replace=False)
                o, s = str(o), str(s)
                cached = svc.contribution(o, s)
                # bit-identical to the uncached closed form …
                assert cached == two_hop_flow(svc.graph_of(o), s, o)
                # … and equal to the generic bounded maxflow
                assert cached == pytest.approx(
                    edmonds_karp(svc.graph_of(o), s, o, max_hops=2)
                )
        assert svc.cache_hits + svc.cache_misses > 0


class TestBatchOracle:
    def _populated(self, seed=5):
        peers = [f"p{i}" for i in range(7)]
        svc = make_service(peers=tuple(peers), seed=seed)
        rng = np.random.default_rng(seed)
        for step in range(60):
            u, v = rng.choice(peers, size=2, replace=False)
            svc.local_transfer(str(u), str(v), float(rng.uniform(0.5, 9.0)) * MB, step)
            svc.gossip_tick(str(rng.choice(peers)), float(step))
        return svc, peers

    def test_matches_scalar_closed_form(self):
        svc, peers = self._populated()
        for observer in peers:
            flows = svc.contributions_to_observer(observer, peers)
            g = svc.graph_of(observer)
            for j, subject in enumerate(peers):
                assert flows[j] == pytest.approx(
                    two_hop_flow(g, subject, observer), rel=1e-12
                )

    def test_self_flow_zero_and_unknown_subject_zero(self):
        svc, peers = self._populated()
        flows = svc.contributions_to_observer(peers[0], [peers[0], "ghost"])
        assert flows[0] == 0.0
        assert flows[1] == 0.0

    def test_memo_hit_until_graph_changes(self):
        svc, peers = self._populated()
        first = svc.contributions_to_observer(peers[0], peers)
        assert svc.batch_misses == 1
        second = svc.contributions_to_observer(peers[0], peers)
        assert svc.batch_hits == 1
        np.testing.assert_array_equal(first, second)
        svc.local_transfer(peers[1], peers[0], 1 * MB, now=999.0)
        third = svc.contributions_to_observer(peers[0], peers)
        assert svc.batch_misses == 2
        assert third[peers.index(peers[1])] >= first[peers.index(peers[1])]

    def test_memoed_array_is_isolated_from_caller(self):
        svc, peers = self._populated()
        flows = svc.contributions_to_observer(peers[0], peers)
        flows[:] = -1.0
        again = svc.contributions_to_observer(peers[0], peers)
        assert (again >= 0.0).all()

    def test_different_subject_lists_recompute(self):
        svc, peers = self._populated()
        svc.contributions_to_observer(peers[0], peers)
        svc.contributions_to_observer(peers[0], peers[:3])
        assert svc.batch_misses == 2

    def test_batch_helper_matches_matrix_free_form(self):
        g = SubjectiveGraph("owner")
        g.observe_direct("j", "i", 2.0)
        g.observe_direct("j", "k1", 5.0)
        g.observe_direct("k1", "i", 3.0)
        g.observe_direct("j", "k2", 1.0)
        g.observe_direct("k2", "i", 10.0)
        flows = two_hop_flows_to_sink(g, ["j", "k1", "i"], "i")
        assert flows[0] == pytest.approx(6.0)
        assert flows[1] == pytest.approx(3.0)
        assert flows[2] == 0.0

    def test_non_two_hop_falls_back_to_bounded_maxflow(self):
        peers = ("a", "b", "c", "d")
        svc = make_service(peers=peers, seed=5, max_hops=3)
        svc.inject_record("a", TransferRecord("b", "c", up=9 * MB, down=0.0, timestamp=0.0))
        svc.inject_record("a", TransferRecord("c", "d", up=9 * MB, down=0.0, timestamp=0.0))
        svc.inject_record("a", TransferRecord("d", "a", up=9 * MB, down=0.0, timestamp=0.0))
        flows = svc.contributions_to_observer("a", list(peers))
        assert flows[list(peers).index("b")] == pytest.approx(9 * MB)


class TestRecordsCache:
    def test_cached_list_matches_fresh_sort(self):
        svc = make_service(max_records_per_exchange=2)
        svc.local_transfer("a", "b", 1 * MB, now=0.0)
        svc.local_transfer("a", "c", 9 * MB, now=0.0)
        svc.local_transfer("a", "d", 5 * MB, now=0.0)
        first = svc.records_of("a")
        second = svc.records_of("a")
        assert first == second
        assert {r.partner for r in second} == {"c", "d"}
        assert svc.records_cache_hits == 1

    def test_new_transfer_invalidates(self):
        svc = make_service(max_records_per_exchange=2)
        svc.local_transfer("a", "b", 1 * MB, now=0.0)
        svc.records_of("a")
        svc.local_transfer("a", "e", 99 * MB, now=1.0)
        partners = {r.partner for r in svc.records_of("a")}
        assert "e" in partners
        assert svc.records_cache_misses == 2

    def test_caller_mutation_does_not_corrupt_cache(self):
        svc = make_service()
        svc.local_transfer("a", "b", 1 * MB, now=0.0)
        got = svc.records_of("a")
        got.clear()
        assert len(svc.records_of("a")) == 1

    def test_receiving_gossip_does_not_invalidate_own_records(self):
        """Gossip folds into the *graph*, not the direct table — the
        top-K cache stays valid across received exchanges."""
        svc = make_service(seed=1)
        svc.local_transfer("a", "b", 5 * MB, now=0.0)
        svc.records_of("a")
        for t in range(10):
            svc.gossip_tick("a", float(t))
        assert svc.records_cache_hits > 0


class TestCacheStats:
    def test_stats_shape(self):
        svc = make_service()
        stats = svc.cache_stats()
        assert set(stats) == {
            "contribution_hits",
            "contribution_misses",
            "contribution_invalidations",
            "contribution_bypasses",
            "contribution_evictions",
            "contribution_hit_rate",
            "contrib_cache_cap",
            "contrib_cache_entries_total",
            "contrib_cache_memory_bytes",
            "batch_hits",
            "batch_misses",
            "records_hits",
            "records_misses",
        }
        assert all(v == 0 for v in stats.values())

    def test_clear_caches_preserves_semantics(self):
        svc = make_service()
        svc.local_transfer("b", "a", 7 * MB, now=0.0)
        assert svc.contribution("a", "b") == 7 * MB
        svc.clear_caches()
        assert svc.contribution("a", "b") == 7 * MB
        assert svc.cache_misses == 2  # recomputed after the clear


class TestContribCacheBound:
    """LRU bound on per-node contribution caches
    (``contrib_cache_entries``)."""

    def _svc(self, cap):
        svc = make_service(
            peers=("a", "b", "c", "d", "e"), contrib_cache_entries=cap
        )
        for subject in ("b", "c", "d", "e"):
            svc.local_transfer(subject, "a", 3 * MB, now=0.0)
        return svc

    def test_cache_never_exceeds_cap(self):
        svc = self._svc(cap=2)
        for subject in ("b", "c", "d", "e"):
            svc.contribution("a", subject)
        assert len(svc._nodes["a"].contrib_cache) <= 2
        assert svc.cache_evictions == 2
        assert svc.cache_stats()["contribution_evictions"] == 2

    def test_evicted_entries_recompute_correctly(self):
        svc = self._svc(cap=1)
        for _round in range(3):
            for subject in ("b", "c", "d", "e"):
                got = svc.contribution("a", subject)
                assert got == two_hop_flow(svc.graph_of("a"), subject, "a")

    def test_lru_order_keeps_recently_used(self):
        svc = self._svc(cap=2)
        svc.contribution("a", "b")
        svc.contribution("a", "c")
        svc.contribution("a", "b")  # refresh b — c is now the LRU entry
        svc.contribution("a", "d")  # evicts c, not b
        cache = svc._nodes["a"].contrib_cache
        assert "b" in cache and "d" in cache and "c" not in cache
        hits = svc.cache_hits
        svc.contribution("a", "b")
        assert svc.cache_hits == hits + 1

    def test_unbounded_by_default_never_evicts(self):
        svc = self._svc(cap=0)
        for subject in ("b", "c", "d", "e"):
            svc.contribution("a", subject)
        assert svc.cache_evictions == 0
        assert len(svc._nodes["a"].contrib_cache) == 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BarterCastConfig(contrib_cache_entries=-1)


class TestExperienceBatch:
    def _svc(self):
        svc = make_service(peers=("a", "b", "c", "d"), seed=2)
        svc.local_transfer("b", "a", 7 * MB, now=0.0)
        svc.local_transfer("c", "a", 2 * MB, now=0.0)
        return svc

    def test_threshold_batch_matches_scalar(self):
        svc = self._svc()
        exp = ThresholdExperience(svc, threshold=5 * MB)
        subjects = ["a", "b", "c", "d"]
        batch = exp.experienced_many("a", subjects)
        for s in subjects:
            assert batch[s] == exp.is_experienced("a", s), s

    def test_adaptive_batch_matches_scalar(self):
        svc = self._svc()
        exp = AdaptiveThresholdExperience(svc, step=5 * MB)
        subjects = ["a", "b", "c", "d"]
        # T = 0: everyone but self passes
        batch = exp.experienced_many("a", subjects)
        for s in subjects:
            assert batch[s] == exp.is_experienced("a", s), s
        # raise T and re-check
        exp._thresholds["a"] = 5 * MB
        batch = exp.experienced_many("a", subjects)
        for s in subjects:
            assert batch[s] == exp.is_experienced("a", s), s
        assert batch["b"] and not batch["c"] and not batch["a"]

    def test_default_implementation_loops_scalar(self):
        from repro.core.experience import AlwaysExperienced

        exp = AlwaysExperienced()
        batch = exp.experienced_many("a", ["a", "b"])
        assert batch == {"a": False, "b": True}


class TestAdaptiveCacheBudget:
    def test_formula_scales_with_sqrt_population(self):
        from repro.bartercast.protocol import adaptive_contrib_cache_entries

        assert adaptive_contrib_cache_entries(0) == 0
        assert adaptive_contrib_cache_entries(10_000) == 0  # unbounded is fine
        assert adaptive_contrib_cache_entries(10_001) == 1024  # floor applies
        assert adaptive_contrib_cache_entries(1_000_000) == 8_000
        with pytest.raises(ValueError):
            adaptive_contrib_cache_entries(-1)

    def test_resolve_only_when_unset(self):
        svc = make_service()  # contrib_cache_entries defaults to None
        assert svc.resolve_cache_budget(1_000_000) == 8_000
        assert svc._contrib_cap == 8_000

        pinned = make_service(contrib_cache_entries=77)
        assert pinned.resolve_cache_budget(1_000_000) == 77
        assert pinned._contrib_cap == 77

    def test_stats_report_hit_rate_and_memory(self):
        svc = make_service()
        svc.local_transfer("a", "b", 4 * MB, now=0.0)
        svc.contribution("a", "b")  # miss
        svc.contribution("a", "b")  # hit
        stats = svc.cache_stats()
        assert stats["contribution_hit_rate"] == pytest.approx(0.5)
        assert stats["contrib_cache_entries_total"] == 1
        assert stats["contrib_cache_memory_bytes"] == 200
        assert stats["contrib_cache_cap"] == 0
