"""Conservation and invariant property tests for the swarm engine.

These are the "make really sure your algorithm is right" tests the
optimization guide calls for before any tuning: byte conservation,
bitfield/picker consistency, and capacity invariants across randomised
membership schedules.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bittorrent.ledger import TransferLedger
from repro.bittorrent.swarm import Swarm, SwarmConfig
from repro.traces.model import PeerProfile, SwarmSpec

PIECE = 256 * 1024.0


def build_swarm(n_pieces=8, seed=0):
    spec = SwarmSpec("s", file_size=n_pieces * PIECE, piece_size=PIECE,
                     initial_seeder="seed")
    return Swarm(spec, SwarmConfig(), np.random.default_rng(seed), TransferLedger())


def availability_ground_truth(swarm):
    total = np.zeros(swarm.num_pieces, dtype=np.int64)
    for member in swarm.active.values():
        total += member.bitfield.as_array()
    return total


@given(
    schedule=st.lists(
        st.tuples(
            st.sampled_from(["join", "leave", "round"]),
            st.integers(0, 5),
        ),
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_picker_availability_matches_active_bitfields(schedule):
    """The incrementally-maintained availability array always equals
    the sum of active members' bitfields."""
    swarm = build_swarm()
    swarm.join(PeerProfile("seed", upload_capacity=1e6), 0.0)
    t = 0.0
    for op, pid_num in schedule:
        pid = f"p{pid_num}"
        t += 30.0
        if op == "join":
            swarm.join(PeerProfile(pid), t)
        elif op == "leave":
            swarm.leave(pid, t)
        else:
            swarm.run_round(t, 30.0)
        assert np.array_equal(
            swarm.picker.availability, availability_ground_truth(swarm)
        )


@given(seed=st.integers(0, 50), n_leechers=st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_property_ledger_bytes_equal_piece_progress(seed, n_leechers):
    """Conservation: bytes recorded in the ledger equal the bytes
    embodied in completed pieces plus in-flight partial accumulators."""
    swarm = build_swarm(seed=seed)
    swarm.join(PeerProfile("seed", upload_capacity=1e6), 0.0)
    for i in range(n_leechers):
        swarm.join(PeerProfile(f"p{i}"), 0.0)
    t = 0.0
    for _ in range(12):
        t += 30.0
        swarm.run_round(t, 30.0)
    total_ledger = swarm.ledger.total_bytes
    embodied = 0.0
    for pid, member in swarm.members.items():
        if pid == "seed":
            continue
        embodied += sum(
            swarm.piece_cost(i) for i in member.bitfield.held_indices()
        )
        embodied += sum(member.accum.values())
    assert total_ledger == pytest.approx(embodied, rel=1e-9)


@given(seed=st.integers(0, 30))
@settings(max_examples=20, deadline=None)
def test_property_upload_capacity_never_exceeded(seed):
    up_cap = 50_000.0
    swarm = build_swarm(n_pieces=32, seed=seed)
    swarm.join(PeerProfile("seed", upload_capacity=up_cap), 0.0)
    for i in range(4):
        swarm.join(PeerProfile(f"p{i}"), 0.0)
    t, dt, rounds = 0.0, 30.0, 10
    for _ in range(rounds):
        t += dt
        swarm.run_round(t, dt)
    assert swarm.ledger.uploaded_by("seed") <= up_cap * dt * rounds * (1 + 1e-9)


@given(seed=st.integers(0, 30))
@settings(max_examples=20, deadline=None)
def test_property_no_piece_downloaded_twice(seed):
    """A completed download moved exactly file_size bytes — never more
    (no duplicate piece transfers)."""
    swarm = build_swarm(n_pieces=4, seed=seed)
    swarm.join(PeerProfile("seed", upload_capacity=1e6), 0.0)
    swarm.join(PeerProfile("a", download_capacity=1e6), 0.0)
    t = 0.0
    while swarm.progress_of("a") < 1.0 and t < 3600.0:
        t += 30.0
        swarm.run_round(t, 30.0)
    assert swarm.progress_of("a") == 1.0
    assert swarm.ledger.downloaded_by("a") == pytest.approx(
        swarm.spec.file_size, rel=1e-9
    )
