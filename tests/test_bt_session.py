"""Tests for the trace-driven BitTorrent session."""

import pytest

from repro.bittorrent.session import BitTorrentSession, SessionConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import HOUR
from repro.traces.generator import TraceGenerator, TraceGeneratorConfig
from repro.traces.model import (
    EventKind,
    PeerProfile,
    SwarmSpec,
    Trace,
    TraceEvent,
)


def hand_trace():
    """Tiny hand-built trace: a seeder online throughout, one leecher."""
    peers = {
        "seed": PeerProfile("seed", upload_capacity=200_000.0),
        "leech": PeerProfile("leech"),
    }
    swarms = {"s0": SwarmSpec("s0", file_size=4 * 256 * 1024, initial_seeder="seed")}
    events = Trace.sorted_events(
        [
            TraceEvent(0.0, "seed", EventKind.SESSION_START),
            TraceEvent(0.0, "seed", EventKind.SWARM_JOIN, "s0"),
            TraceEvent(10.0, "leech", EventKind.SESSION_START),
            TraceEvent(10.0, "leech", EventKind.SWARM_JOIN, "s0"),
            TraceEvent(3000.0, "leech", EventKind.SWARM_LEAVE, "s0"),
            TraceEvent(3000.0, "leech", EventKind.SESSION_END),
            TraceEvent(3600.0, "seed", EventKind.SWARM_LEAVE, "s0"),
            TraceEvent(3600.0, "seed", EventKind.SESSION_END),
        ]
    )
    t = Trace(duration=3600.0, peers=peers, swarms=swarms, events=events)
    t.validate()
    return t


def test_replay_tracks_online_status():
    eng = Engine()
    sess = BitTorrentSession(eng, hand_trace(), RngRegistry(0))
    sess.start()
    eng.run_until(5.0)
    assert sess.registry.is_online("seed")
    assert not sess.registry.is_online("leech")
    eng.run_until(100.0)
    assert sess.registry.is_online("leech")
    eng.run_until(3600.0)
    assert sess.registry.online_count() == 0


def test_online_offline_listeners_fire():
    eng = Engine()
    sess = BitTorrentSession(eng, hand_trace(), RngRegistry(0))
    ups, downs = [], []
    sess.on_peer_online(lambda pid, t: ups.append((pid, t)))
    sess.on_peer_offline(lambda pid, t: downs.append((pid, t)))
    sess.run()
    assert ("seed", 0.0) in ups and ("leech", 10.0) in ups
    assert ("leech", 3000.0) in downs and ("seed", 3600.0) in downs


def test_leecher_completes_download():
    eng = Engine()
    sess = BitTorrentSession(eng, hand_trace(), RngRegistry(0))
    sess.run()
    assert sess.swarms["s0"].progress_of("leech") == 1.0
    assert sess.ledger.sent("seed", "leech") == pytest.approx(4 * 256 * 1024, rel=1e-6)


def test_cannot_start_twice():
    eng = Engine()
    sess = BitTorrentSession(eng, hand_trace(), RngRegistry(0))
    sess.start()
    with pytest.raises(RuntimeError):
        sess.start()


def test_session_end_forces_swarm_departure():
    """Even without explicit SWARM_LEAVE the peer exits its swarms."""
    peers = {
        "seed": PeerProfile("seed"),
        "x": PeerProfile("x"),
    }
    swarms = {"s0": SwarmSpec("s0", file_size=256 * 1024, initial_seeder="seed")}
    events = Trace.sorted_events(
        [
            TraceEvent(0.0, "seed", EventKind.SESSION_START),
            TraceEvent(0.0, "seed", EventKind.SWARM_JOIN, "s0"),
            TraceEvent(0.0, "x", EventKind.SESSION_START),
            TraceEvent(0.0, "x", EventKind.SWARM_JOIN, "s0"),
            TraceEvent(100.0, "x", EventKind.SESSION_END),
        ]
    )
    # Note: trace.validate() would flag the dangling join, so build raw.
    trace = Trace(duration=200.0, peers=peers, swarms=swarms, events=events)
    eng = Engine()
    sess = BitTorrentSession(eng, trace, RngRegistry(0))
    sess.start()
    eng.run_until(200.0)
    assert "x" not in sess.swarms["s0"].active


def test_generated_trace_runs_end_to_end():
    cfg = TraceGeneratorConfig(n_peers=20, duration=6 * HOUR, n_swarms=3)
    trace = TraceGenerator(cfg, seed=2).generate()
    eng = Engine()
    sess = BitTorrentSession(
        eng, trace, RngRegistry(2), config=SessionConfig(round_interval=60.0)
    )
    sess.run()
    assert sess.ledger.total_bytes > 0
    # Someone actually finished a file (seeders exist and files are small
    # enough given six hours of transfer at configured rates) — weaker
    # assertion: meaningful progress happened somewhere.
    progress = [
        sw.progress_of(pid)
        for sw in sess.swarms.values()
        for pid in sw.members
        if pid != sw.spec.initial_seeder
    ]
    assert max(progress, default=0.0) > 0.05


def test_determinism_end_to_end():
    cfg = TraceGeneratorConfig(n_peers=12, duration=3 * HOUR, n_swarms=2)
    trace = TraceGenerator(cfg, seed=4).generate()

    def run():
        eng = Engine()
        sess = BitTorrentSession(
            eng, trace, RngRegistry(4), config=SessionConfig(round_interval=60.0)
        )
        sess.run()
        return sess.ledger.total_bytes, sorted(sess.ledger.edges())

    assert run() == run()


def test_config_validation():
    with pytest.raises(ValueError):
        SessionConfig(round_interval=0.0)
