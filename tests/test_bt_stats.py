"""Tests for swarm statistics."""

import pytest

from repro.bittorrent.session import BitTorrentSession, SessionConfig
from repro.bittorrent.stats import SwarmStats, download_duration
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.traces.model import (
    EventKind,
    PeerProfile,
    SwarmSpec,
    Trace,
    TraceEvent,
)


def make_session(duration=7200.0):
    peers = {
        "seed": PeerProfile("seed", upload_capacity=500_000.0),
        "a": PeerProfile("a"),
        "b": PeerProfile("b"),
    }
    swarms = {"s0": SwarmSpec("s0", file_size=4 * 256 * 1024, initial_seeder="seed")}
    events = Trace.sorted_events(
        [
            TraceEvent(0.0, "seed", EventKind.SESSION_START),
            TraceEvent(0.0, "seed", EventKind.SWARM_JOIN, "s0"),
            TraceEvent(0.0, "a", EventKind.SESSION_START),
            TraceEvent(0.0, "a", EventKind.SWARM_JOIN, "s0"),
            TraceEvent(60.0, "b", EventKind.SESSION_START),
            TraceEvent(60.0, "b", EventKind.SWARM_JOIN, "s0"),
        ]
    )
    trace = Trace(duration=duration, peers=peers, swarms=swarms, events=events)
    engine = Engine()
    session = BitTorrentSession(
        engine, trace, RngRegistry(0), config=SessionConfig(round_interval=30.0)
    )
    return engine, session


def test_completions_recorded():
    engine, session = make_session()
    stats = SwarmStats(session, census_interval=600.0)
    stats.install()
    session.run()
    done = {c.peer_id for c in stats.completions}
    assert {"a", "b"} <= done
    assert stats.completions_by_swarm()["s0"] >= 2


def test_completion_times_ordered_and_positive():
    engine, session = make_session()
    stats = SwarmStats(session, census_interval=600.0)
    stats.install()
    session.run()
    times = stats.completion_times("s0")
    assert times and all(t > 0 for t in times)


def test_census_tracks_seed_growth():
    engine, session = make_session()
    stats = SwarmStats(session, census_interval=600.0)
    stats.install()
    session.run()
    snaps = stats.censuses["s0"]
    assert snaps
    # early snapshot: one seed; late snapshot: everyone seeding
    assert snaps[-1].seeds >= snaps[0].seeds
    assert snaps[-1].leechers == 0


def test_mean_ratio_and_peak_size():
    engine, session = make_session()
    stats = SwarmStats(session, census_interval=600.0)
    stats.install()
    session.run()
    assert stats.mean_seed_leecher_ratio("s0") > 0
    assert stats.peak_swarm_size("s0") == 3


def test_throughput_by_peer():
    engine, session = make_session()
    stats = SwarmStats(session, census_interval=600.0)
    stats.install()
    session.run()
    tp = stats.throughput_by_peer()
    assert tp["seed"] > 0
    assert set(tp) == {"seed", "a", "b"}


def test_download_duration():
    engine, session = make_session()
    stats = SwarmStats(session, census_interval=600.0)
    stats.install()
    session.run()
    swarm = session.swarms["s0"]
    d = download_duration(swarm, "a", joined_at=0.0)
    assert d is not None and d > 0
    assert download_duration(swarm, "ghost", 0.0) is None


def test_double_install_rejected():
    engine, session = make_session()
    stats = SwarmStats(session)
    stats.install()
    with pytest.raises(RuntimeError):
        stats.install()


def test_census_interval_validation():
    engine, session = make_session()
    with pytest.raises(ValueError):
        SwarmStats(session, census_interval=0.0)
