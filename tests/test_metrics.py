"""Tests for CEV, ordering, pollution and the time-series recorder."""

import numpy as np
import pytest

from repro.bartercast.maxflow import two_hop_flow
from repro.bartercast.protocol import BarterCastService
from repro.core.node import NodeConfig, VoteSamplingNode
from repro.core.votes import Vote, VoteEntry
from repro.metrics.cev import collective_experience_value, flow_matrix, flows_to_observer
from repro.metrics.ordering import correct_order_fraction
from repro.metrics.pollution import is_polluted, pollution_fraction
from repro.metrics.timeseries import TimeSeries, TimeSeriesRecorder
from repro.pss.base import OnlineRegistry
from repro.pss.ideal import OraclePSS
from repro.sim.engine import Engine
from repro.sim.units import MB


def make_bartercast(peers):
    reg = OnlineRegistry()
    for p in peers:
        reg.set_online(p)
    return BarterCastService(OraclePSS(reg, np.random.default_rng(0)))


class TestCEV:
    def test_flows_match_two_hop_closed_form(self):
        peers = ["a", "b", "c", "d"]
        bc = make_bartercast(peers)
        bc.local_transfer("b", "a", 7 * MB, now=0.0)
        bc.local_transfer("c", "a", 2 * MB, now=0.0)
        # give a's graph a two-hop path d→c→a via gossip-free injection
        from repro.bartercast.records import TransferRecord

        bc.inject_record("a", TransferRecord("c", "d", up=0.0, down=4 * MB, timestamp=0.0))
        flows = flows_to_observer(bc, "a", peers)
        g = bc.graph_of("a")
        for j, pid in enumerate(peers):
            assert flows[j] == pytest.approx(two_hop_flow(g, pid, "a")), pid

    def test_flow_matrix_orientation(self):
        peers = ["a", "b"]
        bc = make_bartercast(peers)
        bc.local_transfer("b", "a", 5 * MB, now=0.0)
        F = flow_matrix(bc, peers)
        # F[i, j] = f_{j -> i}; a is row 0, b col 1
        assert F[0, 1] == 5 * MB
        assert F[1, 0] == 0.0

    def test_cev_counts_ordered_pairs(self):
        peers = ["a", "b", "c"]
        bc = make_bartercast(peers)
        bc.local_transfer("b", "a", 10 * MB, now=0.0)
        cev = collective_experience_value(bc, peers, thresholds=[5 * MB])
        # exactly one ordered pair (a experiences b) out of 6
        assert cev[5 * MB] == pytest.approx(1 / 6)

    def test_cev_multiple_thresholds_monotone(self):
        peers = [f"p{i}" for i in range(6)]
        bc = make_bartercast(peers)
        rng = np.random.default_rng(1)
        for _ in range(30):
            u, d = rng.choice(6, size=2, replace=False)
            bc.local_transfer(f"p{u}", f"p{d}", float(rng.integers(1, 10)) * MB, now=0.0)
        ts = [1 * MB, 5 * MB, 20 * MB, 100 * MB]
        cev = collective_experience_value(bc, peers, thresholds=ts)
        values = [cev[t] for t in ts]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert 0.0 <= values[-1] <= values[0] <= 1.0

    def test_cev_zero_threshold_is_total_but_never_self(self):
        """T=0 means f >= 0 holds for every ordered pair (the adaptive-T
        starting point: everyone accepted) — but self-pairs never count."""
        peers = ["a", "b"]
        bc = make_bartercast(peers)
        cev = collective_experience_value(bc, peers, thresholds=[0.0])
        assert cev[0.0] == 1.0  # both ordered pairs, diagonal excluded

    def test_tiny_population(self):
        bc = make_bartercast(["a"])
        assert collective_experience_value(bc, ["a"], [1.0]) == {1.0: 0.0}


def node_with_votes(pid, votes, b_min=1):
    node = VoteSamplingNode(pid, NodeConfig(b_min=b_min), np.random.default_rng(0))
    for i, (mod, v) in enumerate(votes):
        node.receive_votes(f"v{i}-{mod}", [VoteEntry(mod, v, 0.0)], 1.0, True)
    return node


class TestOrdering:
    def test_correct_node_counted(self):
        n = node_with_votes("x", [("M1", Vote.POSITIVE), ("M3", Vote.NEGATIVE)])
        # make M2 known with score 0
        n.receive_top_k(["M2"])
        nodes = {"x": n}
        assert correct_order_fraction(nodes, ["M1", "M2", "M3"]) == 1.0

    def test_ignorant_node_not_correct(self):
        n = node_with_votes("x", [])
        assert correct_order_fraction({"x": n}, ["M1", "M2", "M3"]) == 0.0

    def test_moderators_excluded_from_denominator(self):
        n = node_with_votes("x", [("M1", Vote.POSITIVE), ("M3", Vote.NEGATIVE)])
        n.receive_top_k(["M2"])
        m1 = node_with_votes("M1", [])
        nodes = {"x": n, "M1": m1}
        assert correct_order_fraction(nodes, ["M1", "M2", "M3"]) == 1.0

    def test_include_subset(self):
        good = node_with_votes("g", [("M1", Vote.POSITIVE), ("M3", Vote.NEGATIVE)])
        good.receive_top_k(["M2"])
        bad = node_with_votes("b", [])
        nodes = {"g": good, "b": bad}
        assert correct_order_fraction(nodes, ["M1", "M2", "M3"], include=["g"]) == 1.0
        assert correct_order_fraction(nodes, ["M1", "M2", "M3"]) == 0.5

    def test_empty_population(self):
        assert correct_order_fraction({}, ["M1"]) == 0.0


class TestPollution:
    def test_spam_top_is_polluted(self):
        n = node_with_votes("x", [("M0", Vote.POSITIVE)])
        assert is_polluted(n, "M0")

    def test_tie_is_not_polluted(self):
        n = node_with_votes(
            "x", [("M0", Vote.POSITIVE), ("M1", Vote.POSITIVE)]
        )
        assert not is_polluted(n, "M0")

    def test_no_information_is_not_polluted(self):
        n = node_with_votes("x", [], b_min=5)
        assert not is_polluted(n, "M0")

    def test_honest_top_not_polluted(self):
        n = node_with_votes(
            "x", [("M1", Vote.POSITIVE), ("M1", Vote.POSITIVE), ("M0", Vote.POSITIVE)]
        )
        # two distinct voters on M1 (helper uses unique voter ids)
        assert not is_polluted(n, "M0")

    def test_fraction_over_subset(self):
        p = node_with_votes("p", [("M0", Vote.POSITIVE)])
        h = node_with_votes("h", [("M1", Vote.POSITIVE)])
        nodes = {"p": p, "h": h}
        assert pollution_fraction(nodes, "M0", include=["p", "h"]) == 0.5
        assert pollution_fraction(nodes, "M0", include=[]) == 0.0

    def test_bootstrapping_node_polluted_through_voxpopuli(self):
        n = VoteSamplingNode("x", NodeConfig(b_min=5), np.random.default_rng(0))
        n.receive_top_k(["M0", "M1"])
        assert is_polluted(n, "M0")


class TestTimeSeries:
    def test_recorder_samples_on_cadence(self):
        eng = Engine()
        rec = TimeSeriesRecorder(eng, interval=10.0)
        counter = {"n": 0}

        def probe():
            counter["n"] += 1
            return float(counter["n"])

        rec.add_probe("count", probe)
        rec.start()
        eng.run_until(35.0)
        series = rec.get("count")
        assert list(series.times) == [0.0, 10.0, 20.0, 30.0]
        assert list(series.values) == [1.0, 2.0, 3.0, 4.0]

    def test_mapping_probe_creates_subseries(self):
        eng = Engine()
        rec = TimeSeriesRecorder(eng, interval=10.0)
        rec.add_probe("cev", lambda: {"T=5": 0.1, "T=10": 0.05})
        rec.start()
        eng.run_until(10.0)
        assert len(rec.get("cev:T=5")) == 2
        assert rec.get("cev:T=10").final() == 0.05

    def test_value_at_step_interpolation(self):
        s = TimeSeries("x")
        s.append(0.0, 1.0)
        s.append(10.0, 2.0)
        assert s.value_at(5.0) == 1.0
        assert s.value_at(10.0) == 2.0
        with pytest.raises(ValueError):
            s.value_at(-1.0)

    def test_no_start_sample_option(self):
        eng = Engine()
        rec = TimeSeriesRecorder(eng, interval=10.0, sample_at_start=False)
        rec.add_probe("x", lambda: 1.0)
        rec.start()
        eng.run_until(25.0)
        assert list(rec.get("x").times) == [10.0, 20.0]

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(Engine(), interval=0.0)

    def test_as_array(self):
        s = TimeSeries("x")
        s.append(1.0, 2.0)
        arr = s.as_array()
        assert arr.shape == (1, 2)
        assert arr[0, 0] == 1.0 and arr[0, 1] == 2.0
