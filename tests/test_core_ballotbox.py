"""Tests for BallotBox."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ballotbox import BallotBox
from repro.core.votes import Vote, VoteEntry


def ve(mod, vote, t=0.0):
    return VoteEntry(mod, vote, t)


def test_merge_and_counts():
    bb = BallotBox(b_max=10)
    bb.merge("v1", [ve("m1", Vote.POSITIVE), ve("m2", Vote.NEGATIVE)], now=1.0)
    bb.merge("v2", [ve("m1", Vote.POSITIVE)], now=2.0)
    assert bb.counts("m1") == (2, 0)
    assert bb.counts("m2") == (0, 1)
    assert bb.score("m1") == 2
    assert bb.score("m2") == -1
    assert bb.num_unique_users() == 2


def test_one_vote_per_voter_per_moderator():
    bb = BallotBox(b_max=10)
    bb.merge("v1", [ve("m1", Vote.POSITIVE)], now=1.0)
    bb.merge("v1", [ve("m1", Vote.NEGATIVE)], now=2.0)
    assert bb.counts("m1") == (0, 1)
    assert bb.total_votes() == 1


def test_self_votes_filtered():
    bb = BallotBox(b_max=10)
    stored = bb.merge("m1", [ve("m1", Vote.POSITIVE)], now=1.0)
    assert stored == 0
    assert bb.num_unique_users() == 0


def test_eviction_oldest_voter_when_over_capacity():
    bb = BallotBox(b_max=2)
    bb.merge("v1", [ve("m1", Vote.POSITIVE)], now=1.0)
    bb.merge("v2", [ve("m1", Vote.POSITIVE)], now=2.0)
    bb.merge("v3", [ve("m1", Vote.POSITIVE)], now=3.0)
    assert bb.num_unique_users() == 2
    assert bb.voters() == ["v2", "v3"]
    assert bb.score("m1") == 2


def test_refresh_protects_from_eviction():
    bb = BallotBox(b_max=2)
    bb.merge("v1", [ve("m1", Vote.POSITIVE)], now=1.0)
    bb.merge("v2", [ve("m1", Vote.POSITIVE)], now=2.0)
    bb.merge("v1", [ve("m2", Vote.POSITIVE)], now=3.0)  # v1 refreshed
    bb.merge("v3", [ve("m1", Vote.POSITIVE)], now=4.0)
    assert bb.voters() == ["v1", "v3"]  # v2 was oldest


def test_empty_merge_is_noop():
    bb = BallotBox(b_max=5)
    assert bb.merge("v1", [], now=0.0) == 0
    assert bb.num_unique_users() == 0


def test_remove_voter():
    bb = BallotBox(b_max=5)
    bb.merge("v1", [ve("m1", Vote.POSITIVE)], now=0.0)
    assert bb.remove_voter("v1")
    assert not bb.remove_voter("v1")
    assert bb.num_unique_users() == 0
    assert bb.counts("m1") == (0, 0)


def test_vote_of():
    bb = BallotBox(b_max=5)
    bb.merge("v1", [ve("m1", Vote.NEGATIVE)], now=0.0)
    assert bb.vote_of("v1", "m1") is Vote.NEGATIVE
    assert bb.vote_of("v1", "m2") is None
    assert bb.vote_of("ghost", "m1") is None


def test_moderators_sorted():
    bb = BallotBox(b_max=5)
    bb.merge("v1", [ve("z", Vote.POSITIVE), ve("a", Vote.POSITIVE)], now=0.0)
    assert bb.moderators() == ["a", "z"]


def test_b_max_validation():
    with pytest.raises(ValueError):
        BallotBox(b_max=0)


@given(
    st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 4), st.booleans()),
        max_size=80,
    ),
    st.integers(1, 6),
)
def test_property_unique_voters_never_exceed_b_max(merges, b_max):
    bb = BallotBox(b_max=b_max)
    for t, (voter, mod, positive) in enumerate(merges):
        v = Vote.POSITIVE if positive else Vote.NEGATIVE
        bb.merge(f"v{voter}", [ve(f"m{mod}", v)], now=float(t))
        assert bb.num_unique_users() <= b_max
        # Score consistency: counts always sum to total mentions.
        for m in bb.moderators():
            pos, neg = bb.counts(m)
            assert pos + neg >= 1


def test_self_vote_only_merge_does_not_refresh_recency():
    """Regression: a merge that stores nothing (e.g. a self-vote-only
    list) must NOT bump the voter's recency — pre-fix it did, letting a
    peer dodge B_max eviction forever with empty-calorie exchanges.

    With b_max=2: v1 then v2 fill the box; v1 ships a self-vote-only
    list (stored == 0); when v3 arrives, the *oldest real contributor*
    is v1 and must be the one evicted.  Pre-fix, v1's order was bumped
    by the empty merge and v2 was evicted instead."""
    bb = BallotBox(b_max=2)
    bb.merge("v1", [ve("m1", Vote.POSITIVE)], now=1.0)
    bb.merge("v2", [ve("m1", Vote.POSITIVE)], now=2.0)
    assert bb.merge("v1", [ve("v1", Vote.POSITIVE)], now=3.0) == 0
    bb.merge("v3", [ve("m1", Vote.POSITIVE)], now=4.0)
    assert bb.voters() == ["v2", "v3"]


def test_stored_votes_survive_a_noop_remerge():
    """The no-recency-bump path must still leave previously stored
    votes intact (it returns early, it must not roll anything back)."""
    bb = BallotBox(b_max=5)
    bb.merge("v1", [ve("m1", Vote.NEGATIVE)], now=1.0)
    assert bb.merge("v1", [ve("v1", Vote.POSITIVE)], now=2.0) == 0
    assert bb.counts("m1") == (0, 1)
    assert bb.voters() == ["v1"]


def test_all_counts_matches_per_moderator_counts():
    bb = BallotBox(b_max=10)
    bb.merge("v1", [ve("m1", Vote.POSITIVE), ve("m2", Vote.NEGATIVE)], now=1.0)
    bb.merge("v2", [ve("m1", Vote.NEGATIVE), ve("m3", Vote.POSITIVE)], now=2.0)
    totals = bb.all_counts()
    assert set(totals) == set(bb.moderators())
    for m in bb.moderators():
        assert totals[m] == bb.counts(m)


def test_all_counts_empty_box():
    assert BallotBox(b_max=3).all_counts() == {}


@given(
    st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 5), st.booleans()),
        max_size=80,
    ),
    st.integers(1, 6),
)
def test_property_all_counts_is_bit_identical_to_counts(merges, b_max):
    """The single-pass tally equals the per-moderator rescan under any
    merge/eviction history (integer sums, so exact equality)."""
    bb = BallotBox(b_max=b_max)
    for t, (voter, mod, positive) in enumerate(merges):
        v = Vote.POSITIVE if positive else Vote.NEGATIVE
        bb.merge(f"v{voter}", [ve(f"m{mod}", v)], now=float(t))
    totals = bb.all_counts()
    assert sorted(totals) == bb.moderators()
    for m in bb.moderators():
        assert totals[m] == bb.counts(m)


@given(
    st.lists(
        st.tuples(st.integers(0, 30), st.booleans()),
        min_size=1,
        max_size=50,
    )
)
def test_property_eviction_is_oldest_first(merge_seq):
    """With b_max=3, the surviving voters are always the 3 most
    recently merged distinct voters."""
    bb = BallotBox(b_max=3)
    last_seen = {}
    for t, (voter, positive) in enumerate(merge_seq):
        v = Vote.POSITIVE if positive else Vote.NEGATIVE
        bb.merge(f"v{voter}", [ve("m", v)], now=float(t))
        last_seen[f"v{voter}"] = t
    expected = sorted(last_seen, key=lambda p: -last_seen[p])[:3]
    assert sorted(bb.voters()) == sorted(expected)


def test_restore_voter_reproduces_eviction_order():
    """restore_voter replays saved voters oldest-first, so a restored
    box picks the same B_max victims as the live one."""
    bb = BallotBox(b_max=2)
    bb.merge("z", [ve("m1", Vote.POSITIVE)], now=1.0)
    bb.merge("a", [ve("m2", Vote.NEGATIVE)], now=2.0)
    clone = BallotBox(b_max=2)
    for voter in bb.voters_by_recency():
        clone.restore_voter(voter, bb.votes_of(voter), bb.last_received_of(voter))
    assert clone.voters_by_recency() == bb.voters_by_recency()
    assert clone.last_received_of("z") == 1.0
    bb.merge("q", [ve("m3", Vote.POSITIVE)], now=3.0)
    clone.merge("q", [ve("m3", Vote.POSITIVE)], now=3.0)
    assert clone.voters() == bb.voters() == ["a", "q"]


def test_restore_voter_drops_self_votes():
    bb = BallotBox(b_max=5)
    bb.restore_voter("v", [("v", Vote.POSITIVE, 1.0)], last_received=1.0)
    assert bb.num_unique_users() == 0


def test_votes_of_and_recency_accessors():
    bb = BallotBox(b_max=5)
    bb.merge("v", [ve("m1", Vote.POSITIVE), ve("m2", Vote.NEGATIVE)], now=4.0)
    assert sorted(bb.votes_of("v")) == [
        ("m1", Vote.POSITIVE, 4.0),
        ("m2", Vote.NEGATIVE, 4.0),
    ]
    assert bb.last_received_of("v") == 4.0
    assert bb.votes_of("ghost") == []
    assert bb.last_received_of("ghost") == 0.0
