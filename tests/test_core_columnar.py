"""Columnar protocol state vs the dict-backed reference.

The :class:`ColumnarStateStore` promises *bit-identical* BallotBox
semantics behind the same public API.  These tests enforce that
promise three ways:

* randomized merge/evict/remove/restore sequences against paired
  boxes (dict :class:`BallotBox` vs :class:`ColumnarBallotBox` views
  sharing one store), comparing every read — including
  ``voters_by_recency`` (the eviction order) and ``all_counts``;
* an eviction-victim regression against a from-first-principles
  min-recency-scan model (the semantics the amortised recency-ordered
  implementation replaced);
* FORMAT_VERSION persistence round trips across all four
  backing combinations (dict/columnar save → dict/columnar restore).
"""

import json
import random

import numpy as np
import pytest

from repro.core.ballotbox import BallotBox
from repro.core.columnar import ColumnarBallotBox, ColumnarStateStore, RowTable
from repro.core.node import NodeConfig, VoteSamplingNode
from repro.core.persistence import FORMAT_VERSION, node_from_dict, node_to_dict
from repro.core.votes import Vote, VoteEntry

VOTES = (Vote.POSITIVE, Vote.NEGATIVE)


def _assert_boxes_equal(ref: BallotBox, col: ColumnarBallotBox) -> None:
    assert ref.num_unique_users() == col.num_unique_users()
    assert ref.voters() == col.voters()
    assert ref.voters_by_recency() == col.voters_by_recency()
    assert ref.total_votes() == col.total_votes()
    assert ref.moderators() == col.moderators()
    assert ref.all_counts() == col.all_counts()
    for voter in ref.voters():
        assert sorted(ref.votes_of(voter)) == sorted(col.votes_of(voter))
        assert ref.last_received_of(voter) == col.last_received_of(voter)
    for moderator in ref.moderators():
        assert ref.counts(moderator) == col.counts(moderator)


# ----------------------------------------------------------------------
# Property: random op sequences leave both backings bit-identical
# ----------------------------------------------------------------------
def test_random_op_sequences_bit_identical():
    rng = random.Random(0xC01)
    for trial in range(6):
        b_max = rng.choice((1, 2, 3, 5, 8))
        store = ColumnarStateStore()
        owners = [f"o{i}" for i in range(4)]
        pairs = [
            (BallotBox(b_max), ColumnarBallotBox(store, store.ensure_row(o), b_max))
            for o in owners
        ]
        voters = [f"v{i}" for i in range(10)] + owners
        # Voter ids double as moderators so self-votes (dropped) and
        # votes *about* voters both occur.
        mods = [f"m{i}" for i in range(6)] + voters[:4]
        now = 0.0
        for _step in range(400):
            ref, col = pairs[rng.randrange(len(pairs))]
            now += rng.random()
            roll = rng.random()
            if roll < 0.70:
                voter = rng.choice(voters)
                entries = [
                    VoteEntry(rng.choice(mods + [voter]), rng.choice(VOTES), now)
                    for _ in range(rng.randrange(0, 4))
                ]
                assert ref.merge(voter, entries, now) == col.merge(
                    voter, list(entries), now
                )
            elif roll < 0.85:
                voter = rng.choice(voters)
                assert ref.remove_voter(voter) == col.remove_voter(voter)
            else:
                voter = rng.choice(voters)
                votes = [
                    (rng.choice(mods), rng.choice(VOTES), now)
                    for _ in range(rng.randrange(0, 3))
                ]
                ref.restore_voter(voter, votes, now)
                col.restore_voter(voter, list(votes), now)
            # Eviction order must track every single step.
            assert ref.voters_by_recency() == col.voters_by_recency()
        for owner, (ref, col) in zip(owners, pairs):
            _assert_boxes_equal(ref, col)
            # The occupancy column mirrors the box, not just the view.
            assert int(store.bb_unique[store.rows.row(owner)]) == (
                ref.num_unique_users()
            )


# ----------------------------------------------------------------------
# Eviction-victim regression vs the min-scan reference semantics
# ----------------------------------------------------------------------
class _MinScanBox:
    """Pre-amortisation reference: on overflow, evict the voter whose
    recency stamp is the minimum (a scan per merge).  The recency-
    ordered dict in :class:`BallotBox` must pick identical victims."""

    def __init__(self, b_max: int):
        self.b_max = b_max
        self._seq = 0
        self._stamp = {}
        self._voters = set()
        self.victims = []

    def merge(self, voter: str, entries, now: float) -> None:
        stored = [e for e in entries if e.moderator_id != voter]
        if not stored:
            return
        self._voters.add(voter)
        self._seq += 1
        self._stamp[voter] = self._seq
        while len(self._voters) > self.b_max:
            victim = min(self._voters, key=self._stamp.__getitem__)
            self._voters.discard(victim)
            self._stamp.pop(victim)
            self.victims.append(victim)

    def by_recency(self):
        return sorted(self._voters, key=self._stamp.__getitem__)


@pytest.mark.parametrize("b_max", [1, 3, 5])
def test_eviction_victims_match_min_scan_reference(b_max):
    rng = random.Random(b_max * 7919)
    box = BallotBox(b_max)
    store = ColumnarStateStore()
    col = ColumnarBallotBox(store, store.ensure_row("owner"), b_max)
    model = _MinScanBox(b_max)
    voters = [f"v{i}" for i in range(12)]
    for step in range(500):
        voter = rng.choice(voters)
        entries = [
            VoteEntry(rng.choice(("m1", "m2", voter)), rng.choice(VOTES), float(step))
            for _ in range(rng.randrange(0, 3))
        ]
        box.merge(voter, entries, float(step))
        col.merge(voter, list(entries), float(step))
        model.merge(voter, entries, float(step))
        assert box.voters_by_recency() == model.by_recency()
        assert col.voters_by_recency() == model.by_recency()
    assert len(model.victims) > 50  # the sweep actually evicted


def test_fused_evict_then_insert_matches_reference():
    """A full box receiving a new voter: the columnar path reuses the
    head victim's slot in place; state must match the dict box's
    insert-then-evict exactly."""
    store = ColumnarStateStore()
    ref = BallotBox(2)
    col = ColumnarBallotBox(store, store.ensure_row("owner"), 2)
    for i, voter in enumerate(("a", "b", "c", "d")):
        entries = [VoteEntry("mod", Vote.POSITIVE, float(i))]
        ref.merge(voter, entries, float(i))
        col.merge(voter, entries, float(i))
        _assert_boxes_equal(ref, col)
    assert col.voters_by_recency() == ["c", "d"]


def test_shrunk_b_max_repeat_voter_edge():
    """Shrinking ``b_max`` between merges: the next repeat-voter merge
    must trim the box the same way in both backings (the columnar
    insert path bounds itself; the trailing guard covers this edge)."""
    store = ColumnarStateStore()
    ref = BallotBox(4)
    col = ColumnarBallotBox(store, store.ensure_row("owner"), 4)
    for i, voter in enumerate(("a", "b", "c", "d")):
        entries = [VoteEntry("mod", Vote.NEGATIVE, float(i))]
        ref.merge(voter, entries, float(i))
        col.merge(voter, entries, float(i))
    ref.b_max = col.b_max = 2
    entries = [VoteEntry("mod", Vote.POSITIVE, 9.0)]
    ref.merge("c", entries, 9.0)
    col.merge("c", entries, 9.0)
    _assert_boxes_equal(ref, col)
    assert col.num_unique_users() == 2


def test_bb_merge_voter_row_param_matches_lookup():
    """Passing the voter's row explicitly (the batched tick does) must
    be indistinguishable from the id-lookup path."""
    store = ColumnarStateStore()
    row_a = store.ensure_row("a")
    row_b = store.ensure_row("b")
    vrow = store.rows.row("voter")
    entries = [VoteEntry("mod", Vote.POSITIVE, 1.0)]
    assert store.bb_merge(row_a, 5, "voter", entries, 1.0) == 1
    assert store.bb_merge(row_b, 5, "voter", entries, 1.0, voter_row=vrow) == 1
    box_a = ColumnarBallotBox(store, row_a, 5)
    box_b = ColumnarBallotBox(store, row_b, 5)
    assert box_a.votes_of("voter") == box_b.votes_of("voter")
    assert box_a.voters_by_recency() == box_b.voters_by_recency()


def test_row_table_assignment_is_stable():
    table = RowTable()
    assert table.row("a") == 0
    assert table.row("b") == 1
    assert table.row("a") == 0
    assert table.get("c") is None
    assert len(table) == 2
    assert table.ids == ["a", "b"]


def test_memory_bytes_counts_columns():
    store = ColumnarStateStore()
    row = store.ensure_row("owner")
    base = store.memory_bytes()
    assert base > 0
    store.bb_merge(row, 4, "voter", [VoteEntry("m", Vote.POSITIVE, 0.0)], 0.0)
    assert store.memory_bytes() >= base


# ----------------------------------------------------------------------
# FORMAT_VERSION persistence across backings
# ----------------------------------------------------------------------
def _populated_node(col_store=None) -> VoteSamplingNode:
    node = VoteSamplingNode(
        "owner",
        NodeConfig(b_min=1, b_max=3),
        np.random.default_rng(3),
        col_store=col_store,
    )
    node.create_moderation("t1", "first", now=1.0)
    node.cast_vote("modA", Vote.POSITIVE, 2.0)
    node.cast_vote("modB", Vote.NEGATIVE, 3.0)
    # Five voters through a b_max=3 box: evictions happen pre-save.
    for i in range(5):
        node.ballot_box.merge(
            f"v{i}",
            [
                VoteEntry("modA", Vote.POSITIVE if i % 2 else Vote.NEGATIVE, float(i)),
                VoteEntry("modB", Vote.NEGATIVE, float(i)),
            ],
            now=float(10 + i),
        )
    node.ballot_box.merge(  # recency bump of a mid-box voter
        "v3", [VoteEntry("modC", Vote.POSITIVE, 20.0)], now=20.0
    )
    node.ballot_box.remove_voter("v2")
    node.set_vote_intention("modC", Vote.POSITIVE)
    node._sync_membership()
    return node


def test_format_round_trip_across_backings():
    base = node_to_dict(_populated_node())
    assert base["format"] == FORMAT_VERSION
    for src_store in (None, ColumnarStateStore()):
        saved = node_to_dict(_populated_node(src_store))
        assert saved == base  # backing never leaks into the format
        payload = json.loads(json.dumps(saved))
        for dst_store in (None, ColumnarStateStore()):
            restored = node_from_dict(payload, col_store=dst_store)
            assert node_to_dict(restored) == base


def test_post_restore_evictions_identical_across_backings():
    """A restored box must pick the same future eviction victims
    whichever backing it was restored into."""
    payload = json.loads(json.dumps(node_to_dict(_populated_node())))
    nodes = [
        node_from_dict(payload, col_store=store)
        for store in (None, ColumnarStateStore())
    ]
    for i in range(4):
        for node in nodes:
            node.ballot_box.merge(
                f"w{i}", [VoteEntry("modZ", Vote.POSITIVE, 0.0)], now=float(30 + i)
            )
    recencies = [n.ballot_box.voters_by_recency() for n in nodes]
    counts = [n.ballot_box.all_counts() for n in nodes]
    assert recencies[0] == recencies[1]
    assert counts[0] == counts[1]
