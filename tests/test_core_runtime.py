"""Integration tests: the full protocol stack over small traces."""

import pytest

from repro.bittorrent.session import BitTorrentSession, SessionConfig
from repro.core.experience import AdaptiveThresholdExperience, AlwaysExperienced
from repro.core.node import NodeConfig
from repro.core.runtime import ProtocolRuntime, RuntimeConfig
from repro.core.votes import Vote
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import HOUR, MB
from repro.traces.generator import TraceGenerator, TraceGeneratorConfig
from repro.traces.model import (
    EventKind,
    PeerProfile,
    SwarmSpec,
    Trace,
    TraceEvent,
)


def always_online_trace(n=8, duration=6 * HOUR):
    """All peers online for the whole window, all in one swarm."""
    peers = {}
    events = []
    for i in range(n):
        pid = f"p{i}"
        peers[pid] = PeerProfile(pid, upload_capacity=200_000.0)
        t0 = float(i)  # staggered arrivals define arrival order
        events.append(TraceEvent(t0, pid, EventKind.SESSION_START))
        events.append(TraceEvent(t0, pid, EventKind.SWARM_JOIN, "s0"))
    swarms = {
        "s0": SwarmSpec("s0", file_size=100 * 256 * 1024, initial_seeder="p0")
    }
    trace = Trace(
        duration=duration,
        peers=peers,
        swarms=swarms,
        events=Trace.sorted_events(events),
    )
    trace.validate()
    return trace


def build(trace, seed=0, runtime_config=None, experience=None):
    engine = Engine()
    rng = RngRegistry(seed)
    session = BitTorrentSession(
        engine, trace, rng, config=SessionConfig(round_interval=60.0)
    )
    runtime = ProtocolRuntime(
        session,
        rng,
        config=runtime_config
        or RuntimeConfig(
            moderation_interval=120.0,
            vote_interval=120.0,
            bartercast_interval=120.0,
            # Small test swarms move tens of MB, not the hundreds that
            # real traces do — scale T down so experience is reachable.
            experience_threshold=1 * MB,
        ),
        experience=experience,
    )
    return engine, session, runtime


def test_moderations_disseminate_through_population():
    trace = always_online_trace()
    engine, session, runtime = build(trace)
    moderator = runtime.ensure_node("p1")
    moderator.create_moderation("t-file", "Great rip", now=0.0)
    session.start()
    engine.run_until(3 * HOUR)
    have = [
        pid
        for pid, node in runtime.nodes.items()
        if node.store.has_moderator("p1")
    ]
    # Direct-only spread (nobody approved p1) still reaches most peers
    # of a small always-online population in 3h of 2-minute gossip.
    assert len(have) >= 6


def test_approval_accelerates_spread_vs_disapproval_blocks():
    trace = always_online_trace()
    engine, session, runtime = build(trace)
    moderator = runtime.ensure_node("p1")
    moderator.create_moderation("t-file", "Great rip", now=0.0)
    hater = runtime.ensure_node("p2")
    hater.cast_vote("p1", Vote.NEGATIVE, 0.0)
    session.start()
    engine.run_until(3 * HOUR)
    assert not runtime.nodes["p2"].store.has_moderator("p1")


def test_experience_forms_from_transfers():
    trace = always_online_trace()
    engine, session, runtime = build(trace)
    session.start()
    engine.run_until(4 * HOUR)
    # The seeder p0 uploads to everyone; most peers should consider it
    # experienced at the default 5 MB threshold once BarterCast spreads.
    experienced_in = sum(
        1
        for pid in trace.peers
        if pid != "p0" and runtime.experience.is_experienced(pid, "p0")
    )
    assert experienced_in >= 4


def test_votes_flow_only_from_experienced_peers():
    trace = always_online_trace()
    engine, session, runtime = build(trace)
    m = runtime.ensure_node("p1")
    m.create_moderation("t-file", "x", now=0.0)
    for pid in ("p2", "p3", "p4"):
        runtime.ensure_node(pid).set_vote_intention("p1", Vote.POSITIVE)
    session.start()
    engine.run_until(6 * HOUR)
    total_votes = sum(
        node.ballot_box.counts("p1")[0] for node in runtime.nodes.values()
    )
    total_rejects = sum(
        node.votes_rejected_inexperienced for node in runtime.nodes.values()
    )
    # votes were cast and some were rejected due to inexperience
    assert total_votes > 0
    assert total_rejects > 0


def test_run_summary_exposes_node_counters():
    trace = always_online_trace()
    engine, session, runtime = build(trace)
    m = runtime.ensure_node("p1")
    m.create_moderation("t-file", "x", now=0.0)
    for pid in ("p2", "p3"):
        runtime.ensure_node(pid).set_vote_intention("p1", Vote.POSITIVE)
    session.start()
    engine.run_until(4 * HOUR)
    summary = runtime.run_summary()
    nodes = summary["nodes"]
    assert set(nodes) == {
        "moderations_received",
        "votes_merged",
        "votes_rejected_inexperienced",
        "votes_truncated",
        "vp_requests_answered",
        "vp_requests_declined",
    }
    # The totals are real sums over the materialised nodes, not zeros
    # from an unwired counter: gossip moved moderations around, and
    # early VoxPopuli requests hit bootstrapping nodes, which decline.
    assert nodes["moderations_received"] > 0
    assert nodes["vp_requests_declined"] > 0
    assert nodes["moderations_received"] == sum(
        n.moderations_received for n in runtime.nodes.values()
    )
    # Honest senders truncate at the source, so nothing is clipped.
    assert nodes["votes_truncated"] == 0


def test_always_experienced_baseline_accepts_everything():
    trace = always_online_trace()
    engine, session, runtime = build(trace, experience=AlwaysExperienced())
    m = runtime.ensure_node("p1")
    m.create_moderation("t", "x", now=0.0)
    runtime.ensure_node("p2").set_vote_intention("p1", Vote.POSITIVE)
    session.start()
    engine.run_until(2 * HOUR)
    rejects = sum(n.votes_rejected_inexperienced for n in runtime.nodes.values())
    assert rejects == 0


def test_voxpopuli_bootstraps_newcomers():
    trace = always_online_trace()
    cfg = RuntimeConfig(
        node=NodeConfig(b_min=2),
        moderation_interval=120.0,
        vote_interval=120.0,
        bartercast_interval=120.0,
        experience_threshold=1 * MB,
    )
    engine, session, runtime = build(trace, runtime_config=cfg)
    m = runtime.ensure_node("p1")
    m.create_moderation("t", "x", now=0.0)
    for pid in ("p2", "p3", "p4", "p5"):
        runtime.ensure_node(pid).set_vote_intention("p1", Vote.POSITIVE)
    session.start()
    engine.run_until(6 * HOUR)
    # someone answered VP requests at some point
    answered = sum(n.vp_requests_answered for n in runtime.nodes.values())
    assert answered >= 0  # smoke: protocol ran
    # every online node has *some* ranking information by now
    with_info = [
        pid
        for pid, n in runtime.nodes.items()
        if n.current_ranking() or not n.needs_bootstrap()
    ]
    assert len(with_info) >= 5


def test_offline_nodes_do_not_tick():
    trace = TraceGenerator(
        TraceGeneratorConfig(n_peers=10, duration=4 * HOUR, n_swarms=2),
        seed=3,
    ).generate()
    engine, session, runtime = build(trace, seed=3)
    session.start()
    engine.run_until(4 * HOUR)
    # Sanity: nodes exist, nothing crashed, and only online nodes hold
    # the online flag.
    for pid, node in runtime.nodes.items():
        assert node.online == session.registry.is_online(pid)


def test_bring_online_external_peer():
    trace = always_online_trace(n=4)
    engine, session, runtime = build(trace)
    session.start()
    engine.run_until(1 * HOUR)
    runtime.bring_online("attacker", engine.now)
    assert runtime.nodes["attacker"].online
    assert session.registry.is_online("attacker")
    engine.run_until(2 * HOUR)
    runtime.take_offline("attacker", engine.now)
    assert not runtime.nodes["attacker"].online


def test_adaptive_experience_updates_thresholds():
    trace = always_online_trace(n=6)
    engine = Engine()
    rng = RngRegistry(1)
    session = BitTorrentSession(
        engine, trace, rng, config=SessionConfig(round_interval=60.0)
    )
    # experience needs the runtime's bartercast: construct in two steps
    runtime = ProtocolRuntime(
        session,
        rng,
        config=RuntimeConfig(
            moderation_interval=120.0,
            vote_interval=120.0,
            bartercast_interval=120.0,
            adaptive_update_interval=300.0,
        ),
        experience=None,
    )
    adaptive = AdaptiveThresholdExperience(runtime.bartercast, d_max=0.5, step=1 * MB)
    runtime.experience = adaptive
    session.start()
    engine.run_until(2 * HOUR)
    # With agreement (no votes at all) thresholds stay at zero.
    assert all(
        adaptive.threshold_for(pid) == 0.0 for pid in trace.peers
    )


def test_determinism_full_stack():
    trace = always_online_trace(n=6)

    def run():
        engine, session, runtime = build(trace, seed=11)
        m = runtime.ensure_node("p1")
        m.create_moderation("t", "x", now=0.0)
        runtime.ensure_node("p2").set_vote_intention("p1", Vote.POSITIVE)
        session.start()
        engine.run_until(3 * HOUR)
        return {
            pid: (
                len(n.store),
                n.ballot_box.num_unique_users(),
                n.ballot_box.score("p1"),
            )
            for pid, n in sorted(runtime.nodes.items())
        }

    assert run() == run()


def test_runtime_config_validation():
    with pytest.raises(ValueError):
        RuntimeConfig(vote_interval=0.0)
    with pytest.raises(ValueError):
        RuntimeConfig(jitter_fraction=1.5)


def test_vote_fanout_determinism_and_reverse_batch():
    """fanout > 1 exercises the hoisted reverse-direction experience
    batch in ``_vote_tick`` (one wrapped ``[peer_id]`` per tick, not
    one per partner): repeated runs must agree exactly, and votes must
    still disseminate."""
    trace = always_online_trace(n=8)

    def run():
        engine, session, runtime = build(
            trace,
            seed=11,
            runtime_config=RuntimeConfig(
                moderation_interval=120.0,
                vote_interval=120.0,
                bartercast_interval=120.0,
                experience_threshold=1 * MB,
                vote_fanout=3,
            ),
        )
        m = runtime.ensure_node("p1")
        m.create_moderation("t", "x", now=0.0)
        runtime.ensure_node("p2").set_vote_intention("p1", Vote.POSITIVE)
        session.start()
        engine.run_until(3 * HOUR)
        summary = runtime.run_summary()
        summary.pop("population")
        states = {
            pid: (
                len(n.store),
                n.ballot_box.num_unique_users(),
                n.ballot_box.score("p1"),
            )
            for pid, n in sorted(runtime.nodes.items())
        }
        return summary, states

    first, second = run(), run()
    assert first == second
    summary, states = first
    assert summary["nodes"]["votes_merged"] > 0
    assert any(box_users > 0 for _len, box_users, _score in states.values())
