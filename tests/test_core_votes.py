"""Tests for Vote / LocalVoteList."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.votes import LocalVoteList, Vote


def rng():
    return np.random.default_rng(0)


def test_cast_and_query():
    vl = LocalVoteList()
    vl.cast("m1", Vote.POSITIVE, 1.0)
    assert vl.vote_on("m1") is Vote.POSITIVE
    assert vl.has_voted("m1")
    assert not vl.has_voted("m2")
    assert len(vl) == 1


def test_revote_replaces_single_entry():
    vl = LocalVoteList()
    vl.cast("m1", Vote.POSITIVE, 1.0)
    vl.cast("m1", Vote.NEGATIVE, 2.0)
    assert len(vl) == 1
    assert vl.vote_on("m1") is Vote.NEGATIVE
    assert vl.entries()[0].cast_at == 2.0


def test_approved_and_disapproved_sets():
    vl = LocalVoteList()
    vl.cast("good", Vote.POSITIVE, 1.0)
    vl.cast("bad", Vote.NEGATIVE, 2.0)
    assert vl.approved() == frozenset({"good"})
    assert vl.disapproved() == frozenset({"bad"})


def test_entries_newest_first():
    vl = LocalVoteList()
    vl.cast("a", Vote.POSITIVE, 1.0)
    vl.cast("b", Vote.POSITIVE, 5.0)
    vl.cast("c", Vote.POSITIVE, 3.0)
    assert [e.moderator_id for e in vl.entries()] == ["b", "c", "a"]


def test_select_all_when_under_budget():
    vl = LocalVoteList()
    for i in range(5):
        vl.cast(f"m{i}", Vote.POSITIVE, float(i))
    sel = vl.select_for_exchange(50, rng())
    assert len(sel) == 5


def test_select_respects_budget():
    vl = LocalVoteList()
    for i in range(100):
        vl.cast(f"m{i:03d}", Vote.POSITIVE, float(i))
    sel = vl.select_for_exchange(50, rng())
    assert len(sel) == 50
    assert len({e.moderator_id for e in sel}) == 50


def test_select_recency_half_is_most_recent():
    vl = LocalVoteList()
    for i in range(100):
        vl.cast(f"m{i:03d}", Vote.POSITIVE, float(i))
    sel = vl.select_for_exchange(10, rng())
    ids = [e.moderator_id for e in sel]
    # newest five (m099..m095) must be the recency half
    assert set(ids[:5]) == {"m099", "m098", "m097", "m096", "m095"}


def test_select_random_half_varies_with_rng():
    vl = LocalVoteList()
    for i in range(100):
        vl.cast(f"m{i:03d}", Vote.POSITIVE, float(i))
    s1 = {e.moderator_id for e in vl.select_for_exchange(10, np.random.default_rng(1))}
    s2 = {e.moderator_id for e in vl.select_for_exchange(10, np.random.default_rng(2))}
    assert s1 != s2


def test_select_zero_budget():
    vl = LocalVoteList()
    vl.cast("m", Vote.POSITIVE, 0.0)
    assert vl.select_for_exchange(0, rng()) == []


@given(st.lists(st.tuples(st.integers(0, 20), st.booleans()), max_size=60))
def test_property_one_entry_per_moderator(ops):
    vl = LocalVoteList()
    expected = {}
    for t, (mid, positive) in enumerate(ops):
        v = Vote.POSITIVE if positive else Vote.NEGATIVE
        vl.cast(f"m{mid}", v, float(t))
        expected[f"m{mid}"] = v
    assert len(vl) == len(expected)
    for mid, v in expected.items():
        assert vl.vote_on(mid) is v
    assert vl.approved().isdisjoint(vl.disapproved())
